"""Service-level counters for the micro-batching solver service.

:class:`ServiceMetrics` is the mutable, lock-guarded accumulator the
service updates as requests flow through (submissions land on the event
loop; batch solves report from executor threads).  :meth:`ServiceMetrics.snapshot`
freezes it into an immutable :class:`ServiceStats` with derived figures —
latency percentiles, batch-width histogram and mean, operator-cache hit
rate — which is what ``SolverService.stats()`` returns and what the load
harness serializes into ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Bound on the retained per-request latency samples (reservoir for the
#: percentile figures; oldest samples are discarded beyond this).
LATENCY_RESERVOIR = 100_000


@dataclass(frozen=True)
class ServiceStats:
    """Immutable snapshot of a service's counters.

    ``requests`` counts every accepted submission; ``served`` those that
    returned a result; ``failed``/``cancelled`` the ones that raised or
    were abandoned.  ``uncoalesced`` counts bypass-path solves
    (unfingerprintable inputs).  ``batches`` is the number of batched
    solves dispatched, ``coalesced_requests`` the requests served in a
    batch of width >= 2.  ``cache_hits``/``cache_misses`` count
    operator-table lookups at batch-solve time — one per *batch*, since
    one lookup serves the whole batch (a miss triggers re-factorization
    through the chain cache); ``cache_hit_requests``/``cache_miss_requests``
    weight the same lookups by batch width, i.e. how many *requests* were
    served off a hit vs. a miss.  ``updates`` counts
    ``SolverService.update`` calls that mutated a registration, and
    ``updates_rebuilt`` the subset whose edit batch fell back to a full
    re-factorization.  Latency figures are end-to-end per request (enqueue
    to result), in seconds.
    """

    requests: int
    served: int
    failed: int
    cancelled: int
    uncoalesced: int
    batches: int
    coalesced_requests: int
    cache_hits: int
    cache_misses: int
    cache_hit_requests: int
    cache_miss_requests: int
    updates: int
    updates_rebuilt: int
    batch_width_histogram: Dict[int, int]
    max_batch_width: int
    mean_batch_width: float
    latency_count: int
    latency_mean: float
    latency_p50: float
    latency_p99: float
    solve_seconds: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of *requests* served off an operator-cache hit.

        Weighted by batch width: a hit that serves a width-16 coalesced
        batch counts 16 requests, matching how ``chain_cache_stats()``
        would count per-caller lookups.  (The historical per-batch rate —
        which under-weighted wide batches — is
        :attr:`batch_cache_hit_rate`.)
        """
        total = self.cache_hit_requests + self.cache_miss_requests
        return self.cache_hit_requests / total if total else 0.0

    @property
    def batch_cache_hit_rate(self) -> float:
        """Fraction of *batches* whose operator lookup hit (one per batch)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class ServiceMetrics:
    """Lock-guarded accumulator behind :class:`ServiceStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._served = 0
        self._failed = 0
        self._cancelled = 0
        self._uncoalesced = 0
        self._batches = 0
        self._coalesced_requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_hit_requests = 0
        self._cache_miss_requests = 0
        self._updates = 0
        self._updates_rebuilt = 0
        self._batch_widths: Counter = Counter()
        self._latencies: deque = deque(maxlen=LATENCY_RESERVOIR)
        self._solve_seconds = 0.0

    def record_request(self) -> None:
        with self._lock:
            self._requests += 1

    def record_batch(self, width: int, *, cache_hit: bool, solve_seconds: float) -> None:
        with self._lock:
            self._batches += 1
            self._batch_widths[int(width)] += 1
            if width >= 2:
                self._coalesced_requests += width
            # One lookup serves the whole batch: count it once at batch
            # granularity and once per member request, so both rates are
            # exact rather than inferring one from the other.
            if cache_hit:
                self._cache_hits += 1
                self._cache_hit_requests += int(width)
            else:
                self._cache_misses += 1
                self._cache_miss_requests += int(width)
            self._solve_seconds += solve_seconds

    def record_served(self, latency_seconds: float) -> None:
        with self._lock:
            self._served += 1
            self._latencies.append(float(latency_seconds))

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self._failed += count

    def record_cancelled(self, count: int = 1) -> None:
        with self._lock:
            self._cancelled += count

    def record_uncoalesced(self) -> None:
        with self._lock:
            self._uncoalesced += 1

    def record_update(self, *, rebuilt: bool) -> None:
        with self._lock:
            self._updates += 1
            if rebuilt:
                self._updates_rebuilt += 1

    def snapshot(self) -> ServiceStats:
        with self._lock:
            widths = dict(sorted(self._batch_widths.items()))
            total_width = sum(w * c for w, c in widths.items())
            batches = self._batches
            lat = np.asarray(self._latencies, dtype=float)
            return ServiceStats(
                requests=self._requests,
                served=self._served,
                failed=self._failed,
                cancelled=self._cancelled,
                uncoalesced=self._uncoalesced,
                batches=batches,
                coalesced_requests=self._coalesced_requests,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_hit_requests=self._cache_hit_requests,
                cache_miss_requests=self._cache_miss_requests,
                updates=self._updates,
                updates_rebuilt=self._updates_rebuilt,
                batch_width_histogram=widths,
                max_batch_width=max(widths) if widths else 0,
                mean_batch_width=total_width / batches if batches else 0.0,
                latency_count=int(lat.size),
                latency_mean=float(lat.mean()) if lat.size else 0.0,
                latency_p50=float(np.percentile(lat, 50)) if lat.size else 0.0,
                latency_p99=float(np.percentile(lat, 99)) if lat.size else 0.0,
                solve_seconds=self._solve_seconds,
            )
