"""Micro-batching solver serving layer (asyncio request coalescing).

The serving stack turns the batched-solve advantage measured in
``BENCH_solver.json`` (5–7x over looped solves at ``k = 8``, bit-for-bit
identical results) into solves/sec under concurrent load:

* :class:`SolverService` — the asyncio front-end: ``submit()`` single-RHS
  requests (plus a ``solve_sync`` wrapper for threaded callers), coalesced
  per (graph fingerprint, method, tolerance bucket) into one batched solve
  under a bounded latency window, backed by the byte-budgeted / TTL'd
  chain cache.
* :class:`ServiceConfig` — window / batch-width / executor / sweep knobs.
* :class:`ServiceStats` — the metrics snapshot (latency percentiles,
  batch-width histogram, cache hit rate) from ``service.stats()``.
* :func:`bucket_tol` / :class:`GroupKey` — the coalescing identity.

See ``benchmarks/bench_serving.py`` for the load-test harness and the
README's "Serving" section for tuning guidance.
"""

from repro.serving.batcher import GroupKey, RequestBatcher, bucket_tol
from repro.serving.metrics import ServiceMetrics, ServiceStats
from repro.serving.service import ServiceConfig, SolverService

__all__ = [
    "SolverService",
    "ServiceConfig",
    "ServiceStats",
    "ServiceMetrics",
    "GroupKey",
    "RequestBatcher",
    "bucket_tol",
]
