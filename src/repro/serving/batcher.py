"""Request-coalescing machinery of the micro-batching solver service.

The batcher is the loop-confined half of :class:`repro.serving.SolverService`:
it groups pending single-RHS solve requests by :class:`GroupKey` — the
(graph fingerprint, solve method, tolerance bucket) triple under which the
batched==looped bit-identity guarantee lets columns share one ``(n, k)``
solve — and hands each group to a flush callback when either the bounded
latency window expires or the group reaches the maximum batch width.

Everything here runs on one asyncio event loop (the service's), so no
locking is needed; the service marshals cross-thread submissions onto the
loop before they reach the batcher.

Tolerance bucketing
-------------------
Requests are grouped by :func:`bucket_tol`, which rounds the requested
tolerance *down* to its decade (``5e-7 -> 1e-7``).  The coalesced solve runs
at the bucket's tolerance, so a request is never solved looser than it
asked for, and every caller's answer is bit-identical to a solo
``operator.solve(b, tol=bucket)`` — the bucket, not the raw request value,
is the reproducibility contract.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np


def bucket_tol(tol: float) -> float:
    """Quantize a tolerance to its decade floor (``5e-7 -> 1e-7``).

    The bucket is always ``<= tol``, so coalesced solves are at least as
    tight as every member request asked for.  Exact powers of ten map to
    themselves (a small epsilon guards ``log10`` rounding, e.g.
    ``log10(1e-7)`` evaluating just below ``-7``).
    """
    if not tol > 0:
        raise ValueError(f"tol must be positive (got {tol})")
    return 10.0 ** math.floor(math.log10(tol) + 1e-12)


@dataclass(frozen=True)
class GroupKey:
    """Coalescing identity: requests with equal keys may share one batch.

    ``fingerprint`` identifies the registered (graph, config, seed)
    operator; ``method`` and ``tol`` (already bucketed) are the per-call
    solve parameters that must match for the batched solve to be
    bit-identical to each member's solo solve.
    """

    fingerprint: str
    method: str
    tol: float


@dataclass
class PendingRequest:
    """One enqueued single-RHS solve awaiting its batch.

    ``registration`` is the service's registration object captured at
    submit time: the batch solve resolves its operator through it, so a
    registry swap (``SolverService.update`` re-registering a mutated graph)
    can never strand a pending or in-flight request — it keeps solving
    against the graph it was submitted for.
    """

    b: np.ndarray
    future: "asyncio.Future"
    enqueued_at: float
    registration: object = None


@dataclass
class _Group:
    requests: List[PendingRequest] = field(default_factory=list)
    timer: Optional["asyncio.TimerHandle"] = None


class RequestBatcher:
    """Coalesce pending requests per :class:`GroupKey` under a latency window.

    ``flush`` (the constructor callback) receives ``(key, requests)`` when a
    group is released — because it filled to ``max_batch``, its window
    expired, or :meth:`flush_all` drained it.  With ``window_seconds <= 0``
    or ``max_batch == 1`` every request is released immediately, which is
    the no-coalescing baseline mode the load harness measures against.
    """

    def __init__(
        self,
        *,
        window_seconds: float,
        max_batch: int,
        flush: Callable[[GroupKey, List[PendingRequest]], None],
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1 (got {max_batch})")
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0 (got {window_seconds})")
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self._flush_cb = flush
        self._groups: Dict[GroupKey, _Group] = {}

    @property
    def pending(self) -> int:
        """Number of requests currently buffered (all groups)."""
        return sum(len(g.requests) for g in self._groups.values())

    def add(self, key: GroupKey, request: PendingRequest) -> None:
        """Buffer ``request`` under ``key``; release the group if full.

        Must be called from the owning event loop (arms ``call_later``
        timers on it).
        """
        group = self._groups.setdefault(key, _Group())
        group.requests.append(request)
        if len(group.requests) >= self.max_batch or self.window_seconds <= 0:
            self.flush(key)
        elif group.timer is None:
            loop = asyncio.get_running_loop()
            group.timer = loop.call_later(self.window_seconds, self.flush, key)

    def flush(self, key: GroupKey) -> None:
        """Release ``key``'s buffered requests to the flush callback now."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        if group.requests:
            self._flush_cb(key, group.requests)

    def flush_all(self) -> None:
        """Release every buffered group (service drain/shutdown)."""
        for key in list(self._groups):
            self.flush(key)
