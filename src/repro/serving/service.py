"""Micro-batching solver service: asyncio coalescing over the chain cache.

``BENCH_solver.json``'s key lever is that a batched ``(n, k)`` solve is
5–7x faster than ``k`` looped solves at ``k = 8`` — and, since PR 4,
bit-for-bit identical to them.  :class:`SolverService` turns that into
serving throughput: concurrent single-RHS requests against the same
registered graph are buffered for a bounded latency window (or until a
maximum batch width), coalesced into one batched
:meth:`~repro.core.operator.LaplacianOperator.solve`, and scattered back
per caller via :meth:`~repro.core.operator.SolveReport.split` — so every
caller receives exactly the answer (and per-request work/depth accounting)
a solo solve would have produced.

Operators are *not* pinned by the service: each batch looks its operator up
in :mod:`repro.core.chain_cache` (byte-budgeted, TTL + LRU) and
re-factorizes through the cache on a miss, so cache eviction is always
survivable and hit rates are real.  Inputs that cannot be fingerprinted
degrade gracefully to uncoalesced solo solves instead of erroring.

Usage — asyncio::

    service = SolverService()
    fp = service.register(graph, seed=0)
    async with service:
        reports = await asyncio.gather(
            *[service.submit(fp, b, tol=1e-8) for b in rhs_pool]
        )

Usage — synchronous callers (the service runs its own loop thread)::

    with service:                       # start()/stop()
        report = service.solve_sync(fp, b, tol=1e-8)
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core import chain_cache
from repro.core.config import ChainConfig, SolverConfig
from repro.core.methods import get_method
from repro.core.operator import LaplacianOperator, MatrixInput, SolveReport, factorize
from repro.graph.graph import Graph
from repro.serving.batcher import GroupKey, PendingRequest, RequestBatcher, bucket_tol
from repro.serving.metrics import ServiceMetrics, ServiceStats


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable knobs of the micro-batching front-end.

    Attributes
    ----------
    window_seconds:
        Bounded coalescing latency: the first request of a group waits at
        most this long before its batch is dispatched.  ``0`` disables
        coalescing (every request solves solo — the baseline mode).
    max_batch:
        Maximum coalesced width; a group dispatches immediately when it
        fills.  ``BENCH_solver.json`` shows the batched-speedup curve is
        still climbing at ``k = 8``, so widths of 8–32 are the sweet spot.
    executor_workers:
        Threads in the solve executor.  Solves are GIL-bound today
        (``BENCH_concurrency.json``), so 1 worker loses no throughput; more
        workers reduce head-of-line blocking between *different* groups.
    cache_sweep_seconds:
        Period of the background chain-cache TTL sweep
        (:func:`repro.core.chain_cache.sweep_expired`); ``None`` disables
        the sweep task.
    """

    window_seconds: float = 0.004
    max_batch: int = 16
    executor_workers: int = 1
    cache_sweep_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0 (got {self.window_seconds})")
        if int(self.max_batch) < 1:
            raise ValueError(f"max_batch must be >= 1 (got {self.max_batch})")
        if int(self.executor_workers) < 1:
            raise ValueError(
                f"executor_workers must be >= 1 (got {self.executor_workers})"
            )
        if self.cache_sweep_seconds is not None and not self.cache_sweep_seconds > 0:
            raise ValueError(
                f"cache_sweep_seconds must be positive or None (got {self.cache_sweep_seconds})"
            )


@dataclass
class _Registration:
    """Everything needed to (re-)factorize one registered matrix."""

    matrix: MatrixInput
    n: int
    chain_config: ChainConfig
    solver_config: SolverConfig
    seed: object
    cache_key: Optional[Tuple]
    pinned: Optional[LaplacianOperator] = None


class SolverService:
    """Coalesce concurrent single-RHS solve requests into batched solves.

    Construction is cheap and synchronous; the asyncio front-end activates
    with :meth:`astart`/:meth:`aclose` (``async with service``) on the
    caller's loop, or :meth:`start`/:meth:`stop` (``with service``) which
    spin a private loop thread so plain synchronous callers — including
    many threads at once — can use :meth:`solve_sync` and still coalesce
    with each other.

    ``chain``/``solver``/``seed`` are the defaults applied when
    :meth:`register` (or auto-registration through :meth:`submit`) is not
    given explicit configuration.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        chain: Optional[ChainConfig] = None,
        solver: Optional[SolverConfig] = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._chain = chain if chain is not None else ChainConfig()
        self._solver = solver if solver is not None else SolverConfig()
        self._seed = seed
        self._registry: Dict[str, _Registration] = {}
        self._registry_lock = threading.Lock()
        self._metrics = ServiceMetrics()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[RequestBatcher] = None
        self._inflight: set = set()
        self._sweep_task: Optional[asyncio.Task] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        matrix: MatrixInput,
        *,
        chain: Optional[ChainConfig] = None,
        solver: Optional[SolverConfig] = None,
        seed: object = None,
        warm: bool = True,
    ) -> str:
        """Register ``matrix`` for coalesced serving; returns its fingerprint.

        ``warm=True`` factorizes immediately (through the chain cache) so
        the first request pays no setup; ``warm=False`` defers
        factorization to the first dispatched batch.  Matrices whose
        :func:`~repro.core.chain_cache.fingerprint_matrix` is ``None``
        cannot be registered — submit them directly and they solve
        uncoalesced.  Non-integer seeds are not chain-cacheable; such
        registrations factorize once and pin the operator in the registry
        instead.
        """
        chain_cfg = chain if chain is not None else self._chain
        solver_cfg = solver if solver is not None else self._solver
        seed = self._seed if seed is None else seed
        fp = chain_cache.fingerprint_matrix(matrix)
        if fp is None:
            raise ValueError(
                "matrix cannot be fingerprinted; submit() it directly for an "
                "uncoalesced solve"
            )
        n = matrix.n if isinstance(matrix, Graph) else int(matrix.shape[0])
        key = chain_cache.make_key(matrix, chain_cfg, solver_cfg, seed)
        reg = _Registration(
            matrix=matrix,
            n=n,
            chain_config=chain_cfg,
            solver_config=solver_cfg,
            seed=seed,
            cache_key=key,
        )
        if key is None:
            reg.pinned = factorize(matrix, chain_cfg, solver_cfg, seed=seed, cache=False)
        elif warm:
            factorize(matrix, chain_cfg, solver_cfg, seed=seed, cache=True)
        with self._registry_lock:
            self._registry[fp] = reg
        return fp

    def unregister(self, fingerprint: str) -> bool:
        """Drop a registration and evict its chain-cache entry (targeted)."""
        with self._registry_lock:
            reg = self._registry.pop(fingerprint, None)
        if reg is None:
            return False
        if reg.cache_key is not None:
            chain_cache.evict(reg.cache_key)
        return True

    def update(self, fingerprint: str, edits) -> Tuple[str, object]:
        """Apply a batched edge edit to a registered graph; returns the new
        fingerprint and the :class:`~repro.core.update.UpdateReport`.

        The registered operator is updated through
        :meth:`LaplacianOperator.update <repro.core.operator.LaplacianOperator.update>`
        — patched incrementally when the edit batch's damage stays under
        :attr:`~repro.core.config.ChainConfig.update_rebuild_fraction`,
        fully re-factorized (bit-identical to fresh) beyond it — and the
        mutated graph is re-registered under its new fingerprint.

        In-flight safety: requests already submitted under the old
        fingerprint captured the old registration, which this method pins
        to the old operator *before* swapping the registry and evicting the
        old fingerprint's chain-cache entries — pending and in-flight
        batches complete against the graph they were submitted for, while
        new submissions use the new fingerprint.  An empty edit batch
        changes nothing and returns the old fingerprint.

        Patched operators are pinned in the new registration (they must
        never enter the content-addressed chain cache — a cache entry has
        to be bit-identical to a fresh factorize); rebuilt operators with a
        cacheable seed are cached normally, so eviction stays survivable.
        """
        reg = self._lookup_registration(fingerprint)
        if reg is None:
            raise KeyError(f"unknown fingerprint {fingerprint!r}; register() it first")
        operator, _ = self._operator_for(reg)
        new_operator, report = operator.update(
            edits, cache=reg.cache_key is not None, invalidate_cache=False
        )
        if report.strategy == "noop":
            return fingerprint, report
        # Pin before unpublishing: a racing batch that captured (or looks
        # up) the old registration must keep resolving the old operator
        # even after its cache entries are evicted below.
        reg.pinned = operator
        reg.cache_key = None
        new_graph = new_operator.graph
        new_fp = chain_cache.fingerprint_matrix(new_graph)
        new_key = (
            chain_cache.make_key(
                new_graph, reg.chain_config, reg.solver_config, reg.seed
            )
            if report.strategy == "rebuilt"
            else None
        )
        new_reg = _Registration(
            matrix=new_graph,
            n=new_graph.n,
            chain_config=reg.chain_config,
            solver_config=reg.solver_config,
            seed=reg.seed,
            cache_key=new_key,
            pinned=new_operator if new_key is None else None,
        )
        with self._registry_lock:
            if self._registry.get(fingerprint) is reg:
                del self._registry[fingerprint]
            self._registry[new_fp] = new_reg
        chain_cache.invalidate_fingerprint(fingerprint)
        self._metrics.record_update(rebuilt=report.strategy == "rebuilt")
        return new_fp, report

    def registered(self) -> Tuple[str, ...]:
        """Fingerprints currently registered."""
        with self._registry_lock:
            return tuple(self._registry)

    def stats(self) -> ServiceStats:
        """Snapshot of the service counters (see :class:`ServiceStats`)."""
        return self._metrics.snapshot()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._loop is not None

    async def astart(self) -> "SolverService":
        """Activate the front-end on the *current* event loop."""
        if self._loop is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serving",
        )
        self._batcher = RequestBatcher(
            window_seconds=self.config.window_seconds,
            max_batch=self.config.max_batch,
            flush=self._dispatch_group,
        )
        if self.config.cache_sweep_seconds is not None:
            self._sweep_task = self._loop.create_task(self._sweep_loop())
        return self

    async def aclose(self) -> None:
        """Drain pending batches, stop the sweep, release the executor."""
        if self._loop is None:
            return
        assert self._batcher is not None and self._executor is not None
        self._batcher.flush_all()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            try:
                await self._sweep_task
            except asyncio.CancelledError:
                pass
            self._sweep_task = None
        self._executor.shutdown(wait=True)
        self._loop = None
        self._executor = None
        self._batcher = None

    async def __aenter__(self) -> "SolverService":
        return await self.astart()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def start(self) -> "SolverService":
        """Run the front-end on a private loop thread (for sync callers)."""
        if self._loop is not None or self._thread is not None:
            raise RuntimeError("service already started")
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.astart())
            ready.set()
            loop.run_forever()

        self._thread_loop = loop
        self._thread = threading.Thread(target=run, name="repro-serving-loop", daemon=True)
        self._thread.start()
        ready.wait()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain and shut down the private loop thread started by :meth:`start`."""
        if self._thread is None or self._thread_loop is None:
            return
        loop = self._thread_loop
        asyncio.run_coroutine_threadsafe(self.aclose(), loop).result(timeout)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout)
        loop.close()
        self._thread = None
        self._thread_loop = None

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request front-end
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        matrix_or_fingerprint: Union[str, MatrixInput],
        b: np.ndarray,
        *,
        tol: Optional[float] = None,
        method: Optional[str] = None,
    ) -> SolveReport:
        """Enqueue one single-RHS solve; resolves when its batch completes.

        ``matrix_or_fingerprint`` is either a fingerprint returned by
        :meth:`register` or a matrix/graph (auto-registered on first
        sight).  ``tol`` is quantized down to its decade bucket (see
        :func:`repro.serving.batcher.bucket_tol`); the request's answer is
        bit-identical to a solo ``operator.solve(b, tol=bucket,
        method=method)``.  Unfingerprintable matrices fall back to an
        uncoalesced solo solve.  Cancelling the returned awaitable (or
        timing it out via ``asyncio.wait_for``) abandons only this request;
        the rest of its batch is unaffected.
        """
        if self._loop is None or self._batcher is None:
            raise RuntimeError("service not started (use 'async with service' or start())")
        loop = asyncio.get_running_loop()
        if loop is not self._loop:
            raise RuntimeError("submit() must run on the loop the service started on")

        if isinstance(matrix_or_fingerprint, str):
            fingerprint = matrix_or_fingerprint
            reg = self._lookup_registration(fingerprint)
            if reg is None:
                raise KeyError(f"unknown fingerprint {fingerprint!r}; register() it first")
        else:
            matrix = matrix_or_fingerprint
            fingerprint = chain_cache.fingerprint_matrix(matrix)
            if fingerprint is None:
                return await self._submit_uncoalesced(matrix, b, tol=tol, method=method)
            reg = self._lookup_registration(fingerprint)
            if reg is None:
                self.register(matrix, warm=False)
                reg = self._lookup_registration(fingerprint)

        b = np.asarray(b, dtype=float)
        if b.ndim != 1:
            raise ValueError("submit() takes a single right-hand side of shape (n,)")
        if b.shape[0] != reg.n:
            raise ValueError(f"b must have length {reg.n} (got {b.shape[0]})")
        eff_tol = bucket_tol(reg.solver_config.tol if tol is None else float(tol))
        eff_method = reg.solver_config.method if method is None else method
        get_method(eff_method)  # fail fast on unknown methods

        self._metrics.record_request()
        key = GroupKey(fingerprint=fingerprint, method=eff_method, tol=eff_tol)
        request = PendingRequest(
            b=b.copy(),
            future=loop.create_future(),
            enqueued_at=time.monotonic(),
            registration=reg,
        )
        self._batcher.add(key, request)
        return await request.future

    def solve_sync(
        self,
        matrix_or_fingerprint: Union[str, MatrixInput],
        b: np.ndarray,
        *,
        tol: Optional[float] = None,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> SolveReport:
        """Blocking :meth:`submit` for callers outside the event loop.

        Requires the private loop thread (:meth:`start`).  Concurrent
        ``solve_sync`` calls from different threads coalesce with each
        other exactly like asyncio submissions.
        """
        if self._thread_loop is None:
            raise RuntimeError("solve_sync() needs the loop thread; call start() first")
        future = asyncio.run_coroutine_threadsafe(
            self.submit(matrix_or_fingerprint, b, tol=tol, method=method),
            self._thread_loop,
        )
        return future.result(timeout)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _lookup_registration(self, fingerprint: str) -> Optional[_Registration]:
        with self._registry_lock:
            return self._registry.get(fingerprint)

    def _operator_for(self, reg: _Registration) -> Tuple[LaplacianOperator, bool]:
        """The registration's operator, via the chain cache (hit flag second).

        Runs on executor threads.  A cache miss (cold start or eviction)
        re-factorizes *through* the cache so the next batch hits again.
        """
        if reg.cache_key is None:
            assert reg.pinned is not None
            return reg.pinned, True
        operator = chain_cache.lookup(reg.cache_key)
        if operator is not None:
            return operator, True
        operator = factorize(
            reg.matrix, reg.chain_config, reg.solver_config, seed=reg.seed, cache=True
        )
        return operator, False

    def _dispatch_group(self, key: GroupKey, requests: List[PendingRequest]) -> None:
        """Batcher flush callback (event loop): launch the batch solve task."""
        live = []
        for request in requests:
            if request.future.done():  # cancelled while pending
                self._metrics.record_cancelled()
            else:
                live.append(request)
        if not live:
            return
        assert self._loop is not None
        task = self._loop.create_task(self._run_batch(key, live))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _solve_batch(
        self, key: GroupKey, live: List[PendingRequest]
    ) -> Tuple[SolveReport, bool, float]:
        """Executor-thread body: one batched solve over the group's columns."""
        # Prefer the registration captured at submit time: it survives
        # registry swaps (update/unregister), so a batch always solves the
        # graph its members were submitted against.  Every member of a group
        # shares the fingerprint, hence an equivalent registration.
        reg = next(
            (r.registration for r in live if r.registration is not None), None
        )
        if reg is None:
            reg = self._lookup_registration(key.fingerprint)
        if reg is None:
            raise KeyError(f"fingerprint {key.fingerprint!r} unregistered mid-flight")
        operator, cache_hit = self._operator_for(reg)
        block = np.stack([request.b for request in live], axis=1)
        t0 = time.perf_counter()
        report = operator.solve(block, tol=key.tol, method=key.method)
        return report, cache_hit, time.perf_counter() - t0

    async def _run_batch(self, key: GroupKey, live: List[PendingRequest]) -> None:
        assert self._loop is not None and self._executor is not None
        try:
            report, cache_hit, solve_seconds = await self._loop.run_in_executor(
                self._executor, self._solve_batch, key, live
            )
        except Exception as exc:
            failed = 0
            for request in live:
                if request.future.done():
                    self._metrics.record_cancelled()
                else:
                    request.future.set_exception(exc)
                    failed += 1
            self._metrics.record_failed(failed)
            return
        width = len(live)
        self._metrics.record_batch(width, cache_hit=cache_hit, solve_seconds=solve_seconds)
        now = time.monotonic()
        for request, column in zip(live, report.split()):
            if request.future.done():  # cancelled in flight; batch unaffected
                self._metrics.record_cancelled()
                continue
            column.stats["serving_batch_width"] = float(width)
            column.stats["serving_coalesced"] = 1.0 if width >= 2 else 0.0
            column.stats["serving_cache_hit"] = 1.0 if cache_hit else 0.0
            column.stats["serving_latency_seconds"] = now - request.enqueued_at
            request.future.set_result(column)
            self._metrics.record_served(now - request.enqueued_at)

    async def _submit_uncoalesced(
        self,
        matrix: MatrixInput,
        b: np.ndarray,
        *,
        tol: Optional[float],
        method: Optional[str],
    ) -> SolveReport:
        """Bypass path for unfingerprintable inputs: solo, uncached solve."""
        assert self._loop is not None and self._executor is not None
        b = np.asarray(b, dtype=float)
        if b.ndim != 1:
            raise ValueError("submit() takes a single right-hand side of shape (n,)")
        eff_tol = bucket_tol(self._solver.tol if tol is None else float(tol))
        eff_method = self._solver.method if method is None else method
        get_method(eff_method)
        self._metrics.record_request()
        self._metrics.record_uncoalesced()
        enqueued = time.monotonic()

        def solo() -> SolveReport:
            operator = factorize(
                matrix, self._chain, self._solver, seed=self._seed, cache=False
            )
            return operator.solve(b, tol=eff_tol, method=eff_method)

        try:
            report = await self._loop.run_in_executor(self._executor, solo)
        except Exception:
            self._metrics.record_failed()
            raise
        now = time.monotonic()
        report.stats["serving_batch_width"] = 1.0
        report.stats["serving_coalesced"] = 0.0
        report.stats["serving_cache_hit"] = 0.0
        report.stats["serving_latency_seconds"] = now - enqueued
        self._metrics.record_served(now - enqueued)
        return report

    async def _sweep_loop(self) -> None:
        assert self.config.cache_sweep_seconds is not None
        while True:
            await asyncio.sleep(self.config.cache_sweep_seconds)
            chain_cache.sweep_expired()
