"""Parallel AKPW low-stretch spanning trees (Algorithm 5.1, Theorem 5.1).

The algorithm buckets edges into geometric weight classes, and repeatedly

1. partitions the graph spanned by the first ``j`` classes into low-diameter
   components using :func:`repro.core.decomposition.partition`,
2. adds a BFS tree of each component to the output tree, and
3. contracts every component to a super-vertex,

so that across iterations each weight class loses a constant (``1/y``)
fraction of its surviving edges, which is what bounds the total stretch.

Parameters: the paper's choices (``y = 2^sqrt(6 log n log log n)``,
``z = 4 c1 y tau log^3 n``) give the asymptotic guarantee but are enormous at
practical sizes — with them the first partition swallows the entire graph and
the output degenerates to a BFS tree.  :meth:`AKPWParameters.practical`
therefore scales the same structure down (documented constants, same
formulas without the polylog terms); :meth:`AKPWParameters.paper` is also
available and is exercised by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.decomposition import partition
from repro.graph.contraction import contract_vertices
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_semisort
from repro.util.rng import RngLike, as_rng


@dataclass
class AKPWParameters:
    """Parameter bundle for :func:`akpw_spanning_tree`.

    Attributes
    ----------
    y:
        Target factor by which each weight class shrinks per iteration.
    z:
        Weight-class base; class ``i`` holds edges with normalized weight in
        ``[z^(i-1), z^i)``.
    rho:
        Hop-radius passed to the partition step (the paper uses ``z / 4``).
    jitter_fraction:
        Jitter range for the partition as a fraction of ``rho`` (``None``
        uses the paper's ``rho / (2 log n)``).
    sample_coefficient:
        Center-sample constant forwarded to the partition.
    validate_partition:
        Whether to run the Partition validation loop (Algorithm 4.2) with
        constant ``c1``.
    c1:
        Constant used in the partition validation bound.
    """

    y: float
    z: float
    rho: int
    jitter_fraction: Optional[float] = 0.5
    sample_coefficient: float = 1.0
    validate_partition: bool = False
    c1: float = 272.0
    max_iterations: Optional[int] = None

    @classmethod
    def paper(cls, n: int, c1: float = 272.0) -> "AKPWParameters":
        """The parameter setting of Algorithm 5.1 (Theorem 5.1)."""
        n = max(n, 4)
        log_n = math.log2(n)
        loglog_n = math.log2(max(log_n, 2.0))
        y = 2.0 ** math.sqrt(6.0 * log_n * loglog_n)
        tau = math.ceil(3.0 * log_n / math.log2(y))
        z = 4.0 * c1 * y * tau * log_n**3
        return cls(
            y=y,
            z=z,
            rho=max(2, int(z / 4)),
            jitter_fraction=None,
            sample_coefficient=12.0,
            validate_partition=True,
            c1=c1,
        )

    @classmethod
    def practical(cls, n: int, y: Optional[float] = None) -> "AKPWParameters":
        """Scaled-down parameters for practically sized graphs.

        Keeps the paper's structure (``z = Theta(y)``, partition radius
        ``z / 4``) but drops the polylogarithmic safety factors, which is
        what every practical implementation of AKPW-style constructions
        does.  The stretch guarantee is then verified empirically
        (experiment E4) instead of being implied by the worst-case proof.
        """
        n = max(n, 4)
        if y is None:
            y = max(3.0, 2.0 ** math.sqrt(math.log2(n)))
        z = max(8.0, 8.0 * y)
        return cls(
            y=float(y),
            z=float(z),
            rho=max(2, int(round(z / 4.0))),
            jitter_fraction=0.5,
            sample_coefficient=1.0,
            validate_partition=False,
            c1=1.0,
        )


@dataclass
class AKPWResult:
    """Output of :func:`akpw_spanning_tree`.

    Attributes
    ----------
    tree_edges:
        Indices (into the input graph) of the spanning forest edges.
    num_iterations:
        Number of partition/contract rounds performed.
    parameters:
        The parameter bundle actually used.
    stats:
        Per-run diagnostics (edges per weight class, surviving counts, ...).
    """

    tree_edges: np.ndarray
    num_iterations: int
    parameters: AKPWParameters
    stats: Dict[str, float] = field(default_factory=dict)

    def tree(self, graph: Graph) -> Graph:
        """The spanning forest as a standalone graph on the same vertex set."""
        return graph.edge_subgraph(self.tree_edges)


def akpw_spanning_tree(
    graph: Graph,
    parameters: Optional[AKPWParameters] = None,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
) -> AKPWResult:
    """Algorithm 5.1: a low-stretch spanning forest of ``graph``.

    Parameters
    ----------
    graph:
        Weighted input graph.  Works on disconnected graphs (produces a
        spanning forest).
    parameters:
        :class:`AKPWParameters`; defaults to
        ``AKPWParameters.practical(graph.n)``.
    seed, cost:
        RNG seed and optional PRAM cost model.

    Returns
    -------
    AKPWResult
        ``tree_edges`` always form a spanning forest: the per-component BFS
        trees added in each iteration connect exactly the vertex sets that
        are contracted, so connectivity of the contracted graph mirrors
        connectivity of the original graph throughout.
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    params = parameters or AKPWParameters.practical(graph.n)
    n = graph.n
    m = graph.num_edges
    if m == 0:
        return AKPWResult(np.empty(0, dtype=np.int64), 0, params)

    # Step i + iii: normalize weights and bucket edges into classes >= 1
    # (a semisort of the edge keys: O(m) work, O(log m) depth).
    edge_class = graph.weight_buckets(params.z)
    max_class = int(edge_class.max(initial=1))
    charge_semisort(cost, m)

    # State carried across iterations: the contracted multigraph, the map
    # from its edges back to original edge ids, and their classes.
    current = Graph(n, graph.u.copy(), graph.v.copy(), graph.w.copy())
    orig_ids = np.arange(m, dtype=np.int64)
    tree_edges: List[np.ndarray] = []

    max_iter = params.max_iterations
    if max_iter is None:
        max_iter = max_class + int(math.ceil(math.log(max(n, 2)) / math.log(max(params.y, 2.0)))) + 4

    jitter = None
    iterations = 0
    for j in range(1, max_iter + 1):
        if current.n <= 1 or current.num_edges == 0:
            break
        active_mask = edge_class[orig_ids] <= j
        if not np.any(active_mask):
            continue
        iterations += 1
        active_idx = np.flatnonzero(active_mask)
        work_graph = current.edge_subgraph(active_idx)
        charge_filter(cost, current.num_edges)

        if params.jitter_fraction is not None:
            jitter = max(1, int(params.jitter_fraction * params.rho))
        decomp = partition(
            work_graph,
            rho=params.rho,
            edge_classes=edge_class[orig_ids[active_idx]],
            seed=rng,
            cost=cost,
            c1=params.c1,
            validate=params.validate_partition,
            sample_coefficient=params.sample_coefficient,
            jitter_range=jitter,
        )
        # Step iv.2: the BFS trees of the components are exactly the parent
        # edges recorded by the decomposition (indices into work_graph).
        local_tree = decomp.tree_edges()
        if local_tree.size:
            tree_edges.append(orig_ids[active_idx[local_tree]])
        # Step iv.3: contract the components; non-active edges keep their
        # endpoints remapped as well.
        contracted, surviving, _ = contract_vertices(current, decomp.labels, cost=cost)
        current = contracted
        orig_ids = orig_ids[surviving]
        cost.bump("akpw_iterations")
        if j >= max_class and current.num_edges == 0:
            break

    # Safety net: if the iteration budget ran out before the graph was fully
    # contracted (pathological randomness), finish with a spanning forest of
    # the remaining contracted multigraph so the output always spans.
    if current.num_edges > 0:
        from repro.graph.mst import minimum_spanning_tree_edges

        leftover = minimum_spanning_tree_edges(current, cost=cost)
        if leftover.size:
            tree_edges.append(orig_ids[leftover])
            cost.bump("akpw_fallback_edges", float(leftover.size))

    result_edges = (
        np.unique(np.concatenate(tree_edges)) if tree_edges else np.empty(0, dtype=np.int64)
    )
    stats = {
        "max_class": float(max_class),
        "supervertices_left": float(current.n),
        "edges_left": float(current.num_edges),
    }
    return AKPWResult(result_edges, iterations, params, stats)
