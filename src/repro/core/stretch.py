"""Exact stretch measurement.

The stretch of an edge ``e = {u, v}`` with respect to a subgraph ``G'`` is
``str_{G'}(e) = d_{G'}(u, v) / w(e)`` (Section 2 of the paper).  This module
measures stretches exactly:

* :func:`tree_stretches` — stretches w.r.t. a spanning tree / forest, using
  weighted depths and binary-lifting LCA (vectorized over all query edges).
* :func:`edge_stretches` — stretches w.r.t. an arbitrary subgraph, using
  chunked multi-source Dijkstra.
* :func:`total_stretch` / :func:`average_stretch` — the aggregates the
  paper's theorems bound.

These functions are measurement tools used by tests and benchmarks; they are
not part of the parallel algorithms themselves.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.forest import is_forest_edges, root_forest
from repro.graph.graph import Graph
from repro.graph.shortest_paths import shortest_path_distances
from repro.util.dtypes import as_index_array


def _tree_structure(
    graph: Graph, tree_edges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Root every tree component and return parents / depths / components.

    Returns ``(parent, parent_weight, hop_depth, weighted_depth, component)``
    arrays indexed by vertex.  Roots have ``parent == -1``.  Rooting is the
    vectorized Euler-tour / pointer-jumping pass of
    :func:`repro.graph.forest.root_forest` (O(log n) bulk sweeps) rather
    than a per-vertex DFS; the outputs are identical because the tree
    structure determines parents and depths uniquely given each tree's
    smallest-vertex root.
    """
    n = graph.n
    tree_edges = as_index_array(tree_edges)
    if tree_edges.shape[0] >= max(n, 1):
        raise ValueError("tree_edges contains a cycle (too many edges)")
    try:
        rooted = root_forest(n, graph.u[tree_edges], graph.v[tree_edges], graph.w[tree_edges])
    except ValueError as exc:
        raise ValueError(f"tree_edges contains a cycle ({exc})") from exc
    return (
        rooted.parent,
        rooted.parent_weight,
        rooted.hop_depth,
        rooted.weighted_depth,
        rooted.component,
    )


def tree_stretches(
    graph: Graph,
    tree_edges: np.ndarray,
    query_edges: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stretch of every (query) edge of ``graph`` with respect to a tree.

    Parameters
    ----------
    graph:
        The original weighted graph.
    tree_edges:
        Edge indices (into ``graph``) forming a forest; every query edge's
        endpoints must lie in the same tree component.
    query_edges:
        Edge indices whose stretch to compute; defaults to all edges.

    Returns
    -------
    np.ndarray
        ``d_T(u, v) / w(e)`` per query edge.  ``inf`` when the endpoints are
        in different forest components.
    """
    parent, _parent_w, hop_depth, w_depth, component = _tree_structure(graph, tree_edges)
    n = graph.n
    if query_edges is None:
        query_edges = np.arange(graph.num_edges, dtype=graph.u.dtype)
    else:
        query_edges = as_index_array(query_edges)
    qu = graph.u[query_edges].copy()
    qv = graph.v[query_edges].copy()
    weights = graph.w[query_edges]

    # Binary lifting ancestor tables.  The table must cover every bit of a
    # depth difference, i.e. ``bit_length(max_depth)`` lifts plus the base
    # row; the previous float ``ceil(log2(max_depth + 1))`` expression could
    # misround near powers of two, and for all-root forests
    # (``max_depth == 0``, e.g. single-vertex components) one identity row
    # suffices.
    max_depth = int(hop_depth.max(initial=0))
    levels = 1 + max_depth.bit_length()
    # The ancestor table is (levels, n) — the largest allocation of the
    # stretch measurement — so it inherits the forest's lean index dtype.
    up = np.empty((levels, n), dtype=parent.dtype)
    root_mask = parent < 0
    up[0] = np.where(root_mask, np.arange(n, dtype=parent.dtype), parent)
    for k in range(1, levels):
        up[k] = up[k - 1][up[k - 1]]

    same_comp = component[qu] == component[qv]
    a = qu.copy()
    b = qv.copy()
    # Ensure depth(a) >= depth(b).
    swap = hop_depth[a] < hop_depth[b]
    a[swap], b[swap] = b[swap], a[swap].copy()
    # Lift a up to b's depth.
    diff = hop_depth[a] - hop_depth[b]
    for k in range(levels):
        mask = ((diff >> k) & 1).astype(bool)
        if np.any(mask):
            a[mask] = up[k][a[mask]]
    lca = a.copy()
    neq = a != b
    if np.any(neq):
        aa = a[neq]
        bb = b[neq]
        for k in range(levels - 1, -1, -1):
            jump = up[k][aa] != up[k][bb]
            if np.any(jump):
                aa[jump] = up[k][aa[jump]]
                bb[jump] = up[k][bb[jump]]
        lca[neq] = up[0][aa]
    dist = w_depth[qu] + w_depth[qv] - 2.0 * w_depth[lca]
    stretches = np.where(same_comp, dist / weights, np.inf)
    return stretches


def _is_forest(graph: Graph, edge_indices: np.ndarray) -> bool:
    """Whether the edge subset is acyclic (a forest).

    Delegates to the shared bulk union-find check (an edge set is a forest
    iff ``m == n - num_components``), replacing the per-edge Python union
    loop.
    """
    return is_forest_edges(graph.n, graph.u[edge_indices], graph.v[edge_indices])


def edge_stretches(
    graph: Graph,
    subgraph_edges: np.ndarray,
    query_edges: Optional[np.ndarray] = None,
    chunk_size: int = 256,
) -> np.ndarray:
    """Stretch of every (query) edge with respect to an arbitrary subgraph.

    For forests this dispatches to the fast LCA path; otherwise it runs
    chunked Dijkstra on the subgraph.
    """
    subgraph_edges = np.asarray(subgraph_edges)
    if subgraph_edges.dtype == bool:
        subgraph_edges = np.flatnonzero(subgraph_edges)
    else:
        subgraph_edges = as_index_array(subgraph_edges)
    if query_edges is None:
        query_edges = np.arange(graph.num_edges, dtype=graph.u.dtype)
    else:
        query_edges = as_index_array(query_edges)
    if _is_forest(graph, subgraph_edges):
        # Forest: use the exact LCA path (cheaper and exact).
        return tree_stretches(graph, subgraph_edges, query_edges)
    sub = graph.edge_subgraph(subgraph_edges)
    pairs = np.stack([graph.u[query_edges], graph.v[query_edges]], axis=1)
    dist = shortest_path_distances(sub, pairs, chunk_size=chunk_size)
    return dist / graph.w[query_edges]


def total_stretch(
    graph: Graph, subgraph_edges: np.ndarray, query_edges: Optional[np.ndarray] = None
) -> float:
    """Total stretch of the (query) edges w.r.t. the subgraph."""
    return float(np.sum(edge_stretches(graph, subgraph_edges, query_edges)))


def average_stretch(
    graph: Graph, subgraph_edges: np.ndarray, query_edges: Optional[np.ndarray] = None
) -> float:
    """Average stretch of the (query) edges w.r.t. the subgraph."""
    stretches = edge_stretches(graph, subgraph_edges, query_edges)
    return float(np.mean(stretches)) if stretches.size else 0.0
