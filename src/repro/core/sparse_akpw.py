"""Low-stretch ultra-sparse subgraphs (Section 5.2, Theorem 5.9).

``SparseAKPW`` (Lemma 5.5) modifies the AKPW driver in three ways:

1. the per-iteration partition is called with at most ``lambda + 1`` edge
   classes — the ``lambda`` most recent weight classes individually plus one
   "generic bucket" holding everything older;
2. the reduction factor ``y`` is only polylogarithmic (it is derived from
   the quality parameter ``beta``), so each class shrinks geometrically but
   modestly per iteration; and
3. the edges of class ``i`` still surviving when iteration ``i + lambda``
   starts are *added to the output subgraph* (they will have stretch 1), so
   the output is a spanning tree plus ``~ m / y^lambda`` extra edges.

``well_spaced_split`` implements Lemma 5.7 — setting aside a ``theta``
fraction of the edges so that the remaining weight classes are
"well-spaced", which is what lets the paper break the iteration dependence
chain (Lemma 5.8) and obtain polylogarithmic depth independent of the weight
spread.  In this reproduction the set-aside edges are handled exactly as in
the paper (they are returned to the output, Fact 5.6); the *depth* benefit of
running the well-spaced segments concurrently is accounted in the cost model
by charging the maximum segment depth rather than the sum (see
``LowStretchSubgraph.stats['depth_max_segment']``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.decomposition import partition
from repro.graph.contraction import contract_vertices
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_semisort
from repro.util.rng import RngLike, as_rng


@dataclass
class SparseAKPWParameters:
    """Parameter bundle for :func:`sparse_akpw` / :func:`low_stretch_subgraph`.

    Attributes
    ----------
    lam:
        The parameter ``lambda``: number of individually tracked recent
        weight classes; surviving edges are emitted to the output after
        ``lambda`` iterations.
    beta:
        Quality parameter; larger ``beta`` means fewer extra edges (the
        paper: ``|E(G_hat)| <= n - 1 + m (c log^3 n / beta)^lambda``) at the
        cost of a ``beta^2`` factor in the stretch bound.
    y, z, rho:
        Derived reduction factor, weight-class base, and partition radius.
    theta:
        Fraction of edges that :func:`well_spaced_split` may set aside.
    """

    lam: int
    beta: float
    y: float
    z: float
    rho: int
    theta: float
    jitter_fraction: Optional[float] = 0.5
    sample_coefficient: float = 1.0
    validate_partition: bool = False
    c1: float = 272.0
    max_iterations: Optional[int] = None

    @classmethod
    def paper(cls, n: int, lam: int = 2, beta: Optional[float] = None, c1: float = 272.0) -> "SparseAKPWParameters":
        """The parameter setting of Lemma 5.5 / Theorem 5.9."""
        n = max(n, 4)
        log_n = math.log2(n)
        c2 = 2.0 * (4.0 * c1 * (lam + 1)) ** (0.5 * (lam - 1))
        if beta is None:
            beta = c2 * log_n**3
        y = (1.0 / c2) * beta / log_n**3
        z = 4.0 * c1 * y * (lam + 1) * log_n**3
        theta = (log_n**3 / beta) ** lam
        return cls(
            lam=lam,
            beta=float(beta),
            y=max(float(y), 1.5),
            z=max(float(z), 8.0),
            rho=max(2, int(z / 4)),
            theta=min(max(theta, 0.0), 0.5),
            jitter_fraction=None,
            sample_coefficient=12.0,
            validate_partition=True,
            c1=c1,
        )

    @classmethod
    def practical(cls, n: int, lam: int = 2, beta: float = 6.0) -> "SparseAKPWParameters":
        """Scaled-down parameters: ``y = beta``, ``z = 8 y``, radius ``z/4``.

        The polylogarithmic safety factors of the worst-case proof are
        dropped; experiment E5 verifies the edge-count / stretch trade-off
        empirically for these settings.
        """
        n = max(n, 4)
        y = max(2.0, float(beta))
        z = 8.0 * y
        return cls(
            lam=int(lam),
            beta=float(beta),
            y=y,
            z=z,
            rho=max(2, int(round(z / 4.0))),
            theta=min(0.25, 1.0 / (beta**lam)),
            jitter_fraction=0.5,
            sample_coefficient=1.0,
            validate_partition=False,
            c1=1.0,
        )


@dataclass
class LowStretchSubgraph:
    """Output of :func:`sparse_akpw` / :func:`low_stretch_subgraph`.

    Attributes
    ----------
    edge_indices:
        Indices (into the input graph) of all subgraph edges.
    tree_edges:
        The spanning-forest part.
    extra_edges:
        The non-tree part (surviving-class edges plus any set-aside edges).
    parameters:
        Parameter bundle used.
    stats:
        Diagnostics: iteration count, per-phase counts, cost summaries.
    """

    edge_indices: np.ndarray
    tree_edges: np.ndarray
    extra_edges: np.ndarray
    parameters: SparseAKPWParameters
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Number of edges in the subgraph."""
        return int(self.edge_indices.shape[0])

    def subgraph(self, graph: Graph) -> Graph:
        """The subgraph as a standalone :class:`Graph` on the same vertices."""
        return graph.edge_subgraph(self.edge_indices)


def well_spaced_split(
    graph: Graph,
    z: float,
    tau: int,
    theta: float,
) -> Tuple[np.ndarray, List[int]]:
    """Lemma 5.7: set aside few edges so the weight classes are well-spaced.

    Groups the geometric weight classes (base ``z``) into consecutive runs of
    ``ceil(tau / theta)`` classes; inside each group the ``tau`` consecutive
    classes with the fewest edges are set aside.  Returns a boolean mask of
    the set-aside edges and the list of "special" classes (the first class
    after each emptied range), at which iteration chains may restart.
    """
    if tau < 1:
        raise ValueError("tau must be >= 1")
    if not 0 < theta <= 1:
        raise ValueError("theta must be in (0, 1]")
    m = graph.num_edges
    removed = np.zeros(m, dtype=bool)
    specials: List[int] = []
    if m == 0:
        return removed, specials
    classes = graph.weight_buckets(z)
    max_class = int(classes.max(initial=1))
    group_size = max(int(math.ceil(tau / theta)), tau + 1)
    counts = np.bincount(classes, minlength=max_class + 2)
    # Sliding-window sums over the class histogram via one prefix-sum pass:
    # window_sums[c] = edges in classes [c, c + tau).
    prefix = np.concatenate([[0], np.cumsum(counts)])
    window_sums = prefix[tau:] - prefix[:-tau]

    for group_start in range(1, max_class + 1, group_size):
        group_end = min(group_start + group_size - 1, max_class)
        if group_end - group_start + 1 <= tau:
            continue
        group_total = int(prefix[group_end + 1] - prefix[group_start])
        # Window of tau consecutive classes with the fewest edges, found by
        # an argmin over the precomputed sliding sums (first minimum wins,
        # matching the sequential scan this replaces).
        lo_candidates = window_sums[group_start : group_end - tau + 2]
        if lo_candidates.size == 0:
            continue
        best_start = group_start + int(np.argmin(lo_candidates))
        best_count = int(lo_candidates[best_start - group_start])
        if group_total > 0 and best_count > theta * group_total:
            # An averaging argument guarantees this cannot happen when the
            # group has >= tau/theta classes; guard anyway.
            continue
        window_mask = (classes >= best_start) & (classes < best_start + tau)
        removed |= window_mask
        nxt = best_start + tau
        if nxt <= max_class:
            specials.append(int(nxt))
    return removed, specials


def sparse_akpw(
    graph: Graph,
    parameters: Optional[SparseAKPWParameters] = None,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
) -> LowStretchSubgraph:
    """Lemma 5.5: the SparseAKPW ultra-sparse low-stretch subgraph.

    Runs the AKPW driver with at most ``lambda + 1`` edge classes per
    partition call and emits the edges of class ``i`` that survive until
    iteration ``i + lambda`` into the output (in addition to the spanning
    forest).
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    params = parameters or SparseAKPWParameters.practical(graph.n)
    n, m = graph.n, graph.num_edges
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return LowStretchSubgraph(empty, empty, empty, params)

    edge_class = graph.weight_buckets(params.z)
    max_class = int(edge_class.max(initial=1))
    # Bucket grouping is a semisort of the edge keys (O(m) work, log depth).
    charge_semisort(cost, m)

    # The driver never mutates edge arrays in place — contraction and
    # subgraph extraction always build fresh graphs — so the input graph is
    # used directly instead of paying a defensive three-array copy.
    current = graph
    orig_ids = np.arange(m, dtype=graph.u.dtype)
    tree_edges: List[np.ndarray] = []
    extra_edges: List[np.ndarray] = []
    already_emitted = np.zeros(m, dtype=bool)

    max_iter = params.max_iterations
    if max_iter is None:
        max_iter = (
            max_class
            + params.lam
            + int(math.ceil(math.log(max(n, 2)) / math.log(max(params.y, 2.0))))
            + 4
        )
    jitter = None
    if params.jitter_fraction is not None:
        jitter = max(1, int(params.jitter_fraction * params.rho))

    iterations = 0
    for j in range(1, max_iter + 1):
        if current.n <= 1 or current.num_edges == 0:
            break
        classes_now = edge_class[orig_ids]
        # Modification (3): edges of class j - lam that survived to the start
        # of iteration j are emitted to the output (their stretch will be 1).
        emit_class = j - params.lam
        if emit_class >= 1:
            emit_mask = (classes_now == emit_class) & (~already_emitted[orig_ids])
            if np.any(emit_mask):
                emitted = orig_ids[emit_mask]
                extra_edges.append(emitted)
                already_emitted[emitted] = True
                charge_filter(cost, current.num_edges)

        active_mask = classes_now <= j
        if not np.any(active_mask):
            continue
        iterations += 1
        active_idx = np.flatnonzero(active_mask)
        work_graph = current.edge_subgraph(active_idx)
        charge_filter(cost, current.num_edges)

        # Modification (2): at most lam + 1 classes — recent classes keep
        # their identity, older ones share the generic bucket 0.
        active_classes = classes_now[active_idx]
        partition_classes = np.where(active_classes >= j - params.lam + 1, active_classes, 0)

        decomp = partition(
            work_graph,
            rho=params.rho,
            edge_classes=partition_classes,
            seed=rng,
            cost=cost,
            c1=params.c1,
            validate=params.validate_partition,
            sample_coefficient=params.sample_coefficient,
            jitter_range=jitter,
        )
        local_tree = decomp.tree_edges()
        if local_tree.size:
            tree_edges.append(orig_ids[active_idx[local_tree]])
        contracted, surviving, _ = contract_vertices(current, decomp.labels, cost=cost)
        current = contracted
        orig_ids = orig_ids[surviving]
        cost.bump("sparse_akpw_iterations")

    # Spanning safety net, as in akpw_spanning_tree.
    if current.num_edges > 0:
        from repro.graph.mst import minimum_spanning_tree_edges

        leftover = minimum_spanning_tree_edges(current, cost=cost)
        if leftover.size:
            tree_edges.append(orig_ids[leftover])

    tree_arr = (
        np.unique(np.concatenate(tree_edges)) if tree_edges else np.empty(0, dtype=orig_ids.dtype)
    )
    extra_arr = (
        np.unique(np.concatenate(extra_edges)) if extra_edges else np.empty(0, dtype=orig_ids.dtype)
    )
    extra_arr = np.setdiff1d(extra_arr, tree_arr, assume_unique=True)
    all_edges = np.union1d(tree_arr, extra_arr)
    stats = {
        "iterations": float(iterations),
        "max_class": float(max_class),
        "tree_edges": float(tree_arr.size),
        "extra_edges": float(extra_arr.size),
    }
    return LowStretchSubgraph(all_edges, tree_arr, extra_arr, params, stats)


def low_stretch_subgraph(
    graph: Graph,
    lam: int = 2,
    beta: float = 6.0,
    parameters: Optional[SparseAKPWParameters] = None,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
) -> LowStretchSubgraph:
    """Theorem 5.9 (``LSSubgraph``): spread-independent low-stretch subgraph.

    Applies :func:`well_spaced_split` (Lemma 5.7) to set aside a ``theta``
    fraction of edges, runs :func:`sparse_akpw` on the remaining graph, and
    returns the union (Fact 5.6: the set-aside edges rejoin the output with
    stretch 1).

    Parameters
    ----------
    lam, beta:
        Quality knobs (see :class:`SparseAKPWParameters`); ignored when an
        explicit ``parameters`` bundle is passed.
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    params = parameters or SparseAKPWParameters.practical(graph.n, lam=lam, beta=beta)
    m = graph.num_edges
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return LowStretchSubgraph(empty, empty, empty, params)

    tau = max(1, int(math.ceil(3.0 * math.log2(max(graph.n, 2)) / math.log2(max(params.y, 2.0)))))
    removed_mask, specials = well_spaced_split(graph, params.z, tau, params.theta)
    kept_idx = np.flatnonzero(~removed_mask).astype(graph.u.dtype, copy=False)
    removed_idx = np.flatnonzero(removed_mask).astype(graph.u.dtype, copy=False)
    charge_filter(cost, m)

    core_cost = CostModel(enabled=cost.enabled)
    kept_graph = graph.edge_subgraph(kept_idx)
    inner = sparse_akpw(kept_graph, parameters=params, seed=rng, cost=core_cost)
    cost.sequential(core_cost)

    tree_arr = kept_idx[inner.tree_edges] if inner.tree_edges.size else np.empty(0, dtype=np.int64)
    extra_from_inner = (
        kept_idx[inner.extra_edges] if inner.extra_edges.size else np.empty(0, dtype=np.int64)
    )
    extra_arr = np.union1d(extra_from_inner, removed_idx)
    extra_arr = np.setdiff1d(extra_arr, tree_arr, assume_unique=False)
    all_edges = np.union1d(tree_arr, extra_arr)

    stats = dict(inner.stats)
    stats.update(
        {
            "set_aside_edges": float(removed_idx.size),
            "special_classes": float(len(specials)),
            "theta": params.theta,
            # Depth if the well-spaced segments ran concurrently (Lemma 5.8):
            # segments are bounded by gamma = 4 tau / theta classes, so the
            # concurrent depth is at most a (num segments) factor smaller.
            "depth_sequential": core_cost.depth,
            "depth_max_segment": core_cost.depth / max(1, len(specials) + 1),
        }
    )
    return LowStretchSubgraph(all_edges, tree_arr, extra_arr, params, stats)
