"""Preconditioner chain construction (Definition 6.3, Lemma 6.2, Section 6.3).

A chain ``<A_1 = A, B_1, A_2, ..., A_d>`` is built by alternating

* ``B_i = IncrementalSparsify(A_i)`` — keep a low-stretch subgraph of
  ``A_i`` plus a stretch-proportional sample of the remaining edges
  (:func:`repro.core.sparsify.incremental_sparsify` on top of
  :func:`repro.core.sparse_akpw.low_stretch_subgraph`), and
* ``A_{i+1} = GreedyElimination(B_i)`` — partial Cholesky on the degree-1 /
  degree-2 vertices that the sparsification exposes
  (:func:`repro.core.elimination.greedy_elimination`).

The chain is terminated once the current graph has at most ``bottom_size``
vertices — the paper's key observation for parallel depth is to stop at
roughly ``m^(1/3)`` and solve the bottom level with a dense factorization
(Fact 6.4) rather than recursing all the way down.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ChainConfig

import numpy as np
import scipy.sparse as sp

from repro.core.elimination import EliminationResult, greedy_elimination
from repro.core.sparse_akpw import SparseAKPWParameters, low_stretch_subgraph
from repro.core.transfer import TransferOperators, compile_transfers
from repro.core.sparsify import SparsifyResult, incremental_sparsify
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.graph.union_find import connected_components_arrays
from repro.linalg.direct import FactorizedLaplacian
from repro.pram.model import CostModel, log2ceil, null_cost
from repro.util.dtypes import resolve_index_dtype, resolve_value_dtype
from repro.util.memprof import StageMemoryTracker
from repro.util.rng import RngLike, as_rng, derive_seed


@dataclass
class ChainLevel:
    """One level of the preconditioner chain.

    Attributes
    ----------
    graph:
        The level's Laplacian graph ``A_i``.
    laplacian:
        Cached CSR Laplacian of ``graph``.
    sparsifier:
        ``B_i`` (``None`` at the bottom level).
    elimination:
        The partial Cholesky taking ``B_i`` to ``A_{i+1}`` (``None`` at the
        bottom level).
    transfers:
        Compiled forward/backward solve-transfer operators for
        ``elimination``, precompiled at chain-construction (``factorize``)
        time so no solve ever pays the compilation or replays the op list
        (``None`` at the bottom level).
    kappa:
        Condition parameter used for this level (``1`` at the bottom).
    """

    graph: Graph
    laplacian: sp.csr_matrix
    sparsifier: Optional[SparsifyResult] = None
    elimination: Optional[EliminationResult] = None
    transfers: Optional[TransferOperators] = None
    kappa: float = 1.0

    @property
    def num_vertices(self) -> int:
        return self.graph.n

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


@dataclass
class PreconditionerChain:
    """The full chain ``<A_1, B_1, A_2, ..., A_d>`` plus bottom-level factorization.

    The bottom level is held as a :class:`~repro.linalg.direct.FactorizedLaplacian`
    (grounded sparse LU, factored once at construction); the explicit dense
    pseudo-inverse remains available through :attr:`bottom_pseudoinverse`
    for callers that need the matrix, computed lazily on first access.
    """

    levels: List[ChainLevel]
    bottom_solver: FactorizedLaplacian
    #: Mostly-float diagnostics; ``index_dtype`` / ``value_dtype`` are the
    #: resolved dtype names and the ``mem_*`` keys are byte counts.
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def bottom_pseudoinverse(self) -> np.ndarray:
        """Dense pseudo-inverse of the bottom Laplacian (lazy)."""
        return self.bottom_solver.pseudoinverse()

    @property
    def depth(self) -> int:
        """Number of levels ``d``."""
        return len(self.levels)

    def level_sizes(self) -> List[Dict[str, float]]:
        """Per-level summary (n_i, m_i, kappa_i, preconditioner size)."""
        out = []
        for i, lvl in enumerate(self.levels):
            row = {
                "level": i + 1,
                "n": lvl.num_vertices,
                "m": lvl.num_edges,
                "kappa": lvl.kappa,
            }
            if lvl.sparsifier is not None:
                row["precond_edges"] = lvl.sparsifier.num_edges
            out.append(row)
        return out


def default_bottom_size(num_edges: int, num_vertices: int = 0, minimum: int = 40) -> int:
    """Default chain-termination size.

    The paper terminates at ``~ m^(1/3)`` vertices, which is the right choice
    for the *depth* analysis (the bottom dense solve then costs
    ``O(m^(2/3))`` work per visit).  At the moderate problem sizes this
    reproduction runs in pure Python, a slightly larger bottom level (here
    additionally ``n / 6``, capped at 1500) keeps the chain short, which is
    what keeps the recursive W-cycle's multiplicative constant small in wall
    clock; the faithful ``m^(1/3)`` setting remains available by passing
    ``bottom_size`` explicitly and is exercised by the depth-scaling
    benchmark (experiment E8).
    """
    return max(
        minimum,
        int(round(num_edges ** (1.0 / 3.0))),
        min(1500, num_vertices // 6),
    )


def build_chain(
    graph: Graph,
    config: Optional["ChainConfig"] = None,
    *,
    kappa: float = 25.0,
    lam: int = 2,
    beta: float = 6.0,
    bottom_size: Optional[int] = None,
    max_levels: int = 4,
    subgraph_parameters: Optional[SparseAKPWParameters] = None,
    oversample: float = 1.0,
    use_log_factor: bool = False,
    reweight: bool = False,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    use_tree_only: bool = False,
    index_dtype: str = "int32",
    value_dtype: str = "float64",
    memory_profile: bool = False,
) -> PreconditionerChain:
    """Build a preconditioner chain for the Laplacian of ``graph``.

    Parameters
    ----------
    graph:
        The Laplacian graph ``A_1`` (conductance weights).
    config:
        A frozen :class:`~repro.core.config.ChainConfig` bundling every
        construction parameter.  When given it takes precedence over the
        individual keyword arguments below (which remain for backwards
        compatibility).
    kappa:
        Per-level condition parameter ``kappa_i`` (uniform, as in the
        first-attempt analysis of Lemma 6.9).  Roughly ``sqrt(kappa)``
        iterations are spent per level at solve time, while larger ``kappa``
        shrinks the next level more aggressively.
    lam, beta, subgraph_parameters:
        Parameters of the low-stretch subgraph used inside the
        sparsification step.
    bottom_size:
        Chain termination size; defaults to ``max(40, m^(1/3))``.
    use_log_factor, oversample, reweight:
        Sampling knobs forwarded to :func:`incremental_sparsify`.
    use_tree_only:
        Ablation switch (experiment E11): use only the *spanning-tree part*
        of the low-stretch construction as the kept subgraph, mimicking a
        chain built from a low-stretch tree instead of an ultra-sparse
        subgraph.
    index_dtype, value_dtype:
        Dtype policy of every edge/vertex array the build materializes (see
        :class:`~repro.core.config.ChainConfig`).  The working graph is
        normalized once at entry; the lean dtypes then propagate through
        every stage.  Index dtypes never change float arithmetic, so solves
        are bit-identical across index settings.
    memory_profile:
        Record per-stage tracemalloc peaks and reset the kernel RSS
        high-water mark between stages (adds overhead; the always-on cheap
        RSS deltas are recorded regardless).  Deliberately a keyword, not a
        :class:`ChainConfig` field: profiling changes only ``chain.stats``,
        never the chain, so it must not split the chain-cache key.

    Returns
    -------
    PreconditionerChain
    """
    if config is not None:
        kappa = config.kappa
        lam = config.lam
        beta = config.beta
        bottom_size = config.bottom_size
        max_levels = config.max_levels
        oversample = config.oversample
        use_log_factor = config.use_log_factor
        reweight = config.reweight
        use_tree_only = config.use_tree_only
        index_dtype = config.index_dtype
        value_dtype = config.value_dtype
    cost = cost or null_cost()
    rng = as_rng(seed)
    if graph.n == 0:
        raise ValueError("cannot build a chain for an empty graph")
    if bottom_size is None:
        bottom_size = default_bottom_size(graph.num_edges, graph.n)

    # Resolve the dtype policy up front ("int32" raises IndexOverflowError
    # here, before any O(m) allocation, when the graph exceeds capacity) and
    # normalize the working graph once; everything downstream preserves the
    # lean dtypes.
    idt = resolve_index_dtype(index_dtype, graph.n, graph.num_edges)
    vdt = resolve_value_dtype(value_dtype)
    mem = StageMemoryTracker(profile=memory_profile)

    levels: List[ChainLevel] = []
    timings = {
        "seconds_subgraph": 0.0,
        "seconds_sparsify": 0.0,
        "seconds_elimination": 0.0,
        "seconds_transfer": 0.0,
        "seconds_bottom": 0.0,
    }
    with mem.stage("normalize"):
        if graph.u.dtype == idt and graph.v.dtype == idt and graph.w.dtype == vdt:
            current = graph
        else:
            current = Graph(
                graph.n,
                graph.u.astype(idt, copy=False),
                graph.v.astype(idt, copy=False),
                graph.w.astype(vdt, copy=False),
                validate=False,
            )
    level_kappa = float(kappa)
    for _level_index in range(max_levels):
        with mem.stage("laplacian"):
            lap = graph_to_laplacian(current)
        is_last_slot = _level_index == max_levels - 1
        # The forest test compares edges against *non-isolated* vertices:
        # rake/compress never removes degree-0 vertices, so on graphs that
        # shed whole components (power-law inputs especially) ``n`` stays
        # inflated while the surviving edges concentrate in a dense cyclic
        # core whose LU fill-in explodes.  Counting only occupied vertices
        # keeps sparsifying that core; with no isolated vertices the test
        # is identical to the historical ``m <= max(n, 8)``.
        occupied = np.zeros(current.n, dtype=bool)
        occupied[current.u] = True
        occupied[current.v] = True
        num_live = int(np.count_nonzero(occupied))
        del occupied
        if is_last_slot or current.n <= bottom_size or current.num_edges <= max(num_live, 8):
            levels.append(ChainLevel(graph=current, laplacian=lap))
            break

        # Low-stretch subgraph is computed in the length metric (resistances
        # are reciprocals of conductances).
        t0 = time.perf_counter()
        with mem.stage("subgraph"):
            length_graph = current.reweighted(1.0 / current.w)
            params = subgraph_parameters or SparseAKPWParameters.practical(current.n, lam=lam, beta=beta)
            subgraph = low_stretch_subgraph(
                length_graph, parameters=params, seed=derive_seed(rng), cost=cost
            )
        timings["seconds_subgraph"] += time.perf_counter() - t0
        kept_edges = subgraph.tree_edges if use_tree_only else subgraph.edge_indices
        # Sampling stretches are measured against the spanning-forest part
        # of the low-stretch subgraph: forest stretches upper-bound subgraph
        # stretches (oversampling only) and keep the measurement on the
        # vectorized rooted-forest LCA path instead of all-sources Dijkstra.
        t0 = time.perf_counter()
        with mem.stage("sparsify"):
            sparsifier = incremental_sparsify(
                current,
                kept_edges,
                level_kappa,
                seed=derive_seed(rng),
                cost=cost,
                oversample=oversample,
                use_log_factor=use_log_factor,
                reweight=reweight,
                stretch_edges=subgraph.tree_edges,
            )
        timings["seconds_sparsify"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        with mem.stage("elimination"):
            elimination = greedy_elimination(sparsifier.graph, seed=derive_seed(rng), cost=cost)
        timings["seconds_elimination"] += time.perf_counter() - t0
        nxt = elimination.reduced_graph
        t0 = time.perf_counter()
        with mem.stage("transfer"):
            transfers = compile_transfers(elimination)
        timings["seconds_transfer"] += time.perf_counter() - t0
        levels.append(
            ChainLevel(
                graph=current,
                laplacian=lap,
                sparsifier=sparsifier,
                elimination=elimination,
                transfers=transfers,
                kappa=level_kappa,
            )
        )
        # Progress guard: if a level barely shrinks, sample more aggressively
        # on the next one (equivalent to increasing kappa, Lemma 6.2's knob).
        if nxt.num_edges > 0.85 * current.num_edges and nxt.n > bottom_size:
            level_kappa *= 2.0
            cost.bump("chain_kappa_escalations")
        current = nxt
    else:
        # Ran out of levels; make the last graph the bottom level anyway.
        with mem.stage("laplacian"):
            levels.append(ChainLevel(graph=current, laplacian=graph_to_laplacian(current)))

    bottom = levels[-1]
    t0 = time.perf_counter()
    with mem.stage("bottom"):
        _, bottom_labels = connected_components_arrays(bottom.graph.n, bottom.graph.u, bottom.graph.v)
        bottom_solver = FactorizedLaplacian(bottom.laplacian, bottom_labels)
    timings["seconds_bottom"] += time.perf_counter() - t0
    # Sparse factorization of the grounded SPD bottom system: work is
    # charged as the factor fill, depth as the elimination-tree height bound
    # O(log^2 n) (Fact 6.4's dense n^3 is the fallback the sparse factor
    # replaces).
    cost.charge(
        work=float(max(bottom_solver.factor_nnz, bottom.num_vertices)),
        depth=log2ceil(bottom.num_vertices) ** 2,
    )

    stats = {
        "levels": float(len(levels)),
        "bottom_size": float(bottom.num_vertices),
        "bottom_target": float(bottom_size),
        "total_edges": float(sum(l.num_edges for l in levels)),
        "index_dtype": str(np.dtype(idt)),
        "value_dtype": str(np.dtype(vdt)),
    }
    stats.update(timings)
    stats.update(mem.finish())
    return PreconditionerChain(levels=levels, bottom_solver=bottom_solver, stats=stats)
