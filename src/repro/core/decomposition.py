"""Parallel low-diameter decomposition (Section 4, Theorem 4.1).

Two entry points:

* :func:`split_graph` — Algorithm 4.1 (``splitGraph``): partition a simple
  unweighted graph into components of strong hop-radius at most ``rho`` by
  growing jittered balls from progressively larger random center sets.
* :func:`partition` — Algorithm 4.2 (``Partition``): the multi-edge-class
  wrapper that re-runs ``splitGraph`` until every edge class has at most a
  ``c1 * k * log^3 n / rho`` fraction of its edges cut (Theorem 4.1(3)).

Both are written against the delayed-ball-growing primitive in
:mod:`repro.core.ball_growing` and charge PRAM cost: ``O(rho log^2 n)`` depth
and near-linear work, matching the bounds stated in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.ball_growing import grow_balls
from repro.graph._gather import gather_ranges
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_map, charge_reduce
from repro.util.rng import RngLike, as_rng

#: The absolute constant of Theorem 4.1(3); the paper's proof gives 272.
PAPER_C1 = 272.0


@dataclass
class Decomposition:
    """A partition of the vertex set into low-diameter components.

    Attributes
    ----------
    labels:
        Per-vertex component index in ``0 .. num_components - 1``.
    centers:
        Per-component center vertex (Theorem 4.1(1): the center belongs to
        its own component).
    iteration:
        Per-component ``splitGraph`` iteration (1-based) in which the
        component was carved out.
    parent, parent_edge:
        Per-vertex BFS parent / parent edge *within its component*; the
        parent chains form a BFS tree of each component rooted at its center
        (these trees are exactly what the AKPW algorithm adds to its output).
    rho:
        The radius parameter the decomposition was built with.
    """

    labels: np.ndarray
    centers: np.ndarray
    iteration: np.ndarray
    parent: np.ndarray
    parent_edge: np.ndarray
    rho: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        """Number of components in the partition."""
        return int(self.centers.shape[0])

    def component_vertices(self, index: int) -> np.ndarray:
        """Vertices of component ``index``."""
        return np.flatnonzero(self.labels == index)

    def component_sizes(self) -> np.ndarray:
        """Array of component sizes."""
        return np.bincount(self.labels, minlength=self.num_components)

    def tree_edges(self) -> np.ndarray:
        """Edge indices of the per-component BFS trees (the parent edges)."""
        return np.unique(self.parent_edge[self.parent_edge >= 0])


def _default_iterations(n: int) -> int:
    return max(1, int(math.ceil(2.0 * math.log2(max(n, 2)))))


def split_graph(
    graph: Graph,
    rho: int,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
    num_iterations: Optional[int] = None,
    sample_coefficient: float = 12.0,
    jitter_range: Optional[int] = None,
) -> Decomposition:
    """Algorithm 4.1: split a graph into components of strong radius ≤ ``rho``.

    Parameters
    ----------
    graph:
        Input graph; edge weights are ignored (hop-count distances).
    rho:
        Radius parameter; every output component has a center within hop
        distance ``rho`` of all its vertices *inside the component*.
    seed:
        RNG seed / generator.
    cost:
        Optional PRAM cost model.
    num_iterations:
        Number of iterations ``T``; defaults to ``ceil(2 log2 n)`` as in the
        paper.
    sample_coefficient:
        The constant in the center sample size
        ``sigma_t = coeff * n^(t/T - 1) * |V^(t)| * log2 n`` (the paper
        uses 12).
    jitter_range:
        The jitter range ``R``; defaults to the paper's ``rho / (2 log2 n)``.
        On practically sized graphs that default is a very small integer and
        the cut-probability bound ``O(log^2 n / R)`` of Lemma 4.7 is vacuous;
        passing e.g. ``rho // 2`` makes the measured cut fraction decay
        visibly like ``1 / rho`` (this is the setting used by experiment E2).

    Returns
    -------
    Decomposition

    Notes
    -----
    Guarantees (P1) and (P2) of the paper hold deterministically by
    construction: a vertex's BFS parent chain stays inside its component and
    has length at most the ball radius, so the *strong* radius never exceeds
    ``rho``.  (P3) — few edges cut — holds in expectation; use
    :func:`partition` for the validated multi-class version.
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    n = graph.n
    if rho < 1:
        raise ValueError("rho must be >= 1")
    if n == 0:
        return Decomposition(
            labels=np.empty(0, dtype=np.int64),
            centers=np.empty(0, dtype=np.int64),
            iteration=np.empty(0, dtype=np.int64),
            parent=np.empty(0, dtype=np.int64),
            parent_edge=np.empty(0, dtype=np.int64),
            rho=rho,
        )

    T = num_iterations if num_iterations is not None else _default_iterations(n)
    log_n = math.log2(max(n, 2))
    # Jitter range R = rho / (2 log n), at least 1; per-iteration radius
    # r^(t) = (T - t + 1) * R truncated to rho so (P2) holds exactly.
    if jitter_range is not None:
        if not 1 <= jitter_range <= rho:
            raise ValueError("jitter_range must be in [1, rho]")
        R = int(jitter_range)
    else:
        R = max(1, int(round(rho / (2.0 * log_n))))

    # Per-vertex outputs inherit the graph's lean index dtype (component
    # indices and vertex/edge ids all fit it by construction).
    idt = graph.u.dtype if graph.u.dtype in (np.dtype(np.int32), np.dtype(np.int64)) else np.dtype(np.int64)
    labels = np.full(n, -1, dtype=idt)
    parent = np.full(n, -1, dtype=idt)
    parent_edge = np.full(n, -1, dtype=idt)
    centers_out = []
    iteration_out = []
    alive = np.ones(n, dtype=bool)

    for t in range(1, T + 1):
        alive_vertices = np.flatnonzero(alive)
        num_alive = int(alive_vertices.size)
        if num_alive == 0:
            break
        # Center sample size sigma_t (Algorithm 4.1, step 1).
        sigma = sample_coefficient * (n ** (t / T - 1.0)) * num_alive * log_n
        if t == T or sigma >= num_alive:
            centers = alive_vertices
        else:
            k = max(1, int(math.ceil(sigma)))
            charge_map(cost, num_alive)
            centers = rng.choice(alive_vertices, size=min(k, num_alive), replace=False)
        # Jitters delta_s ~ Uniform{0, ..., R} (step 2).
        delays = rng.integers(0, R + 1, size=centers.size)
        radius_t = min(rho, (T - t + 1) * R)

        growth = grow_balls(graph, centers, delays, radius_t, alive=alive, cost=cost)
        claimed = np.flatnonzero(growth.owner >= 0)
        if claimed.size == 0:
            continue
        # Components are the non-empty owner classes; record centers.
        owners = growth.owner[claimed]
        uniq_owners, comp_index = np.unique(owners, return_inverse=True)
        base = len(centers_out)
        labels[claimed] = base + comp_index
        parent[claimed] = growth.parent[claimed]
        parent_edge[claimed] = growth.parent_edge[claimed]
        centers_out.extend(uniq_owners.tolist())
        iteration_out.extend([t] * uniq_owners.size)
        alive[claimed] = False
        charge_filter(cost, num_alive)
        cost.bump("split_graph_iterations")

    # Safety net: any vertex not covered (cannot happen when the loop ran to
    # T, since then every alive vertex is its own center) becomes a
    # singleton — assigned in one bulk scatter pass.
    leftover = np.flatnonzero(labels < 0)
    if leftover.size:
        base = len(centers_out)
        labels[leftover] = base + np.arange(leftover.size, dtype=np.int64)
        centers_out.extend(leftover.tolist())
        iteration_out.extend([T + 1] * leftover.size)
        charge_map(cost, int(leftover.size))

    return Decomposition(
        labels=labels,
        centers=np.asarray(centers_out, dtype=idt),
        iteration=np.asarray(iteration_out, dtype=np.int64),
        parent=parent,
        parent_edge=parent_edge,
        rho=rho,
        stats={"iterations": float(T), "jitter_range": float(R)},
    )


# --------------------------------------------------------------------------- #
# measurement helpers
# --------------------------------------------------------------------------- #
def cut_edge_mask(graph: Graph, labels: np.ndarray) -> np.ndarray:
    """Boolean mask of edges whose endpoints lie in different components."""
    labels = np.asarray(labels)
    return labels[graph.u] != labels[graph.v]


def cut_fraction_per_class(
    graph: Graph, labels: np.ndarray, edge_classes: np.ndarray
) -> Dict[int, float]:
    """Fraction of edges cut in each edge class.

    ``edge_classes`` assigns an integer class to every edge; the result maps
    class id to (cut edges in class) / (edges in class).
    """
    edge_classes = np.asarray(edge_classes)
    cut = cut_edge_mask(graph, labels)
    out: Dict[int, float] = {}
    for cls in np.unique(edge_classes):
        members = edge_classes == cls
        total = int(members.sum())
        out[int(cls)] = float(np.count_nonzero(cut & members)) / max(total, 1)
    return out


def decomposition_radii(graph: Graph, decomposition: Decomposition) -> np.ndarray:
    """Exact strong radius of every component (measured, for validation).

    One level-synchronous BFS from *all* centers simultaneously, restricted
    to same-component edges, replaces the per-component subgraph/dict
    relabeling loop: every round is a bulk gather over the combined
    frontier, and the radii fall out of a single scatter-max over the final
    distance array.
    """
    num_components = decomposition.num_components
    radii = np.zeros(num_components, dtype=np.int64)
    if num_components == 0:
        return radii
    labels = decomposition.labels
    n = graph.n
    indptr, neighbors, _ = graph.adjacency
    dist = np.full(n, -1, dtype=np.int64)
    frontier = np.asarray(decomposition.centers, dtype=np.int64)
    dist[frontier] = 0
    level = 0
    while frontier.size:
        positions, owner_idx = gather_ranges(indptr, frontier)
        if positions.size == 0:
            break
        nbrs = neighbors[positions]
        ok = (dist[nbrs] < 0) & (labels[nbrs] == labels[frontier[owner_idx]])
        new = np.unique(nbrs[ok])
        if new.size == 0:
            break
        level += 1
        dist[new] = level
        frontier = new
    if np.any(dist < 0):
        raise AssertionError("component is not internally connected")
    np.maximum.at(radii, labels, dist)
    return radii


# --------------------------------------------------------------------------- #
# Algorithm 4.2: the validated multi-class partition
# --------------------------------------------------------------------------- #
def partition(
    graph: Graph,
    rho: int,
    edge_classes: Optional[np.ndarray] = None,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
    c1: float = PAPER_C1,
    max_retries: int = 25,
    validate: bool = True,
    num_iterations: Optional[int] = None,
    sample_coefficient: float = 12.0,
    jitter_range: Optional[int] = None,
) -> Decomposition:
    """Algorithm 4.2 (``Partition``): decomposition with per-class cut bounds.

    Runs :func:`split_graph` treating all edge classes as one, then checks
    that every class ``j`` has at most ``|E_j| * c1 * k * log^3 n / rho``
    edges cut; if some class exceeds the bound, the decomposition is redrawn
    (Corollary 4.8 shows a constant success probability per attempt, so the
    expected number of retries is O(1)).

    Parameters
    ----------
    edge_classes:
        Integer class per edge; ``None`` means a single class.
    c1:
        Constant of Theorem 4.1(3); defaults to the paper's 272.  Smaller
        values make the validation step meaningful on practically sized
        graphs (the benchmarks use ``c1 = 1``).
    validate:
        When False, return the first decomposition without checking the
        bound.

    Returns
    -------
    Decomposition
        The accepted decomposition; ``stats["retries"]`` records how many
        redraws were needed and ``stats["cut_bound"]`` the per-class bound.
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    n = graph.n
    if edge_classes is None:
        edge_classes = np.zeros(graph.num_edges, dtype=np.int64)
    edge_classes = np.asarray(edge_classes)
    if edge_classes.shape[0] != graph.num_edges:
        raise ValueError("edge_classes must have one entry per edge")
    class_ids = np.unique(edge_classes)
    k = max(1, int(class_ids.size))
    log_n = math.log2(max(n, 2))
    bound = c1 * k * (log_n**3) / float(rho)

    last: Optional[Decomposition] = None
    for attempt in range(max_retries):
        decomp = split_graph(
            graph,
            rho,
            seed=rng,
            cost=cost,
            num_iterations=num_iterations,
            sample_coefficient=sample_coefficient,
            jitter_range=jitter_range,
        )
        last = decomp
        if not validate or graph.num_edges == 0:
            decomp.stats["retries"] = float(attempt)
            decomp.stats["cut_bound"] = bound
            return decomp
        fractions = cut_fraction_per_class(graph, decomp.labels, edge_classes)
        charge_reduce(cost, graph.num_edges)
        if all(frac <= bound for frac in fractions.values()):
            decomp.stats["retries"] = float(attempt)
            decomp.stats["cut_bound"] = bound
            decomp.stats["max_cut_fraction"] = max(fractions.values()) if fractions else 0.0
            return decomp
        cost.bump("partition_retries")
    assert last is not None
    last.stats["retries"] = float(max_retries)
    last.stats["cut_bound"] = bound
    last.stats["validation_failed"] = 1.0
    return last
