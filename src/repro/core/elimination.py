"""Parallel greedy elimination (partial Cholesky on degree <= 2 vertices).

``GreedyElimination`` (Lemma 6.5) removes degree-1 vertices ("rake") and an
independent set of degree-2 vertices ("compress") round by round until no
low-degree vertices remain, mirroring parallel tree contraction.  Eliminating
those vertices corresponds to a partial Cholesky factorization whose Schur
complement is again a graph Laplacian:

* degree-1 vertex ``v`` with neighbor ``u`` (weight ``w``):
  the vertex is simply removed; solving transfers as
  ``b'_u = b_u + b_v`` (forward) and ``x_v = x_u + b_v / w`` (backward);
* degree-2 vertex ``v`` with neighbors ``u1, u2`` (weights ``w1, w2``):
  it is spliced out, adding an edge ``(u1, u2)`` of weight
  ``w1 w2 / (w1 + w2)``; forward
  ``b'_{u_i} = b_{u_i} + w_i / (w1 + w2) * b_v`` and backward
  ``x_v = (w1 x_{u1} + w2 x_{u2} + b_v) / (w1 + w2)``.

The independent set of degree-2 vertices is chosen by the random marking of
Lemma 6.5 (heads with probability 1/3, keep heads with no heads neighbor),
which removes a constant fraction of the "extra" vertices per round with
high probability, giving O(log n) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_map
from repro.util.rng import RngLike, as_rng


@dataclass
class EliminationResult:
    """A partial Cholesky elimination of low-degree vertices.

    Attributes
    ----------
    reduced_graph:
        The Schur-complement graph on the kept vertices (relabeled
        ``0..len(kept)-1``).
    kept_vertices:
        Original vertex ids of the kept vertices (sorted).
    operations:
        Elimination steps in order; each is either
        ``("d1", v, u, w)`` or ``("d2", v, u1, w1, u2, w2)`` with *original*
        vertex ids.
    rounds:
        Number of rake/compress rounds executed (the parallel depth in units
        of rounds).
    """

    reduced_graph: Graph
    kept_vertices: np.ndarray
    operations: List[Tuple]
    rounds: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_eliminated(self) -> int:
        """Number of vertices eliminated."""
        return len(self.operations)

    # ------------------------------------------------------------------ #
    # solve transfer
    # ------------------------------------------------------------------ #
    def forward_rhs(self, b: np.ndarray) -> np.ndarray:
        """Transfer right-hand side(s) to the reduced system.

        Accepts a vector ``(n,)`` or a batch ``(n, k)`` — every elimination
        step is a row operation, so one traversal of the operation list
        serves all columns at once.  Returns the reduced right-hand side(s)
        indexed by the reduced graph's vertex numbering (i.e. position ``i``
        corresponds to ``kept_vertices[i]``).
        """
        b_full = np.asarray(b, dtype=float).copy()
        for op in self.operations:
            if op[0] == "d1":
                _, v, u, _w = op
                b_full[u] += b_full[v]
            else:
                _, v, u1, w1, u2, w2 = op
                total = w1 + w2
                b_full[u1] += (w1 / total) * b_full[v]
                b_full[u2] += (w2 / total) * b_full[v]
        return b_full[self.kept_vertices]

    def backward_solution(self, b: np.ndarray, x_reduced: np.ndarray) -> np.ndarray:
        """Extend reduced solution(s) back to all original vertices.

        Shapes mirror :meth:`forward_rhs`: ``b`` may be ``(n,)`` or
        ``(n, k)`` with ``x_reduced`` shaped to match.
        """
        b_full = np.asarray(b, dtype=float).copy()
        # Re-run the forward pass: because an eliminated vertex is never a
        # neighbor of a later elimination, its final forwarded value equals
        # its value at elimination time, which is what back substitution
        # needs.
        for op in self.operations:
            if op[0] == "d1":
                _, v, u, _w = op
                b_full[u] += b_full[v]
            else:
                _, v, u1, w1, u2, w2 = op
                total = w1 + w2
                b_full[u1] += (w1 / total) * b_full[v]
                b_full[u2] += (w2 / total) * b_full[v]
        x = np.zeros_like(b_full)
        x[self.kept_vertices] = np.asarray(x_reduced, dtype=float)
        for op in reversed(self.operations):
            if op[0] == "d1":
                _, v, u, w = op
                x[v] = x[u] + b_full[v] / w
            else:
                _, v, u1, w1, u2, w2 = op
                total = w1 + w2
                x[v] = (w1 * x[u1] + w2 * x[u2] + b_full[v]) / total
        return x


def _adjacency_dicts(graph: Graph) -> List[Dict[int, float]]:
    """Dict-of-dicts adjacency with parallel edges coalesced."""
    adj: List[Dict[int, float]] = [dict() for _ in range(graph.n)]
    for u, v, w in zip(graph.u, graph.v, graph.w):
        u = int(u)
        v = int(v)
        w = float(w)
        adj[u][v] = adj[u].get(v, 0.0) + w
        adj[v][u] = adj[v].get(u, 0.0) + w
    return adj


def greedy_elimination(
    graph: Graph,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
    max_rounds: int = 200,
    min_vertices: int = 1,
    parallel_degree2: bool = True,
) -> EliminationResult:
    """Lemma 6.5: eliminate degree-1 and (an independent set of) degree-2 vertices.

    Parameters
    ----------
    graph:
        The Laplacian graph to reduce (conductance weights).
    min_vertices:
        Never eliminate below this many vertices (at least one vertex per
        component must remain for the Laplacian solve transfer to be
        well-posed; the chain keeps the bottom graphs non-trivial anyway).
    parallel_degree2:
        Use the randomized independent-set marking of the parallel algorithm
        (True) or eliminate degree-2 vertices greedily one at a time
        (False, the sequential reference behaviour).

    Returns
    -------
    EliminationResult
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    n = graph.n
    adj = _adjacency_dicts(graph)
    charge_map(cost, graph.num_edges)
    alive = np.ones(n, dtype=bool)
    operations: List[Tuple] = []
    alive_count = n
    rounds = 0

    def degree(v: int) -> int:
        return len(adj[v])

    def eliminate_degree1(v: int) -> None:
        nonlocal alive_count
        (u, w), = adj[v].items()
        operations.append(("d1", v, u, w))
        del adj[u][v]
        adj[v].clear()
        alive[v] = False
        alive_count -= 1

    def eliminate_degree2(v: int) -> None:
        nonlocal alive_count
        (u1, w1), (u2, w2) = adj[v].items()
        operations.append(("d2", v, u1, w1, u2, w2))
        del adj[u1][v]
        del adj[u2][v]
        adj[v].clear()
        new_w = w1 * w2 / (w1 + w2)
        adj[u1][u2] = adj[u1].get(u2, 0.0) + new_w
        adj[u2][u1] = adj[u2].get(u1, 0.0) + new_w
        alive[v] = False
        alive_count -= 1

    for _ in range(max_rounds):
        if alive_count <= min_vertices:
            break
        rounds += 1
        # --- rake: eliminate degree-1 vertices (resolve adjacent pairs). ---
        deg1 = [v for v in range(n) if alive[v] and degree(v) == 1]
        charge_map(cost, alive_count)
        deg1_set = set(deg1)
        for v in deg1:
            if alive_count <= min_vertices:
                break
            if not alive[v] or degree(v) != 1:
                continue
            u = next(iter(adj[v]))
            # If both endpoints of an isolated edge are degree-1, keep the
            # smaller id as the survivor.
            if u in deg1_set and u < v and degree(u) == 1:
                continue
            eliminate_degree1(v)
        # --- compress: eliminate an independent set of degree-2 vertices. ---
        deg2 = [v for v in range(n) if alive[v] and degree(v) == 2]
        charge_map(cost, alive_count)
        if deg2:
            if parallel_degree2:
                coins = rng.random(len(deg2)) < (1.0 / 3.0)
                heads = {v for v, c in zip(deg2, coins) if c}
                chosen = [
                    v
                    for v, c in zip(deg2, coins)
                    if c and not any(nbr in heads for nbr in adj[v])
                ]
            else:
                chosen = deg2
            for v in chosen:
                if alive_count <= min_vertices:
                    break
                if not alive[v] or degree(v) != 2:
                    continue
                neighbors = list(adj[v].keys())
                if len(neighbors) == 1:
                    # Parallel edges merged into a single neighbor: degree-1.
                    eliminate_degree1(v)
                    continue
                eliminate_degree2(v)
        charge_filter(cost, alive_count)
        # Stop only when nothing is eliminable at all: an unlucky coin-flip
        # round (no marked independent vertices) should simply retry.
        if not deg1 and not deg2:
            break

    kept = np.flatnonzero(alive)
    # Build the reduced graph from the remaining adjacency.
    remap = np.full(n, -1, dtype=np.int64)
    remap[kept] = np.arange(kept.shape[0])
    ru, rv, rw = [], [], []
    for v in kept:
        for u, w in adj[int(v)].items():
            if u > v:
                ru.append(remap[v])
                rv.append(remap[u])
                rw.append(w)
    reduced = Graph(kept.shape[0], np.array(ru, dtype=np.int64), np.array(rv, dtype=np.int64), np.array(rw, dtype=float))
    stats = {
        "rounds": float(rounds),
        "eliminated": float(len(operations)),
        "kept": float(kept.shape[0]),
    }
    return EliminationResult(
        reduced_graph=reduced,
        kept_vertices=kept,
        operations=operations,
        rounds=rounds,
        stats=stats,
    )
