"""Parallel greedy elimination (partial Cholesky on degree <= 2 vertices).

``GreedyElimination`` (Lemma 6.5) removes degree-1 vertices ("rake") and an
independent set of degree-2 vertices ("compress") round by round until no
low-degree vertices remain, mirroring parallel tree contraction.  Eliminating
those vertices corresponds to a partial Cholesky factorization whose Schur
complement is again a graph Laplacian:

* degree-1 vertex ``v`` with neighbor ``u`` (weight ``w``):
  the vertex is simply removed; solving transfers as
  ``b'_u = b_u + b_v`` (forward) and ``x_v = x_u + b_v / w`` (backward);
* degree-2 vertex ``v`` with neighbors ``u1, u2`` (weights ``w1, w2``):
  it is spliced out, adding an edge ``(u1, u2)`` of weight
  ``w1 w2 / (w1 + w2)``; forward
  ``b'_{u_i} = b_{u_i} + w_i / (w1 + w2) * b_v`` and backward
  ``x_v = (w1 x_{u1} + w2 x_{u2} + b_v) / (w1 + w2)``.

The independent set of degree-2 vertices is chosen by the random marking of
Lemma 6.5 (heads with probability 1/3, keep heads with no heads neighbor),
which removes a constant fraction of the "extra" vertices per round with
high probability, giving O(log n) rounds.

Execution model
---------------
The default (``parallel_degree2=True``) implementation is fully array-form,
in the GBBS style: each rake/compress round is a handful of bulk NumPy
passes over the current edge arrays (bulk degree counts via ``bincount``,
bulk coin flips, bulk Schur-weight accumulation via ``np.add.at``), never a
per-vertex Python loop.  The elimination *schedule* is likewise stored as
per-round index/weight arrays (:class:`EliminationSchedule`), which
:mod:`repro.core.transfer` compiles into sparse solve-transfer operators.
The historical per-step ``List[Tuple]`` view survives as the deprecated
:attr:`EliminationResult.operations` property.

The sequential reference mode (``parallel_degree2=False``) keeps the
original dict-of-dicts loop; it exists as the behavioural baseline for the
randomized independent-set variant and is not on any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_map
from repro.util.rng import RngLike, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transfer import TransferOperators

#: Sentinel second neighbor for degree-1 steps in the schedule arrays.
NO_NEIGHBOR = np.int64(-1)


@dataclass
class EliminationSchedule:
    """Array-form elimination schedule: per-round index/weight arrays.

    The schedule is a flat sequence of elimination *steps* in execution
    order, split into *sub-rounds* by ``offsets`` (each rake or compress
    phase of a round is one sub-round; the sequential reference mode emits
    singleton sub-rounds).  Step ``i`` eliminates ``vertices[i]``:

    * degree-1 step: neighbor ``nbr1[i]`` with weight ``w1[i]``;
      ``nbr2[i] == NO_NEIGHBOR`` and ``w2[i] == 0``.
    * degree-2 step: neighbors ``nbr1[i], nbr2[i]`` with weights
      ``w1[i], w2[i]``.

    Within a sub-round every step's *kind* is uniform and no step's
    neighbors include a vertex eliminated in the same sub-round, so a
    sub-round is a legal unit of parallel (vectorized) application — this is
    the invariant :func:`repro.core.transfer.compile_transfers` relies on.
    """

    n: int
    vertices: np.ndarray
    nbr1: np.ndarray
    nbr2: np.ndarray
    w1: np.ndarray
    w2: np.ndarray
    offsets: np.ndarray

    @property
    def num_steps(self) -> int:
        """Total number of eliminated vertices."""
        return int(self.vertices.shape[0])

    @property
    def num_subrounds(self) -> int:
        """Number of bulk-applicable sub-rounds."""
        return int(self.offsets.shape[0]) - 1

    def subround(self, i: int) -> slice:
        """Index slice of sub-round ``i`` into the step arrays."""
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    def to_operations(self) -> List[Tuple]:
        """Materialize the legacy per-step tuple list (see ``operations``)."""
        ops: List[Tuple] = []
        for i in range(self.num_steps):
            v = int(self.vertices[i])
            if self.nbr2[i] < 0:
                ops.append(("d1", v, int(self.nbr1[i]), float(self.w1[i])))
            else:
                ops.append(
                    (
                        "d2",
                        v,
                        int(self.nbr1[i]),
                        float(self.w1[i]),
                        int(self.nbr2[i]),
                        float(self.w2[i]),
                    )
                )
        return ops

    @staticmethod
    def from_operations(n: int, operations: Sequence[Tuple]) -> "EliminationSchedule":
        """Build a schedule from a legacy op list, grouping into sub-rounds.

        Consecutive same-kind steps are greedily batched into one sub-round
        as long as no step eliminates a vertex that an earlier step of the
        batch already referenced as a neighbor (which would break the bulk
        gather-before-scatter application).  This keeps the round-trip
        ``schedule -> operations -> schedule`` semantically exact while
        still producing usefully wide sub-rounds.
        """
        e = len(operations)
        vertices = np.empty(e, dtype=np.int64)
        nbr1 = np.empty(e, dtype=np.int64)
        nbr2 = np.full(e, NO_NEIGHBOR, dtype=np.int64)
        w1 = np.empty(e, dtype=np.float64)
        w2 = np.zeros(e, dtype=np.float64)
        offsets: List[int] = [0]
        run_kind: Optional[str] = None
        run_neighbors: set = set()
        for i, op in enumerate(operations):
            kind = op[0]
            if kind == "d1":
                _, v, u, w = op
                vertices[i], nbr1[i], w1[i] = v, u, w
                nbrs = (u,)
            elif kind == "d2":
                _, v, u1, wa, u2, wb = op
                vertices[i], nbr1[i], w1[i] = v, u1, wa
                nbr2[i], w2[i] = u2, wb
                nbrs = (u1, u2)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown elimination op kind: {kind!r}")
            if run_kind != kind or int(vertices[i]) in run_neighbors:
                if i > 0:
                    offsets.append(i)
                run_kind = kind
                run_neighbors = set()
            run_neighbors.update(nbrs)
        if e == 0:
            offsets = [0]
        else:
            offsets.append(e)
        return EliminationSchedule(
            n=n, vertices=vertices, nbr1=nbr1, nbr2=nbr2, w1=w1, w2=w2,
            offsets=np.asarray(offsets, dtype=np.int64),
        )


@dataclass
class EliminationResult:
    """A partial Cholesky elimination of low-degree vertices.

    Attributes
    ----------
    reduced_graph:
        The Schur-complement graph on the kept vertices (relabeled
        ``0..len(kept)-1``).
    kept_vertices:
        Original vertex ids of the kept vertices (sorted).
    schedule:
        The elimination steps as per-round index/weight arrays
        (:class:`EliminationSchedule`).
    rounds:
        Number of rake/compress rounds executed (the parallel depth in units
        of rounds).
    """

    reduced_graph: Graph
    kept_vertices: np.ndarray
    schedule: EliminationSchedule
    rounds: int
    stats: Dict[str, float] = field(default_factory=dict)
    _operations: Optional[List[Tuple]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _transfer: Optional["TransferOperators"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def operations(self) -> List[Tuple]:
        """Elimination steps as ``("d1", v, u, w)`` / ``("d2", v, u1, w1, u2, w2)``.

        .. deprecated::
            The per-step tuple list is a legacy view kept for inspection and
            round-trip tests; it is materialized lazily from
            :attr:`schedule` and must not be replayed on hot paths — use the
            compiled :attr:`transfer` operators instead.

        Within a ``d2`` tuple the two ``(neighbor, weight)`` pairs may
        appear in either order (the vectorized rounds emit edge-array
        order, not the historical dict-insertion order); the pairs are
        mathematically symmetric and every transfer quantity is unaffected.
        """
        if self._operations is None:
            self._operations = self.schedule.to_operations()
        return self._operations

    @property
    def num_eliminated(self) -> int:
        """Number of vertices eliminated."""
        return self.schedule.num_steps

    @property
    def transfer(self) -> "TransferOperators":
        """Compiled solve-transfer operators for this elimination (cached).

        The fill is a benign race under concurrent access: compilation is
        deterministic, so two threads that both see ``None`` produce
        interchangeable immutable objects and the second assignment wins
        harmlessly.  Chain levels built by ``build_chain`` precompile their
        transfers at factorize time and never hit this path from a solve.
        """
        if self._transfer is None:
            from repro.core.transfer import compile_transfers

            self._transfer = compile_transfers(self)
        return self._transfer

    # ------------------------------------------------------------------ #
    # solve transfer
    # ------------------------------------------------------------------ #
    def forward_rhs(self, b: np.ndarray) -> np.ndarray:
        """Transfer right-hand side(s) to the reduced system.

        Accepts a vector ``(n,)`` or a batch ``(n, k)``.  Returns the
        reduced right-hand side(s) indexed by the reduced graph's vertex
        numbering (i.e. position ``i`` corresponds to
        ``kept_vertices[i]``).  Delegates to the compiled transfer
        operators; see :meth:`TransferOperators.forward` for the
        carry-reusing variant used on the solver hot path.
        """
        return self.transfer.forward_rhs(b)

    def backward_solution(self, b: np.ndarray, x_reduced: np.ndarray) -> np.ndarray:
        """Extend reduced solution(s) back to all original vertices.

        Shapes mirror :meth:`forward_rhs`: ``b`` may be ``(n,)`` or
        ``(n, k)`` with ``x_reduced`` shaped to match.
        """
        return self.transfer.backward_solution(b, x_reduced)


# --------------------------------------------------------------------------- #
# vectorized (parallel) implementation
# --------------------------------------------------------------------------- #
def _coalesce(
    n: int, eu: np.ndarray, ev: np.ndarray, ew: np.ndarray, ets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge parallel edges: weights summed in array order, timestamps min'd.

    Summation order matters for bit-for-bit reproducibility of the Schur
    weights (the sequential reference accumulates onto the existing edge
    weight in elimination order, which array order mirrors here).
    """
    if eu.size == 0:
        return eu, ev, ew, ets
    lo = np.minimum(eu, ev)
    hi = np.maximum(eu, ev)
    # Pair keys must be int64 regardless of the endpoint dtype: lo * n + hi
    # overflows int32 for n beyond ~46k (int32 array * int64 scalar promotes
    # to int64 under NEP 50, so the multiply below is always safe).
    keys = lo * np.int64(n) + hi
    uniq, inverse = np.unique(keys, return_inverse=True)
    w = np.zeros(uniq.shape[0], dtype=ew.dtype)
    np.add.at(w, inverse, ew)
    ts = np.full(uniq.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(ts, inverse, ets)
    return (uniq // n).astype(eu.dtype), (uniq % n).astype(eu.dtype), w, ts


class _ScheduleBuilder:
    """Accumulates per-sub-round step arrays into one flat schedule."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._v: List[np.ndarray] = []
        self._u1: List[np.ndarray] = []
        self._u2: List[np.ndarray] = []
        self._w1: List[np.ndarray] = []
        self._w2: List[np.ndarray] = []
        self._offsets: List[int] = [0]
        self.num_steps = 0

    def add_subround(
        self,
        v: np.ndarray,
        u1: np.ndarray,
        w1: np.ndarray,
        u2: Optional[np.ndarray] = None,
        w2: Optional[np.ndarray] = None,
    ) -> None:
        size = int(v.shape[0])
        if size == 0:
            return
        self._v.append(v.astype(np.int64, copy=False))
        self._u1.append(u1.astype(np.int64, copy=False))
        self._w1.append(w1.astype(np.float64, copy=False))
        if u2 is None:
            self._u2.append(np.full(size, NO_NEIGHBOR, dtype=np.int64))
            self._w2.append(np.zeros(size, dtype=np.float64))
        else:
            self._u2.append(u2.astype(np.int64, copy=False))
            self._w2.append(np.asarray(w2, dtype=np.float64))
        self.num_steps += size
        self._offsets.append(self.num_steps)

    def build(self) -> EliminationSchedule:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        return EliminationSchedule(
            n=self.n,
            vertices=np.concatenate(self._v) if self._v else empty_i,
            nbr1=np.concatenate(self._u1) if self._u1 else empty_i,
            nbr2=np.concatenate(self._u2) if self._u2 else empty_i,
            w1=np.concatenate(self._w1) if self._w1 else empty_f,
            w2=np.concatenate(self._w2) if self._w2 else empty_f,
            offsets=np.asarray(self._offsets, dtype=np.int64),
        )


def _eliminate_parallel(
    graph: Graph,
    rng: np.random.Generator,
    cost: CostModel,
    max_rounds: int,
    min_vertices: int,
) -> Tuple[EliminationSchedule, np.ndarray, Graph, int, float]:
    """Array-form rake/compress rounds over shrinking edge arrays.

    Each round is a constant number of bulk passes over the *currently
    alive* edges — no per-vertex Python loops and no O(n) rescan of dead
    vertices beyond C-level ``bincount`` counters.  Returns the schedule,
    kept vertices, reduced graph, round count, and the number of edge scans
    performed (a diagnostic for the O(m) total-work claim).
    """
    n = graph.n
    m0 = graph.num_edges
    charge_map(cost, m0)
    # Edge state: coalesced undirected edges plus a creation timestamp used
    # to emit the reduced graph in the same (insertion-ordered) edge order
    # as the sequential dict-of-dicts reference implementation.
    eu, ev, ew, ets = _coalesce(
        n, graph.u, graph.v, graph.w, np.arange(m0, dtype=np.int64)
    )
    alive_count = n
    dead = np.zeros(n, dtype=bool)
    builder = _ScheduleBuilder(n)
    rounds = 0
    edge_scans = 0.0

    for _ in range(max_rounds):
        if alive_count <= min_vertices:
            break
        rounds += 1
        edge_scans += float(eu.size)

        # --- rake: eliminate degree-1 vertices (resolve adjacent pairs). ---
        deg = np.bincount(eu, minlength=n) + np.bincount(ev, minlength=n)
        deg1_mask = deg == 1
        num_deg1 = int(np.count_nonzero(deg1_mask))
        if num_deg1:
            sel_u = deg1_mask[eu]
            sel_v = deg1_mask[ev]
            cand_v = np.concatenate([eu[sel_u], ev[sel_v]])
            cand_u = np.concatenate([ev[sel_u], eu[sel_v]])
            cand_w = np.concatenate([ew[sel_u], ew[sel_v]])
            # An isolated edge has two degree-1 endpoints; the smaller id is
            # eliminated into the larger, which survives the round.
            ok = ~(deg1_mask[cand_u] & (cand_u < cand_v))
            cand_v, cand_u, cand_w = cand_v[ok], cand_u[ok], cand_w[ok]
            order = np.argsort(cand_v)
            cand_v, cand_u, cand_w = cand_v[order], cand_u[order], cand_w[order]
            allowance = alive_count - min_vertices
            if cand_v.shape[0] > allowance:
                cand_v = cand_v[:allowance]
                cand_u = cand_u[:allowance]
                cand_w = cand_w[:allowance]
            if cand_v.size:
                builder.add_subround(cand_v, cand_u, cand_w)
                dead[cand_v] = True
                alive_count -= int(cand_v.shape[0])
                keep = ~(dead[eu] | dead[ev])
                eu, ev, ew, ets = eu[keep], ev[keep], ew[keep], ets[keep]
        charge_map(cost, alive_count)

        # --- compress: eliminate an independent set of degree-2 vertices. ---
        deg = np.bincount(eu, minlength=n) + np.bincount(ev, minlength=n)
        deg2_mask = deg == 2
        deg2 = np.flatnonzero(deg2_mask)
        charge_map(cost, alive_count)
        if deg2.size:
            coins = rng.random(deg2.shape[0]) < (1.0 / 3.0)
            heads = np.zeros(n, dtype=bool)
            heads[deg2[coins]] = True
            # Gather both incident edges of every degree-2 vertex: its two
            # entries in the (src, dst) direction-doubled view.  Filtering
            # each direction *before* concatenating keeps the doubled
            # scratch proportional to the degree-2 incidences rather than
            # 2m; the concatenation order matches the unfiltered
            # ``concat(eu, ev)[deg2_mask[...]]`` exactly.
            sel_u = deg2_mask[eu]
            sel_v = deg2_mask[ev]
            s2 = np.concatenate([eu[sel_u], ev[sel_v]])
            d2 = np.concatenate([ev[sel_u], eu[sel_v]])
            w2 = np.concatenate([ew[sel_u], ew[sel_v]])
            order = np.argsort(s2, kind="stable")
            s2 = s2[order]
            d2 = d2[order]
            w2 = w2[order]
            vs = s2[0::2]  # == deg2 (ascending), each exactly twice
            u1, u2 = d2[0::2], d2[1::2]
            wa, wb = w2[0::2], w2[1::2]
            chosen = coins & ~(heads[u1] | heads[u2])
            vs_c, u1_c, u2_c = vs[chosen], u1[chosen], u2[chosen]
            wa_c, wb_c = wa[chosen], wb[chosen]
            allowance = alive_count - min_vertices
            if vs_c.shape[0] > allowance:
                vs_c, u1_c, u2_c = vs_c[:allowance], u1_c[:allowance], u2_c[:allowance]
                wa_c, wb_c = wa_c[:allowance], wb_c[:allowance]
            if vs_c.size:
                # Schur edges stamped by global step index so that reduced
                # edge order matches dict insertion chronology.
                new_ts = m0 + builder.num_steps + np.arange(
                    vs_c.shape[0], dtype=np.int64
                )
                builder.add_subround(vs_c, u1_c, wa_c, u2_c, wb_c)
                dead[vs_c] = True
                alive_count -= int(vs_c.shape[0])
                keep = ~(dead[eu] | dead[ev])
                new_w = wa_c * wb_c / (wa_c + wb_c)
                eu, ev, ew, ets = _coalesce(
                    n,
                    np.concatenate([eu[keep], u1_c]),
                    np.concatenate([ev[keep], u2_c]),
                    np.concatenate([ew[keep], new_w]),
                    np.concatenate([ets[keep], new_ts]),
                )
        charge_filter(cost, alive_count)
        # Stop only when nothing is eliminable at all: an unlucky coin-flip
        # round (no marked independent vertices) should simply retry.
        if num_deg1 == 0 and deg2.size == 0:
            break

    kept = np.flatnonzero(~dead)
    idt = graph.u.dtype
    remap = np.full(n, -1, dtype=idt)
    remap[kept] = np.arange(kept.shape[0], dtype=idt)
    if eu.size:
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        # Primary key: smaller endpoint ascending; secondary: creation time.
        # This reproduces the "for v in kept: for u in adj[v]" emission order
        # of the dict-based reference exactly.
        order = np.lexsort((ets, lo))
        ru, rv, rw = remap[lo[order]], remap[hi[order]], ew[order]
    else:
        ru = np.zeros(0, dtype=idt)
        rv = np.zeros(0, dtype=idt)
        rw = np.zeros(0, dtype=graph.w.dtype)
    reduced = Graph(kept.shape[0], ru, rv, rw, validate=False)
    return builder.build(), kept, reduced, rounds, edge_scans


# --------------------------------------------------------------------------- #
# sequential reference implementation (parallel_degree2=False)
# --------------------------------------------------------------------------- #
def _adjacency_dicts(graph: Graph) -> List[Dict[int, float]]:
    """Dict-of-dicts adjacency with parallel edges coalesced."""
    adj: List[Dict[int, float]] = [dict() for _ in range(graph.n)]
    for u, v, w in zip(graph.u, graph.v, graph.w):
        u = int(u)
        v = int(v)
        w = float(w)
        adj[u][v] = adj[u].get(v, 0.0) + w
        adj[v][u] = adj[v].get(u, 0.0) + w
    return adj


def _eliminate_sequential(
    graph: Graph,
    cost: CostModel,
    max_rounds: int,
    min_vertices: int,
) -> Tuple[EliminationSchedule, np.ndarray, Graph, int]:
    """The historical one-vertex-at-a-time reference (greedy degree-2)."""
    n = graph.n
    adj = _adjacency_dicts(graph)
    charge_map(cost, graph.num_edges)
    alive = np.ones(n, dtype=bool)
    operations: List[Tuple] = []
    alive_count = n
    rounds = 0

    def degree(v: int) -> int:
        return len(adj[v])

    def eliminate_degree1(v: int) -> None:
        nonlocal alive_count
        (u, w), = adj[v].items()
        operations.append(("d1", v, u, w))
        del adj[u][v]
        adj[v].clear()
        alive[v] = False
        alive_count -= 1

    def eliminate_degree2(v: int) -> None:
        nonlocal alive_count
        (u1, w1), (u2, w2) = adj[v].items()
        operations.append(("d2", v, u1, w1, u2, w2))
        del adj[u1][v]
        del adj[u2][v]
        adj[v].clear()
        new_w = w1 * w2 / (w1 + w2)
        adj[u1][u2] = adj[u1].get(u2, 0.0) + new_w
        adj[u2][u1] = adj[u2].get(u1, 0.0) + new_w
        alive[v] = False
        alive_count -= 1

    for _ in range(max_rounds):
        if alive_count <= min_vertices:
            break
        rounds += 1
        deg1 = [v for v in range(n) if alive[v] and degree(v) == 1]
        charge_map(cost, alive_count)
        deg1_set = set(deg1)
        for v in deg1:
            if alive_count <= min_vertices:
                break
            if not alive[v] or degree(v) != 1:
                continue
            u = next(iter(adj[v]))
            if u in deg1_set and u < v and degree(u) == 1:
                continue
            eliminate_degree1(v)
        deg2 = [v for v in range(n) if alive[v] and degree(v) == 2]
        charge_map(cost, alive_count)
        for v in deg2:
            if alive_count <= min_vertices:
                break
            if not alive[v] or degree(v) != 2:
                continue
            neighbors = list(adj[v].keys())
            if len(neighbors) == 1:
                # Parallel edges merged into a single neighbor: degree-1.
                eliminate_degree1(v)
                continue
            eliminate_degree2(v)
        charge_filter(cost, alive_count)
        if not deg1 and not deg2:
            break

    kept = np.flatnonzero(alive)
    remap = np.full(n, -1, dtype=np.int64)
    remap[kept] = np.arange(kept.shape[0])
    ru, rv, rw = [], [], []
    for v in kept:
        for u, w in adj[int(v)].items():
            if u > v:
                ru.append(remap[v])
                rv.append(remap[u])
                rw.append(w)
    reduced = Graph(
        kept.shape[0],
        np.array(ru, dtype=np.int64),
        np.array(rv, dtype=np.int64),
        np.array(rw, dtype=float),
    )
    return EliminationSchedule.from_operations(n, operations), kept, reduced, rounds


def greedy_elimination(
    graph: Graph,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
    max_rounds: int = 200,
    min_vertices: int = 1,
    parallel_degree2: bool = True,
) -> EliminationResult:
    """Lemma 6.5: eliminate degree-1 and (an independent set of) degree-2 vertices.

    Parameters
    ----------
    graph:
        The Laplacian graph to reduce (conductance weights).
    min_vertices:
        Never eliminate below this many vertices (at least one vertex per
        component must remain for the Laplacian solve transfer to be
        well-posed; the chain keeps the bottom graphs non-trivial anyway).
    parallel_degree2:
        Use the randomized independent-set marking of the parallel algorithm
        (True, vectorized over CSR-style edge arrays) or eliminate degree-2
        vertices greedily one at a time (False, the sequential reference
        behaviour).

    Returns
    -------
    EliminationResult
    """
    cost = cost or null_cost()
    rng = as_rng(seed)

    if parallel_degree2:
        schedule, kept, reduced, rounds, edge_scans = _eliminate_parallel(
            graph, rng, cost, max_rounds, min_vertices
        )
    else:
        schedule, kept, reduced, rounds = _eliminate_sequential(
            graph, cost, max_rounds, min_vertices
        )
        edge_scans = float(graph.num_edges) * rounds

    stats = {
        "rounds": float(rounds),
        "eliminated": float(schedule.num_steps),
        "kept": float(kept.shape[0]),
        "subrounds": float(schedule.num_subrounds),
        "edge_scans": edge_scans,
    }
    return EliminationResult(
        reduced_graph=reduced,
        kept_vertices=kept,
        schedule=schedule,
        rounds=rounds,
        stats=stats,
    )
