"""Process-level cache of factorized operators (chain reuse across calls).

Building a preconditioner chain is the expensive phase of Theorem 1.1; many
workloads (the electrical-flow max-flow loop, repeated ``repro.solve`` calls
against a fixed system) ask for the *same* matrix under the *same*
configuration again and again.  This module memoizes
:func:`repro.core.operator.factorize` results in an LRU table keyed by

``(graph fingerprint, ChainConfig, SolverConfig, integer seed)``

A cached entry is only sound when a fresh factorization would be bit-for-bit
identical, so non-integer seeds (``None`` or generator objects, whose draws
differ between calls) bypass the cache entirely — :func:`make_key` returns
``None`` for them.

A cached operator carries the *compiled* chain: every
:class:`~repro.core.chain.ChainLevel` holds its precompiled
:class:`~repro.core.transfer.TransferOperators` (built once at factorize
time), so a cache hit skips both the chain construction and the transfer
compilation.  The compiled transfer arrays are immutable and safely shared
between callers.

The cache is intentionally tiny and synchronous: a lock-guarded
``OrderedDict`` with a bounded capacity.  Use :func:`clear_chain_cache`
between benchmark phases and :func:`chain_cache_stats` to observe hit rates.

Concurrency: both the *table* (lock-guarded here) and the cached
:class:`~repro.core.operator.LaplacianOperator` objects are safe to share
across threads.  ``solve`` is re-entrant — every call charges a private
:class:`~repro.core.operator.SolveContext`, and the operator's lazy
initializers (Chebyshev bounds, the dense/Jacobi baselines) are serialized
by a setup lock — so a hit can hand the same operator to any number of
concurrent callers and each solve reports the same ``x``/``work``/``depth``
bit for bit as a serial run.  A multi-threaded service therefore wants
exactly this cache: factorize once (``cache=True``, integer seed) and serve
every request thread from the shared operator.

The only table-level nondeterminism under concurrency is benign: two
threads that *miss* on the same key both build the (identical) operator and
the second ``store`` wins, so hit/miss counters depend on arrival order —
warm the cache first when exact accounting matters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.config import ChainConfig, SolverConfig
from repro.graph.graph import Graph

#: Default capacity of the process-level cache (LRU eviction beyond this).
DEFAULT_CAPACITY = 32

_lock = threading.Lock()
_entries: "OrderedDict[Hashable, object]" = OrderedDict()
_capacity = DEFAULT_CAPACITY
_hits = 0
_misses = 0


@dataclass(frozen=True)
class ChainCacheStats:
    """Counters describing the process-level chain cache."""

    hits: int
    misses: int
    size: int
    capacity: int


def fingerprint_matrix(matrix) -> Optional[str]:
    """Content fingerprint of a solver input (graph or SDD matrix).

    Graphs hash their vertex count and edge arrays; sparse/dense matrices
    hash their CSR structure.  Returns ``None`` for inputs that cannot be
    fingerprinted.
    """
    if isinstance(matrix, Graph):
        return matrix.fingerprint()
    try:
        csr = sp.csr_matrix(matrix)
    except Exception:
        return None
    import hashlib

    h = hashlib.sha256()
    h.update(np.int64(csr.shape[0]).tobytes())
    h.update(np.int64(csr.shape[1]).tobytes())
    h.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.data, dtype=np.float64).tobytes())
    return "m:" + h.hexdigest()


def make_key(
    matrix,
    chain_config: ChainConfig,
    solver_config: SolverConfig,
    seed,
) -> Optional[Tuple]:
    """Cache key for a factorization request, or ``None`` if uncacheable.

    Only plain integer seeds are cacheable (see the module docstring);
    booleans are excluded on principle even though they are ``int``.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        return None
    fp = fingerprint_matrix(matrix)
    if fp is None:
        return None
    return (fp, chain_config.cache_key(), solver_config.cache_key(), int(seed))


def lookup(key: Hashable):
    """Return the cached operator for ``key`` (marking it most-recent), or ``None``."""
    global _hits, _misses
    with _lock:
        entry = _entries.get(key)
        if entry is None:
            _misses += 1
            return None
        _entries.move_to_end(key)
        _hits += 1
        return entry


def store(key: Hashable, operator) -> None:
    """Insert ``operator`` under ``key``, evicting least-recently-used entries."""
    with _lock:
        _entries[key] = operator
        _entries.move_to_end(key)
        while len(_entries) > _capacity:
            _entries.popitem(last=False)


def clear_chain_cache() -> None:
    """Drop every cached operator and reset the hit/miss counters."""
    global _hits, _misses
    with _lock:
        _entries.clear()
        _hits = 0
        _misses = 0


def set_chain_cache_capacity(capacity: int) -> None:
    """Resize the cache (evicting LRU entries if shrinking)."""
    global _capacity
    if capacity < 1:
        raise ValueError("cache capacity must be >= 1")
    with _lock:
        _capacity = int(capacity)
        while len(_entries) > _capacity:
            _entries.popitem(last=False)


def chain_cache_stats() -> ChainCacheStats:
    """Current hit/miss/size counters."""
    with _lock:
        return ChainCacheStats(hits=_hits, misses=_misses, size=len(_entries), capacity=_capacity)
