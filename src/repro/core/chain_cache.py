"""Process-level cache of factorized operators (chain reuse across calls).

Building a preconditioner chain is the expensive phase of Theorem 1.1; many
workloads (the electrical-flow max-flow loop, repeated ``repro.solve`` calls
against a fixed system, and the micro-batching :mod:`repro.serving` service)
ask for the *same* matrix under the *same* configuration again and again.
This module memoizes :func:`repro.core.operator.factorize` results in a
bounded table keyed by

``(graph fingerprint, ChainConfig, SolverConfig, integer seed)``

A cached entry is only sound when a fresh factorization would be bit-for-bit
identical, so non-integer seeds (``None`` or generator objects, whose draws
differ between calls) bypass the cache entirely — :func:`make_key` returns
``None`` for them.  Inputs that cannot be content-hashed make
:func:`fingerprint_matrix` return ``None``, which likewise bypasses the
cache; callers must treat a ``None`` fingerprint/key as "solve uncached",
never as an error (:mod:`repro.serving` degrades such requests to
uncoalesced solo solves the same way).

A cached operator carries the *compiled* chain: every
:class:`~repro.core.chain.ChainLevel` holds its precompiled
:class:`~repro.core.transfer.TransferOperators` (built once at factorize
time), so a cache hit skips both the chain construction and the transfer
compilation.  The compiled transfer arrays are immutable and safely shared
between callers.

Eviction policy
---------------
Three independent bounds, all enforced at ``store`` time and observable per
reason in :func:`chain_cache_stats`:

* **Entry capacity** (:func:`set_chain_cache_capacity`, default 32): classic
  LRU — the least-recently-*used* entry goes first.
* **Byte budget** (:func:`set_chain_cache_budget`, default unlimited): the
  resident set is bounded by the *estimated* memory of the cached chains
  (CSR Laplacians, compiled transfer arrays, bottom factors — see
  :func:`estimate_operator_bytes`), again evicting LRU-first.  The single
  most-recent entry is always retained even if it alone exceeds the budget,
  so an over-budget graph still gets factorize-once/solve-many behaviour.
* **TTL** (:func:`set_chain_cache_ttl`, default none): entries idle longer
  than the TTL (no lookup hit since) are expired on the next table
  operation, or eagerly via :func:`sweep_expired` (the serving layer's
  periodic sweep calls this).

:func:`evict` drops one key on demand (targeted invalidation — e.g. the
serving layer unregistering a graph).

Concurrency: both the *table* (lock-guarded here) and the cached
:class:`~repro.core.operator.LaplacianOperator` objects are safe to share
across threads.  ``solve`` is re-entrant — every call charges a private
:class:`~repro.core.operator.SolveContext`, and the operator's lazy
initializers (Chebyshev bounds, the dense/Jacobi baselines) are serialized
by a setup lock — so a hit can hand the same operator to any number of
concurrent callers and each solve reports the same ``x``/``work``/``depth``
bit for bit as a serial run.  A multi-threaded service therefore wants
exactly this cache: factorize once (``cache=True``, integer seed) and serve
every request thread from the shared operator.

The only table-level nondeterminism under concurrency is benign: two
threads that *miss* on the same key both build the (identical) operator and
the second ``store`` wins, so hit/miss counters depend on arrival order —
warm the cache first when exact accounting matters.
"""

from __future__ import annotations

import threading
import time
import types
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.config import ChainConfig, SolverConfig
from repro.graph.graph import Graph
from repro.kernels.array_ns import ArrayNamespace

#: Default capacity of the process-level cache (LRU eviction beyond this).
DEFAULT_CAPACITY = 32

#: Clock used for TTL accounting (monotonic; module-level so tests can
#: substitute a fake clock without sleeping).
_now = time.monotonic

_lock = threading.Lock()
_capacity = DEFAULT_CAPACITY
_byte_budget: Optional[int] = None
_ttl_seconds: Optional[float] = None

_hits = 0
_misses = 0
_stored_bytes = 0
_cumulative_stored_bytes = 0
_lookup_count = 0
_lookup_seconds = 0.0
_evictions: Dict[str, int] = {"capacity": 0, "bytes": 0, "ttl": 0, "explicit": 0}


class _Entry:
    """One cached operator plus its bookkeeping."""

    __slots__ = ("operator", "nbytes", "inserted_at", "last_access", "hits")

    def __init__(self, operator, nbytes: int, now: float) -> None:
        self.operator = operator
        self.nbytes = int(nbytes)
        self.inserted_at = now
        self.last_access = now
        self.hits = 0


_entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()


@dataclass(frozen=True)
class KeyStats:
    """Per-key counters exposed by :func:`chain_cache_stats`.

    ``inserted_at``/``last_access`` are clock readings from the module's
    monotonic ``_now`` (stable between snapshots when the entry is not
    touched, so two stats snapshots straddling cache-bypassing work compare
    equal); age is ``_now() - inserted_at``.
    """

    hits: int
    stored_bytes: int
    inserted_at: float
    last_access: float


@dataclass(frozen=True)
class ChainCacheStats:
    """Counters describing the process-level chain cache.

    ``hits``/``misses``/``size``/``capacity`` keep their historical meaning.
    ``evictions`` is the total across every cause; the ``evictions_*``
    fields split it by cause (LRU capacity, byte budget, TTL expiry, and
    explicit :func:`evict` calls).  ``stored_bytes`` is the estimated
    resident footprint of the live entries; ``cumulative_stored_bytes``
    counts every byte ever stored (monotone — eviction does not subtract).
    ``lookup_seconds``/``lookup_count`` accumulate table-lookup latency.
    ``per_key`` maps each live key to its :class:`KeyStats`.
    """

    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int = 0
    evictions_capacity: int = 0
    evictions_bytes: int = 0
    evictions_ttl: int = 0
    evictions_explicit: int = 0
    stored_bytes: int = 0
    cumulative_stored_bytes: int = 0
    byte_budget: Optional[int] = None
    ttl_seconds: Optional[float] = None
    lookup_count: int = 0
    lookup_seconds: float = 0.0
    per_key: Tuple[Tuple[Hashable, KeyStats], ...] = ()


# --------------------------------------------------------------------------- #
# keys and fingerprints
# --------------------------------------------------------------------------- #
def fingerprint_matrix(matrix) -> Optional[str]:
    """Content fingerprint of a solver input (graph or SDD matrix).

    Graphs hash their vertex count and edge arrays; sparse/dense matrices
    hash their CSR structure.  Returns ``None`` for inputs that cannot be
    fingerprinted — callers must fall back to uncached (and, in the serving
    layer, uncoalesced) solving rather than erroring.
    """
    if isinstance(matrix, Graph):
        return matrix.fingerprint()
    try:
        csr = sp.csr_matrix(matrix)
    except Exception:
        return None
    import hashlib

    h = hashlib.sha256()
    h.update(np.int64(csr.shape[0]).tobytes())
    h.update(np.int64(csr.shape[1]).tobytes())
    h.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.data, dtype=np.float64).tobytes())
    return "m:" + h.hexdigest()


def make_key(
    matrix,
    chain_config: ChainConfig,
    solver_config: SolverConfig,
    seed,
) -> Optional[Tuple]:
    """Cache key for a factorization request, or ``None`` if uncacheable.

    Only plain integer seeds are cacheable (see the module docstring);
    booleans are excluded on principle even though they are ``int``.  A
    ``None`` fingerprint (unfingerprintable input) also yields ``None``.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        return None
    fp = fingerprint_matrix(matrix)
    if fp is None:
        return None
    return (fp, chain_config.cache_key(), solver_config.cache_key(), int(seed))


# --------------------------------------------------------------------------- #
# byte-size estimation
# --------------------------------------------------------------------------- #
def _iter_ndarrays(root) -> Iterator[np.ndarray]:
    """Yield every distinct ndarray reachable from ``root``.

    Generic object-graph walk (``__dict__``/``__slots__``, containers,
    scipy sparse buffer attributes) with an identity ``seen`` set; leaves
    that are not arrays or containers are ignored, so locks, RNGs, and
    callables are safely skipped.  Non-NumPy array objects (device arrays
    of a non-host array backend) are counted through their ``nbytes`` duck
    type; array-namespace and module objects are skipped outright so the
    walk never descends into an entire third-party package.
    """
    seen = set()
    stack = [root]
    sparse_buffers = ("data", "indices", "indptr", "row", "col", "offsets")
    while stack:
        obj = stack.pop()
        if obj is None or isinstance(obj, (str, bytes, bool, int, float, complex, type)):
            continue
        if isinstance(obj, types.ModuleType) or isinstance(obj, ArrayNamespace):
            # An operator of a non-host backend holds its namespace (which
            # holds ``xp`` — potentially the whole numpy/cupy module graph);
            # namespaces own no chain data, so prune the walk here.
            continue
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(obj, np.ndarray):
            yield obj
            continue
        if isinstance(obj, np.generic):
            continue
        if sp.issparse(obj):
            for name in sparse_buffers:
                buf = getattr(obj, name, None)
                if isinstance(buf, np.ndarray) and id(buf) not in seen:
                    seen.add(id(buf))
                    yield buf
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
            continue
        # Duck-typed array leaf: device arrays (fakedevice wrappers, cupy
        # ndarrays, Array-API arrays) expose ``nbytes``/``shape`` without
        # being np.ndarray.  Yield without recursing — descending into a
        # wrapper would double-count its backing host buffer.
        nbytes = getattr(obj, "nbytes", None)
        if isinstance(nbytes, (int, np.integer)) and hasattr(obj, "shape"):
            yield obj
            continue
        if callable(obj) and not hasattr(obj, "__dict__"):
            continue
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            stack.extend(attrs.values())
        for cls in type(obj).__mro__:
            for slot in getattr(cls, "__slots__", ()):
                try:
                    stack.append(getattr(obj, slot))
                except AttributeError:
                    pass


def estimate_operator_bytes(operator) -> int:
    """Estimated resident bytes of a factorized operator's array state.

    Sums the ``nbytes`` of every distinct ndarray reachable from the
    operator — the chain's CSR Laplacians, the compiled transfer layers,
    the bottom-level factor, the graph edge arrays, and the null-space
    projectors.  An estimate (Python object overhead is ignored), but it
    tracks the quantities that actually dominate: the per-level sparse
    arrays.
    """
    return int(sum(a.nbytes for a in _iter_ndarrays(operator)))


# --------------------------------------------------------------------------- #
# table operations
# --------------------------------------------------------------------------- #
def _evict_locked(key: Hashable, reason: str) -> None:
    global _stored_bytes
    entry = _entries.pop(key)
    _stored_bytes -= entry.nbytes
    _evictions[reason] += 1


def _expire_locked(now: float) -> int:
    """Drop every entry idle longer than the TTL; returns the count."""
    if _ttl_seconds is None:
        return 0
    stale = [k for k, e in _entries.items() if now - e.last_access > _ttl_seconds]
    for key in stale:
        _evict_locked(key, "ttl")
    return len(stale)


def _enforce_bounds_locked() -> None:
    while len(_entries) > _capacity:
        _evict_locked(next(iter(_entries)), "capacity")
    if _byte_budget is not None:
        # Keep at least the most-recent entry so an over-budget chain still
        # amortizes its factorization (documented in the module docstring).
        while _stored_bytes > _byte_budget and len(_entries) > 1:
            _evict_locked(next(iter(_entries)), "bytes")


def lookup(key: Hashable):
    """Return the cached operator for ``key`` (marking it most-recent), or ``None``."""
    global _hits, _misses, _lookup_count, _lookup_seconds
    t0 = time.perf_counter()
    now = _now()
    with _lock:
        _expire_locked(now)
        entry = _entries.get(key)
        if entry is None:
            _misses += 1
            result = None
        else:
            _entries.move_to_end(key)
            entry.last_access = now
            entry.hits += 1
            _hits += 1
            result = entry.operator
        _lookup_count += 1
        _lookup_seconds += time.perf_counter() - t0
    return result


def store(key: Hashable, operator, *, nbytes: Optional[int] = None) -> None:
    """Insert ``operator`` under ``key``, evicting expired/LRU/over-budget entries.

    ``nbytes`` overrides the :func:`estimate_operator_bytes` estimate (used
    by tests; real callers let the estimate stand).
    """
    global _stored_bytes, _cumulative_stored_bytes
    if nbytes is None:
        nbytes = estimate_operator_bytes(operator)
    now = _now()
    with _lock:
        _expire_locked(now)
        old = _entries.pop(key, None)
        if old is not None:
            _stored_bytes -= old.nbytes
        entry = _Entry(operator, nbytes, now)
        _entries[key] = entry
        _stored_bytes += entry.nbytes
        _cumulative_stored_bytes += entry.nbytes
        _enforce_bounds_locked()


def evict(key: Hashable) -> bool:
    """Drop ``key`` from the cache (targeted invalidation).

    Returns ``True`` if an entry was removed.  Used by the serving layer to
    unregister a graph and by tests to force cold paths.
    """
    with _lock:
        if key not in _entries:
            return False
        _evict_locked(key, "explicit")
        return True


def invalidate_fingerprint(fingerprint: str) -> int:
    """Drop every cached operator keyed under ``fingerprint``.

    A graph mutation makes every cached factorization of the *old* graph
    stale from the mutating caller's point of view: the serving layer (and
    :func:`repro.core.update.update_operator` when asked) calls this after
    an update so the superseded fingerprint cannot keep serving hits across
    every (config, seed) combination it was stored under.  Returns the
    number of entries evicted (counted as explicit evictions).
    """
    with _lock:
        stale = [
            k for k in _entries if isinstance(k, tuple) and k and k[0] == fingerprint
        ]
        for key in stale:
            _evict_locked(key, "explicit")
        return len(stale)


def sweep_expired() -> int:
    """Eagerly drop every TTL-expired entry; returns the number evicted.

    The serving layer's periodic cache sweep calls this so idle chains are
    reclaimed even when no traffic touches the table.
    """
    with _lock:
        return _expire_locked(_now())


def clear_chain_cache() -> None:
    """Drop every cached operator and reset all counters."""
    global _hits, _misses, _stored_bytes, _cumulative_stored_bytes
    global _lookup_count, _lookup_seconds
    with _lock:
        _entries.clear()
        _hits = 0
        _misses = 0
        _stored_bytes = 0
        _cumulative_stored_bytes = 0
        _lookup_count = 0
        _lookup_seconds = 0.0
        for reason in _evictions:
            _evictions[reason] = 0


def set_chain_cache_capacity(capacity: int) -> None:
    """Resize the cache (evicting LRU entries if shrinking)."""
    global _capacity
    if capacity < 1:
        raise ValueError("cache capacity must be >= 1")
    with _lock:
        _capacity = int(capacity)
        _enforce_bounds_locked()


def set_chain_cache_budget(max_bytes: Optional[int]) -> None:
    """Bound the resident set by estimated bytes (``None`` = unlimited).

    Enforced immediately and at every subsequent ``store``; the single
    most-recent entry is retained even if it alone exceeds the budget.
    """
    global _byte_budget
    if max_bytes is not None and int(max_bytes) < 0:
        raise ValueError("byte budget must be >= 0 or None")
    with _lock:
        _byte_budget = None if max_bytes is None else int(max_bytes)
        _enforce_bounds_locked()


def set_chain_cache_ttl(seconds: Optional[float]) -> None:
    """Expire entries idle longer than ``seconds`` (``None`` disables TTL)."""
    global _ttl_seconds
    if seconds is not None and not float(seconds) > 0:
        raise ValueError("ttl must be positive or None")
    with _lock:
        _ttl_seconds = None if seconds is None else float(seconds)
        _expire_locked(_now())


def chain_cache_stats() -> ChainCacheStats:
    """Current hit/miss/size/eviction/byte/latency counters."""
    now = _now()
    with _lock:
        _expire_locked(now)
        per_key = tuple(
            (
                key,
                KeyStats(
                    hits=entry.hits,
                    stored_bytes=entry.nbytes,
                    inserted_at=entry.inserted_at,
                    last_access=entry.last_access,
                ),
            )
            for key, entry in _entries.items()
        )
        return ChainCacheStats(
            hits=_hits,
            misses=_misses,
            size=len(_entries),
            capacity=_capacity,
            evictions=sum(_evictions.values()),
            evictions_capacity=_evictions["capacity"],
            evictions_bytes=_evictions["bytes"],
            evictions_ttl=_evictions["ttl"],
            evictions_explicit=_evictions["explicit"],
            stored_bytes=_stored_bytes,
            cumulative_stored_bytes=_cumulative_stored_bytes,
            byte_budget=_byte_budget,
            ttl_seconds=_ttl_seconds,
            lookup_count=_lookup_count,
            lookup_seconds=_lookup_seconds,
            per_key=per_key,
        )
