"""The paper's primary contribution.

* :mod:`~repro.core.ball_growing` — delayed multi-source parallel BFS
  ("parallel ball growing" of Section 2, with the jitter mechanism of
  Section 4).
* :mod:`~repro.core.decomposition` — the parallel low-diameter decomposition
  (Algorithm 4.1 ``splitGraph`` and Algorithm 4.2 ``Partition``,
  Theorem 4.1).
* :mod:`~repro.core.akpw` — parallel AKPW low-stretch spanning trees
  (Algorithm 5.1, Theorem 5.1).
* :mod:`~repro.core.sparse_akpw` — low-stretch ultra-sparse subgraphs
  (SparseAKPW, Lemmas 5.5–5.8, Theorem 5.9).
* :mod:`~repro.core.stretch` — exact stretch measurement utilities.
* :mod:`~repro.core.sparsify` — incremental sparsification (Lemma 6.1/6.2).
* :mod:`~repro.core.elimination` — parallel greedy elimination
  (partial Cholesky on degree ≤ 2 vertices, Lemma 6.5), vectorized over
  CSR-style edge arrays with an array-form per-round schedule.
* :mod:`~repro.core.transfer` — compiles elimination schedules into sparse
  forward/backward solve-transfer operators (the solve hot path).
* :mod:`~repro.core.chain` — preconditioner chain construction
  (Definition 6.3, Section 6.3); precompiles per-level transfers.
* :mod:`~repro.core.chebyshev` — preconditioned Chebyshev iteration
  (Lemma 6.7).
* :mod:`~repro.core.config` — frozen ``ChainConfig`` / ``SolverConfig``.
* :mod:`~repro.core.methods` — pluggable solve-method registry
  (``pcg`` / ``chebyshev`` / ``jacobi`` / ``direct``).
* :mod:`~repro.core.operator` — the public ``factorize`` →
  ``LaplacianOperator.solve`` lifecycle (Theorem 1.1), with batched
  multi-RHS support.
* :mod:`~repro.core.chain_cache` — process-level cache of factorized
  operators keyed by graph fingerprint + config.
* :mod:`~repro.core.solver` — deprecated ``SDDSolver`` / ``sdd_solve``
  shims forwarding to the new API.
"""

from repro.core.ball_growing import grow_balls, BallGrowth
from repro.core.decomposition import (
    Decomposition,
    split_graph,
    partition,
    decomposition_radii,
    cut_edge_mask,
    cut_fraction_per_class,
)
from repro.core.akpw import akpw_spanning_tree, AKPWResult, AKPWParameters
from repro.core.sparse_akpw import (
    low_stretch_subgraph,
    sparse_akpw,
    LowStretchSubgraph,
    SparseAKPWParameters,
    well_spaced_split,
)
from repro.core.stretch import edge_stretches, total_stretch, average_stretch, tree_stretches
from repro.core.sparsify import incremental_sparsify, SparsifyResult
from repro.core.elimination import (
    greedy_elimination,
    EliminationResult,
    EliminationSchedule,
)
from repro.core.transfer import compile_transfers, TransferOperators
from repro.core.chain import build_chain, PreconditionerChain, ChainLevel
from repro.core.chebyshev import chebyshev_apply, estimate_extreme_eigenvalues
from repro.core.config import ChainConfig, SolverConfig
from repro.core.methods import available_methods, get_method, register_method, SolveMethod
from repro.core.operator import factorize, LaplacianOperator, SolveReport
from repro.core.update import UpdateReport, update_operator
from repro.core.chain_cache import (
    chain_cache_stats,
    clear_chain_cache,
    invalidate_fingerprint,
    set_chain_cache_capacity,
    ChainCacheStats,
)
from repro.core.solver import SDDSolver, sdd_solve

__all__ = [
    "grow_balls",
    "BallGrowth",
    "Decomposition",
    "split_graph",
    "partition",
    "decomposition_radii",
    "cut_edge_mask",
    "cut_fraction_per_class",
    "akpw_spanning_tree",
    "AKPWResult",
    "AKPWParameters",
    "low_stretch_subgraph",
    "sparse_akpw",
    "LowStretchSubgraph",
    "SparseAKPWParameters",
    "well_spaced_split",
    "edge_stretches",
    "total_stretch",
    "average_stretch",
    "tree_stretches",
    "incremental_sparsify",
    "SparsifyResult",
    "greedy_elimination",
    "EliminationResult",
    "EliminationSchedule",
    "compile_transfers",
    "TransferOperators",
    "build_chain",
    "PreconditionerChain",
    "ChainLevel",
    "chebyshev_apply",
    "estimate_extreme_eigenvalues",
    "ChainConfig",
    "SolverConfig",
    "available_methods",
    "get_method",
    "register_method",
    "SolveMethod",
    "factorize",
    "LaplacianOperator",
    "UpdateReport",
    "update_operator",
    "chain_cache_stats",
    "clear_chain_cache",
    "invalidate_fingerprint",
    "set_chain_cache_capacity",
    "ChainCacheStats",
    "SDDSolver",
    "sdd_solve",
    "SolveReport",
]
