"""Deprecated one-shot solver API (kept as thin shims).

The public solver interface moved to the factorize-once / solve-many
lifecycle of :mod:`repro.core.operator`:

* :func:`repro.core.operator.factorize` builds a reusable
  :class:`~repro.core.operator.LaplacianOperator` under frozen
  :class:`~repro.core.config.ChainConfig` / ``SolverConfig`` objects;
* :meth:`LaplacianOperator.solve` accepts single ``(n,)`` and batched
  ``(n, k)`` right-hand sides;
* :func:`repro.solve` is the one-call facade (with an optional process-level
  chain cache).

``SDDSolver`` and ``sdd_solve`` remain as deprecated wrappers that forward
to the new API — they construct the equivalent config objects, consume the
seed in the same order, and therefore produce *identical* ``SolveReport``
fields for a fixed seed.  They emit :class:`DeprecationWarning` and will be
removed once every caller has migrated.
"""

from __future__ import annotations

import warnings
from dataclasses import fields as dataclass_fields
from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.chain import PreconditionerChain
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import LaplacianOperator, SolveReport, factorize
from repro.graph.graph import Graph
from repro.graph.laplacian import GrembanReduction
from repro.pram.model import CostModel
from repro.util.rng import RngLike

__all__ = ["SDDSolver", "sdd_solve", "SolveReport"]

_CHAIN_FIELDS = tuple(f.name for f in dataclass_fields(ChainConfig))
_SOLVER_FIELDS = tuple(f.name for f in dataclass_fields(SolverConfig))


def _split_legacy_kwargs(kwargs: Dict) -> Tuple[ChainConfig, SolverConfig]:
    """Map the historical keyword sprawl onto the frozen config objects."""
    chain_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in _CHAIN_FIELDS}
    solver_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in _SOLVER_FIELDS}
    if kwargs:
        unknown = ", ".join(sorted(kwargs))
        raise TypeError(f"unknown solver argument(s): {unknown}")
    return ChainConfig(**chain_kwargs), SolverConfig(**solver_kwargs)


class SDDSolver:
    """Deprecated: use :func:`repro.factorize` / :func:`repro.solve`.

    Thin wrapper around a :class:`~repro.core.operator.LaplacianOperator`
    that preserves the historical constructor keywords and attributes
    (``chain``, ``cost``, ``setup_work``, ...).  Behaviour is identical to
    the new API for a fixed seed.
    """

    def __init__(
        self,
        matrix: Union[Graph, sp.spmatrix, np.ndarray],
        *,
        kappa: float = 25.0,
        lam: int = 2,
        beta: float = 6.0,
        bottom_size: Optional[int] = None,
        max_levels: int = 4,
        method: str = "pcg",
        inner_iterations: Optional[int] = None,
        use_tree_only: bool = False,
        oversample: float = 1.0,
        use_log_factor: bool = False,
        reweight: bool = False,
        seed: RngLike = None,
        cost: Optional[CostModel] = None,
    ) -> None:
        warnings.warn(
            "SDDSolver is deprecated; use repro.factorize(matrix, ChainConfig(...), "
            "SolverConfig(...)) and the returned operator's solve(), or the "
            "repro.solve() facade",
            DeprecationWarning,
            stacklevel=2,
        )
        chain_config = ChainConfig(
            kappa=kappa,
            lam=lam,
            beta=beta,
            bottom_size=bottom_size,
            max_levels=max_levels,
            oversample=oversample,
            use_log_factor=use_log_factor,
            reweight=reweight,
            use_tree_only=use_tree_only,
        )
        solver_config = SolverConfig(method=method, inner_iterations=inner_iterations)
        self._operator = factorize(matrix, chain_config, solver_config, seed=seed, cost=cost)

    # ------------------------------------------------------------------ #
    # historical attribute surface
    # ------------------------------------------------------------------ #
    @property
    def operator(self) -> LaplacianOperator:
        """The underlying factorized operator (migration escape hatch)."""
        return self._operator

    @property
    def chain(self) -> PreconditionerChain:
        return self._operator.chain

    @property
    def cost(self) -> CostModel:
        return self._operator.cost

    @property
    def graph(self) -> Graph:
        return self._operator.graph

    @property
    def laplacian(self) -> sp.csr_matrix:
        return self._operator.laplacian

    @property
    def reduction(self) -> Optional[GrembanReduction]:
        return self._operator.reduction

    @property
    def method(self) -> str:
        return self._operator.solver_config.method

    @property
    def inner_iterations(self) -> int:
        return self._operator.inner_iterations

    @property
    def kappa(self) -> float:
        return self._operator.chain_config.kappa

    @property
    def setup_work(self) -> float:
        return self._operator.setup_work

    @property
    def setup_depth(self) -> float:
        return self._operator.setup_depth

    def solve(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-8,
        max_iterations: int = 200,
    ) -> SolveReport:
        """Solve the original system to relative residual ``tol``.

        The historical API flattened ``b`` (accepting e.g. ``(n, 1)``
        columns); that behaviour is preserved here — batched right-hand
        sides are a feature of the new :meth:`LaplacianOperator.solve`.
        """
        b = np.asarray(b, dtype=float).ravel()
        return self._operator.solve(b, tol=tol, max_iterations=max_iterations)


def sdd_solve(
    matrix: Union[Graph, sp.spmatrix, np.ndarray],
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    **solver_kwargs,
) -> SolveReport:
    """Deprecated one-shot wrapper: factorize and solve in a single call.

    Use :func:`repro.solve` instead (same shape, plus chain caching and
    batched right-hand sides).
    """
    warnings.warn(
        "sdd_solve is deprecated; use repro.solve(matrix, b, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    max_iterations = solver_kwargs.pop("max_iterations", 200)
    chain_config, solver_config = _split_legacy_kwargs(solver_kwargs)
    operator = factorize(matrix, chain_config, solver_config, seed=seed, cost=cost)
    b = np.asarray(b, dtype=float).ravel()
    return operator.solve(b, tol=tol, max_iterations=max_iterations)
