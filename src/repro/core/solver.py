"""The parallel SDD solver (Theorem 1.1): public API.

``SDDSolver`` accepts either a weighted graph (interpreted as its Laplacian)
or a general SDD matrix.  SDD inputs are reduced to a Laplacian with the
Gremban reduction (Section 2); Laplacian systems are solved with the
recursive preconditioner-chain solver of Section 6:

* a chain ``<A_1, B_1, A_2, ..., A_d>`` is built by
  :func:`repro.core.chain.build_chain`;
* applying the preconditioner ``B_i`` means: partially Cholesky-eliminate
  (``GreedyElimination`` transfer), recursively solve on ``A_{i+1}``, and
  back-substitute;
* each level runs ``~ sqrt(kappa_i)`` inner iterations (preconditioned CG by
  default; preconditioned Chebyshev — the paper's choice, which needs
  eigenvalue bounds — is available via ``method="chebyshev"``);
* the bottom level is solved with a dense pseudo-inverse (Fact 6.4), which
  is why the chain terminates at ``~ m^(1/3)`` vertices.

The top level iterates until the requested tolerance, giving the
``log(1/eps)`` factor of Theorem 1.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.core.chain import PreconditionerChain, build_chain
from repro.core.chebyshev import chebyshev_apply, estimate_extreme_eigenvalues
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import (
    GrembanReduction,
    graph_to_laplacian,
    is_sdd,
    laplacian_to_graph,
    sdd_to_laplacian,
)
from repro.linalg.cg import conjugate_gradient
from repro.pram.model import CostModel
from repro.pram.primitives import charge_map
from repro.util.rng import RngLike, as_rng


@dataclass
class SolveReport:
    """Result of one :meth:`SDDSolver.solve` call.

    Attributes
    ----------
    x:
        The approximate solution of the *original* system.
    iterations:
        Outer (top-level) iterations.
    relative_residual:
        Final relative 2-norm residual of the original system.
    converged:
        Whether the tolerance was met.
    work:
        Machine-independent work charged during the solve (operation counts
        in the PRAM cost model).
    depth:
        Depth charged during the solve.
    stats:
        Additional diagnostics (per-level iteration counts etc.).
    """

    x: np.ndarray
    iterations: int
    relative_residual: float
    converged: bool
    work: float
    depth: float
    stats: Dict[str, float] = field(default_factory=dict)


class SDDSolver:
    """Near linear-work solver for SDD / Laplacian systems (Theorem 1.1).

    Parameters
    ----------
    matrix:
        A :class:`~repro.graph.graph.Graph` (solve its Laplacian), a graph
        Laplacian, or a general SDD matrix (``scipy.sparse``).
    kappa, lam, beta, bottom_size, use_tree_only:
        Chain construction parameters (see
        :func:`repro.core.chain.build_chain`).
    method:
        ``"pcg"`` (default) or ``"chebyshev"`` for the inner per-level
        iteration.
    inner_iterations:
        Iterations per level; defaults to ``ceil(sqrt(kappa))``.
    seed:
        RNG seed controlling every randomized component.
    cost:
        Optional cost model; setup and solve work/depth are charged to it.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.core.solver import SDDSolver
    >>> import numpy as np
    >>> g = generators.grid_2d(20, 20)
    >>> solver = SDDSolver(g, seed=0)
    >>> b = np.zeros(g.n); b[0], b[-1] = 1.0, -1.0
    >>> report = solver.solve(b, tol=1e-8)
    >>> report.converged
    True
    """

    def __init__(
        self,
        matrix: Union[Graph, sp.spmatrix, np.ndarray],
        *,
        kappa: float = 25.0,
        lam: int = 2,
        beta: float = 6.0,
        bottom_size: Optional[int] = None,
        max_levels: int = 4,
        method: str = "pcg",
        inner_iterations: Optional[int] = None,
        use_tree_only: bool = False,
        oversample: float = 1.0,
        use_log_factor: bool = False,
        reweight: bool = False,
        seed: RngLike = None,
        cost: Optional[CostModel] = None,
    ) -> None:
        if method not in ("pcg", "chebyshev"):
            raise ValueError("method must be 'pcg' or 'chebyshev'")
        # Default to a real (enabled) cost model so SolveReport.work / .depth
        # are always meaningful even when the caller does not care.
        self.cost = cost if cost is not None else CostModel()
        self.method = method
        self._rng = as_rng(seed)
        self.reduction: Optional[GrembanReduction] = None

        if isinstance(matrix, Graph):
            self.graph = matrix
            self._original_n = matrix.n
            self._original = None
        else:
            mat = sp.csr_matrix(matrix)
            if not is_sdd(mat):
                raise ValueError("input matrix is not symmetric diagonally dominant")
            self.reduction = sdd_to_laplacian(mat)
            self._original_n = mat.shape[0]
            self._original = mat
            self.graph = laplacian_to_graph(self.reduction.laplacian)
        self.laplacian = graph_to_laplacian(self.graph)

        # Null-space handling: per-connected-component mean removal.
        _, comp_labels = connected_components(self.graph)
        self._components = comp_labels
        self._comp_counts = np.bincount(comp_labels).astype(float)

        self.kappa = float(kappa)
        self.inner_iterations = (
            int(inner_iterations)
            if inner_iterations is not None
            else max(2, int(math.ceil(math.sqrt(self.kappa))))
        )
        self.chain: PreconditionerChain = build_chain(
            self.graph,
            kappa=kappa,
            lam=lam,
            beta=beta,
            bottom_size=bottom_size,
            max_levels=max_levels,
            oversample=oversample,
            use_log_factor=use_log_factor,
            reweight=reweight,
            use_tree_only=use_tree_only,
            seed=self._rng,
            cost=self.cost,
        )
        self.setup_work = self.cost.work
        self.setup_depth = self.cost.depth
        self._chebyshev_bounds: List[Optional[tuple]] = [None] * self.chain.depth
        if method == "chebyshev":
            self._calibrate_chebyshev()

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def _project(self, v: np.ndarray) -> np.ndarray:
        """Remove the per-component mean (Laplacian null space)."""
        v = np.asarray(v, dtype=float)
        sums = np.bincount(self._components, weights=v, minlength=self._comp_counts.shape[0])
        means = sums / self._comp_counts
        return v - means[self._components]

    @staticmethod
    def _project_for(graph_components: np.ndarray, counts: np.ndarray, v: np.ndarray) -> np.ndarray:
        sums = np.bincount(graph_components, weights=v, minlength=counts.shape[0])
        return v - (sums / counts)[graph_components]

    # ------------------------------------------------------------------ #
    # recursive preconditioner
    # ------------------------------------------------------------------ #
    def _level_projector(self, level_index: int):
        graph = self.chain.levels[level_index].graph
        key = f"_proj_{level_index}"
        cache = getattr(self, "_proj_cache", None)
        if cache is None:
            cache = {}
            self._proj_cache = cache
        if key not in cache:
            _, labels = connected_components(graph)
            counts = np.bincount(labels).astype(float)
            cache[key] = (labels, counts)
        labels, counts = cache[key]
        return lambda v: self._project_for(labels, counts, np.asarray(v, dtype=float))

    def _solve_bottom(self, b: np.ndarray) -> np.ndarray:
        pinv = self.chain.bottom_pseudoinverse
        n_d = pinv.shape[0]
        self.cost.charge(work=float(n_d) ** 2, depth=math.log2(max(n_d, 2)))
        return pinv @ np.asarray(b, dtype=float)

    def _apply_preconditioner(self, level_index: int, r: np.ndarray) -> np.ndarray:
        """Approximate ``B_i^+ r`` via elimination transfer + recursive solve."""
        level = self.chain.levels[level_index]
        assert level.elimination is not None
        elim = level.elimination
        r_reduced = elim.forward_rhs(r)
        charge_map(self.cost, len(elim.operations) + 1)
        x_reduced = self._solve_level(level_index + 1, r_reduced)
        x = elim.backward_solution(r, x_reduced)
        charge_map(self.cost, len(elim.operations) + 1)
        return x

    def _solve_level(self, level_index: int, b: np.ndarray) -> np.ndarray:
        """Approximately solve ``A_i x = b`` with the fixed per-level budget."""
        if level_index >= self.chain.depth - 1:
            return self._solve_bottom(b)
        level = self.chain.levels[level_index]
        lap = level.laplacian
        project = self._level_projector(level_index)
        b = project(b)
        preconditioner = lambda r: self._apply_preconditioner(level_index, r)
        iters = self.inner_iterations
        self.cost.charge(
            work=float(iters) * max(lap.nnz, 1),
            depth=float(iters) * math.log2(max(level.num_vertices, 2)),
        )
        if self.method == "chebyshev" and self._chebyshev_bounds[level_index] is not None:
            lo, hi = self._chebyshev_bounds[level_index]
            return chebyshev_apply(
                lambda v: lap @ v,
                preconditioner,
                b,
                lambda_min=lo,
                lambda_max=hi,
                iterations=iters,
                project=project,
            )
        result = conjugate_gradient(
            lap,
            b,
            preconditioner=preconditioner,
            fixed_iterations=iters,
            project_nullspace=False,
            x0=None,
        )
        return project(result.x)

    def _calibrate_chebyshev(self) -> None:
        """Estimate per-level spectral bounds of the preconditioned systems."""
        for i in range(self.chain.depth - 1):
            level = self.chain.levels[i]
            project = self._level_projector(i)
            lo, hi = estimate_extreme_eigenvalues(
                lambda v, lap=level.laplacian: lap @ v,
                lambda r, idx=i: self._apply_preconditioner(idx, r),
                level.num_vertices,
                seed=self._rng,
                project=project,
            )
            self._chebyshev_bounds[i] = (lo, hi)

    # ------------------------------------------------------------------ #
    # public solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-8,
        max_iterations: int = 200,
    ) -> SolveReport:
        """Solve the original system to relative residual ``tol``.

        Parameters
        ----------
        b:
            Right-hand side of the original system.  For pure Laplacian
            inputs it is projected onto the range (per-component zero sum).
        tol:
            Relative 2-norm residual target (plays the role of ``eps`` in
            Theorem 1.1; the A-norm guarantee is measured in the tests and
            benchmarks).
        max_iterations:
            Cap on outer iterations.
        """
        b = np.asarray(b, dtype=float).ravel()
        if b.shape[0] != self._original_n:
            raise ValueError(f"b must have length {self._original_n}")
        work_before = self.cost.work
        depth_before = self.cost.depth

        if self.reduction is not None and not self.reduction.trivial:
            rhs = self.reduction.expand_rhs(b)
        else:
            rhs = b
        rhs = self._project(rhs)

        preconditioner = lambda r: self._apply_preconditioner(0, r) if self.chain.depth > 1 else self._solve_bottom(r)
        result = conjugate_gradient(
            self.laplacian,
            rhs,
            tol=tol,
            max_iterations=max_iterations,
            preconditioner=preconditioner,
            project_nullspace=False,
        )
        x = self._project(result.x)
        if self.reduction is not None and not self.reduction.trivial:
            x_out = self.reduction.restrict_solution(x)
            residual = float(np.linalg.norm(b - (sp.csr_matrix(self._original_matrix()) @ x_out)))
            denom = float(np.linalg.norm(b))
            rel = residual / denom if denom else residual
        else:
            x_out = x
            rel = result.residual_norms[-1] if result.residual_norms else 0.0

        return SolveReport(
            x=x_out,
            iterations=result.iterations,
            relative_residual=float(rel),
            converged=bool(result.converged),
            work=self.cost.work - work_before,
            depth=self.cost.depth - depth_before,
            stats={
                "chain_levels": float(self.chain.depth),
                "inner_iterations": float(self.inner_iterations),
                "setup_work": self.setup_work,
                "setup_depth": self.setup_depth,
            },
        )

    def _original_matrix(self) -> sp.spmatrix:
        if self._original is not None:
            return self._original
        return self.laplacian


def sdd_solve(
    matrix: Union[Graph, sp.spmatrix, np.ndarray],
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    **solver_kwargs,
) -> SolveReport:
    """One-shot convenience wrapper: build an :class:`SDDSolver` and solve.

    See :class:`SDDSolver` for the keyword arguments.
    """
    solver = SDDSolver(matrix, seed=seed, cost=cost, **solver_kwargs)
    return solver.solve(b, tol=tol)
