"""Delayed multi-source parallel ball growing.

This is the primitive behind the low-diameter decomposition (Section 4 of the
paper): from every center ``s`` a ball of hop radius ``r - delta_s`` is grown,
where ``delta_s`` is a random "jitter", and every reached vertex is assigned
to the center minimizing ``dist(u, s) + delta_s`` (ties broken by smaller
center id).  Equivalently — and this is how both the paper describes it and
how we implement it — each center's BFS wave is *delayed* by ``delta_s``
rounds and vertices join the first wave that reaches them.

The level-synchronous implementation below runs one NumPy-vectorized frontier
expansion per time step, which is exactly the parallel ball-growing primitive
of Section 2: ``O(log n)`` depth per level and work proportional to the edges
scanned.  Because every vertex joins exactly one wave, the total work is
linear in the edges incident to the covered region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph._gather import gather_ranges
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_ball_growing_round, charge_map


@dataclass
class BallGrowth:
    """Result of one delayed multi-source ball growing pass.

    Attributes
    ----------
    owner:
        Per-vertex owning center (a vertex id), or ``-1`` if the vertex was
        not reached within the radius (or was not alive).
    arrival:
        Per-vertex arrival time ``dist(u, owner) + delta_owner`` (``-1`` if
        unreached).
    parent:
        Per-vertex BFS parent within its component (``-1`` for centers and
        unreached vertices).  The parent chain stays inside the component,
        which is what gives the decomposition its *strong* diameter
        guarantee.
    parent_edge:
        Edge index used to reach the vertex from its parent (``-1`` if none).
    rounds:
        Number of synchronous rounds executed.
    """

    owner: np.ndarray
    arrival: np.ndarray
    parent: np.ndarray
    parent_edge: np.ndarray
    rounds: int

    def covered(self) -> np.ndarray:
        """Boolean mask of vertices assigned to some center."""
        return self.owner >= 0


def grow_balls(
    graph: Graph,
    centers: np.ndarray,
    delays: np.ndarray,
    radius: int,
    alive: Optional[np.ndarray] = None,
    cost: Optional[CostModel] = None,
) -> BallGrowth:
    """Grow delayed BFS balls from ``centers`` and assign vertices to waves.

    Parameters
    ----------
    graph:
        The (unweighted-by-hop-count) graph to grow in.  Edge weights are
        ignored; distances are hop counts, as in Section 4.
    centers:
        Vertex ids of the ball centers (the set ``S^(t)``).
    delays:
        Non-negative integer jitter ``delta_s`` per center.  Center ``s``
        starts its wave at time ``delta_s`` and grows to hop radius
        ``radius - delta_s``.
    radius:
        Maximum arrival time ``r^(t)``; the growth runs for ``radius + 1``
        synchronous rounds (times ``0 .. radius``).
    alive:
        Optional boolean mask restricting the growth to a vertex subset (the
        surviving vertices ``V^(t)``); distances are measured inside the
        induced subgraph, never through dead vertices.
    cost:
        Optional PRAM cost model to charge.

    Returns
    -------
    BallGrowth
        Owner / arrival / parent arrays over the *full* vertex range (entries
        of non-alive vertices stay ``-1``).
    """
    cost = cost or null_cost()
    n = graph.n
    # All per-vertex ownership arrays live in the graph's (possibly int32)
    # index dtype; values are vertex/edge ids plus the -1 sentinel, so the
    # lean dtype is always wide enough.
    idt = graph.u.dtype if graph.u.dtype in (np.dtype(np.int32), np.dtype(np.int64)) else np.dtype(np.int64)
    centers = np.asarray(centers, dtype=idt)
    delays = np.asarray(delays, dtype=np.int64)
    if centers.shape != delays.shape:
        raise ValueError("centers and delays must have the same shape")
    if np.any(delays < 0):
        raise ValueError("delays must be non-negative")
    if radius < 0:
        raise ValueError("radius must be non-negative")

    owner = np.full(n, -1, dtype=idt)
    arrival = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=idt)
    parent_edge = np.full(n, -1, dtype=idt)
    if n == 0 or centers.size == 0:
        return BallGrowth(owner, arrival, parent, parent_edge, rounds=0)

    alive_mask = np.ones(n, dtype=bool) if alive is None else np.asarray(alive, dtype=bool)
    if alive_mask.shape[0] != n:
        raise ValueError("alive mask must have one entry per vertex")
    if not np.all(alive_mask[centers]):
        raise ValueError("all centers must be alive")

    indptr, neighbors, edge_ids = graph.adjacency
    charge_map(cost, centers.size)

    # Sort centers by delay; the activation window of each time step is then
    # a binary-searched slice instead of a per-center scan.
    delay_order = np.argsort(delays, kind="stable")
    centers_sorted = centers[delay_order]
    delays_sorted = delays[delay_order]
    activation_bounds = np.searchsorted(
        delays_sorted, np.arange(radius + 2, dtype=np.int64), side="left"
    )
    activation_ptr = 0

    frontier = np.empty(0, dtype=idt)
    rounds = 0
    for time in range(radius + 1):
        cand_v_parts = []
        cand_owner_parts = []
        cand_parent_parts = []
        cand_edge_parts = []

        # Wave expansion from the previous frontier.
        if frontier.size:
            positions, owner_idx = gather_ranges(indptr, frontier)
            charge_ball_growing_round(cost, positions.size, frontier.size, n)
            rounds += 1
            if positions.size:
                nbrs = neighbors[positions]
                eids = edge_ids[positions]
                props = owner[frontier][owner_idx]
                parents = frontier[owner_idx]
                mask = alive_mask[nbrs] & (owner[nbrs] < 0)
                cand_v_parts.append(nbrs[mask])
                cand_owner_parts.append(props[mask])
                cand_parent_parts.append(parents[mask])
                cand_edge_parts.append(eids[mask])
        # Centers whose delay expires now and that are still unclaimed start
        # their own wave (claiming themselves).
        act_end = int(activation_bounds[time + 1])
        if act_end > activation_ptr:
            new_centers = centers_sorted[activation_ptr:act_end]
            new_centers = new_centers[owner[new_centers] < 0]
            if new_centers.size:
                cand_v_parts.append(new_centers)
                cand_owner_parts.append(new_centers)
                cand_parent_parts.append(np.full(new_centers.size, -1, dtype=idt))
                cand_edge_parts.append(np.full(new_centers.size, -1, dtype=idt))
            activation_ptr = act_end

        if not cand_v_parts:
            if activation_ptr >= centers_sorted.size and frontier.size == 0:
                break
            frontier = np.empty(0, dtype=idt)
            continue

        cand_v = np.concatenate(cand_v_parts)
        cand_owner = np.concatenate(cand_owner_parts)
        cand_parent = np.concatenate(cand_parent_parts)
        cand_edge = np.concatenate(cand_edge_parts)

        # Resolve conflicts: per candidate vertex keep the smallest owner id
        # (the paper's consistent lexicographic tie-break).
        order = np.lexsort((cand_owner, cand_v))
        cand_v = cand_v[order]
        cand_owner = cand_owner[order]
        cand_parent = cand_parent[order]
        cand_edge = cand_edge[order]
        first = np.ones(cand_v.size, dtype=bool)
        first[1:] = cand_v[1:] != cand_v[:-1]

        winners = cand_v[first]
        owner[winners] = cand_owner[first]
        arrival[winners] = time
        parent[winners] = cand_parent[first]
        parent_edge[winners] = cand_edge[first]
        frontier = winners

        if activation_ptr >= centers_sorted.size and frontier.size == 0:
            break

    return BallGrowth(owner, arrival, parent, parent_edge, rounds=rounds)
