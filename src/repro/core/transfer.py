"""Compiled solve transfers for greedy elimination (the chain hot path).

At solve time every application of the chain preconditioner must move a
right-hand side down to the Schur-complement system (*forward*) and extend
the reduced solution back up (*backward*).  Interpreting the elimination
schedule one step at a time costs a Python-level loop per CG iteration per
chain level; this module *compiles* the schedule
(:class:`~repro.core.elimination.EliminationSchedule`) once, into array-form
operators applied as one bulk scatter/gather sweep per elimination
sub-round:

* **forward** — for each sub-round in order, ``b[targets] += coeff *
  b[sources]`` as a single fused scatter-add (the sources are the vertices
  eliminated in that sub-round; their entries are final from then on).  The
  fully-propagated vector doubles as the back-substitution *carry*: entry
  ``v`` of it is exactly the forwarded value ``b_v`` at ``v``'s elimination
  time.
* **backward** — sub-rounds in reverse; each is one vectorized
  back-substitution assignment ``x[v] = (w1 x[u1] + w2 x[u2] + carry[v]) /
  (w1 + w2)`` (degree-2) or ``x[v] = x[u] + carry[v] / w`` (degree-1).

Both directions serve ``(n,)`` vectors and batched ``(n, k)`` blocks alike,
and are **bit-for-bit identical** to the sequential per-step replay: within
a sub-round the scatter-adds run in step order (``np.add.at`` accumulates
sequentially) and every arithmetic expression matches the replay's
evaluation order.  That guarantee is what lets the compiled chain reproduce
historical iteration counts and residuals exactly.

:func:`TransferOperators.forward_matrix` additionally exposes the composed
forward map as one explicit ``scipy.sparse`` CSR matrix (``n_kept x n``) for
diagnostics and linear-operator consumers; the hot path prefers the
per-sub-round sweeps for the bit-compatibility above.

A compiled :class:`TransferOperators` is immutable: :meth:`forward` and
:meth:`backward` allocate their carry/result arrays per call and only read
the precomputed index/coefficient arrays, so one compiled instance serves
any number of concurrent solves (each passing per-call data and charging
its own :class:`~repro.core.operator.SolveContext`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.elimination import EliminationResult, EliminationSchedule
from repro.kernels import KernelSet, default_kernels


@dataclass(frozen=True)
class _Rake:
    """One degree-1 sub-round: ``b[u] += b[v]`` forward, ``x[v] = x[u] + carry[v]/w``.

    ``layers`` splits ``(u, v)`` into duplicate-free-target slices (see
    :func:`_occurrence_layers`) so batched forwards can scatter with plain
    fancy-index adds while reproducing ``np.add.at``'s per-slot order.
    """

    v: np.ndarray
    u: np.ndarray
    w: np.ndarray
    layers: Tuple[Tuple[np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class _Compress:
    """One degree-2 sub-round.

    Forward uses the interleaved ``(targets, sources, coeffs)`` arrays —
    ``[u1_0, u2_0, u1_1, u2_1, ...]`` — so the scatter-add order matches the
    per-step replay exactly; backward uses the per-step neighbor arrays.
    ``layers`` carries the duplicate-free-target decomposition of the
    interleaved arrays for the batched forward path.
    """

    v: np.ndarray
    u1: np.ndarray
    u2: np.ndarray
    w1: np.ndarray
    w2: np.ndarray
    total: np.ndarray
    fwd_targets: np.ndarray
    fwd_sources: np.ndarray
    fwd_coeffs: np.ndarray
    layers: Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]


def _occurrence_layers(targets: np.ndarray) -> List[np.ndarray]:
    """Partition scatter steps into layers with unique targets, in order.

    Step ``i`` goes to layer ``L`` when ``targets[i]`` has appeared ``L``
    times before.  Within a layer every target is distinct, so a vectorized
    ``arr[targets_L] += ...`` performs exactly one add per slot; replaying
    layers in order applies the adds aimed at any single slot in the
    original step order — which, with sources never written inside a
    sub-round (a validated schedule invariant), makes the layered scatter
    bit-for-bit identical to a sequential ``np.add.at``.
    """
    order = np.argsort(targets, kind="stable")
    sorted_t = targets[order]
    new_group = np.r_[True, sorted_t[1:] != sorted_t[:-1]]
    group_start = np.flatnonzero(new_group)
    group_sizes = np.diff(np.r_[group_start, sorted_t.shape[0]])
    occ_sorted = np.arange(sorted_t.shape[0]) - np.repeat(group_start, group_sizes)
    occurrence = np.empty(targets.shape[0], dtype=np.int64)
    occurrence[order] = occ_sorted
    depth = int(occurrence.max(initial=-1)) + 1
    return [np.flatnonzero(occurrence == level) for level in range(depth)]


_SubRound = Union[_Rake, _Compress]


class TransferOperators:
    """Array-form forward/backward solve transfers for one elimination.

    Built once per chain level (at ``factorize`` time) by
    :func:`compile_transfers`; applied many times per solve.  The
    :meth:`forward` / :meth:`backward` pair shares the forward-propagated
    *carry* vector so a preconditioner application runs the forward sweep
    exactly once (the legacy ``forward_rhs`` + ``backward_solution``
    signatures re-ran it twice).
    """

    __slots__ = ("n", "kept_vertices", "num_steps", "num_subrounds", "_subrounds")

    def __init__(
        self,
        n: int,
        kept_vertices: np.ndarray,
        subrounds: List[_SubRound],
        num_steps: int,
    ) -> None:
        self.n = int(n)
        self.kept_vertices = np.asarray(kept_vertices, dtype=np.int64)
        self._subrounds = subrounds
        self.num_steps = int(num_steps)
        self.num_subrounds = len(subrounds)

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def forward(
        self, b: np.ndarray, kernels: Optional[KernelSet] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate right-hand side(s) down; return ``(b_reduced, carry)``.

        ``carry`` is the fully-forwarded full-length array: at every
        eliminated vertex it holds the forwarded value at elimination time,
        which is precisely what :meth:`backward` substitutes with.  Accepts
        ``(n,)`` or ``(n, k)``.

        The sub-round sweeps run on ``kernels`` (:mod:`repro.kernels`;
        reference NumPy when omitted).  Every backend replays the adds into
        any single slot in ``np.add.at`` step order — the reference through
        the duplicate-free layer decomposition, compiled backends as one
        sequential GIL-free loop — so the result is bit-identical across
        backends, batch widths, and the historical per-step replay.
        """
        k = kernels if kernels is not None else default_kernels()
        ns = k.array_ns
        batched = np.ndim(b) == 2
        # Batched blocks stay column-contiguous (Fortran order): the layered
        # reference scatters one fancy-index add per layer over every column
        # at once, and the compiled sweep walks each contiguous column.  On
        # the host namespace ``ns.copy`` is exactly the historical
        # ``np.array(b, dtype=float, copy=True, order=...)``.
        carry = ns.copy(b, order="F" if batched else "C")
        for sub in self._subrounds:
            if isinstance(sub, _Rake):
                k.forward_rake(carry, sub.u, sub.v, sub.layers)
            else:
                k.forward_compress(
                    carry, sub.fwd_targets, sub.fwd_sources, sub.fwd_coeffs, sub.layers
                )
        return carry[self.kept_vertices], carry

    def backward(
        self,
        carry: np.ndarray,
        x_reduced: np.ndarray,
        kernels: Optional[KernelSet] = None,
    ) -> np.ndarray:
        """Back-substitute eliminated vertices from a :meth:`forward` carry.

        Back-substitution targets (the eliminated vertices of a sub-round)
        are unique, so batched blocks vectorize straight across columns:
        every element sees the identical scalar expression a per-vector
        sweep evaluates — on any kernel backend — keeping the result
        bit-identical column by column.
        """
        k = kernels if kernels is not None else default_kernels()
        ns = k.array_ns
        x = ns.zeros_like(carry)
        x[self.kept_vertices] = ns.ensure(x_reduced)
        for sub in reversed(self._subrounds):
            if isinstance(sub, _Rake):
                k.backward_rake(x, carry, sub.v, sub.u, sub.w)
            else:
                k.backward_compress(
                    x, carry, sub.v, sub.u1, sub.u2, sub.w1, sub.w2, sub.total
                )
        # Hand back a C-ordered block: downstream reductions (CG dot
        # products, projections) pairwise-sum by memory layout, and bitwise
        # reproducibility of historical solves requires the layout the
        # interpreted transfer produced.
        return ns.ascontiguous(x) if x.ndim == 2 else x

    # ------------------------------------------------------------------ #
    # legacy-shaped entry points
    # ------------------------------------------------------------------ #
    def forward_rhs(
        self, b: np.ndarray, kernels: Optional[KernelSet] = None
    ) -> np.ndarray:
        """Reduced right-hand side(s) only (carry discarded)."""
        return self.forward(b, kernels=kernels)[0]

    def backward_solution(
        self,
        b: np.ndarray,
        x_reduced: np.ndarray,
        kernels: Optional[KernelSet] = None,
    ) -> np.ndarray:
        """Extend reduced solution(s) given the *original* right-hand side.

        Re-runs the forward sweep to rebuild the carry; prefer the
        :meth:`forward` / :meth:`backward` pair when both directions are
        needed (the solver hot path does).
        """
        _, carry = self.forward(b, kernels=kernels)
        return self.backward(carry, x_reduced, kernels=kernels)

    # ------------------------------------------------------------------ #
    # device residency
    # ------------------------------------------------------------------ #
    def to_namespace(self, ns) -> "TransferOperators":
        """A copy with every schedule array uploaded to ``ns``.

        Called once per chain level when an operator is factorized on a
        non-host array backend (reason ``"upload"`` on the namespace's
        transfer counter): the per-sub-round index/coefficient arrays and
        ``kept_vertices`` become namespace arrays, so forward/backward
        sweeps read device memory only.  The host namespace returns ``self``
        unchanged.  Device copies serve :meth:`forward`/:meth:`backward`
        exclusively — :meth:`forward_matrix` needs host SciPy and should be
        called on the host instance an operator always retains.
        """
        if ns.is_host:
            return self

        def up(a):
            return ns.asarray(a, reason="upload")

        subrounds: List[_SubRound] = []
        for sub in self._subrounds:
            if isinstance(sub, _Rake):
                subrounds.append(
                    _Rake(
                        v=up(sub.v),
                        u=up(sub.u),
                        w=up(sub.w),
                        layers=tuple((up(u), up(v)) for u, v in sub.layers),
                    )
                )
            else:
                subrounds.append(
                    _Compress(
                        v=up(sub.v),
                        u1=up(sub.u1),
                        u2=up(sub.u2),
                        w1=up(sub.w1),
                        w2=up(sub.w2),
                        total=up(sub.total),
                        fwd_targets=up(sub.fwd_targets),
                        fwd_sources=up(sub.fwd_sources),
                        fwd_coeffs=up(sub.fwd_coeffs),
                        layers=tuple(
                            (up(t), up(s), up(c)) for t, s, c in sub.layers
                        ),
                    )
                )
        clone = TransferOperators.__new__(TransferOperators)
        clone.n = self.n
        clone.kept_vertices = up(self.kept_vertices)
        clone._subrounds = subrounds
        clone.num_steps = self.num_steps
        clone.num_subrounds = self.num_subrounds
        return clone

    # ------------------------------------------------------------------ #
    # explicit sparse form
    # ------------------------------------------------------------------ #
    def forward_matrix(self) -> sp.csr_matrix:
        """The composed forward transfer as one ``n_kept x n`` CSR matrix.

        ``forward_matrix() @ b`` equals ``forward_rhs(b)`` up to
        floating-point associativity (the sweeps are the bit-exact replay;
        the matrix groups the same sums per row).  Useful for diagnostics,
        spectral checks, and exporting the preconditioner as a linear
        operator.
        """
        full = sp.identity(self.n, format="csr")
        for sub in self._subrounds:
            if isinstance(sub, _Rake):
                rows, cols = sub.u, sub.v
                vals = np.ones(sub.v.shape[0], dtype=np.float64)
            else:
                rows, cols, vals = sub.fwd_targets, sub.fwd_sources, sub.fwd_coeffs
            scatter = sp.coo_matrix(
                (vals, (rows, cols)), shape=(self.n, self.n)
            ).tocsr()
            full = full + scatter @ full
        return full[self.kept_vertices].tocsr()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransferOperators(n={self.n}, kept={self.kept_vertices.shape[0]}, "
            f"steps={self.num_steps}, subrounds={self.num_subrounds})"
        )


def compile_transfers(elimination: EliminationResult) -> TransferOperators:
    """Compile an elimination's schedule into :class:`TransferOperators`."""
    return compile_schedule(elimination.schedule, elimination.kept_vertices)


def compile_schedule(
    schedule: EliminationSchedule, kept_vertices: np.ndarray
) -> TransferOperators:
    """Compile an :class:`EliminationSchedule` into :class:`TransferOperators`.

    Validates the sub-round invariant (uniform kind; no step references a
    vertex eliminated in the same sub-round) and precomputes the per-round
    scatter/gather arrays, including the forward coefficients
    ``w_i / (w_1 + w_2)``.
    """
    subrounds: List[_SubRound] = []
    for i in range(schedule.num_subrounds):
        sl = schedule.subround(i)
        v = schedule.vertices[sl]
        u1 = schedule.nbr1[sl]
        u2 = schedule.nbr2[sl]
        w1 = schedule.w1[sl]
        w2 = schedule.w2[sl]
        is_d1 = u2 < 0
        if is_d1.all():
            layers = tuple(
                (u1[sel], v[sel]) for sel in _occurrence_layers(u1)
            )
            subrounds.append(_Rake(v=v, u=u1, w=w1, layers=layers))
        elif not is_d1.any():
            size = v.shape[0]
            total = w1 + w2
            targets = np.empty(2 * size, dtype=np.int64)
            targets[0::2] = u1
            targets[1::2] = u2
            sources = np.repeat(v, 2)
            coeffs = np.empty(2 * size, dtype=np.float64)
            coeffs[0::2] = w1 / total
            coeffs[1::2] = w2 / total
            layers = tuple(
                (targets[sel], sources[sel], coeffs[sel])
                for sel in _occurrence_layers(targets)
            )
            subrounds.append(
                _Compress(
                    v=v, u1=u1, u2=u2, w1=w1, w2=w2, total=total,
                    fwd_targets=targets, fwd_sources=sources, fwd_coeffs=coeffs,
                    layers=layers,
                )
            )
        else:  # pragma: no cover - schedule invariant
            raise ValueError(f"sub-round {i} mixes degree-1 and degree-2 steps")
        # No step may reference a vertex eliminated in the same sub-round —
        # the bulk gather-before-scatter application depends on it.
        eliminated_here = set(v.tolist())
        refs = set(u1.tolist()) | set(u2[u2 >= 0].tolist())
        if eliminated_here & refs:  # pragma: no cover - schedule invariant
            raise ValueError(
                f"sub-round {i} eliminates a vertex it also references: "
                f"{sorted(eliminated_here & refs)[:5]}"
            )
    return TransferOperators(
        n=schedule.n,
        kept_vertices=kept_vertices,
        subrounds=subrounds,
        num_steps=schedule.num_steps,
    )
