"""Incremental sparsification (Lemma 6.1 / Lemma 6.2).

Given a Laplacian graph ``G`` (conductance weights), a low-stretch subgraph
``G_hat`` of it, and a condition parameter ``kappa``, the KMP10-style
incremental sparsifier keeps every subgraph edge and samples each remaining
edge ``e`` with probability proportional to its (resistive) stretch over the
subgraph, reweighted by ``1 / p_e``:

    ``p_e = min(1, oversample * str_e * log n / kappa)``.

The expected Laplacian equals ``L_G`` and, by the matrix-Chernoff argument of
[KMP10] (which Lemma 6.1 quotes), ``G ⪯ O(1)·H`` and ``H ⪯ O(kappa)·G`` with
high probability, while the number of non-subgraph edges drops to roughly
``total_stretch · log n / kappa``.

The only change relative to the paper's statement — and it is the change the
paper itself makes — is that ``G_hat`` is a low-stretch *subgraph* from
:func:`repro.core.sparse_akpw.low_stretch_subgraph` instead of a spanning
tree ("the proof in fact works without changes for an arbitrary subgraph",
Section 6.1).

Stretch here is *resistive* stretch: path resistance (sum of ``1/w``) over
the subgraph times the edge's conductance, i.e. the stretch of the edge in
the reciprocal-weight (length) graph, which is the quantity the KMP analysis
needs for Laplacian preconditioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.stretch import edge_stretches
from repro.graph.graph import Graph
from repro.util.dtypes import as_index_array
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_map
from repro.util.rng import RngLike, as_rng


@dataclass
class SparsifyResult:
    """Output of :func:`incremental_sparsify`.

    Attributes
    ----------
    graph:
        The preconditioner graph ``H`` (same vertex set as the input).
    subgraph_edges:
        Indices (into the input graph) of the low-stretch subgraph edges
        (all kept, original weights).
    sampled_edges:
        Indices of the sampled non-subgraph edges (reweighted in ``H``).
    kappa:
        The condition parameter used.
    stats:
        total/average stretch, expected and realized sample counts.
    """

    graph: Graph
    subgraph_edges: np.ndarray
    sampled_edges: np.ndarray
    kappa: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Number of edges of the preconditioner ``H``."""
        return self.graph.num_edges


def resistive_stretches(
    graph: Graph, subgraph_edges: np.ndarray, query_edges: Optional[np.ndarray] = None
) -> np.ndarray:
    """Resistive stretch ``w_e * R_{G_hat}(u, v)`` of each (query) edge.

    Computed as the ordinary stretch in the reciprocal-weight graph, where
    edge lengths are resistances ``1 / w``.
    """
    reciprocal = graph.reweighted(1.0 / graph.w)
    return edge_stretches(reciprocal, subgraph_edges, query_edges)


def incremental_sparsify(
    graph: Graph,
    subgraph_edges: np.ndarray,
    kappa: float,
    seed: RngLike = None,
    *,
    cost: Optional[CostModel] = None,
    oversample: float = 1.0,
    use_log_factor: bool = True,
    reweight: bool = False,
    stretch_edges: Optional[np.ndarray] = None,
) -> SparsifyResult:
    """Lemma 6.1: build a preconditioner ``H`` with ``G ⪯ H ⪯ O(kappa)·G``.

    Parameters
    ----------
    graph:
        The Laplacian graph to precondition (conductance weights).
    subgraph_edges:
        Edge indices of a low-stretch subgraph of ``graph`` (kept verbatim).
    kappa:
        Condition parameter: larger ``kappa`` keeps fewer off-subgraph edges
        but makes the preconditioner weaker.
    oversample:
        The constant ``c_IS`` in the sampling probability.
    use_log_factor:
        Include the ``log n`` oversampling factor of the high-probability
        bound (True, the paper's setting); turning it off gives smaller
        preconditioners whose quality is checked empirically.
    stretch_edges:
        Optional edge subset (of ``subgraph_edges``) against which the
        sampling stretches are measured; defaults to ``subgraph_edges``.
        Passing the spanning-*forest* part of the low-stretch subgraph keeps
        the measurement on the vectorized LCA path (one rooted-forest pass
        plus bulk binary lifting) instead of all-sources Dijkstra over a
        cyclic subgraph.  Forest stretches upper-bound subgraph stretches,
        so sampling probabilities only grow — the Lemma 6.1 oversampling
        argument is unaffected (this is exactly the tree-based sampling of
        [KMP10] that the paper builds on).
    reweight:
        When True, sampled edges get weight ``w_e / p_e`` so that
        ``E[L_H] = L_G`` (the unbiased estimator the matrix-Chernoff analysis
        uses).  When False (default), sampled edges keep their original
        weight, so ``H`` is a plain subgraph of ``G``: then ``H ⪯ G``
        deterministically and ``G ⪯ O(kappa) H`` because every unsampled
        edge has resistive stretch at most ``~kappa`` over ``H``.  Both
        satisfy the Lemma 6.1 contract up to scaling; the subgraph variant is
        measurably better conditioned at practical sizes (see
        EXPERIMENTS.md, experiment E7) and is what the preconditioner chain
        uses.

    Returns
    -------
    SparsifyResult
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    if kappa <= 1:
        raise ValueError("kappa must be > 1")
    n, m = graph.n, graph.num_edges
    subgraph_edges = np.asarray(subgraph_edges)
    if subgraph_edges.dtype == bool:
        subgraph_edges = np.flatnonzero(subgraph_edges)
    else:
        subgraph_edges = as_index_array(subgraph_edges)
    in_subgraph = np.zeros(m, dtype=bool)
    in_subgraph[subgraph_edges] = True
    off_edges = np.flatnonzero(~in_subgraph).astype(graph.u.dtype, copy=False)
    charge_map(cost, m)

    if off_edges.size == 0:
        return SparsifyResult(
            graph=graph.edge_subgraph(subgraph_edges),
            subgraph_edges=subgraph_edges,
            sampled_edges=np.empty(0, dtype=np.int64),
            kappa=kappa,
            stats={"total_stretch": 0.0, "expected_samples": 0.0},
        )

    if stretch_edges is None:
        stretch_basis = subgraph_edges
    else:
        stretch_basis = np.asarray(stretch_edges)
        if stretch_basis.dtype == bool:
            stretch_basis = np.flatnonzero(stretch_basis)
        else:
            stretch_basis = as_index_array(stretch_basis)
    stretches = resistive_stretches(graph, stretch_basis, off_edges)
    charge_map(cost, off_edges.size, per_item_work=math.log2(max(n, 2)))
    log_factor = math.log2(max(n, 2)) if use_log_factor else 1.0
    probs = np.minimum(1.0, oversample * stretches * log_factor / kappa)
    draws = rng.random(off_edges.size)
    chosen = off_edges[draws < probs]
    chosen_probs = probs[draws < probs]
    charge_filter(cost, off_edges.size)

    # H keeps the subgraph verbatim and adds the sampled edges (reweighted by
    # 1 / p_e when the unbiased-estimator variant is requested).
    sampled_w = graph.w[chosen] / chosen_probs if reweight else graph.w[chosen]
    new_u = np.concatenate([graph.u[subgraph_edges], graph.u[chosen]])
    new_v = np.concatenate([graph.v[subgraph_edges], graph.v[chosen]])
    new_w = np.concatenate([graph.w[subgraph_edges], sampled_w])
    h_graph = Graph(n, new_u, new_v, new_w)
    h_graph, _ = h_graph.coalesce()

    stats = {
        "total_stretch": float(stretches.sum()),
        "average_stretch": float(stretches.mean()),
        "expected_samples": float(probs.sum()),
        "realized_samples": float(chosen.size),
        "off_subgraph_edges": float(off_edges.size),
    }
    return SparsifyResult(
        graph=h_graph,
        subgraph_edges=subgraph_edges,
        sampled_edges=chosen,
        kappa=float(kappa),
        stats=stats,
    )
