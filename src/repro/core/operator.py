"""The factorize-once / solve-many solver lifecycle (Theorem 1.1).

The paper's headline object is a *reusable* preconditioner chain: building it
(`IncrementalSparsify` + `GreedyElimination`, Section 6) is the expensive
near-linear-work phase, after which every solve against the same matrix costs
only ``~ sqrt(kappa)`` iterations per level.  This module makes that
lifecycle explicit:

* :func:`factorize` — one-time setup.  Accepts a graph, a graph Laplacian,
  or a general SDD matrix (reduced via Gremban, Section 2), builds the chain
  under a frozen :class:`~repro.core.config.ChainConfig`, and returns a
  :class:`LaplacianOperator`.
* :class:`LaplacianOperator` — owns the chain, the Gremban reduction, and
  the per-component null-space projectors (all precomputed at construction),
  and exposes :meth:`~LaplacianOperator.solve` for ``(n,)`` vectors *and*
  batched ``(n, k)`` right-hand-side blocks.  Batched solves run the ``k``
  independent CG recurrences in lockstep
  (:func:`repro.linalg.cg.batched_conjugate_gradient`), sharing every matvec,
  elimination transfer, and bottom-level factor application across columns —
  depth is charged once per iteration rather than once per column, which is
  exactly the PRAM parallelism the paper claims for independent solves.

The iteration strategy is pluggable through :mod:`repro.core.methods`
(``pcg``, ``chebyshev``, plus the ``jacobi`` / ``direct`` baselines).

Concurrency: :meth:`LaplacianOperator.solve` is **re-entrant**.  Every call
allocates a private :class:`SolveContext` carrying its own
:class:`~repro.pram.model.CostModel`; all per-solve charging (outer
iterations, inner smoothing, elimination transfers, bottom solves) flows
through the context, never through shared operator state, so concurrent
solves on one operator return bit-identical ``x``/``work``/``depth`` to
serial runs.  The one-time lazy initializers (Chebyshev bound calibration,
the dense pseudo-inverse and Jacobi baselines) are guarded by a setup lock
and charge the operator's *setup* accounting — their cost never appears in
any :class:`SolveReport`, cold start or warm.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.chain import PreconditionerChain, build_chain
from repro.core.chebyshev import chebyshev_apply, estimate_extreme_eigenvalues
from repro.core.config import ChainConfig, SolverConfig
from repro.core.methods import get_method
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import (
    GrembanReduction,
    graph_to_laplacian,
    is_sdd,
    laplacian_to_graph,
    sdd_to_laplacian,
)
import repro.kernels as _kernels_mod
from repro.kernels import CsrOperand, KernelSet, default_kernels, get_kernels
from repro.kernels.array_ns import (
    ArrayNamespace,
    get_namespace,
    is_valid_backend_name,
    resolve_backend_name,
)
from repro.kernels.array_ns import ArrayBackendError
from repro.linalg.cg import batched_conjugate_gradient
from repro.linalg.direct import laplacian_pseudoinverse
from repro.linalg.jacobi import jacobi_preconditioner
from repro.pram.model import CostModel, log2ceil
from repro.pram.primitives import charge_elimination_transfer
from repro.util.rng import RngLike, as_rng

MatrixInput = Union[Graph, sp.spmatrix, np.ndarray]

#: Inner-iteration kinds understood by the chain descent.
_CHAIN_INNER = ("pcg", "chebyshev")


@dataclass
class SolveReport:
    """Result of one :meth:`LaplacianOperator.solve` call.

    Attributes
    ----------
    x:
        The approximate solution of the *original* system — shape ``(n,)``
        for a vector right-hand side, ``(n, k)`` for a batched one.
    iterations:
        Outer (top-level) iterations; for a batch, the maximum over columns.
    relative_residual:
        Final relative 2-norm residual of the original system; for a batch,
        the maximum over columns.
    converged:
        Whether the tolerance was met (every column, for a batch).
    work:
        Machine-independent work charged during the solve (operation counts
        in the PRAM cost model).
    depth:
        Depth charged during the solve.  Batched columns run in lockstep, so
        this does **not** scale with the batch width.
    stats:
        Additional diagnostics (chain depth, batch width, setup cost, ...).
    column_iterations, column_residuals, column_converged:
        Per-column diagnostics for batched solves (``None`` for vector
        right-hand sides).
    """

    x: np.ndarray
    iterations: int
    relative_residual: float
    converged: bool
    work: float
    depth: float
    stats: Dict[str, float] = field(default_factory=dict)
    column_iterations: Optional[np.ndarray] = None
    column_residuals: Optional[np.ndarray] = None
    column_converged: Optional[np.ndarray] = None

    def split(self) -> List["SolveReport"]:
        """Per-column reports of a batched solve (batch-splittable accounting).

        A batched ``(n, k)`` solve shares every matvec, transfer, and bottom
        factor application across columns, so its cost does not decompose
        exactly per column.  The split convention — what the serving layer
        hands back to each coalesced caller — is:

        * ``x`` / ``iterations`` / ``relative_residual`` / ``converged``
          come from the column's own slice (``x`` is bit-identical to a solo
          solve of that column, the PR-4 batched==looped guarantee);
        * ``work`` is the amortized share ``work / k`` (the shares sum back
          to the batch's work — the fair per-request charge for a lockstep
          batch);
        * ``depth`` is the batch depth unchanged: columns run in lockstep,
          so every request observes the full critical path.

        Each per-column ``stats`` dict carries ``batch_width`` (the original
        ``k``) and ``work_amortized = 1.0`` to flag the convention.  A
        vector report splits into ``[self]``; an empty ``(n, 0)`` batch into
        ``[]``.
        """
        if self.x.ndim != 2:
            return [self]
        k = self.x.shape[1]
        if k == 0:
            return []
        assert self.column_iterations is not None
        assert self.column_residuals is not None
        assert self.column_converged is not None
        share = self.work / k
        reports = []
        for j in range(k):
            stats = dict(self.stats)
            stats["batch_width"] = float(k)
            stats["work_amortized"] = 1.0
            reports.append(
                SolveReport(
                    x=self.x[:, j].copy(),
                    iterations=int(self.column_iterations[j]),
                    relative_residual=float(self.column_residuals[j]),
                    converged=bool(self.column_converged[j]),
                    work=share,
                    depth=self.depth,
                    stats=stats,
                )
            )
        return reports


@dataclass
class SolveContext:
    """Private mutable state of one :meth:`LaplacianOperator.solve` call.

    Created fresh per call and threaded through the method runner, the chain
    preconditioner closures, and every PRAM charging hook, so nothing a
    solve mutates is shared between concurrent calls.  When the solve
    finishes, the context's cost model becomes the report's ``work``/``depth``
    and is folded into the operator's cumulative model under a lock.

    Attributes
    ----------
    cost:
        The per-call :class:`~repro.pram.model.CostModel`; single-owner by
        construction (see the threading contract in :mod:`repro.pram.model`).
    """

    cost: CostModel


class _ComponentProjector:
    """Removal of the per-connected-component mean (Laplacian null space).

    Built once per graph at factorization time; applies to ``(n,)`` vectors
    and ``(n, k)`` blocks alike.  This sits on the solver's hottest path
    (twice per outer iteration plus once per chain level per preconditioner
    application), so the common connected case reduces to a plain mean and
    the multi-component case uses a precomputed sparse accumulator instead
    of an unbuffered scatter-add.
    """

    __slots__ = (
        "labels",
        "counts",
        "_single",
        "_accumulator",
        "_kernels",
        "_ns",
        "_acc_operand",
        "_labels_arr",
        "_div_vec",
        "_div_block",
    )

    def __init__(self, labels: np.ndarray, kernels: Optional[KernelSet] = None) -> None:
        self.labels = np.asarray(labels, dtype=np.int64)
        self.counts = np.bincount(self.labels).astype(float)
        self._single = self.counts.shape[0] <= 1
        self._kernels = kernels if kernels is not None else default_kernels()
        ns = self._kernels.array_ns
        self._ns = ns
        self._acc_operand = None
        if self._single:
            self._accumulator = None
            self._labels_arr = self.labels
            self._div_vec = self.counts
            self._div_block = self.counts[:, None]
        else:
            n = self.labels.shape[0]
            self._accumulator = sp.csr_matrix(
                (np.ones(n), (self.labels, np.arange(n))),
                shape=(self.counts.shape[0], n),
            )
            if ns.is_host:
                self._labels_arr = self.labels
                self._div_vec = self.counts
                self._div_block = self.counts[:, None]
            else:
                # One-time device uploads: the accumulator payload, the label
                # gather indices, and the per-component divisors — so every
                # application stays resident in the namespace.
                self._acc_operand = CsrOperand(self._accumulator, array_ns=ns)
                self._labels_arr = ns.asarray(self.labels, reason="upload")
                self._div_vec = ns.asarray(self.counts, reason="upload")
                self._div_block = ns.asarray(self.counts[:, None], reason="upload")

    def __call__(self, v: np.ndarray) -> np.ndarray:
        v = self._ns.ensure(v)
        if self._single:
            # column_means (not v.mean) so the projection rounds identically
            # for every batch width — part of the batched == looped
            # bit-for-bit contract (see repro.linalg.norms).
            if v.ndim == 1:
                return v - v.mean()
            return self._kernels.subtract_column_means(v)
        # Per-component sums keep the sparse accumulator (tiny output, off
        # the elementwise hot path); the full-length subtract dispatches.
        if self._acc_operand is not None:
            sums = self._kernels.csr_matvec(self._acc_operand, v)
        else:
            sums = self._accumulator @ v
        if v.ndim == 1:
            return self._kernels.subtract_gathered(v, sums / self._div_vec, self._labels_arr)
        return self._kernels.subtract_gathered(
            v, sums / self._div_block, self._labels_arr
        )


class DeviceChainState:
    """Chain state resident in a non-host array namespace.

    Built exactly once, at factorize time (or by
    :meth:`LaplacianOperator.to_backend`), for operators whose
    ``SolverConfig.array_backend`` is not ``"numpy"``: every compiled
    transfer schedule, per-level CSR operand, and projector constant is
    uploaded through the namespace's ``asarray(..., reason="upload")``
    transfer point, after which the entire preconditioner descent reads
    device memory only.  The operator keeps its host chain untouched —
    diagnostics (``forward_matrix``, Chebyshev calibration, the bottom LU)
    stay host-side — and the solve path swaps in these device twins.
    """

    __slots__ = (
        "ns",
        "kernels",
        "top_operand",
        "level_operands",
        "level_transfers",
        "projector",
        "level_projectors",
    )

    def __init__(self, operator: "LaplacianOperator", ns: ArrayNamespace) -> None:
        self.ns = ns
        self.kernels = operator.kernels
        chain = operator.chain
        self.top_operand = CsrOperand(operator.laplacian, array_ns=ns)
        self.level_operands: List[CsrOperand] = [
            CsrOperand(level.laplacian, array_ns=ns) for level in chain.levels
        ]
        self.level_transfers = []
        for level in chain.levels:
            transfers = level.transfers
            if transfers is None and level.elimination is not None:
                transfers = level.elimination.transfer
            self.level_transfers.append(
                transfers.to_namespace(ns) if transfers is not None else None
            )
        self.projector = _ComponentProjector(
            operator._projector.labels, kernels=self.kernels
        )
        self.level_projectors: List[_ComponentProjector] = [
            _ComponentProjector(p.labels, kernels=self.kernels)
            for p in operator._level_projectors
        ]


class LaplacianOperator:
    """A factorized SDD system supporting repeated (batched) solves.

    Instances are produced by :func:`factorize`; the constructor wires every
    piece of per-solve state — null-space projectors for the top level and
    for each chain level, the top-level preconditioner entry point, and the
    Chebyshev bound slots — so :meth:`solve` allocates nothing but iterate
    vectors (this replaces the per-call conditional lambda and the hidden
    ``_proj_cache`` lazy-init of the deprecated ``SDDSolver``).
    """

    def __init__(
        self,
        *,
        graph: Graph,
        chain: PreconditionerChain,
        chain_config: ChainConfig,
        solver_config: SolverConfig,
        reduction: Optional[GrembanReduction],
        original: Optional[sp.spmatrix],
        original_n: int,
        rng: np.random.Generator,
        cost: CostModel,
        factorize_seed: Optional[int] = None,
        chebyshev_bounds: Optional[List[Optional[Tuple[float, float]]]] = None,
    ) -> None:
        self.graph = graph
        self.chain = chain
        self.chain_config = chain_config
        self.solver_config = solver_config
        self.reduction = reduction
        self._original = original
        self._original_n = int(original_n)
        self.cost = cost
        self._rng = rng
        #: The integer seed this operator was factorized under (``None`` for
        #: generator / ``None`` seeds).  :meth:`update` rebuilds with it so a
        #: threshold-triggered full rebuild is bit-identical to a fresh
        #: ``factorize()`` of the mutated graph.
        self.factorize_seed = factorize_seed
        #: Damage bookkeeping attached by :func:`repro.core.update.update_operator`
        #: on patched operators (``None`` on fresh factorizations).
        self._update_state = None
        # The chain's top level already holds the CSR Laplacian of this very
        # graph whenever build_chain didn't have to re-dtype it; reusing that
        # object avoids a second O(m) materialization (same input, same
        # function — the matrices are identical).
        if chain.levels and chain.levels[0].graph is graph:
            self.laplacian = chain.levels[0].laplacian
        else:
            self.laplacian = graph_to_laplacian(graph)
        self.inner_iterations = solver_config.resolve_inner_iterations(chain_config.kappa)

        # Array namespace + kernel backend, resolved exactly once per
        # operator (env overrides and availability checks happen here, not
        # per solve) — an explicit "numba" without numba installed fails
        # factorize() with a KernelBackendError, and so does combining
        # "numba" with a non-host array backend.  Every hot sweep below
        # dispatches through this kernel set; host kernel backends are
        # bit-for-bit interchangeable.
        self.array_ns: ArrayNamespace = get_namespace(solver_config.array_backend)
        if self.array_ns.is_host:
            self.kernels: KernelSet = get_kernels(solver_config.kernel_backend)
            self._host_kernels = self.kernels
        else:
            # Resolved through the kernels module, not the module-level name:
            # tests monkeypatch ``operator_mod.get_kernels`` to swap *host*
            # kernel sets, which has no meaning for a namespace-bound set.
            self.kernels = _kernels_mod.get_kernels(
                solver_config.kernel_backend, array_ns=self.array_ns
            )
            self._host_kernels = default_kernels()
        self._top_operand = CsrOperand(self.laplacian)
        self._level_operands: List[CsrOperand] = [
            CsrOperand(level.laplacian) for level in chain.levels
        ]

        # Null-space projectors, hoisted into construction-time state: one
        # for the (possibly Gremban-expanded) top-level graph and one per
        # chain level.  These are host-side (calibration, diagnostics); a
        # non-host operator gets device twins via DeviceChainState below.
        _, labels = connected_components(graph)
        self._projector = _ComponentProjector(labels, kernels=self._host_kernels)
        self._level_projectors: List[_ComponentProjector] = []
        for level in chain.levels:
            _, lvl_labels = connected_components(level.graph)
            self._level_projectors.append(
                _ComponentProjector(lvl_labels, kernels=self._host_kernels)
            )

        # Device-resident chain twins: schedule arrays, CSR operands, and
        # projector constants uploaded once (reason "upload").  ``None`` on
        # the host backend, where the arrays above are already where the
        # solve runs.
        self._device: Optional[DeviceChainState] = (
            None if self.array_ns.is_host else DeviceChainState(self, self.array_ns)
        )

        # One-time lazy state, shared by every solve once initialized:
        # Chebyshev bounds (Lemma 6.7) — calibrated eagerly when the
        # configured method is "chebyshev", on demand otherwise — plus the
        # dense pseudo-inverse and diagonal preconditioner baselines.  The
        # setup lock serializes cold-start initialization so concurrent
        # solves neither race the fills nor duplicate the work; the
        # accounting lock serializes merges into the cumulative cost model.
        self._setup_lock = threading.Lock()
        self._accounting_lock = threading.Lock()
        if chebyshev_bounds is not None:
            # Pre-calibrated bounds (a to_backend() sibling): adopt them so
            # the new operator never re-runs the randomized calibration —
            # recalibrating would drift the RNG and the bounds themselves.
            self._chebyshev_bounds = list(chebyshev_bounds)
            self._chebyshev_ready = True
        else:
            self._chebyshev_bounds: List[Optional[Tuple[float, float]]] = [None] * chain.depth
            self._chebyshev_ready = False
        self._dense_pinv: Optional[np.ndarray] = None
        self._jacobi_apply: Optional[Callable[[np.ndarray], np.ndarray]] = None

        self.setup_work = cost.work
        self.setup_depth = cost.depth
        if solver_config.method == "chebyshev":
            self.ensure_chebyshev_bounds()

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Dimension of the original system (before Gremban reduction)."""
        return self._original_n

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._original_n, self._original_n)

    @property
    def depth(self) -> int:
        """Number of preconditioner-chain levels."""
        return self.chain.depth

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the *original* matrix to ``x`` (vector or ``(n, k)`` block)."""
        return self.original_matrix() @ np.asarray(x, dtype=float)

    def top_matvec(self) -> Callable[[np.ndarray], np.ndarray]:
        """Matvec with the (reduced) top-level Laplacian on the solve kernels.

        This is what the outer iteration of every registered method applies
        each step; dispatching it through the kernel set lets compiled
        backends run it GIL-free.  Bit-identical to ``self.laplacian @ v``.
        """
        kset = self.kernels
        operand = (
            self._device.top_operand if self._device is not None else self._top_operand
        )
        return lambda v: kset.csr_matvec(operand, v)

    def original_matrix(self) -> sp.spmatrix:
        """The matrix this operator solves against (pre-reduction)."""
        if self._original is not None:
            return self._original
        return self.laplacian

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LaplacianOperator(n={self._original_n}, levels={self.chain.depth}, "
            f"method={self.solver_config.method!r})"
        )

    # ------------------------------------------------------------------ #
    # hooks used by the method registry
    # ------------------------------------------------------------------ #
    def chain_preconditioner(
        self, inner: str, ctx: SolveContext
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Top-level preconditioner entry (chain descent or bottom solve).

        The returned closure binds ``ctx`` so every charge it generates goes
        to the calling solve's private cost model.
        """
        if inner not in _CHAIN_INNER:  # pragma: no cover - registry misuse
            raise ValueError(f"unknown inner iteration kind {inner!r}")
        if self.chain.depth > 1:
            return lambda r: self._apply_preconditioner(0, r, inner, ctx)
        return lambda b: self._solve_bottom(b, ctx)

    def charge_outer_iteration(self, ctx: SolveContext, active_columns: int) -> None:
        """Charge one outer iteration over ``active_columns`` columns."""
        ctx.cost.charge(
            work=float(max(self.laplacian.nnz, 1)) * active_columns,
            depth=log2ceil(self.graph.n),
        )

    def _charge_setup(self, work: float, depth: float) -> None:
        """Fold one-time lazy-initializer cost into the setup accounting.

        Lazy setup (Chebyshev calibration, the dense baseline factorization)
        is charged here — to the operator, never to a solve context — so a
        solve's reported ``work``/``depth`` is identical whether or not it
        happened to be the call that triggered initialization.
        """
        with self._accounting_lock:
            self.cost.charge(work=work, depth=depth)
            self.setup_work += work
            self.setup_depth += depth

    def jacobi_preconditioner(self) -> Callable[[np.ndarray], np.ndarray]:
        """Diagonal preconditioner of the (reduced) Laplacian (baseline).

        Setup charges land *before* the initialized state is published (here
        and in the other lazy initializers): a thread that takes the
        unlocked fast path can therefore never observe setup state whose
        cost has not yet reached ``setup_work``/``setup_depth``.
        """
        if self._jacobi_apply is None:
            with self._setup_lock:
                if self._jacobi_apply is None:
                    apply = jacobi_preconditioner(self.laplacian, kernels=self.kernels)
                    self._charge_setup(float(self.graph.n), 1.0)
                    self._jacobi_apply = apply
        return self._jacobi_apply

    def dense_pseudoinverse(self) -> np.ndarray:
        """Dense pseudo-inverse of the (reduced) Laplacian (baseline)."""
        if self._dense_pinv is None:
            with self._setup_lock:
                if self._dense_pinv is None:
                    pinv = laplacian_pseudoinverse(self.laplacian)
                    self._charge_setup(float(self.graph.n) ** 3, float(self.graph.n))
                    self._dense_pinv = pinv
        return self._dense_pinv

    def ensure_chebyshev_bounds(self) -> None:
        """Estimate per-level spectral bounds of the preconditioned systems.

        Double-checked under the setup lock: concurrent cold-start solves
        calibrate exactly once (the losers of the race block until the bounds
        are published, then proceed with them).  Calibration cost — including
        the recursive preconditioner applications it performs — is charged to
        the setup accounting via a private context.
        """
        if self._chebyshev_ready:
            return
        with self._setup_lock:
            if self._chebyshev_ready:
                return
            ctx = SolveContext(cost=self.cost.child())
            ns = self.array_ns
            for i in range(self.chain.depth - 1):
                level = self.chain.levels[i]
                if ns.is_host:
                    apply_m = lambda r, i=i: self._apply_preconditioner(
                        i, r, "chebyshev", ctx
                    )
                else:
                    # Calibration is host-side setup math (power iteration on
                    # small random vectors); bridge each preconditioner
                    # application through the namespace under the "setup"
                    # transfer reason — it happens once per operator, off the
                    # per-solve O(1) transfer budget.
                    apply_m = lambda r, i=i: ns.to_host(
                        self._apply_preconditioner(
                            i, ns.asarray(r, reason="setup"), "chebyshev", ctx
                        ),
                        reason="setup",
                    )
                lo, hi = estimate_extreme_eigenvalues(
                    lambda v, lap=level.laplacian: lap @ v,
                    apply_m,
                    level.num_vertices,
                    seed=self._rng,
                    project=self._level_projectors[i],
                )
                self._chebyshev_bounds[i] = (lo, hi)
            # Charge before publishing readiness (see jacobi_preconditioner).
            self._charge_setup(ctx.cost.work, ctx.cost.depth)
            self._chebyshev_ready = True

    # ------------------------------------------------------------------ #
    # recursive preconditioner (batched)
    # ------------------------------------------------------------------ #
    def _solve_bottom(self, b: np.ndarray, ctx: SolveContext) -> np.ndarray:
        solver = self.chain.bottom_solver
        width = b.shape[1] if b.ndim == 2 else 1
        # Two triangular sweeps over the sparse factor per column.
        ctx.cost.charge(
            work=float(max(solver.factor_nnz, solver.n)) * width,
            depth=math.log2(max(solver.n, 2)),
        )
        return solver.solve(b, kernels=self.kernels)

    def _apply_preconditioner(
        self, level_index: int, r: np.ndarray, inner: str, ctx: SolveContext
    ) -> np.ndarray:
        """Approximate ``B_i^+ r`` via compiled elimination transfer + recursive solve."""
        if self._device is None:
            r = np.asarray(r, dtype=float)
        if r.ndim == 1:
            return self._apply_preconditioner(level_index, r[:, None], inner, ctx)[:, 0]
        level = self.chain.levels[level_index]
        assert level.elimination is not None
        elim = level.elimination
        # Levels built by build_chain carry precompiled transfers; fall back
        # to the elimination's lazy compile for hand-assembled chains.  A
        # non-host operator swaps in the device-resident schedule twin.
        if self._device is not None:
            transfers = self._device.level_transfers[level_index]
        else:
            transfers = level.transfers if level.transfers is not None else elim.transfer
        width = r.shape[1]
        charge_elimination_transfer(ctx.cost, elim.num_eliminated, elim.rounds, width)
        r_reduced, carry = transfers.forward(r, kernels=self.kernels)
        x_reduced = self._solve_level(level_index + 1, r_reduced, inner, ctx)
        x = transfers.backward(carry, x_reduced, kernels=self.kernels)
        charge_elimination_transfer(ctx.cost, elim.num_eliminated, elim.rounds, width)
        return x

    def _solve_level(
        self, level_index: int, b: np.ndarray, inner: str, ctx: SolveContext
    ) -> np.ndarray:
        """Approximately solve ``A_i x = b`` with the fixed per-level budget."""
        if level_index >= self.chain.depth - 1:
            return self._solve_bottom(b, ctx)
        level = self.chain.levels[level_index]
        lap = level.laplacian
        kset = self.kernels
        if self._device is not None:
            operand = self._device.level_operands[level_index]
            project = self._device.level_projectors[level_index]
        else:
            operand = self._level_operands[level_index]
            project = self._level_projectors[level_index]
        apply_a = lambda v: kset.csr_matvec(operand, v)
        b = project(b)
        preconditioner = lambda r: self._apply_preconditioner(level_index, r, inner, ctx)
        iters = self.inner_iterations
        width = b.shape[1] if b.ndim == 2 else 1
        ctx.cost.charge(
            work=float(iters) * max(lap.nnz, 1) * width,
            depth=float(iters) * math.log2(max(level.num_vertices, 2)),
        )
        if inner == "chebyshev" and self._chebyshev_bounds[level_index] is not None:
            lo, hi = self._chebyshev_bounds[level_index]
            return chebyshev_apply(
                apply_a,
                preconditioner,
                b,
                lambda_min=lo,
                lambda_max=hi,
                iterations=iters,
                project=project,
                kernels=kset,
            )
        result = batched_conjugate_gradient(
            apply_a,
            b,
            preconditioner=preconditioner,
            fixed_iterations=iters,
            kernels=kset,
        )
        x = result.x[:, 0] if b.ndim == 1 else result.x
        return project(x)

    # ------------------------------------------------------------------ #
    # public solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        b: np.ndarray,
        *,
        tol: Optional[float] = None,
        max_iterations: Optional[int] = None,
        method: Optional[str] = None,
    ) -> SolveReport:
        """Solve the original system for one or many right-hand sides.

        Parameters
        ----------
        b:
            Right-hand side(s): shape ``(n,)`` for a single solve or
            ``(n, k)`` for ``k`` simultaneous solves sharing the factorized
            chain.  For pure Laplacian inputs each column is projected onto
            the range (per-component zero sum).  An empty ``(n, 0)`` batch is
            a no-op: the report carries an empty ``(n, 0)`` solution with
            ``converged=True`` and zero iterations/work, so callers slicing
            right-hand-side blocks need no special case.
        tol:
            Relative 2-norm residual target; defaults to the
            :class:`SolverConfig` value.  Must be positive — the same
            validation :class:`SolverConfig` applies at construction time
            (``tol=0.0`` would otherwise stall in the stagnation break and
            report a misleading unconverged result).
        max_iterations:
            Cap on outer iterations; defaults to the :class:`SolverConfig`
            value.  Must be ``>= 1``.
        method:
            Optional per-call override of the configured solve method (a
            name registered in :mod:`repro.core.methods`).

        Notes
        -----
        This method is re-entrant: concurrent calls on one operator (cached
        or not) are safe and report the same ``x``/``work``/``depth`` bit for
        bit as serial calls.  See the module docstring for how per-call
        contexts and the setup lock make that hold.
        """
        b = np.asarray(b, dtype=float)
        if b.ndim not in (1, 2):
            raise ValueError("b must be a vector (n,) or a batch (n, k)")
        if b.shape[0] != self._original_n:
            raise ValueError(f"b must have length {self._original_n}")
        single = b.ndim == 1
        rhs_block = b[:, None] if single else b
        width = rhs_block.shape[1]

        cfg = self.solver_config
        tol = cfg.tol if tol is None else float(tol)
        if not tol > 0:
            raise ValueError(f"tol must be positive (got {tol})")
        max_iterations = cfg.max_iterations if max_iterations is None else int(max_iterations)
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1 (got {max_iterations})")
        spec = get_method(cfg.method if method is None else method)

        if width == 0:
            return self._empty_report()

        ctx = SolveContext(cost=self.cost.child())

        if self.reduction is not None and not self.reduction.trivial:
            rhs = self.reduction.expand_rhs(rhs_block)
        else:
            rhs = rhs_block
        if self._device is not None:
            # RHS ingress — the one sanctioned host->device array transfer of
            # a solve.  Everything until egress below stays in the namespace.
            rhs = self.array_ns.asarray(rhs, reason="ingress")
            rhs = self._device.projector(rhs)
            result = spec.run(self, ctx, rhs, tol, max_iterations)
            x = self._device.projector(result.x)
            # Solution egress — reports are always host-side float64.
            x = self.array_ns.to_host(x, reason="egress")
        else:
            rhs = self._projector(rhs)
            result = spec.run(self, ctx, rhs, tol, max_iterations)
            x = self._projector(result.x)

        if self.reduction is not None and not self.reduction.trivial:
            x_out = self.reduction.restrict_solution(x)
            residual = np.linalg.norm(rhs_block - (self.original_matrix() @ x_out), axis=0)
            denom = np.linalg.norm(rhs_block, axis=0)
            rel = np.where(denom > 0, residual / np.where(denom > 0, denom, 1.0), residual)
        else:
            x_out = x
            rel = result.residuals

        report = SolveReport(
            x=x_out[:, 0] if single else x_out,
            iterations=int(result.iterations.max(initial=0)),
            relative_residual=float(rel.max(initial=0.0)),
            converged=bool(result.converged.all()),
            work=ctx.cost.work,
            depth=ctx.cost.depth,
            stats={
                "chain_levels": float(self.chain.depth),
                "inner_iterations": float(self.inner_iterations),
                "setup_work": self.setup_work,
                "setup_depth": self.setup_depth,
                "batch_width": float(width),
            },
            column_iterations=None if single else result.iterations.copy(),
            column_residuals=None if single else np.asarray(rel, dtype=float).copy(),
            column_converged=None if single else result.converged.copy(),
        )
        # Cumulative operator-level accounting (what ``op.cost`` exposes to
        # benchmarks and caller-supplied models) — the only cross-solve
        # mutation left, serialized here.
        with self._accounting_lock:
            self.cost.sequential(ctx.cost)
        return report

    def update(
        self,
        edits,
        *,
        cache: bool = False,
        invalidate_cache: bool = False,
    ):
        """Apply a batched edge edit to this factorized system.

        Patches the factorization in place of a full re-``factorize()``:
        the top chain level is rebuilt exactly against the mutated graph
        while the deeper levels (sparsifier, elimination, compiled
        transfers, bottom factor) are reused as a stale preconditioner —
        solves on the returned operator converge to the mutated system's
        true solution, staleness only costs iterations.  Once the
        accumulated damage exceeds
        :attr:`~repro.core.config.ChainConfig.update_rebuild_fraction` (or
        the batch merges connected components), the operator is instead
        rebuilt from scratch, bit-identical to a fresh ``factorize()`` of
        the mutated graph under this operator's original seed.

        Returns ``(operator, report)``: the operator to use from now on
        (``self`` for an empty batch; otherwise a new object — ``self``
        stays valid for in-flight solves against the old graph) and an
        :class:`~repro.core.update.UpdateReport` describing what happened.
        See :func:`repro.core.update.update_operator` for the ``cache`` /
        ``invalidate_cache`` semantics.
        """
        from repro.core.update import update_operator

        return update_operator(
            self, edits, cache=cache, invalidate_cache=invalidate_cache
        )

    def to_backend(self, backend: str) -> "LaplacianOperator":
        """Rehost this factorized operator on another array backend.

        Returns an operator sharing this one's chain, Gremban reduction, and
        configuration, with ``SolverConfig.array_backend`` replaced by
        ``backend`` — the expensive factorization is reused; only the
        device-resident twins (CSR operands, transfer schedules, projector
        constants) are built for the new namespace, as one-time ``"upload"``
        transfers.  Already-calibrated Chebyshev bounds carry over, so the
        sibling never re-runs the randomized calibration.  ``self`` stays
        fully usable; round-tripping ``op.to_backend(b).to_backend("numpy")``
        yields host solves bit-identical to ``op``'s.

        ``backend`` is taken literally (the ``REPRO_ARRAY_BACKEND`` override
        applies to :func:`factorize`, not to this explicit request).  Raises
        :class:`ValueError` for a malformed name and
        :class:`~repro.kernels.array_ns.ArrayBackendError` when the backend
        is unavailable (e.g. cupy without CUDA).
        """
        if not is_valid_backend_name(backend):
            from repro.kernels.array_ns import ARRAY_BACKEND_NAMES

            raise ValueError(
                f"unknown array_backend {backend!r}; "
                f"expected one of {ARRAY_BACKEND_NAMES} or 'array_api:<module>'"
            )
        ns = get_namespace(backend)
        if ns.name == self.array_ns.name:
            return self
        solver_config = dataclasses.replace(self.solver_config, array_backend=ns.name)
        return LaplacianOperator(
            graph=self.graph,
            chain=self.chain,
            chain_config=self.chain_config,
            solver_config=solver_config,
            reduction=self.reduction,
            original=self._original,
            original_n=self._original_n,
            rng=self._rng,
            cost=CostModel(),
            factorize_seed=self.factorize_seed,
            chebyshev_bounds=(
                list(self._chebyshev_bounds) if self._chebyshev_ready else None
            ),
        )

    def _empty_report(self) -> SolveReport:
        """The trivial report for a ``(n, 0)`` batched right-hand side."""
        return SolveReport(
            x=np.zeros((self._original_n, 0)),
            iterations=0,
            relative_residual=0.0,
            converged=True,
            work=0.0,
            depth=0.0,
            stats={
                "chain_levels": float(self.chain.depth),
                "inner_iterations": float(self.inner_iterations),
                "setup_work": self.setup_work,
                "setup_depth": self.setup_depth,
                "batch_width": 0.0,
            },
            column_iterations=np.zeros(0, dtype=np.int64),
            column_residuals=np.zeros(0),
            column_converged=np.zeros(0, dtype=bool),
        )


def factorize(
    matrix: MatrixInput,
    chain: Optional[ChainConfig] = None,
    solver: Optional[SolverConfig] = None,
    *,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    cache: bool = False,
    memory_profile: bool = False,
) -> LaplacianOperator:
    """Build a reusable :class:`LaplacianOperator` for ``matrix``.

    This is the expensive phase of Theorem 1.1 (near-linear work, polylog
    depth); the returned operator amortizes it over arbitrarily many
    :meth:`~LaplacianOperator.solve` calls.

    Parameters
    ----------
    matrix:
        A :class:`~repro.graph.graph.Graph` (solve its Laplacian), a graph
        Laplacian, or a general SDD matrix (``scipy.sparse`` / dense array;
        reduced to a Laplacian with the Gremban reduction).
    chain, solver:
        Frozen configuration objects; ``None`` selects the defaults.
    seed:
        RNG seed controlling every randomized component of the setup.
    cost:
        Optional cost model; defaults to a fresh enabled :class:`CostModel`
        so setup/solve work and depth are always meaningful.
    cache:
        Consult and populate the process-level chain cache
        (:mod:`repro.core.chain_cache`).  Only integer-seeded
        factorizations are cacheable — with a generator or ``None`` seed two
        calls are not reproducibly identical, so the cache is bypassed.
    memory_profile:
        Record per-stage tracemalloc peaks and per-stage RSS high-water
        marks in ``operator.chain.stats`` (see
        :func:`repro.core.chain.build_chain`).  Profiling runs bypass the
        chain cache in both directions: a hit would return a chain built
        without the requested profile, and a profiled build is not
        representative to share.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.core.operator import factorize
    >>> import numpy as np
    >>> g = generators.grid_2d(20, 20)
    >>> op = factorize(g, seed=0)
    >>> b = np.zeros((g.n, 2)); b[0] = 1.0; b[-1] = -1.0
    >>> report = op.solve(b, tol=1e-8)
    >>> report.converged
    True
    """
    from repro.core import chain_cache  # late import: cache stores operators

    chain_config = chain if chain is not None else ChainConfig()
    solver_config = solver if solver is not None else SolverConfig()

    # Resolve the array backend (REPRO_ARRAY_BACKEND wins) into the config
    # *before* the cache key is computed: operators of different array
    # backends hold their chains in different memories and must never serve
    # each other from the cache.  Availability and the numba-combination
    # rule are checked here too, so a bad backend fails before the O(m)
    # chain build rather than after it.
    resolved_backend = resolve_backend_name(solver_config.array_backend)
    if resolved_backend != solver_config.array_backend:
        solver_config = dataclasses.replace(
            solver_config, array_backend=resolved_backend
        )
    array_ns = get_namespace(resolved_backend)
    if not array_ns.is_host:
        _kernels_mod.get_kernels(solver_config.kernel_backend, array_ns=array_ns)

    key = None
    if cache and not memory_profile:
        key = chain_cache.make_key(matrix, chain_config, solver_config, seed)
        if key is not None:
            hit = chain_cache.lookup(key)
            if hit is not None:
                # No setup work happens on a hit — that is the point of the
                # cache — so nothing is charged to a caller-supplied model.
                return hit

    # A cacheable operator is shared between future callers, so it must not
    # capture this caller's cost model — it accounts into a private model
    # and the setup charges are mirrored to the caller below.
    shared = key is not None
    model = CostModel() if (shared or cost is None) else cost
    rng = as_rng(seed)

    reduction: Optional[GrembanReduction] = None
    original: Optional[sp.spmatrix] = None
    if isinstance(matrix, Graph):
        graph = matrix
        original_n = matrix.n
    else:
        mat = sp.csr_matrix(matrix)
        if not is_sdd(mat):
            raise ValueError("input matrix is not symmetric diagonally dominant")
        reduction = sdd_to_laplacian(mat)
        original_n = mat.shape[0]
        original = mat
        graph = laplacian_to_graph(reduction.laplacian)

    built = build_chain(
        graph, config=chain_config, seed=rng, cost=model, memory_profile=memory_profile
    )
    operator = LaplacianOperator(
        graph=graph,
        chain=built,
        chain_config=chain_config,
        solver_config=solver_config,
        reduction=reduction,
        original=original,
        original_n=original_n,
        rng=rng,
        cost=model,
        factorize_seed=int(seed)
        if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool)
        else None,
    )
    if key is not None:
        chain_cache.store(key, operator)
        if cost is not None:
            cost.charge(work=operator.setup_work, depth=operator.setup_depth)
    return operator
