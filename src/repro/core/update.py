"""Incremental re-factorization for mutating graphs (dynamic updates).

The ROADMAP's "dynamic graphs" item: real traffic inserts, deletes, and
reweights edges between solves, and a full :func:`~repro.core.operator.factorize`
per mutation throws away almost all of the expensive chain construction.
:func:`update_operator` (surfaced as
:meth:`LaplacianOperator.update <repro.core.operator.LaplacianOperator.update>`)
patches the existing factorization instead:

* the **top chain level is rebuilt exactly** — mutated graph, fresh CSR
  Laplacian, fresh null-space projectors and kernel operands — so the outer
  iteration's matvec and residuals always see the true mutated system;
* everything **below the top level is reused wholesale** (low-stretch
  subgraph, sampled edges, elimination, compiled transfers, bottom LU) as a
  *stale preconditioner*.

Why that is correct: the reused levels only ever act as the preconditioner
``B_1`` of the (new) top system, and PCG converges to the true solution for
*any* preconditioner that is SPD on the range of the system matrix — the
tolerance is checked against the true residual of the mutated Laplacian, so
staleness costs iterations, never accuracy.  The stale preconditioner's null
space is spanned by the *old* component indicators, which keeps it SPD on
the new range exactly when the edit batch does not **merge** components
(deletes/splits/reweights/intra-component inserts shrink or preserve the
range; a merge would put a direction the preconditioner annihilates into the
new range).  Component merges therefore force a full rebuild regardless of
any threshold.

Damage accounting: only edits that touch the *chain-consumed* edges of the
top level (the low-stretch subgraph plus the sampled off-subgraph edges)
degrade the preconditioner — an edit to an unsampled edge changes only the
exact top matvec.  Each batch's damage, ``(touched chain edges + inserts) /
edges at last factorize``, accumulates across successive patches (staleness
compounds; without accumulation a long drip of 0.1% batches would never
rebuild), and once it exceeds
:attr:`~repro.core.config.ChainConfig.update_rebuild_fraction` the operator
is rebuilt with a fresh ``factorize()`` — **bit-identical** to factorizing
the mutated graph from scratch, because the operator remembers its original
integer seed.  Patched operators are never inserted into the process-level
chain cache (a cache entry must be bit-for-bit identical to a fresh
factorization — see :mod:`repro.core.chain_cache`); rebuilt operators may
be cached normally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.chain import ChainLevel, PreconditionerChain
from repro.graph.laplacian import graph_to_laplacian
from repro.pram.model import CostModel, log2ceil

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operator import LaplacianOperator
    from repro.graph.edits import EdgeEdits

__all__ = ["UpdateReport", "update_operator"]


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`LaplacianOperator.update` call did and why.

    Attributes
    ----------
    strategy:
        ``"noop"`` (empty batch — the original operator is returned
        unchanged), ``"patched"`` (top level rebuilt exactly, deeper levels
        reused as a stale preconditioner), or ``"rebuilt"`` (full
        ``factorize()`` of the mutated graph, bit-identical to fresh).
    reason:
        Human-readable trigger (``"empty edit batch"``, ``"damage below
        threshold"``, ``"components merged"``, ``"damage ... exceeds
        threshold ..."``, ``"patching disabled"``).
    num_edits:
        Total inserts + deletes + reweights in the batch.
    batch_damage:
        This batch's damage fraction: chain-consumed edges touched plus
        inserted edges, over the edge count at the last full factorize.
    accumulated_damage:
        Damage accumulated across every patch since the last full
        factorize, including this batch (``0.0`` after a rebuild).
    threshold:
        The :attr:`~repro.core.config.ChainConfig.update_rebuild_fraction`
        in force.
    seconds:
        Wall-clock time of the update (patch or rebuild).
    """

    strategy: str
    reason: str
    num_edits: int
    batch_damage: float
    accumulated_damage: float
    threshold: float
    seconds: float


@dataclass
class _ChainEdgeState:
    """Damage bookkeeping carried on patched operators.

    ``chain_edges`` holds the indices — in the *current* graph's edge
    numbering — of the top-level edges the chain consumed (low-stretch
    subgraph plus sampled edges; every edge for a depth-1 chain).  Each
    patch translates them through the edit's index map, so successive
    batches keep measuring damage against what the stale chain actually
    uses.  ``baseline_edges`` (the edge count at the last full factorize)
    fixes the damage denominator; ``damage`` is the accumulated fraction.
    """

    chain_edges: np.ndarray
    baseline_edges: int
    damage: float


def _initial_state(op: "LaplacianOperator") -> _ChainEdgeState:
    """Chain-consumed edge set of a freshly factorized operator."""
    top = op.chain.levels[0]
    if top.sparsifier is None:
        # Depth-1 chain: the bottom LU consumed every edge.
        chain_edges = np.arange(op.graph.num_edges, dtype=np.int64)
    else:
        chain_edges = np.union1d(
            top.sparsifier.subgraph_edges, top.sparsifier.sampled_edges
        ).astype(np.int64, copy=False)
    return _ChainEdgeState(
        chain_edges=chain_edges, baseline_edges=op.graph.num_edges, damage=0.0
    )


def _merges_components(op: "LaplacianOperator", edits: "EdgeEdits") -> bool:
    """Whether any inserted edge joins two distinct current components."""
    if edits.num_inserts == 0:
        return False
    labels = op._projector.labels
    return bool(np.any(labels[edits.insert_u] != labels[edits.insert_v]))


def _batch_damage(state: _ChainEdgeState, edits: "EdgeEdits") -> float:
    """Damage fraction of one batch against the chain-consumed edge set."""
    touched = edits.touched_edge_indices()
    hit = np.intersect1d(touched, state.chain_edges, assume_unique=True).size
    return (hit + edits.num_inserts) / max(state.baseline_edges, 1)


def update_operator(
    op: "LaplacianOperator",
    edits: "EdgeEdits",
    *,
    cache: bool = False,
    invalidate_cache: bool = False,
) -> Tuple["LaplacianOperator", UpdateReport]:
    """Apply one edit batch to a factorized operator (patch or rebuild).

    Parameters
    ----------
    op:
        A Graph-backed :class:`~repro.core.operator.LaplacianOperator`
        (operators factorized from SDD matrices via the Gremban reduction
        carry a matrix the edit batch cannot address and raise).
    edits:
        The :class:`~repro.graph.edits.EdgeEdits` batch, expressed against
        ``op.graph``'s current edge numbering.
    cache:
        Forwarded to ``factorize()`` on the rebuild path only — a rebuilt
        operator is bit-identical to a fresh factorization, so it may enter
        the process-level chain cache.  Patched operators never do.
    invalidate_cache:
        Evict every chain-cache entry keyed under the *pre-update* graph's
        fingerprint (the serving layer passes ``True``; library callers who
        still use the old graph elsewhere keep the default).

    Returns
    -------
    (operator, report):
        The operator to use from now on — ``op`` itself for an empty batch,
        otherwise a new operator (the original stays valid for in-flight
        solves against the old graph) — and the :class:`UpdateReport`.
    """
    from repro.core import chain_cache
    from repro.core.operator import LaplacianOperator, factorize

    if op.reduction is not None:
        raise ValueError(
            "update() requires a Graph-backed operator; this operator was "
            "factorized from an SDD matrix through the Gremban reduction, "
            "whose matrix the edge-edit batch cannot address — re-factorize "
            "the mutated matrix instead"
        )
    edits.validate_for(op.graph)

    t0 = time.perf_counter()
    threshold = float(op.chain_config.update_rebuild_fraction)
    if edits.is_empty:
        return op, UpdateReport(
            strategy="noop",
            reason="empty edit batch",
            num_edits=0,
            batch_damage=0.0,
            accumulated_damage=getattr(op, "_update_state", None).damage
            if getattr(op, "_update_state", None) is not None
            else 0.0,
            threshold=threshold,
            seconds=time.perf_counter() - t0,
        )

    state: Optional[_ChainEdgeState] = getattr(op, "_update_state", None)
    if state is None:
        state = _initial_state(op)

    batch_damage = _batch_damage(state, edits)
    accumulated = state.damage + batch_damage

    rebuild_reason: Optional[str] = None
    if _merges_components(op, edits):
        rebuild_reason = "components merged (stale preconditioner would be singular on the new range)"
    elif threshold == 0.0:
        rebuild_reason = "patching disabled (update_rebuild_fraction=0)"
    elif accumulated > threshold:
        rebuild_reason = (
            f"accumulated damage {accumulated:.4f} exceeds threshold {threshold:.4f}"
        )

    old_fingerprint = op.graph.fingerprint() if invalidate_cache else None

    if rebuild_reason is not None:
        new_graph = op.graph.apply_edits(edits)
        new_op = factorize(
            new_graph,
            op.chain_config,
            op.solver_config,
            seed=op.factorize_seed,
            cache=cache,
        )
        if old_fingerprint is not None:
            chain_cache.invalidate_fingerprint(old_fingerprint)
        return new_op, UpdateReport(
            strategy="rebuilt",
            reason=rebuild_reason,
            num_edits=edits.num_edits,
            batch_damage=batch_damage,
            accumulated_damage=0.0,
            threshold=threshold,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------ #
    # patch path: exact new top level, stale levels below
    # ------------------------------------------------------------------ #
    new_graph, index_map = op.graph.apply_edits(edits, return_index_map=True)
    old_top = op.chain.levels[0]
    new_top = ChainLevel(
        graph=new_graph,
        laplacian=graph_to_laplacian(new_graph),
        sparsifier=old_top.sparsifier,
        elimination=old_top.elimination,
        transfers=old_top.transfers,
        kappa=old_top.kappa,
    )
    new_chain = PreconditionerChain(
        levels=[new_top] + list(op.chain.levels[1:]),
        bottom_solver=op.chain.bottom_solver,
        stats=dict(op.chain.stats),
    )
    new_chain.stats["patched_updates"] = (
        float(op.chain.stats.get("patched_updates", 0.0)) + 1.0
    )

    # Translate the chain-consumed edge set into the new numbering (deleted
    # chain edges drop out; their damage is already folded into the
    # accumulator) so the *next* batch measures against what the stale
    # levels still reference.
    translated = index_map[state.chain_edges]
    new_state = _ChainEdgeState(
        chain_edges=translated[translated >= 0],
        baseline_edges=state.baseline_edges,
        damage=accumulated,
    )

    # The constructor re-derives everything the patch must not keep stale:
    # CSR kernel operands, top and per-level null-space projectors, and the
    # Chebyshev bound slots (re-calibrated lazily — or eagerly for the
    # chebyshev method — against the mutated top system).
    model = CostModel()
    model.charge(
        work=float(max(new_graph.num_edges, 1)),
        depth=log2ceil(max(new_graph.n, 2)),
    )
    new_op = LaplacianOperator(
        graph=new_graph,
        chain=new_chain,
        chain_config=op.chain_config,
        solver_config=op.solver_config,
        reduction=None,
        original=None,
        original_n=new_graph.n,
        rng=op._rng,
        cost=model,
        factorize_seed=op.factorize_seed,
    )
    new_op._update_state = new_state
    if old_fingerprint is not None:
        chain_cache.invalidate_fingerprint(old_fingerprint)
    return new_op, UpdateReport(
        strategy="patched",
        reason="damage below threshold",
        num_edits=edits.num_edits,
        batch_damage=batch_damage,
        accumulated_damage=accumulated,
        threshold=threshold,
        seconds=time.perf_counter() - t0,
    )
