"""Frozen configuration objects for the factorize-once / solve-many API.

The solver lifecycle (:func:`repro.core.operator.factorize` followed by
:meth:`repro.core.operator.LaplacianOperator.solve`) is parameterized by two
immutable dataclasses instead of the historical 13-keyword constructor:

* :class:`ChainConfig` — everything that shapes the preconditioner chain
  (Definition 6.3): condition parameter, low-stretch subgraph knobs,
  termination size, sampling ablations.  Two factorizations with equal
  ``ChainConfig`` (and equal graph + seed) produce identical chains, which is
  what makes the process-level chain cache sound.
* :class:`SolverConfig` — everything that shapes an individual solve: the
  iteration method (resolved through the :mod:`repro.core.methods` registry),
  per-level inner iteration budget, and default tolerance/iteration caps.

Both classes are hashable and validated eagerly, so configuration errors
surface at construction time rather than deep inside a solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.core.methods import available_methods
from repro.kernels import BACKEND_NAMES as KERNEL_BACKEND_NAMES
from repro.kernels.array_ns import ARRAY_BACKEND_NAMES, is_valid_backend_name
from repro.util.dtypes import INDEX_DTYPE_NAMES, VALUE_DTYPE_NAMES


@dataclass(frozen=True)
class ChainConfig:
    """Immutable parameters of preconditioner-chain construction.

    Attributes
    ----------
    kappa:
        Per-level condition parameter ``kappa_i`` (Lemma 6.9's uniform
        first-attempt setting).  Roughly ``sqrt(kappa)`` inner iterations are
        spent per level at solve time; larger values shrink the next level
        more aggressively.
    lam, beta:
        Low-stretch subgraph parameters (Theorem 5.9) used inside the
        incremental sparsification step.
    bottom_size:
        Chain termination size; ``None`` selects the practical default of
        :func:`repro.core.chain.default_bottom_size` (the faithful
        ``m^(1/3)`` remains available by passing it explicitly).
    max_levels:
        Hard cap on the number of chain levels.
    oversample, use_log_factor, reweight:
        Sampling knobs forwarded to
        :func:`repro.core.sparsify.incremental_sparsify`.
    use_tree_only:
        Ablation switch (experiment E11): keep only the spanning-tree part of
        the low-stretch construction.
    index_dtype:
        Index dtype of every edge/vertex array the chain build materializes:
        ``"int32"`` (default — halves index memory; factorize raises
        :class:`~repro.util.dtypes.IndexOverflowError` if the graph exceeds
        int32 capacity, i.e. ``max(n, 2m + 2) > 2**31 - 1``), ``"int64"``,
        or ``"auto"`` (smallest dtype that fits, upcasting as needed).
        Index dtypes never change float arithmetic: solves are bit-identical
        across ``int32``/``int64``/``auto``.
    value_dtype:
        Dtype of the chain's edge weights: ``"float64"`` (default,
        bit-identical to historical behaviour) or ``"float32"`` (halves
        weight memory; per-level Laplacians and the solve itself still
        accumulate in float64, but chain weights are rounded — solutions
        differ at single-precision level, so only use it when ~1e-7 relative
        perturbation of the preconditioner is acceptable).
    update_rebuild_fraction:
        Damage threshold of :meth:`~repro.core.operator.LaplacianOperator.update`:
        the incremental path patches the factorization as long as the
        *accumulated* fraction of chain-consumed edges touched by edit
        batches (plus inserted edges) stays at or below this value, and
        falls back to a full, bit-identical ``factorize()`` beyond it.
        ``0.0`` disables patching (every non-empty edit batch rebuilds);
        values above ``1.0`` effectively never trigger the damage rebuild
        (component merges still force one — see :mod:`repro.core.update`).
    """

    kappa: float = 25.0
    lam: int = 2
    beta: float = 6.0
    bottom_size: Optional[int] = None
    max_levels: int = 4
    oversample: float = 1.0
    use_log_factor: bool = False
    reweight: bool = False
    use_tree_only: bool = False
    index_dtype: str = "int32"
    value_dtype: str = "float64"
    update_rebuild_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not self.kappa > 1.0:
            raise ValueError(f"kappa must be > 1 (got {self.kappa})")
        if self.index_dtype not in INDEX_DTYPE_NAMES:
            raise ValueError(
                f"unknown index_dtype {self.index_dtype!r}; "
                f"expected one of {INDEX_DTYPE_NAMES}"
            )
        if self.value_dtype not in VALUE_DTYPE_NAMES:
            raise ValueError(
                f"unknown value_dtype {self.value_dtype!r}; "
                f"expected one of {VALUE_DTYPE_NAMES}"
            )
        if int(self.lam) < 1:
            raise ValueError(f"lam must be a positive integer (got {self.lam})")
        if not self.beta > 0:
            raise ValueError(f"beta must be positive (got {self.beta})")
        if self.bottom_size is not None and int(self.bottom_size) < 1:
            raise ValueError(f"bottom_size must be >= 1 or None (got {self.bottom_size})")
        if int(self.max_levels) < 1:
            raise ValueError(f"max_levels must be >= 1 (got {self.max_levels})")
        if not self.oversample > 0:
            raise ValueError(f"oversample must be positive (got {self.oversample})")
        if not self.update_rebuild_fraction >= 0.0:
            raise ValueError(
                "update_rebuild_fraction must be >= 0 "
                f"(got {self.update_rebuild_fraction})"
            )

    def cache_key(self) -> Tuple:
        """Hashable identity of this configuration (for the chain cache)."""
        return tuple(getattr(self, f.name) for f in fields(self))


@dataclass(frozen=True)
class SolverConfig:
    """Immutable parameters of the iterative solve phase.

    Attributes
    ----------
    method:
        Name of a registered solve method (see
        :func:`repro.core.methods.available_methods`): ``"pcg"`` (default)
        and ``"chebyshev"`` use the preconditioner chain; ``"jacobi"`` and
        ``"direct"`` are the :mod:`repro.linalg` baselines.
    inner_iterations:
        Iterations per chain level; ``None`` selects the paper's
        ``ceil(sqrt(kappa))``.
    tol:
        Default relative-residual target of :meth:`LaplacianOperator.solve`
        (overridable per call).
    max_iterations:
        Default cap on outer iterations (overridable per call).
    kernel_backend:
        Implementation of the solve-path inner loops
        (:mod:`repro.kernels`): ``"numpy"`` (reference sweeps),
        ``"numba"`` (GIL-releasing compiled kernels; raises at factorize
        time when numba is missing), or ``"auto"`` (numba when available,
        else numpy).  The ``REPRO_KERNEL_BACKEND`` environment variable, if
        set, overrides this at factorize time.  Backends are bit-for-bit
        interchangeable — solves return identical results either way.
    array_backend:
        Array namespace the solve path executes in
        (:mod:`repro.kernels.array_ns`): ``"numpy"`` (default, host arrays,
        bit-identical to historical behaviour), ``"cupy"`` (GPU-resident
        chains; requires cupy), ``"array_api:<module>"`` (any CPU-backed
        Array-API namespace, e.g. ``array_api:array_api_strict``), or
        ``"fakedevice"`` (test-only residency-proving wrappers).  The
        ``REPRO_ARRAY_BACKEND`` environment variable, if set, overrides this
        at factorize time — and unlike the kernel backend, the *resolved*
        name enters the chain-cache key, because operators of different
        array backends hold their chains in different memories and are never
        interchangeable.  Only ``"numpy"`` may be combined with
        ``kernel_backend="numba"``.
    """

    method: str = "pcg"
    inner_iterations: Optional[int] = None
    tol: float = 1e-8
    max_iterations: int = 200
    kernel_backend: str = "auto"
    array_backend: str = "numpy"

    def __post_init__(self) -> None:
        known = available_methods()
        if self.method not in known:
            raise ValueError(
                f"unknown method {self.method!r}; registered methods: {', '.join(known)}"
            )
        if self.kernel_backend not in KERNEL_BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKEND_NAMES}"
            )
        if not is_valid_backend_name(self.array_backend):
            raise ValueError(
                f"unknown array_backend {self.array_backend!r}; "
                f"expected one of {ARRAY_BACKEND_NAMES} or 'array_api:<module>'"
            )
        if self.inner_iterations is not None and int(self.inner_iterations) < 1:
            raise ValueError(
                f"inner_iterations must be >= 1 or None (got {self.inner_iterations})"
            )
        if not self.tol > 0:
            raise ValueError(f"tol must be positive (got {self.tol})")
        if int(self.max_iterations) < 1:
            raise ValueError(f"max_iterations must be >= 1 (got {self.max_iterations})")

    def resolve_inner_iterations(self, kappa: float) -> int:
        """The per-level iteration budget for a chain built with ``kappa``."""
        if self.inner_iterations is not None:
            return int(self.inner_iterations)
        return max(2, int(math.ceil(math.sqrt(float(kappa)))))

    def cache_key(self) -> Tuple:
        """Hashable identity of this configuration (for the chain cache).

        Only the fields that shape the factorized operator's state
        (``method`` drives Chebyshev calibration, ``inner_iterations`` the
        per-level budget, ``kernel_backend`` the kernel set the operator
        binds) participate; ``tol`` and ``max_iterations`` are per-call
        defaults that any solve can override, so differing values share one
        cached factorization.  Note the cache keys the *configured* backend
        name: flipping ``REPRO_KERNEL_BACKEND`` between factorize calls in
        one process can serve a cached operator resolved under the previous
        value (results are bit-identical either way; only which code runs
        the sweeps differs).  ``array_backend`` is different: array backends
        are *not* interchangeable (a CuPy operator must never serve a NumPy
        caller), so :func:`repro.core.operator.factorize` resolves
        ``REPRO_ARRAY_BACKEND`` into the config *before* computing this key,
        and the resolved name keys the cache.
        """
        return (self.method, self.inner_iterations, self.kernel_backend, self.array_backend)
