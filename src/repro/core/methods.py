"""Pluggable solve-method registry for :class:`LaplacianOperator`.

The historical solver hard-coded its iteration strategy behind
``if method == "pcg"`` branches.  This module replaces those branches with a
small registry: a *solve method* is a named strategy that, given a factorized
:class:`~repro.core.operator.LaplacianOperator` and a block of right-hand
sides, produces solutions for every column.  Registered out of the box:

* ``"pcg"`` — outer preconditioned CG, chain preconditioner with inner CG
  smoothing (the practical default, see DESIGN.md substitutions);
* ``"chebyshev"`` — outer preconditioned CG, chain preconditioner with inner
  preconditioned Chebyshev (the paper's Lemma 6.7 choice; needs the
  eigenvalue bounds the operator calibrates on demand);
* ``"jacobi"`` — diagonal-preconditioned CG from :mod:`repro.linalg.jacobi`
  (the classical cheap baseline; ignores the chain);
* ``"direct"`` — dense pseudo-inverse application from
  :mod:`repro.linalg.direct` (ground truth for small systems).

New strategies register with :func:`register_method`; configuration
validation (:class:`repro.core.config.SolverConfig`) checks names against
this registry, so registration makes a method immediately usable everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.linalg.cg import BatchedCGResult, batched_conjugate_gradient

#: Signature of a solve strategy:
#: ``(operator, ctx, rhs, tol, max_iterations)`` ->
#: :class:`~repro.linalg.cg.BatchedCGResult`.  ``rhs`` is always ``(n, k)``;
#: ``ctx`` is the per-call :class:`~repro.core.operator.SolveContext` — a
#: strategy must charge all per-solve work/depth through it (and request
#: preconditioners bound to it) rather than mutating operator state, which is
#: what keeps one operator safe to solve from many threads.
MethodRunner = Callable[..., BatchedCGResult]


@dataclass(frozen=True)
class SolveMethod:
    """A registered solve strategy.

    Attributes
    ----------
    name:
        Registry key (the value of ``SolverConfig.method``).
    uses_chain:
        Whether the strategy applies the preconditioner chain (methods that
        do not can solve on operators whose chain was built but is unused,
        and never trigger Chebyshev calibration).
    run:
        The strategy implementation.
    """

    name: str
    uses_chain: bool
    run: MethodRunner


_REGISTRY: Dict[str, SolveMethod] = {}


def register_method(name: str, *, uses_chain: bool = True) -> Callable[[MethodRunner], MethodRunner]:
    """Class decorator registering ``fn`` as the solve method ``name``."""

    def decorator(fn: MethodRunner) -> MethodRunner:
        if name in _REGISTRY:
            raise ValueError(f"solve method {name!r} is already registered")
        _REGISTRY[name] = SolveMethod(name=name, uses_chain=uses_chain, run=fn)
        return fn

    return decorator


def get_method(name: str) -> SolveMethod:
    """Look up a registered solve method by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; registered methods: {', '.join(available_methods())}"
        ) from None


def available_methods() -> Tuple[str, ...]:
    """Names of all registered solve methods (sorted)."""
    return tuple(sorted(_REGISTRY))


# --------------------------------------------------------------------------- #
# built-in strategies
# --------------------------------------------------------------------------- #
@register_method("pcg")
def _run_pcg(operator, ctx, rhs: np.ndarray, tol: float, max_iterations: int) -> BatchedCGResult:
    """Outer CG preconditioned by the chain (inner CG smoothing)."""
    return batched_conjugate_gradient(
        operator.top_matvec(),
        rhs,
        tol=tol,
        max_iterations=max_iterations,
        preconditioner=operator.chain_preconditioner("pcg", ctx),
        on_iteration=lambda cols: operator.charge_outer_iteration(ctx, cols),
        kernels=operator.kernels,
    )


@register_method("chebyshev")
def _run_chebyshev(operator, ctx, rhs: np.ndarray, tol: float, max_iterations: int) -> BatchedCGResult:
    """Outer CG preconditioned by the chain (inner Chebyshev, Lemma 6.7)."""
    operator.ensure_chebyshev_bounds()
    return batched_conjugate_gradient(
        operator.top_matvec(),
        rhs,
        tol=tol,
        max_iterations=max_iterations,
        preconditioner=operator.chain_preconditioner("chebyshev", ctx),
        on_iteration=lambda cols: operator.charge_outer_iteration(ctx, cols),
        kernels=operator.kernels,
    )


@register_method("jacobi", uses_chain=False)
def _run_jacobi(operator, ctx, rhs: np.ndarray, tol: float, max_iterations: int) -> BatchedCGResult:
    """Diagonal-preconditioned CG baseline (no chain)."""
    return batched_conjugate_gradient(
        operator.top_matvec(),
        rhs,
        tol=tol,
        max_iterations=max_iterations,
        preconditioner=operator.jacobi_preconditioner(),
        on_iteration=lambda cols: operator.charge_outer_iteration(ctx, cols),
        kernels=operator.kernels,
    )


@register_method("direct", uses_chain=False)
def _run_direct(operator, ctx, rhs: np.ndarray, tol: float, max_iterations: int) -> BatchedCGResult:
    """Dense pseudo-inverse solve (Fact 6.4 machinery as a baseline).

    The one-time dense factorization is charged to the operator's *setup*
    accounting inside :meth:`dense_pseudoinverse`; only the per-application
    cost lands on this solve's context.

    The dense application is host math (``np.linalg``), so on a non-host
    array backend this method round-trips through host like the bottom-level
    LU solve does (reason ``"bottom"``) — it is a ground-truth baseline, not
    a device hot path.
    """
    ns = operator.kernels.array_ns
    rhs_host = rhs if ns.is_host else ns.to_host(rhs, reason="bottom")
    pinv = operator.dense_pseudoinverse()
    x = pinv @ rhs_host
    k = rhs_host.shape[1]
    ctx.cost.charge(work=float(pinv.shape[0]) ** 2 * k, depth=np.log2(max(pinv.shape[0], 2)))
    b_norm = np.linalg.norm(rhs_host, axis=0)
    residual = np.linalg.norm(operator.laplacian @ x - rhs_host, axis=0)
    res = np.where(b_norm > 0, residual / np.where(b_norm > 0, b_norm, 1.0), 0.0)
    return BatchedCGResult(
        x=x if ns.is_host else ns.asarray(x, reason="bottom"),
        iterations=np.ones(k, dtype=np.int64),
        converged=res <= tol,
        residuals=res,
        active_counts=[k],
    )
