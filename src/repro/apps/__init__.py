"""Applications of the parallel SDD solver and decomposition (Section 1).

* :mod:`~repro.apps.sparsification` — spectral sparsification via effective
  resistances (Spielman–Srivastava), using the solver for the resistance
  estimates.
* :mod:`~repro.apps.maxflow` — (1 - eps)-approximate maximum flow /
  minimum cut on undirected graphs via electrical flows (Christiano et al.),
  with an exact augmenting-path baseline.
* :mod:`~repro.apps.spanner` — low-stretch spanners / approximate
  shortest-path distances from the low-diameter decomposition itself.
"""

from repro.apps.sparsification import spectral_sparsify, effective_resistances, SparsifierResult
from repro.apps.maxflow import approx_max_flow, exact_max_flow, MaxFlowResult
from repro.apps.spanner import decomposition_spanner, approximate_distances, SpannerResult

__all__ = [
    "spectral_sparsify",
    "effective_resistances",
    "SparsifierResult",
    "approx_max_flow",
    "exact_max_flow",
    "MaxFlowResult",
    "decomposition_spanner",
    "approximate_distances",
    "SpannerResult",
]
