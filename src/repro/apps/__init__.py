"""Applications of the parallel SDD solver and decomposition (Section 1).

A workload suite exercising the factorize-once / solve-many
:class:`~repro.core.operator.LaplacianOperator` lifecycle from many angles:

* :mod:`~repro.apps.sparsification` — spectral sparsification via effective
  resistances (Spielman–Srivastava), using the solver for the resistance
  estimates.
* :mod:`~repro.apps.resistance` — a batched effective-resistance oracle for
  arbitrary vertex pairs (JL-sketched batched solves, exact small-batch
  path, chain-cache reuse).
* :mod:`~repro.apps.harmonic` — harmonic interpolation / semi-supervised
  label propagation via grounded boundary-condition solves on the interior
  Laplacian (multi-label batched right-hand sides).
* :mod:`~repro.apps.spectral` — spectral embeddings and Fiedler vectors via
  deflated inverse power iteration with the operator as the inner solve.
* :mod:`~repro.apps.maxflow` — (1 - eps)-approximate maximum flow /
  minimum cut on undirected graphs via electrical flows (Christiano et al.),
  with an exact augmenting-path baseline.
* :mod:`~repro.apps.spanner` — low-stretch spanners / approximate
  shortest-path distances from the low-diameter decomposition itself.

Every workload is validated against the dense reference oracles in
:mod:`repro.testing.oracles` over the seeded fuzz corpus.
"""

from repro.apps.sparsification import spectral_sparsify, effective_resistances, SparsifierResult
from repro.apps.resistance import ResistanceOracle, effective_resistance_pairs
from repro.apps.harmonic import (
    HarmonicLabelResult,
    HarmonicResult,
    harmonic_interpolation,
    harmonic_labels,
)
from repro.apps.spectral import SpectralResult, fiedler_vector, spectral_embedding
from repro.apps.maxflow import approx_max_flow, exact_max_flow, MaxFlowResult
from repro.apps.spanner import decomposition_spanner, approximate_distances, SpannerResult

__all__ = [
    "spectral_sparsify",
    "effective_resistances",
    "SparsifierResult",
    "ResistanceOracle",
    "effective_resistance_pairs",
    "HarmonicResult",
    "HarmonicLabelResult",
    "harmonic_interpolation",
    "harmonic_labels",
    "SpectralResult",
    "spectral_embedding",
    "fiedler_vector",
    "approx_max_flow",
    "exact_max_flow",
    "MaxFlowResult",
    "decomposition_spanner",
    "approximate_distances",
    "SpannerResult",
]
