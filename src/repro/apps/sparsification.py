"""Spectral sparsification by effective resistances (Spielman–Srivastava).

The paper notes (Section 1, "Some Applications") that spectral sparsifiers
follow from O(log n) Laplacian solves.  This module implements the
Spielman–Srivastava construction on top of the factorize-once / solve-many
solver API (:func:`repro.core.operator.factorize`):

1. effective resistances are estimated as
   ``R_eff(u, v) ≈ ||Q B L^+ (e_u - e_v)||^2`` where ``B`` is the weighted
   incidence matrix and ``Q`` a random ±1 Johnson–Lindenstrauss projection
   with ``O(log n / eps^2)`` rows — all rows are solved against the *same*
   factorized Laplacian in **one batched multi-RHS call**, so the chain is
   built once and every matvec/elimination transfer is shared across the JL
   dimensions;
2. ``q`` edges are sampled with replacement with probability proportional to
   ``w_e * R_eff(e)`` (their leverage scores) and reweighted by
   ``w_e / (q p_e)``.

The result ``H`` satisfies ``(1 - eps) L_G ⪯ L_H ⪯ (1 + eps) L_G`` with high
probability; the benchmark measures the realized quadratic-form distortion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.operator import LaplacianOperator, factorize
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.util.rng import RngLike, as_rng


@dataclass
class SparsifierResult:
    """A spectral sparsifier and its bookkeeping.

    Attributes
    ----------
    graph:
        The sparsifier ``H`` (same vertex set, reweighted sampled edges).
    resistances:
        The estimated effective resistance of every original edge.
    num_samples:
        Number of samples drawn (with replacement).
    stats:
        Diagnostics (sum of leverage scores, distinct edges kept, ...).
    """

    graph: Graph
    resistances: np.ndarray
    num_samples: int
    stats: Dict[str, float] = field(default_factory=dict)


def effective_resistances(
    graph: Graph,
    *,
    jl_dimension: Optional[int] = None,
    epsilon: float = 0.3,
    operator: Optional[LaplacianOperator] = None,
    solver_tol: float = 1e-6,
    seed: RngLike = None,
    exact: bool = False,
) -> np.ndarray:
    """Estimate the effective resistance of every edge of ``graph``.

    Parameters
    ----------
    jl_dimension:
        Number of random projection rows; defaults to
        ``ceil(24 log n / eps^2)`` capped at 200.  All rows are solved in a
        single batched call against one factorization.
    exact:
        Compute exact resistances with a dense pseudo-inverse instead
        (testing / small graphs only).
    operator:
        Reuse an existing factorized operator for the graph (otherwise one
        is built).

    Notes
    -----
    Pinned edge-case behavior (see ``tests/test_resistance.py``):

    * a single-edge graph reports exactly ``1 / w``;
    * parallel edges each get their own entry with the *same* value (the
      resistance of the coalesced pair — sampling weights remain per-edge);
    * edges never span components, so every entry is finite even on
      disconnected graphs.  For arbitrary vertex-*pair* queries (which may
      span components and then return ``inf``) use
      :class:`repro.apps.resistance.ResistanceOracle`.
    """
    rng = as_rng(seed)
    n, m = graph.n, graph.num_edges
    if m == 0:
        return np.zeros(0)
    lap = graph_to_laplacian(graph)
    if exact:
        pinv = np.linalg.pinv(lap.toarray(), hermitian=True)
        return pinv[graph.u, graph.u] + pinv[graph.v, graph.v] - 2 * pinv[graph.u, graph.v]
    if jl_dimension is None:
        jl_dimension = min(200, int(math.ceil(24.0 * math.log(max(n, 2)) / epsilon**2)))
    jl_dimension = max(4, jl_dimension)
    if operator is None:
        operator = factorize(graph, seed=rng)
    incidence = graph.incidence_matrix()  # rows scaled by sqrt(w)
    # One right-hand side per JL row: column k of RHS is B^T q_k with q_k a
    # random +-1/sqrt(d) vector over the edges.
    scale = 1.0 / math.sqrt(jl_dimension)
    q = rng.choice([-1.0, 1.0], size=(m, jl_dimension)) * scale
    rhs = incidence.T @ q  # (n, jl_dimension)
    rhs = rhs - rhs.mean(axis=0)
    # Z^T = L^+ B^T Q^T, obtained in one batched multi-RHS solve.
    report = operator.solve(rhs, tol=solver_tol)
    z = report.x  # (n, jl_dimension)
    diff = z[graph.u, :] - z[graph.v, :]
    return np.maximum(np.sum(diff**2, axis=1), 1e-15)


def spectral_sparsify(
    graph: Graph,
    epsilon: float = 0.5,
    *,
    num_samples: Optional[int] = None,
    seed: RngLike = None,
    solver_tol: float = 1e-6,
    exact_resistances: bool = False,
    operator: Optional[LaplacianOperator] = None,
) -> SparsifierResult:
    """Build a spectral sparsifier of ``graph`` (Spielman–Srivastava).

    Parameters
    ----------
    epsilon:
        Target spectral approximation quality.
    num_samples:
        Number of edge samples ``q``; defaults to
        ``ceil(9 n log n / eps^2)``.
    exact_resistances:
        Use exact effective resistances (dense; for tests and small graphs).
    operator:
        Reuse an existing factorized operator for the resistance estimates.
    """
    rng = as_rng(seed)
    n, m = graph.n, graph.num_edges
    if m == 0:
        return SparsifierResult(graph.copy(), np.zeros(0), 0)
    resistances = effective_resistances(
        graph,
        epsilon=epsilon,
        seed=rng,
        solver_tol=solver_tol,
        exact=exact_resistances,
        operator=operator,
    )
    leverage = graph.w * resistances
    probs = leverage / leverage.sum()
    if num_samples is None:
        num_samples = int(math.ceil(9.0 * n * math.log(max(n, 2)) / epsilon**2))
    num_samples = max(num_samples, n)
    counts = rng.multinomial(num_samples, probs)
    chosen = np.flatnonzero(counts)
    new_w = graph.w[chosen] * counts[chosen] / (num_samples * probs[chosen])
    h = Graph(n, graph.u[chosen], graph.v[chosen], new_w)
    stats = {
        "total_leverage": float(leverage.sum()),
        "distinct_edges": float(chosen.size),
        "epsilon": float(epsilon),
    }
    return SparsifierResult(graph=h, resistances=resistances, num_samples=int(num_samples), stats=stats)


def quadratic_form_distortion(
    original: Graph, sparsifier: Graph, num_probes: int = 25, seed: RngLike = None
) -> float:
    """Maximum relative deviation of ``x^T L_H x`` from ``x^T L_G x`` over random probes."""
    rng = as_rng(seed)
    lg = graph_to_laplacian(original)
    lh = graph_to_laplacian(sparsifier)
    worst = 0.0
    for _ in range(num_probes):
        x = rng.standard_normal(original.n)
        x -= x.mean()
        qg = float(x @ (lg @ x))
        qh = float(x @ (lh @ x))
        if qg > 1e-12:
            worst = max(worst, abs(qh - qg) / qg)
    return worst
