"""Spanners and approximate distances from the low-diameter decomposition.

A direct application of the decomposition of Section 4: contracting the
components of a low-diameter decomposition and recursing gives a sparse
spanning subgraph whose distances approximate the original ones up to a
factor related to the component diameters — the same mechanism that powers
the AKPW construction, exposed here as a standalone utility (and exercised as
an example application).

Unlike its siblings in :mod:`repro.apps`, the spanner is built purely on the
decomposition layer — it performs no Laplacian solves, so it has no solver
lifecycle to manage; it only threads a :class:`~repro.pram.model.CostModel`
through the decomposition/contraction rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.decomposition import split_graph
from repro.graph.contraction import contract_vertices
from repro.graph.graph import Graph
from repro.graph.shortest_paths import dijkstra_distances
from repro.pram.model import CostModel, null_cost
from repro.util.rng import RngLike, as_rng


@dataclass
class SpannerResult:
    """A spanning subgraph built from repeated low-diameter decomposition.

    Attributes
    ----------
    edge_indices:
        Indices (into the input graph) of the spanner edges.
    levels:
        Number of decomposition/contraction rounds used.
    stats:
        Edge counts per round and the radius parameter used.
    """

    edge_indices: np.ndarray
    levels: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        return int(self.edge_indices.shape[0])

    def subgraph(self, graph: Graph) -> Graph:
        return graph.edge_subgraph(self.edge_indices)


def decomposition_spanner(
    graph: Graph,
    rho: int = 8,
    *,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    max_levels: int = 30,
) -> SpannerResult:
    """Build a sparse spanning subgraph by repeated decomposition.

    Each round decomposes the current (contracted) graph into components of
    hop radius at most ``rho``, keeps the BFS trees of the components plus
    one representative edge per pair of adjacent components, and contracts.
    The output always contains a spanning forest of the input graph, so all
    distances are finite, and its hop distances are within a factor
    ``O(rho)`` per round of the originals.
    """
    cost = cost or null_cost()
    rng = as_rng(seed)
    current = graph
    orig_ids = np.arange(graph.num_edges, dtype=np.int64)
    chosen = []
    levels = 0
    for _ in range(max_levels):
        if current.n <= 1 or current.num_edges == 0:
            break
        levels += 1
        decomp = split_graph(
            current, rho=rho, seed=rng, cost=cost, jitter_range=max(1, rho // 2), sample_coefficient=1.0
        )
        tree_local = decomp.tree_edges()
        if tree_local.size:
            chosen.append(orig_ids[tree_local])
        # One representative edge per pair of adjacent components.
        labels = decomp.labels
        lo = np.minimum(labels[current.u], labels[current.v])
        hi = np.maximum(labels[current.u], labels[current.v])
        cross = lo != hi
        if np.any(cross):
            keys = lo[cross] * np.int64(decomp.num_components) + hi[cross]
            cross_idx = np.flatnonzero(cross)
            _, first = np.unique(keys, return_index=True)
            chosen.append(orig_ids[cross_idx[first]])
        contracted, surviving, _ = contract_vertices(current, labels, cost=cost)
        current = contracted
        orig_ids = orig_ids[surviving]

    edges = np.unique(np.concatenate(chosen)) if chosen else np.empty(0, dtype=np.int64)
    return SpannerResult(
        edge_indices=edges,
        levels=levels,
        stats={"rho": float(rho), "input_edges": float(graph.num_edges)},
    )


def approximate_distances(
    graph: Graph,
    spanner: SpannerResult,
    sources: np.ndarray,
) -> np.ndarray:
    """Distances from ``sources`` measured inside the spanner subgraph."""
    sub = spanner.subgraph(graph)
    return dijkstra_distances(sub, sources)
