"""Spectral embeddings and Fiedler vectors via the factorized solver.

Spectral partitioning/embedding needs the smallest *nontrivial* Laplacian
eigenpairs — exactly what inverse power iteration with a fast ``L^+`` action
delivers (each iteration amplifies the small end of the spectrum).  This
module wires :func:`repro.linalg.inverse_iteration.deflated_inverse_iteration`
to the factorize-once / solve-many operator:

* the chain is factorized once; every subspace iteration is **one batched
  multi-RHS solve** over all Ritz directions (block width ``k`` +
  oversampling), so the embedding dimension rides the lockstep path;
* the per-component null space (the ``c`` indicator vectors of a
  ``c``-component graph) is **deflated exactly** rather than shifted away,
  so disconnected graphs produce their smallest nontrivial eigenpairs with
  no special casing.

Requesting more pairs than exist (``k > n - c``) raises ``ValueError`` —
the same contract as :func:`repro.testing.oracles.dense_spectral_embedding`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import LaplacianOperator, factorize
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.inverse_iteration import deflated_inverse_iteration
from repro.util.rng import RngLike


@dataclass
class SpectralResult:
    """Result of :func:`spectral_embedding`.

    Attributes
    ----------
    eigenvalues:
        The ``k`` smallest nontrivial Laplacian eigenvalues, ascending.
    vectors:
        ``(n, k)`` orthonormal eigenvector estimates (orthogonal to every
        component indicator).
    iterations:
        Subspace iterations performed (each one batched solve).
    residuals:
        Final ``||L v - lambda v||`` per pair.
    converged:
        Whether the residual tolerance was met for every pair.
    stats:
        Diagnostics (block width, component count, ...).
    """

    eigenvalues: np.ndarray
    vectors: np.ndarray
    iterations: int
    residuals: np.ndarray
    converged: bool
    stats: Dict[str, float] = field(default_factory=dict)


def component_nullspace_basis(graph: Graph, labels: Optional[np.ndarray] = None) -> np.ndarray:
    """Orthonormal basis of the Laplacian null space: normalized component indicators.

    Pass precomputed component ``labels`` to skip the connectivity sweep.
    """
    if labels is None:
        _, labels = connected_components(graph)
    count = int(labels.max(initial=-1)) + 1
    basis = np.zeros((graph.n, count))
    sizes = np.bincount(labels, minlength=count).astype(float)
    basis[np.arange(graph.n), labels] = 1.0 / np.sqrt(sizes[labels])
    return basis


def spectral_embedding(
    graph: Graph,
    k: int = 2,
    *,
    tol: float = 1e-9,
    max_iterations: int = 500,
    oversample: int = 4,
    solver_tol: Optional[float] = None,
    chain: Optional[ChainConfig] = None,
    solver: Optional[SolverConfig] = None,
    seed: RngLike = 0,
    operator: Optional[LaplacianOperator] = None,
    use_cache: bool = True,
) -> SpectralResult:
    """Smallest ``k`` nontrivial Laplacian eigenpairs of ``graph``.

    Parameters
    ----------
    k:
        Number of eigenpairs; must satisfy ``1 <= k <= n - c`` where ``c``
        is the number of connected components.
    tol:
        Ritz residual target ``||L v - lambda v|| <= tol * lambda`` (scaled
        by the ``k``-th Ritz value for the small end).
    oversample:
        Extra Ritz directions carried through the iteration (cluster
        guard); they ride the same batched solves.
    solver_tol:
        Inner solve tolerance (default: ``min(tol * 1e-2, 1e-10)``).
    seed:
        Seeds the factorization and the random starting block.
    operator:
        Reuse an existing factorized operator for the graph.
    """
    num_components, labels = connected_components(graph)
    max_k = graph.n - num_components
    if k < 1 or k > max_k:
        raise ValueError(
            f"k must be in [1, {max_k}] for a graph with n={graph.n} and "
            f"{num_components} component(s)"
        )
    op = operator if operator is not None else factorize(graph, chain, solver, seed=seed, cache=use_cache)
    lap = graph_to_laplacian(graph)
    inner_tol = min(tol * 1e-2, 1e-10) if solver_tol is None else float(solver_tol)
    deflate = component_nullspace_basis(graph, labels)

    result = deflated_inverse_iteration(
        lambda block: op.solve(block, tol=inner_tol).x,
        lambda block: lap @ block,
        graph.n,
        k,
        deflate=deflate,
        oversample=oversample,
        tol=tol,
        max_iterations=max_iterations,
        seed=seed,
    )
    return SpectralResult(
        eigenvalues=result.eigenvalues,
        vectors=result.vectors,
        iterations=result.iterations,
        residuals=result.residuals,
        converged=result.converged,
        stats={
            "components": float(num_components),
            "block_width": float(min(k + max(int(oversample), 0), max_k)),
            "chain_levels": float(op.chain.depth),
        },
    )


def fiedler_vector(graph: Graph, **kwargs) -> Tuple[float, np.ndarray]:
    """The smallest nontrivial eigenpair (algebraic connectivity + Fiedler vector).

    For a connected graph this is the classic ``(lambda_2, v_2)`` spectral
    bisection pair; for a disconnected graph the trivial per-component
    kernel is deflated first, so the value is the smallest algebraic
    connectivity over the components.
    """
    result = spectral_embedding(graph, 1, **kwargs)
    return float(result.eigenvalues[0]), result.vectors[:, 0]
