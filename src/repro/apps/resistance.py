"""Batched effective-resistance oracle on the factorize-once operator.

:mod:`repro.apps.sparsification` estimates the resistance of every *edge*
(for Spielman–Srivastava sampling); this module generalizes that into a
reusable **oracle for arbitrary vertex pairs** — the resistance/commute-time
query primitive used by graph learning and network-analysis workloads:

* the chain is factorized **once per graph** (and served from the
  process-level chain cache for integer seeds, so repeated oracles over the
  same graph skip setup entirely);
* a Johnson–Lindenstrauss sketch ``Z = L^+ B^T Q^T`` is computed in **one
  batched multi-RHS solve** (``O(log n / eps^2)`` columns), after which any
  number of pair queries are O(sketch dimension) array lookups;
* small batches of pairs can instead take the **exact path** — one batched
  solve with an ``e_u - e_v`` column per pair — which matches the dense
  ``pinv`` oracle to solver tolerance.

Pinned edge-case behavior (shared with
:func:`repro.testing.oracles.dense_effective_resistances`): a query with
``u == v`` returns ``0.0``; a query whose endpoints lie in **different
connected components returns ``inf``** (no current can flow) rather than
raising, so batched queries over mixed pair sets need no pre-filtering.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional

import numpy as np

from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import LaplacianOperator, factorize
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.util.rng import RngLike, as_rng


def default_jl_dimension(n: int, epsilon: float) -> int:
    """The sketch width used when none is given: ``ceil(24 ln n / eps^2)``, in [4, 200]."""
    return max(4, min(200, int(math.ceil(24.0 * math.log(max(n, 2)) / epsilon**2))))


class ResistanceOracle:
    """Effective-resistance queries against one factorized graph.

    Parameters
    ----------
    graph:
        The (possibly disconnected, possibly multi-edge) graph.
    epsilon:
        Target relative accuracy of the sketched path; sets the default
        sketch width via :func:`default_jl_dimension`.
    jl_dimension:
        Explicit sketch width override.
    solver_tol:
        Relative residual tolerance of the **exact-path** solves.  The
        default (``1e-12``) makes the exact path agree with the dense
        ``pinv`` oracle to ~1e-8 relative error.
    sketch_tol:
        Tolerance of the one-time JL sketch solve (default ``1e-6``) — the
        sketch is a ±``epsilon`` estimator, so solving it tighter than the
        JL error only burns iterations.
    seed:
        Seed for both the factorization and the sketch.  Integer seeds make
        the factorization servable from the process-level chain cache.
    operator:
        Reuse an existing factorized operator instead of building one.
    use_cache:
        Consult the chain cache when factorizing (integer seeds only).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        epsilon: float = 0.3,
        jl_dimension: Optional[int] = None,
        solver_tol: float = 1e-12,
        sketch_tol: float = 1e-6,
        seed: RngLike = 0,
        chain: Optional[ChainConfig] = None,
        solver: Optional[SolverConfig] = None,
        operator: Optional[LaplacianOperator] = None,
        use_cache: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.graph = graph
        self.epsilon = float(epsilon)
        self.jl_dimension = (
            default_jl_dimension(graph.n, epsilon) if jl_dimension is None else int(jl_dimension)
        )
        if self.jl_dimension < 1:
            raise ValueError("jl_dimension must be >= 1")
        self.solver_tol = float(solver_tol)
        self.sketch_tol = float(sketch_tol)
        self._sketch_seed = seed
        self.operator = (
            operator
            if operator is not None
            else factorize(graph, chain, solver, seed=seed, cache=use_cache)
        )
        _, self.labels = connected_components(graph)
        self._sketch: Optional[np.ndarray] = None
        #: Whether the sketch's batched solve converged (``None`` until the
        #: sketch is built).
        self.sketch_converged: Optional[bool] = None

    # ------------------------------------------------------------------ #
    # sketch construction
    # ------------------------------------------------------------------ #
    @property
    def sketch(self) -> np.ndarray:
        """The ``(n, d)`` JL sketch ``Z`` with ``R(u, v) ≈ ||Z[u] - Z[v]||^2``.

        Built lazily by one batched multi-RHS solve and cached on the
        oracle; every subsequent query is sketch lookups only.
        """
        if self._sketch is None:
            n, m, d = self.graph.n, self.graph.num_edges, self.jl_dimension
            if m == 0:
                self._sketch = np.zeros((n, d))
                self.sketch_converged = True
            else:
                rng = as_rng(self._sketch_seed)
                incidence = self.graph.incidence_matrix()  # rows scaled by sqrt(w)
                q = rng.choice([-1.0, 1.0], size=(m, d)) / math.sqrt(d)
                rhs = incidence.T @ q
                report = self.operator.solve(rhs, tol=self.sketch_tol)
                self._sketch = report.x
                self.sketch_converged = bool(report.converged)
                self._warn_if_unconverged(report, "sketch")
        return self._sketch

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _warn_if_unconverged(self, report, kind: str) -> None:
        if not report.converged:
            warnings.warn(
                f"resistance {kind} solve did not reach its tolerance "
                f"(relative residual {report.relative_residual:.2e}); "
                "returned resistances may be less accurate than documented",
                RuntimeWarning,
                stacklevel=3,
            )

    def _validated_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= self.graph.n):
            raise ValueError("pair endpoints out of range")
        return pairs

    def query(self, pairs: np.ndarray, *, exact: bool = False) -> np.ndarray:
        """Effective resistance of each ``(u, v)`` pair.

        Parameters
        ----------
        pairs:
            ``(q, 2)`` array (a single ``(u, v)`` tuple is accepted).
        exact:
            Solve one ``e_u - e_v`` right-hand side per pair (one batched
            call) instead of reading the JL sketch.  Exact to solver
            tolerance; intended for small batches.

        Returns
        -------
        ``(q,)`` resistances, with ``0`` for ``u == v`` and ``inf`` for
        pairs spanning two components (documented pinned behavior).
        """
        pairs = self._validated_pairs(pairs)
        if pairs.shape[0] == 0:
            return np.zeros(0)
        a, b = pairs[:, 0], pairs[:, 1]
        out = np.full(pairs.shape[0], np.inf)
        out[a == b] = 0.0
        live = np.flatnonzero((self.labels[a] == self.labels[b]) & (a != b))
        if live.size == 0:
            return out
        if exact:
            rhs = np.zeros((self.graph.n, live.size))
            cols = np.arange(live.size)
            rhs[a[live], cols] += 1.0
            rhs[b[live], cols] -= 1.0
            report = self.operator.solve(rhs, tol=self.solver_tol)
            self._warn_if_unconverged(report, "exact-path")
            out[live] = report.x[a[live], cols] - report.x[b[live], cols]
        else:
            z = self.sketch
            diff = z[a[live]] - z[b[live]]
            out[live] = np.sum(diff**2, axis=1)
        return out

    def edge_resistances(self, *, exact: bool = False) -> np.ndarray:
        """Resistance of every edge (parallel edges repeat their pair's value)."""
        return self.query(np.column_stack([self.graph.u, self.graph.v]), exact=exact)


def effective_resistance_pairs(
    graph: Graph,
    pairs: np.ndarray,
    *,
    exact: bool = True,
    seed: RngLike = 0,
    **oracle_kwargs,
) -> np.ndarray:
    """One-shot pair queries (builds a :class:`ResistanceOracle` internally).

    ``exact=True`` (the default for this convenience entry point) takes the
    per-pair solve path; pass ``exact=False`` for the sketched estimate when
    querying many pairs.
    """
    oracle = ResistanceOracle(graph, seed=seed, **oracle_kwargs)
    return oracle.query(pairs, exact=exact)
