"""Harmonic interpolation (boundary-value solves) for semi-supervised labeling.

Given values on a *boundary* set of vertices, the harmonic extension fills
every interior vertex with the weighted average of its neighbors — i.e. it
solves the grounded system

    ``L_II x_I = -L_IB x_B``

where ``L_II`` is the interior block of the Laplacian.  This is the classic
Zhu–Ghahramani–Lafferty semi-supervised labeling primitive (and the
electrical interpretation: boundary vertices are held at fixed potentials,
interior potentials follow).  The interior block is SDD — strictly dominant
exactly at the vertices with boundary neighbors — so it routes straight
through :func:`repro.core.operator.factorize`:

* the interior system is **factorized once per (graph, boundary) pair**
  (cacheable through the process-level chain cache for integer seeds);
* multi-label problems pass their ``(b, k)`` one-hot value matrix as one
  batched ``(n_I, k)`` right-hand-side block — ``k`` labels cost one chain
  traversal per iteration, not ``k``.

Pinned edge-case behavior (matching
:func:`repro.testing.oracles.dense_harmonic_interpolation`): interior
vertices in components containing **no boundary vertex** receive no
information from the boundary; their block is singular with a zero
right-hand side, and the harmonic extension assigns them exactly ``0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.util.rng import RngLike


@dataclass
class HarmonicResult:
    """Result of :func:`harmonic_interpolation`.

    Attributes
    ----------
    x:
        The harmonic extension — ``(n,)`` for vector values, ``(n, k)`` for
        multi-label blocks.  Boundary rows equal the prescribed values.
    boundary, interior:
        The vertex index sets.
    floating:
        Interior vertices whose component contains no boundary vertex
        (assigned ``0``; see module docstring).
    iterations, converged:
        Outer iterations and convergence of the interior solve (``0`` /
        ``True`` when there is nothing to solve).
    stats:
        Diagnostics (interior size, batch width, solve work/depth).
    """

    x: np.ndarray
    boundary: np.ndarray
    interior: np.ndarray
    floating: np.ndarray
    iterations: int
    converged: bool
    stats: Dict[str, float] = field(default_factory=dict)


def harmonic_interpolation(
    graph: Graph,
    boundary: np.ndarray,
    values: np.ndarray,
    *,
    tol: float = 1e-10,
    chain: Optional[ChainConfig] = None,
    solver: Optional[SolverConfig] = None,
    seed: RngLike = 0,
    use_cache: bool = True,
) -> HarmonicResult:
    """Harmonically extend ``values`` on ``boundary`` to all of ``graph``.

    Parameters
    ----------
    boundary:
        Unique vertex indices carrying prescribed values.
    values:
        ``(b,)`` vector or ``(b, k)`` multi-label block, row ``i`` belonging
        to ``boundary[i]``.  All ``k`` columns are solved in one batched
        call.
    tol:
        Relative residual tolerance of the interior solve.
    seed:
        Factorization seed; integer seeds make repeated calls with the same
        ``(graph, boundary)`` hit the process-level chain cache.
    """
    boundary = np.asarray(boundary, dtype=np.int64).ravel()
    if boundary.size == 0:
        raise ValueError("boundary must contain at least one vertex")
    if boundary.min() < 0 or boundary.max() >= graph.n:
        raise ValueError("boundary vertex out of range")
    if np.unique(boundary).size != boundary.size:
        raise ValueError("boundary vertices must be unique")
    values = np.asarray(values, dtype=float)
    single = values.ndim == 1
    block = values[:, None] if single else values
    if block.ndim != 2 or block.shape[0] != boundary.size:
        raise ValueError("values must have one row per boundary vertex")

    n, k = graph.n, block.shape[1]
    x = np.zeros((n, k))
    x[boundary] = block
    interior = np.setdiff1d(np.arange(n, dtype=np.int64), boundary)
    floating = np.zeros(0, dtype=np.int64)
    iterations = 0
    converged = True
    stats: Dict[str, float] = {"interior_size": float(interior.size), "batch_width": float(k)}

    if interior.size:
        lap = graph_to_laplacian(graph)
        lii = lap[interior][:, interior].tocsr()
        lib = lap[interior][:, boundary].tocsr()
        # Interior components with no edge to the boundary are singular
        # blocks with a zero right-hand side: pin them to 0 and solve only
        # the grounded (nonsingular SDD) remainder.
        interior_graph, _ = graph.induced_subgraph(interior)
        _, comp = connected_components(interior_graph)
        coupled_comps = np.unique(comp[lib.getnnz(axis=1) > 0])
        grounded = np.flatnonzero(np.isin(comp, coupled_comps))
        floating = interior[np.isin(comp, coupled_comps, invert=True)]
        if grounded.size:
            rhs = -(lib @ block)[grounded]
            matrix = lii[grounded][:, grounded]
            operator = factorize(matrix, chain, solver, seed=seed, cache=use_cache)
            report = operator.solve(rhs, tol=tol)
            solution = report.x[:, None] if report.x.ndim == 1 else report.x
            x[interior[grounded]] = solution
            iterations = report.iterations
            converged = report.converged
            stats.update(
                solve_work=report.work,
                solve_depth=report.depth,
                relative_residual=report.relative_residual,
                grounded_size=float(grounded.size),
            )
    stats["floating_size"] = float(floating.size)
    return HarmonicResult(
        x=x[:, 0] if single else x,
        boundary=boundary,
        interior=interior,
        floating=floating,
        iterations=iterations,
        converged=converged,
        stats=stats,
    )


def harmonic_labels(
    graph: Graph,
    labeled: np.ndarray,
    labels: np.ndarray,
    *,
    num_classes: Optional[int] = None,
    **kwargs,
) -> "HarmonicLabelResult":
    """Semi-supervised label propagation via one batched harmonic solve.

    Labeled vertices become the boundary with one-hot values; every class
    column is solved simultaneously.  Unlabeled vertices take the class of
    the largest harmonic score; vertices with no path to any labeled vertex
    (all scores ``0``) are reported as ``-1``.
    """
    labeled = np.asarray(labeled, dtype=np.int64).ravel()
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if labels.shape != labeled.shape:
        raise ValueError("labels must align with labeled vertices")
    if labels.size == 0:
        raise ValueError("need at least one labeled vertex")
    if labels.min() < 0:
        raise ValueError("labels must be non-negative class indices")
    k = int(labels.max()) + 1 if num_classes is None else int(num_classes)
    if labels.max() >= k:
        raise ValueError(f"labels must be < num_classes ({k})")
    onehot = np.zeros((labeled.size, k))
    onehot[np.arange(labeled.size), labels] = 1.0
    result = harmonic_interpolation(graph, labeled, onehot, **kwargs)
    scores = result.x
    predictions = np.argmax(scores, axis=1).astype(np.int64)
    predictions[np.max(scores, axis=1) <= 0.0] = -1
    predictions[labeled] = labels
    return HarmonicLabelResult(
        predictions=predictions, scores=scores, interpolation=result
    )


@dataclass
class HarmonicLabelResult:
    """Result of :func:`harmonic_labels`.

    Attributes
    ----------
    predictions:
        Per-vertex class index (``-1`` for vertices unreachable from every
        labeled vertex).
    scores:
        The ``(n, num_classes)`` harmonic score matrix (rows of labeled
        vertices are their one-hot encoding).
    interpolation:
        The underlying :class:`HarmonicResult`.
    """

    predictions: np.ndarray
    scores: np.ndarray
    interpolation: HarmonicResult
