"""Approximate maximum flow via electrical flows (Christiano et al.).

The paper's application section points out that plugging the parallel solver
into [CKM+10] parallelizes (1 - eps)-approximate maximum flow.  This module
implements a compact version of that algorithm for undirected, capacitated
graphs, together with an exact augmenting-path baseline for validation:

* ``exact_max_flow`` — Edmonds–Karp (BFS augmenting paths) on the undirected
  capacity graph; exact, used as ground truth and as its own substrate
  implementation.
* ``approx_max_flow`` — multiplicative-weights over electrical flows: each
  iteration solves a Laplacian system (through
  :func:`repro.core.operator.factorize`) whose edge conductances are
  capacity-scaled weights, routes one unit of electrical s-t flow, and
  penalizes over-congested edges.  Binary search on the flow value finds the
  largest value that can be routed with congestion at most ``1 + eps``.

Every multiplicative-weights restart begins from the *same* uniform-weight
network, so its factorization is requested through the process-level chain
cache — the first iteration of every binary-search probe after the first
reuses the cached chain instead of rebuilding it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.operator import factorize
from repro.graph.graph import Graph
from repro.util.rng import RngLike, as_rng, derive_seed


@dataclass
class MaxFlowResult:
    """Result of a max-flow computation.

    Attributes
    ----------
    value:
        The (approximate) s-t flow value.
    flow:
        Per-edge signed flow (positive in the ``u -> v`` direction).
    congestion:
        Maximum ``|flow_e| / capacity_e``.
    iterations:
        Electrical-flow iterations (0 for the exact baseline).
    """

    value: float
    flow: np.ndarray
    congestion: float
    iterations: int
    stats: Dict[str, float] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# exact baseline (Edmonds-Karp on the undirected graph)
# --------------------------------------------------------------------------- #
def exact_max_flow(graph: Graph, source: int, sink: int) -> MaxFlowResult:
    """Exact maximum s-t flow in an undirected capacitated graph.

    Capacities are the edge weights.  Runs BFS augmenting paths on the
    residual network (each undirected edge gives capacity in both
    directions).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    n, m = graph.n, graph.num_edges
    # Residual capacities for both directions of every edge.
    cap_fwd = graph.w.astype(float).copy()  # u -> v
    cap_bwd = graph.w.astype(float).copy()  # v -> u
    indptr, neighbors, edge_ids = graph.adjacency
    total = 0.0
    flow = np.zeros(m)

    while True:
        # BFS for an augmenting path.
        parent_edge = np.full(n, -1, dtype=np.int64)
        parent_vertex = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        visited[source] = True
        queue = deque([source])
        found = False
        while queue and not found:
            x = queue.popleft()
            for pos in range(indptr[x], indptr[x + 1]):
                y = int(neighbors[pos])
                e = int(edge_ids[pos])
                forward = graph.u[e] == x
                residual = cap_fwd[e] if forward else cap_bwd[e]
                if residual <= 1e-12 or visited[y]:
                    continue
                visited[y] = True
                parent_edge[y] = e
                parent_vertex[y] = x
                if y == sink:
                    found = True
                    break
                queue.append(y)
        if not found:
            break
        # Find bottleneck.
        bottleneck = math.inf
        y = sink
        while y != source:
            e = int(parent_edge[y])
            x = int(parent_vertex[y])
            forward = graph.u[e] == x
            residual = cap_fwd[e] if forward else cap_bwd[e]
            bottleneck = min(bottleneck, residual)
            y = x
        # Augment.
        y = sink
        while y != source:
            e = int(parent_edge[y])
            x = int(parent_vertex[y])
            forward = graph.u[e] == x
            if forward:
                cap_fwd[e] -= bottleneck
                cap_bwd[e] += bottleneck
                flow[e] += bottleneck
            else:
                cap_bwd[e] -= bottleneck
                cap_fwd[e] += bottleneck
                flow[e] -= bottleneck
            y = x
        total += bottleneck

    congestion = float(np.max(np.abs(flow) / graph.w)) if m else 0.0
    return MaxFlowResult(value=total, flow=flow, congestion=congestion, iterations=0)


# --------------------------------------------------------------------------- #
# electrical-flow approximation
# --------------------------------------------------------------------------- #
def _electrical_flow(
    graph: Graph,
    weights: np.ndarray,
    source: int,
    sink: int,
    solver_tol: float,
    seed: int,
) -> np.ndarray:
    """Unit s-t electrical flow with conductances ``c_e = cap_e^2 / w_e``.

    ``seed`` is a fixed integer so that repeated requests for the same
    weight vector hit the process-level chain cache instead of
    refactorizing.  Only the uniform-weight system (the restart state of
    every multiplicative-weights probe) is worth caching — the reweighted
    systems of later iterations are never seen twice, and inserting them
    would evict the reusable entry.
    """
    conductance = graph.w**2 / np.maximum(weights, 1e-300)
    network = graph.reweighted(conductance)
    reusable = bool(np.all(weights == 1.0))
    operator = factorize(network, seed=seed, cache=reusable)
    b = np.zeros(graph.n)
    b[source], b[sink] = 1.0, -1.0
    potentials = operator.solve(b, tol=solver_tol).x
    return conductance * (potentials[graph.u] - potentials[graph.v])


def approx_max_flow(
    graph: Graph,
    source: int,
    sink: int,
    epsilon: float = 0.2,
    *,
    max_iterations: Optional[int] = None,
    solver_tol: float = 1e-8,
    seed: RngLike = None,
    flow_value: Optional[float] = None,
) -> MaxFlowResult:
    """(1 - eps)-approximate maximum s-t flow via electrical flows.

    Parameters
    ----------
    graph:
        Undirected capacitated graph (capacities = edge weights).
    epsilon:
        Approximation parameter; smaller values need more iterations.
    flow_value:
        Optionally skip the outer binary search and certify / route this
        specific flow value.
    max_iterations:
        Multiplicative-weights iterations per flow-value probe; defaults to
        ``ceil(8 ln(m) / eps^2)``.

    Returns
    -------
    MaxFlowResult
        ``value`` is the largest probed value routable with congestion
        ``<= 1 + eps``; the returned flow is the congestion-scaled average
        electrical flow for that value.
    """
    rng = as_rng(seed)
    if source == sink:
        raise ValueError("source and sink must differ")
    m = graph.num_edges
    if m == 0:
        return MaxFlowResult(0.0, np.zeros(0), 0.0, 0)
    if max_iterations is None:
        max_iterations = int(math.ceil(8.0 * math.log(max(m, 2)) / epsilon**2))
    max_iterations = max(4, max_iterations)
    # One integer seed for every electrical-flow factorization: identical
    # networks (notably the uniform-weight restart of each probe) then share
    # a cached chain.
    solver_seed = derive_seed(rng)

    def route(value: float) -> Tuple[bool, np.ndarray, int]:
        """Try to route ``value`` units with congestion <= 1 + eps."""
        weights = np.ones(m)
        accumulated = np.zeros(m)
        for it in range(1, max_iterations + 1):
            unit_flow = _electrical_flow(graph, weights, source, sink, solver_tol, solver_seed)
            edge_flow = value * unit_flow
            congestion = np.abs(edge_flow) / graph.w
            max_cong = float(congestion.max(initial=0.0))
            if max_cong > 3.0 / epsilon:
                # Hopeless: the electrical flow certifies the value is too big.
                return False, accumulated / max(it - 1, 1), it
            accumulated += edge_flow
            avg = accumulated / it
            avg_cong = float(np.max(np.abs(avg) / graph.w))
            if avg_cong <= 1.0 + epsilon:
                return True, avg, it
            weights = weights * (1.0 + (epsilon / 2.0) * congestion / max(max_cong, 1e-12))
            weights = weights / weights.mean()
        avg = accumulated / max_iterations
        return float(np.max(np.abs(avg) / graph.w)) <= 1.0 + epsilon, avg, max_iterations

    iterations_used = 0
    if flow_value is not None:
        ok, flow, its = route(float(flow_value))
        value = float(flow_value) if ok else 0.0
        congestion = float(np.max(np.abs(flow) / graph.w)) if m else 0.0
        return MaxFlowResult(value, flow, congestion, its, stats={"feasible": float(ok)})

    # Outer search: upper bound from the source degree cut, then bisect.
    hi = float(graph.w[graph.u == source].sum() + graph.w[graph.v == source].sum())
    lo = 0.0
    best_flow = np.zeros(m)
    best_value = 0.0
    for _probe in range(12):
        mid = 0.5 * (lo + hi)
        if mid <= 1e-12:
            break
        ok, flow, its = route(mid)
        iterations_used += its
        if ok:
            lo = mid
            best_flow = flow
            best_value = mid
        else:
            hi = mid
        if hi - lo <= epsilon * max(hi, 1e-12) / 4:
            break
    congestion = float(np.max(np.abs(best_flow) / graph.w)) if m else 0.0
    return MaxFlowResult(
        value=best_value,
        flow=best_flow,
        congestion=congestion,
        iterations=iterations_used,
        stats={"probes": float(_probe + 1)},
    )
