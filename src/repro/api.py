"""Top-level convenience facade: ``repro.solve`` and friends.

``repro.solve(matrix, b)`` is the one-call entry point for applications that
do not want to manage the factorize-once / solve-many lifecycle themselves.
It resolves configuration defaults, consults the process-level chain cache
(so repeated calls against the same matrix pay the expensive setup phase
once per process), and returns the usual
:class:`~repro.core.operator.SolveReport`.

Libraries and hot loops should prefer the explicit lifecycle::

    op = repro.factorize(graph, ChainConfig(kappa=36.0), seed=0)
    report = op.solve(B)          # B may be (n,) or a batched (n, k)

which keeps the operator in hand and makes the amortization visible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.harmonic import harmonic_interpolation, harmonic_labels
from repro.apps.resistance import ResistanceOracle, effective_resistance_pairs
from repro.apps.spectral import fiedler_vector, spectral_embedding
from repro.core.chain_cache import (
    chain_cache_stats,
    clear_chain_cache,
    set_chain_cache_budget,
    set_chain_cache_capacity,
    set_chain_cache_ttl,
)
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import (
    LaplacianOperator,
    MatrixInput,
    SolveReport,
    factorize,
)
from repro.core.update import UpdateReport
from repro.graph.edits import EdgeEdits
from repro.kernels import (
    KernelBackendError,
    available_backends as available_kernel_backends,
    numba_available,
)
from repro.kernels.array_ns import (
    ArrayBackendError,
    available_array_backends,
    get_namespace,
)
from repro.pram.model import CostModel
from repro.serving import ServiceConfig, ServiceStats, SolverService
from repro.util.rng import RngLike

__all__ = [
    "solve",
    "factorize",
    "LaplacianOperator",
    "SolveReport",
    "EdgeEdits",
    "UpdateReport",
    "ChainConfig",
    "SolverConfig",
    "KernelBackendError",
    "available_kernel_backends",
    "numba_available",
    "ArrayBackendError",
    "available_array_backends",
    "get_namespace",
    "SolverService",
    "ServiceConfig",
    "ServiceStats",
    "chain_cache_stats",
    "clear_chain_cache",
    "set_chain_cache_capacity",
    "set_chain_cache_budget",
    "set_chain_cache_ttl",
    "ResistanceOracle",
    "effective_resistance_pairs",
    "harmonic_interpolation",
    "harmonic_labels",
    "spectral_embedding",
    "fiedler_vector",
]


def solve(
    matrix: MatrixInput,
    b: np.ndarray,
    *,
    tol: Optional[float] = None,
    max_iterations: Optional[int] = None,
    method: Optional[str] = None,
    chain: Optional[ChainConfig] = None,
    solver: Optional[SolverConfig] = None,
    seed: RngLike = None,
    cost: Optional[CostModel] = None,
    use_cache: bool = True,
) -> SolveReport:
    """Solve ``matrix @ x = b`` with the paper's solver (Theorem 1.1).

    Parameters
    ----------
    matrix:
        A :class:`~repro.graph.graph.Graph` (its Laplacian is solved), a
        graph Laplacian, or a general SDD matrix.
    b:
        Right-hand side(s): a vector ``(n,)`` or a batch ``(n, k)`` solved
        simultaneously against the shared factorization.
    tol, max_iterations, method:
        Per-call overrides of the :class:`SolverConfig` defaults.
    chain, solver:
        Frozen configuration objects (defaults when omitted).
    seed:
        RNG seed for the randomized setup phase.  Integer seeds make the
        factorization cacheable.
    cost:
        Optional cost model to charge.  On a cache hit the cached operator
        keeps its own accounting, so the solve's work/depth delta is charged
        to ``cost`` explicitly.
    use_cache:
        Consult the process-level chain cache (default on; integer seeds
        only — see :mod:`repro.core.chain_cache`).
    """
    # The chain cache keys only on the factorization-relevant SolverConfig
    # fields, so a hit may carry different tol/max_iterations defaults than
    # the requested config — resolve them here before solving.
    if solver is not None:
        tol = solver.tol if tol is None else tol
        max_iterations = solver.max_iterations if max_iterations is None else max_iterations
    operator = factorize(matrix, chain, solver, seed=seed, cost=cost, cache=use_cache)
    report = operator.solve(b, tol=tol, max_iterations=max_iterations, method=method)
    if cost is not None and cost is not operator.cost:
        # The operator came from the cache with its own cost model; mirror
        # this solve's charges into the caller's model.
        cost.charge(work=report.work, depth=report.depth)
    return report
