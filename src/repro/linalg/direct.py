"""Direct solvers used as ground truth and as the bottom level of the chain.

* :func:`solve_laplacian_direct` — exact solve of a (singular) connected
  Laplacian via grounding one vertex and a sparse LU factorization.
* :class:`FactorizedLaplacian` — factorize-once pseudo-inverse *action* of a
  (possibly disconnected) Laplacian: one vertex per component is grounded,
  the reduced SPD system is LU-factorized once, and every later
  :meth:`~FactorizedLaplacian.solve` is a pair of triangular sweeps plus a
  per-component mean projection.  This is the chain's bottom-level solver
  (Fact 6.4); the sparse factorization replaces the dense ``pinv`` so that
  ``factorize()`` scales to bottom graphs far beyond the dense regime.
* :func:`laplacian_pseudoinverse` — dense pseudo-inverse, kept as ground
  truth and for callers that need the explicit matrix.
* :func:`solve_sdd_direct` — exact solve of a non-singular SDD system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.kernels import KernelSet, default_kernels
from repro.linalg.norms import column_means  # noqa: F401  (re-exported baseline)


def solve_laplacian_direct(laplacian: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Exact minimum-norm-style solution of ``L x = b`` for a connected Laplacian.

    The right-hand side is projected onto the range (mean removed), vertex 0
    is grounded, and the reduced non-singular system is solved with sparse
    LU.  The returned solution has zero mean.
    """
    laplacian = sp.csr_matrix(laplacian)
    n = laplacian.shape[0]
    b = np.asarray(b, dtype=float)
    if n == 1:
        return np.zeros(1)
    b = b - b.mean()
    reduced = laplacian[1:, :][:, 1:].tocsc()
    x = np.zeros(n)
    x[1:] = spla.spsolve(reduced, b[1:])
    return x - x.mean()


class FactorizedLaplacian:
    """Reusable pseudo-inverse action of a graph Laplacian.

    Parameters
    ----------
    laplacian:
        The (singular, possibly disconnected) Laplacian matrix.
    labels:
        Per-vertex connected-component labels in ``0..k-1``.  ``None`` means
        the graph is connected (all zeros).

    Notes
    -----
    For right-hand sides in the range of ``L`` (zero sum per component),
    :meth:`solve` returns exactly ``L^+ b``: grounding one vertex per
    component makes the reduced system symmetric positive definite, the
    grounded solution solves ``L y = b`` exactly, and removing the
    per-component mean selects the minimum-norm representative.
    """

    __slots__ = ("n", "_labels", "_counts", "_keep", "_lu", "_csr", "_pinv", "factor_nnz")

    def __init__(self, laplacian: sp.spmatrix, labels: Optional[np.ndarray] = None) -> None:
        csr = sp.csr_matrix(laplacian)
        n = csr.shape[0]
        self.n = n
        self._csr = csr
        if labels is None:
            labels = np.zeros(n, dtype=np.int64)
        self._labels = np.asarray(labels, dtype=np.int64)
        self._counts = np.bincount(self._labels).astype(float)
        # Ground the first vertex of every component.
        grounds = np.unique(self._labels, return_index=True)[1]
        keep = np.ones(n, dtype=bool)
        keep[grounds] = False
        self._keep = keep
        keep_idx = np.flatnonzero(keep)
        if keep_idx.size:
            reduced = csr[keep_idx][:, keep_idx].tocsc()
            self._lu = spla.splu(reduced)
            self.factor_nnz = int(self._lu.L.nnz + self._lu.U.nnz)
        else:
            self._lu = None
            self.factor_nnz = 0
        self._pinv: Optional[np.ndarray] = None

    def _project(self, x: np.ndarray, kernels: Optional[KernelSet] = None) -> np.ndarray:
        kset = kernels if kernels is not None else default_kernels()
        labels = self._labels
        if self.n == 0:
            return x
        if self._counts.shape[0] <= 1:
            if x.ndim == 1:
                return x - x.mean()
            # Width-invariant mean: keeps batched bottom solves bit-for-bit
            # equal to single-column ones (see repro.linalg.norms).
            return kset.subtract_column_means(x)
        # Per-component sums stay on np.add.at (k components, off the inner
        # loop); only the full-length gather/subtract dispatches to kernels.
        sums = np.zeros((self._counts.shape[0],) + x.shape[1:], dtype=float)
        np.add.at(sums, labels, x)
        if x.ndim == 1:
            return kset.subtract_gathered(x, sums / self._counts, labels)
        return kset.subtract_gathered(x, sums / self._counts[:, None], labels)

    def solve(self, b: np.ndarray, kernels: Optional[KernelSet] = None) -> np.ndarray:
        """Apply ``L^+`` to ``b`` (a vector ``(n,)`` or a block ``(n, k)``).

        ``kernels`` runs the null-space projections (reference NumPy when
        omitted; bit-for-bit interchangeable).  The triangular sweeps remain
        SciPy's LU solve on every backend.

        The bottom-level solve is the one *sanctioned* host boundary of a
        non-host array backend: the (small) bottom right-hand side is
        gathered to host (reason ``"bottom"``), LU-swept by SciPy, and the
        solution scattered back into the namespace.  Projections then run on
        host reference kernels — the bottom system has O(bottom-size) data,
        not O(n), so this transfer is part of the O(1)-per-solve contract.
        """
        kset = kernels if kernels is not None else default_kernels()
        ns = kset.array_ns
        if not ns.is_host:
            b_host = ns.to_host(b, reason="bottom")
            x_host = self._solve_host(b_host, default_kernels())
            return ns.asarray(x_host, reason="bottom")
        return self._solve_host(b, kset)

    def _solve_host(self, b: np.ndarray, kset: KernelSet) -> np.ndarray:
        b = np.asarray(b, dtype=float)
        x = np.zeros_like(b)
        if self._lu is not None:
            rhs = self._project(b, kset)
            x[self._keep] = self._lu.solve(rhs[self._keep])
        return self._project(x, kset)

    def pseudoinverse(self) -> np.ndarray:
        """The explicit dense pseudo-inverse (computed lazily and cached)."""
        if self._pinv is None:
            self._pinv = laplacian_pseudoinverse(self._csr)
        return self._pinv


def laplacian_pseudoinverse(laplacian) -> np.ndarray:
    """Dense Moore-Penrose pseudo-inverse of a Laplacian (bottom-level solver)."""
    dense = laplacian.toarray() if sp.issparse(laplacian) else np.asarray(laplacian, dtype=float)
    return np.linalg.pinv(dense, hermitian=True)


def solve_sdd_direct(matrix: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Exact solve of a non-singular SDD system via sparse LU."""
    matrix = sp.csc_matrix(matrix)
    return spla.spsolve(matrix, np.asarray(b, dtype=float))
