"""Direct solvers used as ground truth and as the bottom level of the chain.

* :func:`solve_laplacian_direct` — exact solve of a (singular) connected
  Laplacian via grounding one vertex and a sparse LU factorization.
* :func:`laplacian_pseudoinverse` — dense pseudo-inverse (Fact 6.4: the
  bottom-level systems of the preconditioner chain are solved by a dense
  factorization; the chain terminates at ~ m^(1/3) vertices precisely so
  this stays cheap).
* :func:`solve_sdd_direct` — exact solve of a non-singular SDD system.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def solve_laplacian_direct(laplacian: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Exact minimum-norm-style solution of ``L x = b`` for a connected Laplacian.

    The right-hand side is projected onto the range (mean removed), vertex 0
    is grounded, and the reduced non-singular system is solved with sparse
    LU.  The returned solution has zero mean.
    """
    laplacian = sp.csr_matrix(laplacian)
    n = laplacian.shape[0]
    b = np.asarray(b, dtype=float)
    if n == 1:
        return np.zeros(1)
    b = b - b.mean()
    reduced = laplacian[1:, :][:, 1:].tocsc()
    x = np.zeros(n)
    x[1:] = spla.spsolve(reduced, b[1:])
    return x - x.mean()


def laplacian_pseudoinverse(laplacian) -> np.ndarray:
    """Dense Moore-Penrose pseudo-inverse of a Laplacian (bottom-level solver)."""
    dense = laplacian.toarray() if sp.issparse(laplacian) else np.asarray(laplacian, dtype=float)
    return np.linalg.pinv(dense, hermitian=True)


def solve_sdd_direct(matrix: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Exact solve of a non-singular SDD system via sparse LU."""
    matrix = sp.csc_matrix(matrix)
    return spla.spsolve(matrix, np.asarray(b, dtype=float))
