"""Matrix norms used in the paper's error statements.

Theorem 1.1 bounds the error in the ``A``-norm:
``||x_tilde - A^+ b||_A <= eps * ||A^+ b||_A`` where
``||x||_A = sqrt(x^T A x)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def a_norm(matrix, x: np.ndarray) -> float:
    """The A-norm ``sqrt(x^T A x)`` (A symmetric positive semi-definite)."""
    x = np.asarray(x, dtype=float)
    value = float(x @ (matrix @ x))
    # Guard tiny negative values caused by round-off.
    return float(np.sqrt(max(value, 0.0)))


def a_norm_error(matrix, x: np.ndarray, x_exact: np.ndarray) -> float:
    """``||x - x_exact||_A``."""
    return a_norm(matrix, np.asarray(x, dtype=float) - np.asarray(x_exact, dtype=float))


def relative_a_norm_error(matrix, x: np.ndarray, x_exact: np.ndarray) -> float:
    """``||x - x_exact||_A / ||x_exact||_A`` (the quantity Theorem 1.1 bounds)."""
    denom = a_norm(matrix, x_exact)
    if denom == 0.0:
        return 0.0 if a_norm_error(matrix, x, x_exact) == 0.0 else np.inf
    return a_norm_error(matrix, x, x_exact) / denom


def residual_norm(matrix, x: np.ndarray, b: np.ndarray, relative: bool = True) -> float:
    """Euclidean residual ``||b - A x||`` (relative to ``||b||`` by default)."""
    r = np.asarray(b, dtype=float) - matrix @ np.asarray(x, dtype=float)
    norm = float(np.linalg.norm(r))
    if relative:
        denom = float(np.linalg.norm(b))
        return norm / denom if denom > 0 else norm
    return norm
