"""Matrix norms used in the paper's error statements.

Theorem 1.1 bounds the error in the ``A``-norm:
``||x_tilde - A^+ b||_A <= eps * ||A^+ b||_A`` where
``||x||_A = sqrt(x^T A x)``.

Also home to the **batch-width-invariant column reductions**
(:func:`column_dot`, :func:`column_norms`, :func:`column_means`).  NumPy's
axis-0 reductions round differently for a contiguous ``(n, 1)`` column than
for a column of a strided ``(n, k)`` block (pairwise vs. sequential
accumulation), which would make a batched lockstep solve drift from a loop
of single solves at the ulp level.  Reducing over a Fortran-ordered copy
makes every column's reduction an independent contiguous pairwise sum, so a
batched ``(n, k)`` solve is **bit-for-bit** identical to ``k`` single
solves — a property the test suite pins down.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def column_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column dot products ``diag(a^T b)`` of two ``(n, k)`` blocks.

    Bit-for-bit independent of the batch width ``k`` (see module docstring).
    """
    return np.add.reduce(np.asfortranarray(a * b), axis=0)


def column_norms(a: np.ndarray) -> np.ndarray:
    """Per-column Euclidean norms of an ``(n, k)`` block (width-invariant)."""
    return np.sqrt(column_dot(a, a))


def column_means(a: np.ndarray) -> np.ndarray:
    """Per-column means of an ``(n, k)`` block (width-invariant)."""
    return np.add.reduce(np.asfortranarray(a), axis=0) / max(a.shape[0], 1)


def a_norm(matrix, x: np.ndarray) -> float:
    """The A-norm ``sqrt(x^T A x)`` (A symmetric positive semi-definite)."""
    x = np.asarray(x, dtype=float)
    value = float(x @ (matrix @ x))
    # Guard tiny negative values caused by round-off.
    return float(np.sqrt(max(value, 0.0)))


def a_norm_error(matrix, x: np.ndarray, x_exact: np.ndarray) -> float:
    """``||x - x_exact||_A``."""
    return a_norm(matrix, np.asarray(x, dtype=float) - np.asarray(x_exact, dtype=float))


def relative_a_norm_error(matrix, x: np.ndarray, x_exact: np.ndarray) -> float:
    """``||x - x_exact||_A / ||x_exact||_A`` (the quantity Theorem 1.1 bounds)."""
    denom = a_norm(matrix, x_exact)
    if denom == 0.0:
        return 0.0 if a_norm_error(matrix, x, x_exact) == 0.0 else np.inf
    return a_norm_error(matrix, x, x_exact) / denom


def residual_norm(matrix, x: np.ndarray, b: np.ndarray, relative: bool = True) -> float:
    """Euclidean residual ``||b - A x||`` (relative to ``||b||`` by default)."""
    r = np.asarray(b, dtype=float) - matrix @ np.asarray(x, dtype=float)
    norm = float(np.linalg.norm(r))
    if relative:
        denom = float(np.linalg.norm(b))
        return norm / denom if denom > 0 else norm
    return norm
