"""Shared linear algebra: norms, iterative methods, and baseline solvers.

These are the comparators the benchmarks measure the paper's solver against
(plain CG, Jacobi-preconditioned CG, dense/sparse direct solves) plus the
building blocks the solver itself uses (A-norms, operator wrappers with
matvec counting).
"""

from repro.linalg.norms import a_norm, a_norm_error, relative_a_norm_error, residual_norm
from repro.linalg.operators import MatvecCounter, as_operator
from repro.linalg.cg import (
    conjugate_gradient,
    CGResult,
    batched_conjugate_gradient,
    BatchedCGResult,
)
from repro.linalg.jacobi import jacobi_preconditioner, gauss_seidel_sweep
from repro.linalg.direct import (
    solve_laplacian_direct,
    solve_sdd_direct,
    laplacian_pseudoinverse,
)
from repro.linalg.inverse_iteration import (
    InverseIterationResult,
    deflated_inverse_iteration,
)

__all__ = [
    "a_norm",
    "a_norm_error",
    "relative_a_norm_error",
    "residual_norm",
    "MatvecCounter",
    "as_operator",
    "conjugate_gradient",
    "CGResult",
    "batched_conjugate_gradient",
    "BatchedCGResult",
    "jacobi_preconditioner",
    "gauss_seidel_sweep",
    "solve_laplacian_direct",
    "solve_sdd_direct",
    "laplacian_pseudoinverse",
    "InverseIterationResult",
    "deflated_inverse_iteration",
]
