"""(Preconditioned) conjugate gradient.

Used both as the baseline solver in the benchmarks and as the outer/inner
iteration of the recursive preconditioned solver (the paper analyzes
preconditioned Chebyshev for its depth bounds; CG has the same
``sqrt(kappa)`` convergence and needs no eigenvalue estimates, which is the
standard practical choice — see DESIGN.md substitutions).

Singular systems (graph Laplacians of connected graphs) are handled by
projecting iterates onto the complement of the all-ones null space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.linalg.operators import MatrixLike, as_operator


@dataclass
class CGResult:
    """Result of a conjugate gradient run.

    Attributes
    ----------
    x:
        The (approximate) solution.
    iterations:
        Number of CG iterations performed.
    converged:
        Whether the residual tolerance was reached.
    residual_norms:
        Relative residual 2-norm after each iteration (including iteration 0).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)


def conjugate_gradient(
    matrix: MatrixLike,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    project_nullspace: bool = False,
    fixed_iterations: Optional[int] = None,
) -> CGResult:
    """Solve ``A x = b`` with (preconditioned) CG.

    Parameters
    ----------
    matrix:
        Symmetric positive (semi-)definite matrix or matvec callable.
    preconditioner:
        Callable approximating ``A^+``; must be symmetric positive definite
        on the relevant subspace.
    project_nullspace:
        For connected-graph Laplacians: keep iterates orthogonal to the
        all-ones vector.
    fixed_iterations:
        When given, run exactly this many iterations (no tolerance test) —
        this is how the recursive solver uses CG as a smoother at inner
        levels.
    """
    apply_a = as_operator(matrix)
    b = np.asarray(b, dtype=float).copy()
    n = b.shape[0]

    def project(v: np.ndarray) -> np.ndarray:
        if project_nullspace:
            return v - v.mean()
        return v

    b = project(b)
    x = np.zeros(n) if x0 is None else project(np.asarray(x0, dtype=float).copy())
    r = b - apply_a(x)
    r = project(r)
    apply_m = preconditioner if preconditioner is not None else (lambda v: v)
    z = project(apply_m(r))
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(x=np.zeros(n), iterations=0, converged=True, residual_norms=[0.0])

    residuals = [float(np.linalg.norm(r)) / b_norm]
    max_iters = fixed_iterations if fixed_iterations is not None else max_iterations
    converged = residuals[-1] <= tol and fixed_iterations is None
    iterations = 0
    for _ in range(max_iters):
        if converged and fixed_iterations is None:
            break
        ap = apply_a(p)
        pap = float(p @ ap)
        if pap <= 0:
            # Numerical breakdown (can happen on the null space component).
            break
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        r = project(r)
        iterations += 1
        residuals.append(float(np.linalg.norm(r)) / b_norm)
        if fixed_iterations is None and residuals[-1] <= tol:
            converged = True
            break
        z = project(apply_m(r))
        rz_new = float(r @ z)
        beta = rz_new / rz if rz != 0 else 0.0
        rz = rz_new
        p = z + beta * p
    if fixed_iterations is not None:
        converged = residuals[-1] <= tol
    return CGResult(x=project(x), iterations=iterations, converged=converged, residual_norms=residuals)
