"""(Preconditioned) conjugate gradient, scalar and batched.

Used both as the baseline solver in the benchmarks and as the outer/inner
iteration of the recursive preconditioned solver (the paper analyzes
preconditioned Chebyshev for its depth bounds; CG has the same
``sqrt(kappa)`` convergence and needs no eigenvalue estimates, which is the
standard practical choice — see DESIGN.md substitutions).

:func:`batched_conjugate_gradient` runs ``k`` *independent* CG recurrences in
lockstep on an ``(n, k)`` block of right-hand sides.  Because the recurrences
never couple across columns, each column converges exactly as it would alone,
while matvecs and preconditioner applications are shared level-3 operations —
this is what makes the factorize-once / solve-many API's multi-RHS path a
hot-path win.  Converged columns are compacted out of the working set, so the
arithmetic (and the PRAM work charged through ``on_iteration``) is
proportional to the number of still-active columns.

Singular systems (graph Laplacians of connected graphs) are handled by
projecting iterates onto the complement of the all-ones null space.

Both entry points are **re-entrant**: all iterate state lives in local
arrays, and the only side channel is the caller-supplied ``on_iteration``
hook — the solver layer passes a closure bound to its per-call
:class:`~repro.core.operator.SolveContext`, which is how concurrent solves
on one operator charge PRAM work without sharing mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.kernels import KernelSet, default_kernels
from repro.linalg.norms import column_dot, column_norms
from repro.linalg.operators import MatrixLike, as_operator


@dataclass
class CGResult:
    """Result of a conjugate gradient run.

    Attributes
    ----------
    x:
        The (approximate) solution.
    iterations:
        Number of CG iterations performed.
    converged:
        Whether the residual tolerance was reached.
    residual_norms:
        Relative residual 2-norm after each iteration (including iteration 0).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)


def conjugate_gradient(
    matrix: MatrixLike,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    project_nullspace: bool = False,
    fixed_iterations: Optional[int] = None,
) -> CGResult:
    """Solve ``A x = b`` with (preconditioned) CG.

    Parameters
    ----------
    matrix:
        Symmetric positive (semi-)definite matrix or matvec callable.
    preconditioner:
        Callable approximating ``A^+``; must be symmetric positive definite
        on the relevant subspace.
    project_nullspace:
        For connected-graph Laplacians: keep iterates orthogonal to the
        all-ones vector.
    fixed_iterations:
        When given, run exactly this many iterations (no tolerance test) —
        this is how the recursive solver uses CG as a smoother at inner
        levels.
    """
    apply_a = as_operator(matrix)
    b = np.asarray(b, dtype=float).copy()
    n = b.shape[0]

    def project(v: np.ndarray) -> np.ndarray:
        if project_nullspace:
            return v - v.mean()
        return v

    b = project(b)
    x = np.zeros(n) if x0 is None else project(np.asarray(x0, dtype=float).copy())
    r = b - apply_a(x)
    r = project(r)
    apply_m = preconditioner if preconditioner is not None else (lambda v: v)
    z = project(apply_m(r))
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(x=np.zeros(n), iterations=0, converged=True, residual_norms=[0.0])

    residuals = [float(np.linalg.norm(r)) / b_norm]
    max_iters = fixed_iterations if fixed_iterations is not None else max_iterations
    converged = residuals[-1] <= tol and fixed_iterations is None
    iterations = 0
    for _ in range(max_iters):
        if converged and fixed_iterations is None:
            break
        ap = apply_a(p)
        pap = float(p @ ap)
        if pap <= 0:
            # Numerical breakdown (can happen on the null space component).
            break
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        r = project(r)
        iterations += 1
        residuals.append(float(np.linalg.norm(r)) / b_norm)
        if fixed_iterations is None and residuals[-1] <= tol:
            converged = True
            break
        z = project(apply_m(r))
        rz_new = float(r @ z)
        beta = rz_new / rz if rz != 0 else 0.0
        rz = rz_new
        p = z + beta * p
    if fixed_iterations is not None:
        converged = residuals[-1] <= tol
    return CGResult(x=project(x), iterations=iterations, converged=converged, residual_norms=residuals)


@dataclass
class BatchedCGResult:
    """Result of a batched (multi right-hand-side) conjugate gradient run.

    Attributes
    ----------
    x:
        ``(n, k)`` block of approximate solutions.  A host ``ndarray`` on
        the default backend; on a non-host array namespace this is a
        namespace array (the caller owns the ``to_host`` egress —
        iteration counts / convergence flags / residuals are always host).
    iterations:
        Per-column iteration counts (iteration at which the column converged,
        or the total number of iterations run).
    converged:
        Per-column convergence flags.
    residuals:
        Final relative residual 2-norm of each column.
    active_counts:
        Number of active (not yet converged) columns at each iteration —
        ``sum(active_counts)`` is the total column-iteration count, which is
        what honest work accounting should be proportional to.
    """

    x: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residuals: np.ndarray
    active_counts: List[int] = field(default_factory=list)


def batched_conjugate_gradient(
    matrix: MatrixLike,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    fixed_iterations: Optional[int] = None,
    on_iteration: Optional[Callable[[int], None]] = None,
    kernels: Optional[KernelSet] = None,
) -> BatchedCGResult:
    """Solve ``A x_j = b_j`` for every column of ``b`` with lockstep PCG.

    Parameters
    ----------
    matrix:
        Symmetric positive (semi-)definite matrix or matvec callable; the
        matvec must accept ``(n, k)`` blocks (sparse matrices do).
    b:
        ``(n, k)`` block of right-hand sides (``(n,)`` is treated as ``k=1``).
    preconditioner:
        Callable approximating ``A^+`` column-wise on ``(n, j)`` blocks for
        any ``j <= k`` (converged columns are compacted out of the block).
    fixed_iterations:
        When given, run exactly this many iterations for every column with no
        tolerance test — the inner-level smoother mode of the recursive
        solver.
    on_iteration:
        Called once per iteration with the current number of active columns;
        used by the operator layer to charge PRAM work proportional to the
        arithmetic actually performed.
    kernels:
        :class:`~repro.kernels.KernelSet` running the per-iteration column
        reductions and recurrence updates (reference NumPy when omitted).
        Backends are bit-for-bit interchangeable, so iteration counts and
        residuals do not depend on this choice.  On a non-host array
        namespace (``kernels.array_ns``) the iterate block stays resident in
        the namespace — ``b`` may arrive as a namespace array, ``x`` is
        returned as one, and the only per-iteration host traffic is the
        O(k) control pull of residual norms / breakdown flags that the
        retirement logic needs (``ns.pull``, reason ``"control"``).
    """
    kset = kernels if kernels is not None else default_kernels()
    ns = kset.array_ns
    apply_a = as_operator(matrix)
    b = ns.ensure(b)
    if b.ndim == 1:
        b = b[:, None]
    n, k = b.shape
    apply_m = preconditioner if preconditioner is not None else (lambda v: v)

    x_out = ns.zeros((n, k))
    iters_out = np.zeros(k, dtype=np.int64)
    converged_out = np.zeros(k, dtype=bool)
    residuals_out = np.zeros(k)
    active_counts: List[int] = []

    # Width-invariant column reductions keep a batched solve bit-for-bit
    # identical to a loop of single solves (see repro.linalg.norms).
    b_norm = kset.column_norms(b)
    zero_rhs = ns.pull(b_norm == 0.0)
    converged_out[zero_rhs] = True

    check_tol = fixed_iterations is None
    cols = np.flatnonzero(~zero_rhs)
    if cols.size == 0:
        return BatchedCGResult(x_out, iters_out, converged_out, residuals_out, active_counts)

    # Compacted working set over the active columns.
    bn = b_norm[cols]
    r = b[:, cols].copy()
    x = ns.zeros((n, cols.size))
    z = apply_m(r)
    p = z.copy()
    rz = kset.column_dot(r, z)
    res = ns.pull(kset.column_norms(r) / bn)
    residuals_out[cols] = res

    def retire(mask: np.ndarray, iteration: int, did_converge: bool) -> None:
        """Move columns selected by ``mask`` out of the working set."""
        nonlocal cols, bn, r, x, z, p, rz, res
        sel = np.flatnonzero(mask)
        orig = cols[sel]
        x_out[:, orig] = x[:, sel]
        iters_out[orig] = iteration
        converged_out[orig] = did_converge
        residuals_out[orig] = res[sel]
        keep = ~mask
        cols, bn, res, rz = cols[keep], bn[keep], res[keep], rz[keep]
        r, x, z, p = r[:, keep], x[:, keep], z[:, keep], p[:, keep]

    if check_tol:
        retire(res <= tol, 0, True)

    max_iters = fixed_iterations if fixed_iterations is not None else max_iterations
    for it in range(1, max_iters + 1):
        if cols.size == 0:
            break
        active_counts.append(int(cols.size))
        ap = apply_a(p)
        pap = kset.column_dot(p, ap)
        broken = ns.pull(pap <= 0)  # numerical breakdown (null-space component)
        if np.any(broken):
            retire(broken, it - 1, False)
            if cols.size == 0:
                break
            ap, pap = ap[:, ~broken], pap[~broken]
        alpha = rz / pap
        # In-place recurrence updates (x += alpha p; r -= alpha ap) change
        # no bits relative to the historical out-of-place expressions; the
        # working arrays are compaction copies, never caller-owned.
        kset.cg_update_solution(x, r, p, ap, alpha)
        res = ns.pull(kset.column_norms(r) / bn)
        if on_iteration is not None:
            on_iteration(int(cols.size))
        if check_tol:
            retire(res <= tol, it, True)
            if cols.size == 0:
                break
        z = apply_m(r)
        rz_new = kset.column_dot(r, z)
        xp = ns.xp
        beta = xp.where(rz != 0, rz_new / xp.where(rz != 0, rz, 1.0), 0.0)
        rz = rz_new
        # p = z + beta p, evaluated in place as (beta p) + z — bitwise equal
        # because IEEE-754 addition is commutative.
        kset.cg_update_direction(p, z, beta)

    if cols.size:
        # Ran out of iterations (or fixed-iteration mode): flush the rest.
        retire(np.ones(cols.size, dtype=bool), max_iters, False)
        if fixed_iterations is not None:
            converged_out[:] = residuals_out <= tol
            converged_out[zero_rhs] = True
    return BatchedCGResult(x_out, iters_out, converged_out, residuals_out, active_counts)
