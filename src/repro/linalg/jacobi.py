"""Diagonal (Jacobi) preconditioning and Gauss-Seidel sweeps.

Baselines for the solver benchmarks: Jacobi-PCG is the standard "cheap"
preconditioner a practitioner would reach for before a combinatorial
preconditioner, and Gauss-Seidel sweeps serve as a classical smoother
comparator.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.kernels import KernelSet, default_kernels


def jacobi_preconditioner(
    matrix: sp.spmatrix,
    *,
    floor: float = 1e-300,
    kernels: Optional[KernelSet] = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Return ``r -> D^{-1} r`` for the diagonal ``D`` of ``matrix``.

    Zero diagonal entries (isolated vertices of a Laplacian) are left
    untouched by using an inverse of 0 for them.  The per-application
    columnwise scale runs on ``kernels`` (reference NumPy when omitted;
    bit-for-bit interchangeable).
    """
    kset = kernels if kernels is not None else default_kernels()
    ns = kset.array_ns
    diag = np.asarray(sp.csr_matrix(matrix).diagonal(), dtype=float)
    inv = np.zeros_like(diag)
    mask = np.abs(diag) > floor
    inv[mask] = 1.0 / diag[mask]
    # On a non-host namespace the inverse diagonal is uploaded exactly once,
    # at construction (reason "setup"); applications then stay resident.
    inv_arr = inv if ns.is_host else ns.asarray(inv, reason="setup")

    def apply(r: np.ndarray) -> np.ndarray:
        return kset.diag_scale(inv_arr, ns.ensure(r))

    return apply


def gauss_seidel_sweep(matrix: sp.spmatrix, b: np.ndarray, x: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """Forward Gauss-Seidel sweeps ``x <- x + L^{-1}(b - A x)`` (L = lower part).

    Intended for small/medium systems (uses a sparse triangular solve per
    sweep).
    """
    a = sp.csr_matrix(matrix)
    lower = sp.tril(a, k=0).tocsr()
    x = np.asarray(x, dtype=float).copy()
    for _ in range(max(sweeps, 0)):
        r = np.asarray(b, dtype=float) - a @ x
        x = x + sp.linalg.spsolve_triangular(lower, r, lower=True)
    return x
