"""Operator wrappers.

``MatvecCounter`` wraps a sparse matrix (or callable) and counts
matrix-vector products; benchmarks use the count (weighted by nnz) as the
machine-independent work measure for iterative solvers.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np
import scipy.sparse as sp

MatrixLike = Union[np.ndarray, sp.spmatrix, Callable[[np.ndarray], np.ndarray]]


class MatvecCounter:
    """Wrap a matrix or matvec callable, counting applications.

    Attributes
    ----------
    count:
        Number of matrix-vector products performed.
    nnz:
        Number of non-zeros of the wrapped matrix (0 for callables without a
        known sparsity), used to convert counts into work estimates.
    """

    def __init__(self, matrix: MatrixLike):
        self._matrix = matrix
        self.count = 0
        if callable(matrix) and not sp.issparse(matrix) and not isinstance(matrix, np.ndarray):
            self.nnz = 0
        elif sp.issparse(matrix):
            self.nnz = int(matrix.nnz)
        else:
            self.nnz = int(np.count_nonzero(matrix))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.count += 1
        if callable(self._matrix) and not sp.issparse(self._matrix) and not isinstance(
            self._matrix, np.ndarray
        ):
            return self._matrix(x)
        return self._matrix @ x

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self(x)

    @property
    def work(self) -> float:
        """Estimated work: matvec count times nnz."""
        return float(self.count * max(self.nnz, 1))


def as_operator(matrix: MatrixLike) -> Callable[[np.ndarray], np.ndarray]:
    """Return a plain matvec callable for a matrix / callable."""
    if callable(matrix) and not sp.issparse(matrix) and not isinstance(matrix, np.ndarray):
        return matrix
    return lambda x: matrix @ x
