"""Deflated block inverse (subspace) iteration for smallest eigenpairs.

Eigenvector computation is the third classical consumer of a fast Laplacian
solver (after resistances and boundary-value problems): applying ``L^+``
amplifies exactly the small end of the spectrum, so subspace iteration with
the factorized solver as the inner solve converges to the smallest
*nontrivial* eigenpairs.  The trivial per-component null space is handled by
**deflation** — every iterate is kept orthogonal to a supplied basis of the
null space — rather than by shifting, so disconnected graphs work unchanged.

The routine is solver-agnostic: it takes the pseudo-inverse action as a
callable, which :mod:`repro.apps.spectral` wires to a batched
:meth:`~repro.core.operator.LaplacianOperator.solve` (one block solve per
iteration, shared across all Ritz directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.util.rng import RngLike, as_rng


@dataclass
class InverseIterationResult:
    """Result of :func:`deflated_inverse_iteration`.

    Attributes
    ----------
    eigenvalues:
        The ``k`` smallest non-deflated Ritz values, ascending.
    vectors:
        ``(n, k)`` orthonormal Ritz vectors (orthogonal to the deflation
        space).
    iterations:
        Subspace iterations performed.
    residuals:
        Final per-pair residual norms ``||A v - theta v||``.
    converged:
        Whether every requested pair met the tolerance.
    """

    eigenvalues: np.ndarray
    vectors: np.ndarray
    iterations: int
    residuals: np.ndarray
    converged: bool


def deflated_inverse_iteration(
    solve: Callable[[np.ndarray], np.ndarray],
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    *,
    deflate: Optional[np.ndarray] = None,
    oversample: int = 4,
    tol: float = 1e-9,
    max_iterations: int = 500,
    seed: RngLike = None,
) -> InverseIterationResult:
    """Smallest ``k`` eigenpairs of a PSD operator via deflated inverse iteration.

    Parameters
    ----------
    solve:
        Action of the pseudo-inverse on an ``(n, j)`` block (the expensive
        inner solve; called once per iteration).
    matvec:
        Action of the operator itself on an ``(n, j)`` block (cheap; used
        for Rayleigh–Ritz and residuals).
    deflate:
        ``(n, c)`` orthonormal basis of the known null/unwanted space (for
        Laplacians: the normalized per-component indicator vectors).  Every
        iterate is re-orthogonalized against it.
    oversample:
        Extra Ritz directions carried beyond ``k`` — guards convergence when
        the ``k``-th eigenvalue sits in a cluster.
    tol:
        Convergence test: ``||A v_i - theta_i v_i|| <= tol * max(theta_i,
        theta_k)`` for each of the first ``k`` pairs.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    c = 0 if deflate is None else deflate.shape[1]
    if k > n - c:
        raise ValueError(f"k must be <= {n - c} (dimension minus deflated space)")
    rng = as_rng(seed)
    block = min(k + max(int(oversample), 0), n - c)

    def project(x: np.ndarray) -> np.ndarray:
        if deflate is None:
            return x
        return x - deflate @ (deflate.T @ x)

    q = np.linalg.qr(project(rng.standard_normal((n, block))))[0]
    theta = np.zeros(block)
    vectors = q
    residual_norms = np.full(k, np.inf)
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        y = project(solve(q))
        q = np.linalg.qr(y)[0]
        # Rayleigh-Ritz on the iterated basis.
        aq = matvec(q)
        h = q.T @ aq
        h = 0.5 * (h + h.T)
        theta, s = np.linalg.eigh(h)
        vectors = q @ s
        residual = aq @ s - vectors * theta
        residual_norms = np.linalg.norm(residual[:, :k], axis=0)
        scale = np.maximum(np.maximum(theta[:k], theta[k - 1]), np.finfo(float).tiny)
        if np.all(residual_norms <= tol * scale):
            converged = True
            break
        q = vectors
    return InverseIterationResult(
        eigenvalues=theta[:k].copy(),
        vectors=vectors[:, :k].copy(),
        iterations=iterations,
        residuals=residual_norms,
        converged=converged,
    )
