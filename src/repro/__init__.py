"""Reproduction of Blelloch, Gupta, Koutis, Miller, Peng, Tangwongsan:
"Near Linear-Work Parallel SDD Solvers, Low-Diameter Decomposition, and
Low-Stretch Subgraphs" (SPAA 2011).

Public API highlights
---------------------
* :func:`repro.factorize` / :class:`repro.LaplacianOperator` — the
  factorize-once / solve-many solver lifecycle (Theorem 1.1): build the
  preconditioner chain once, then ``solve(b)`` any number of ``(n,)``
  vectors or batched ``(n, k)`` right-hand-side blocks against it.
* :func:`repro.solve` — one-call facade with a process-level chain cache.
* :class:`repro.SolverService` — the micro-batching serving layer
  (:mod:`repro.serving`): an asyncio front-end that coalesces concurrent
  single-RHS requests on the same fingerprinted graph into one batched
  solve under a bounded latency window, backed by the byte-budgeted /
  TTL'd chain cache.
* :class:`repro.ChainConfig` / :class:`repro.SolverConfig` — frozen
  configuration objects (chain construction vs. iteration strategy; the
  method registry in :mod:`repro.core.methods` provides ``pcg``,
  ``chebyshev``, and the ``jacobi`` / ``direct`` baselines).
* :class:`repro.graph.Graph` and :mod:`repro.graph.generators` — graph
  substrate.
* :func:`repro.core.partition` / :func:`repro.core.split_graph` — parallel
  low-diameter decomposition (Theorem 4.1).
* :func:`repro.core.akpw_spanning_tree` — low-stretch spanning trees
  (Theorem 5.1).
* :func:`repro.core.low_stretch_subgraph` — low-stretch ultra-sparse
  subgraphs (Theorem 5.9).
* :mod:`repro.apps` — the workload suite built on the solver: spectral
  sparsification, a batched effective-resistance oracle
  (:class:`repro.ResistanceOracle`), harmonic interpolation /
  semi-supervised labeling (:func:`repro.harmonic_interpolation`),
  spectral embeddings (:func:`repro.spectral_embedding`), approximate
  max-flow, and decomposition spanners (all batched multi-RHS consumers).
* :mod:`repro.testing` — the dense reference oracles and the seeded
  random-graph fuzz corpus every workload is validated against.
* :class:`repro.pram.CostModel` — PRAM work/depth accounting used by the
  benchmarks.

Deprecated (thin shims, to be removed): :class:`repro.SDDSolver`,
:func:`repro.sdd_solve`.

Quickstart
----------
>>> import numpy as np, repro
>>> from repro.graph import generators
>>> g = generators.grid_2d(20, 20)
>>> op = repro.factorize(g, seed=0)
>>> B = np.random.default_rng(0).standard_normal((g.n, 4))
>>> B -= B.mean(axis=0)
>>> report = op.solve(B, tol=1e-8)     # one batched call, four solves
>>> bool(report.converged)
True
"""

from repro.graph.graph import Graph
from repro.graph.edits import EdgeEdits
from repro.core.decomposition import split_graph, partition, Decomposition
from repro.core.akpw import akpw_spanning_tree, AKPWParameters
from repro.core.sparse_akpw import low_stretch_subgraph, sparse_akpw, SparseAKPWParameters
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize, LaplacianOperator, SolveReport
from repro.core.update import UpdateReport
from repro.core.chain_cache import (
    chain_cache_stats,
    clear_chain_cache,
    set_chain_cache_budget,
    set_chain_cache_capacity,
    set_chain_cache_ttl,
)
from repro.core.solver import SDDSolver, sdd_solve
from repro.api import solve
from repro.kernels import (
    KernelBackendError,
    available_backends as available_kernel_backends,
    numba_available,
)
from repro.kernels.array_ns import (
    ArrayBackendError,
    available_array_backends,
    get_namespace,
)
from repro.serving import ServiceConfig, ServiceStats, SolverService
from repro.apps.harmonic import harmonic_interpolation, harmonic_labels
from repro.apps.resistance import ResistanceOracle, effective_resistance_pairs
from repro.apps.spectral import fiedler_vector, spectral_embedding
from repro.pram.model import CostModel

__version__ = "2.0.0"

__all__ = [
    "Graph",
    "EdgeEdits",
    "split_graph",
    "partition",
    "Decomposition",
    "akpw_spanning_tree",
    "AKPWParameters",
    "low_stretch_subgraph",
    "sparse_akpw",
    "SparseAKPWParameters",
    "factorize",
    "solve",
    "LaplacianOperator",
    "ChainConfig",
    "SolverConfig",
    "SolveReport",
    "UpdateReport",
    "KernelBackendError",
    "available_kernel_backends",
    "numba_available",
    "ArrayBackendError",
    "available_array_backends",
    "get_namespace",
    "chain_cache_stats",
    "clear_chain_cache",
    "set_chain_cache_capacity",
    "set_chain_cache_budget",
    "set_chain_cache_ttl",
    "SolverService",
    "ServiceConfig",
    "ServiceStats",
    "ResistanceOracle",
    "effective_resistance_pairs",
    "harmonic_interpolation",
    "harmonic_labels",
    "spectral_embedding",
    "fiedler_vector",
    "SDDSolver",
    "sdd_solve",
    "CostModel",
    "__version__",
]
