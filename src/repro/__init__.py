"""Reproduction of Blelloch, Gupta, Koutis, Miller, Peng, Tangwongsan:
"Near Linear-Work Parallel SDD Solvers, Low-Diameter Decomposition, and
Low-Stretch Subgraphs" (SPAA 2011).

Public API highlights
---------------------
* :class:`repro.graph.Graph` and :mod:`repro.graph.generators` — graph substrate.
* :func:`repro.core.partition` / :func:`repro.core.split_graph` — parallel
  low-diameter decomposition (Theorem 4.1).
* :func:`repro.core.akpw_spanning_tree` — low-stretch spanning trees
  (Theorem 5.1).
* :func:`repro.core.low_stretch_subgraph` — low-stretch ultra-sparse
  subgraphs (Theorem 5.9).
* :class:`repro.core.SDDSolver` / :func:`repro.core.sdd_solve` — the near
  linear-work SDD solver (Theorem 1.1).
* :mod:`repro.apps` — spectral sparsification, approximate max-flow, and
  decomposition spanners built on the solver.
* :class:`repro.pram.CostModel` — PRAM work/depth accounting used by the
  benchmarks.
"""

from repro.graph.graph import Graph
from repro.core.decomposition import split_graph, partition, Decomposition
from repro.core.akpw import akpw_spanning_tree, AKPWParameters
from repro.core.sparse_akpw import low_stretch_subgraph, sparse_akpw, SparseAKPWParameters
from repro.core.solver import SDDSolver, sdd_solve, SolveReport
from repro.pram.model import CostModel

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "split_graph",
    "partition",
    "Decomposition",
    "akpw_spanning_tree",
    "AKPWParameters",
    "low_stretch_subgraph",
    "sparse_akpw",
    "SparseAKPWParameters",
    "SDDSolver",
    "sdd_solve",
    "SolveReport",
    "CostModel",
    "__version__",
]
