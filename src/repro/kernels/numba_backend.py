"""Numba ``@njit(nogil=True)`` implementation of the solve-path kernels.

Every kernel here is the explicit-loop form of its
:mod:`repro.kernels.reference` counterpart, written to be **bit-for-bit**
equal to it (see the package docstring for the contract):

* scatter-adds run sequentially in step order — exactly ``np.add.at``'s
  per-slot accumulation (batched blocks loop column-major, which replays
  each slot's adds in the same order, so it also matches the reference's
  layered decomposition);
* column reductions re-implement NumPy's pairwise summation tree — the
  8-accumulator 128-element blocked algorithm of ``pairwise_sum`` in
  NumPy's reduce machinery — with an explicit stack instead of recursion
  (numba closures cannot recurse, and the tree depends only on the length,
  never on strides or SIMD width);
* CSR matvecs accumulate per row in stored-entry order, matching SciPy's
  ``csr_matvec``/``csr_matvecs`` C routines;
* recurrence updates evaluate the reference expression per element; IEEE
  addition is commutative, so in-place ``p = beta*p + z`` matches the
  reference's ``z + beta*p``.

The module imports **without numba**: the decorators degrade to identity
and the kernels run as plain (slow) Python.  That mode is never selected
by :func:`repro.kernels.get_kernels` — it exists so the test suite can pin
the compiled kernels' semantics against the reference on machines without
numba (:func:`build_kernels` with ``jit`` unavailable), which is also
exactly what ``@njit`` compiles when numba *is* present.  Compiled kernels
are cached on disk (``cache=True``; honor ``NUMBA_CACHE_DIR`` to redirect
the cache), so warmup is paid once per machine, not once per process.

No ``fastmath``, no ``parallel=True``: both license floating-point
reassociation (fastmath) or nondeterministic accumulation order (prange
reductions), which would break the bit-identity guarantee.  Parallelism
comes from *callers* overlapping on multiple threads while these kernels
hold no GIL.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import CsrOperand, KernelSet

try:  # pragma: no cover - exercised on numba-equipped lanes
    import numba as _numba

    HAVE_NUMBA = True

    def _njit(fn):
        return _numba.njit(cache=True, nogil=True, fastmath=False)(fn)

except ImportError:  # pragma: no cover - the no-numba lane
    _numba = None
    HAVE_NUMBA = False

    def _njit(fn):
        return fn


# --------------------------------------------------------------------------- #
# NumPy-exact pairwise summation (explicit-stack form of np.add.reduce's tree)
# --------------------------------------------------------------------------- #
# NumPy's pairwise_sum: n < 8 -> sequential; n <= 128 -> 8 accumulators
# combined as ((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7)) plus a sequential tail;
# else split at n2 = (n//2) - (n//2 % 8) and add left + right.  The split
# recursion is emulated with explicit stacks (depth <= ~60 for any int64
# length; 160 slots is far beyond that).

_PW_STACK = 160


@_njit
def _pairwise_block_dot(a, b, col, off, n):
    """Sum of ``a[off+i, col] * b[off+i, col]`` in NumPy's pairwise order.

    Passing ``a is b`` yields the squared-norm sum; multiplying on the fly
    is bitwise identical to materializing the product array first (the same
    products feed the same tree).
    """
    offs = np.empty(_PW_STACK, np.int64)
    lens = np.empty(_PW_STACK, np.int64)
    phase = np.empty(_PW_STACK, np.int8)
    vals = np.empty(_PW_STACK, np.float64)
    offs[0] = off
    lens[0] = n
    phase[0] = 0
    sp = 1
    vp = 0
    while sp > 0:
        sp -= 1
        o = offs[sp]
        m = lens[sp]
        if phase[sp] == 1:
            right = vals[vp - 1]
            left = vals[vp - 2]
            vp -= 2
            vals[vp] = left + right
            vp += 1
        elif m < 8:
            s = 0.0
            for i in range(m):
                s += a[o + i, col] * b[o + i, col]
            vals[vp] = s
            vp += 1
        elif m <= 128:
            r0 = a[o, col] * b[o, col]
            r1 = a[o + 1, col] * b[o + 1, col]
            r2 = a[o + 2, col] * b[o + 2, col]
            r3 = a[o + 3, col] * b[o + 3, col]
            r4 = a[o + 4, col] * b[o + 4, col]
            r5 = a[o + 5, col] * b[o + 5, col]
            r6 = a[o + 6, col] * b[o + 6, col]
            r7 = a[o + 7, col] * b[o + 7, col]
            i = 8
            lim = m - (m % 8)
            while i < lim:
                r0 += a[o + i, col] * b[o + i, col]
                r1 += a[o + i + 1, col] * b[o + i + 1, col]
                r2 += a[o + i + 2, col] * b[o + i + 2, col]
                r3 += a[o + i + 3, col] * b[o + i + 3, col]
                r4 += a[o + i + 4, col] * b[o + i + 4, col]
                r5 += a[o + i + 5, col] * b[o + i + 5, col]
                r6 += a[o + i + 6, col] * b[o + i + 6, col]
                r7 += a[o + i + 7, col] * b[o + i + 7, col]
                i += 8
            s = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
            while i < m:
                s += a[o + i, col] * b[o + i, col]
                i += 1
            vals[vp] = s
            vp += 1
        else:
            n2 = m // 2
            n2 -= n2 % 8
            # Reuse the popped slot for the combine marker; left is pushed
            # last so it is processed (and lands on the value stack) first.
            phase[sp] = 1
            sp += 1
            offs[sp] = o + n2
            lens[sp] = m - n2
            phase[sp] = 0
            sp += 1
            offs[sp] = o
            lens[sp] = n2
            phase[sp] = 0
            sp += 1
    return vals[0]


@_njit
def _pairwise_block_sum(a, col, off, n):
    """Sum of ``a[off+i, col]`` in NumPy's pairwise order (see the dot twin)."""
    offs = np.empty(_PW_STACK, np.int64)
    lens = np.empty(_PW_STACK, np.int64)
    phase = np.empty(_PW_STACK, np.int8)
    vals = np.empty(_PW_STACK, np.float64)
    offs[0] = off
    lens[0] = n
    phase[0] = 0
    sp = 1
    vp = 0
    while sp > 0:
        sp -= 1
        o = offs[sp]
        m = lens[sp]
        if phase[sp] == 1:
            right = vals[vp - 1]
            left = vals[vp - 2]
            vp -= 2
            vals[vp] = left + right
            vp += 1
        elif m < 8:
            s = 0.0
            for i in range(m):
                s += a[o + i, col]
            vals[vp] = s
            vp += 1
        elif m <= 128:
            r0 = a[o, col]
            r1 = a[o + 1, col]
            r2 = a[o + 2, col]
            r3 = a[o + 3, col]
            r4 = a[o + 4, col]
            r5 = a[o + 5, col]
            r6 = a[o + 6, col]
            r7 = a[o + 7, col]
            i = 8
            lim = m - (m % 8)
            while i < lim:
                r0 += a[o + i, col]
                r1 += a[o + i + 1, col]
                r2 += a[o + i + 2, col]
                r3 += a[o + i + 3, col]
                r4 += a[o + i + 4, col]
                r5 += a[o + i + 5, col]
                r6 += a[o + i + 6, col]
                r7 += a[o + i + 7, col]
                i += 8
            s = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
            while i < m:
                s += a[o + i, col]
                i += 1
            vals[vp] = s
            vp += 1
        else:
            n2 = m // 2
            n2 -= n2 % 8
            phase[sp] = 1
            sp += 1
            offs[sp] = o + n2
            lens[sp] = m - n2
            phase[sp] = 0
            sp += 1
            offs[sp] = o
            lens[sp] = n2
            phase[sp] = 0
            sp += 1
    return vals[0]


# --------------------------------------------------------------------------- #
# jitted cores
# --------------------------------------------------------------------------- #
@_njit
def _forward_rake_vec(carry, u, v):
    for i in range(u.shape[0]):
        carry[u[i]] += carry[v[i]]


@_njit
def _forward_rake_block(carry, u, v):
    k = carry.shape[1]
    for j in range(k):
        for i in range(u.shape[0]):
            carry[u[i], j] += carry[v[i], j]


@_njit
def _forward_compress_vec(carry, targets, sources, coeffs):
    for i in range(targets.shape[0]):
        carry[targets[i]] += coeffs[i] * carry[sources[i]]


@_njit
def _forward_compress_block(carry, targets, sources, coeffs):
    k = carry.shape[1]
    for j in range(k):
        for i in range(targets.shape[0]):
            carry[targets[i], j] += coeffs[i] * carry[sources[i], j]


@_njit
def _backward_rake_vec(x, carry, v, u, w):
    for i in range(v.shape[0]):
        x[v[i]] = x[u[i]] + carry[v[i]] / w[i]


@_njit
def _backward_rake_block(x, carry, v, u, w):
    k = x.shape[1]
    for j in range(k):
        for i in range(v.shape[0]):
            x[v[i], j] = x[u[i], j] + carry[v[i], j] / w[i]


@_njit
def _backward_compress_vec(x, carry, v, u1, u2, w1, w2, total):
    for i in range(v.shape[0]):
        x[v[i]] = (w1[i] * x[u1[i]] + w2[i] * x[u2[i]] + carry[v[i]]) / total[i]


@_njit
def _backward_compress_block(x, carry, v, u1, u2, w1, w2, total):
    k = x.shape[1]
    for j in range(k):
        for i in range(v.shape[0]):
            x[v[i], j] = (
                w1[i] * x[u1[i], j] + w2[i] * x[u2[i], j] + carry[v[i], j]
            ) / total[i]


@_njit
def _csr_matvec_vec(indptr, indices, data, x, out):
    for i in range(out.shape[0]):
        s = 0.0
        for jj in range(indptr[i], indptr[i + 1]):
            s += data[jj] * x[indices[jj]]
        out[i] = s


@_njit
def _csr_matvec_block(indptr, indices, data, x, out):
    k = out.shape[1]
    for i in range(out.shape[0]):
        for jj in range(indptr[i], indptr[i + 1]):
            a = data[jj]
            j = indices[jj]
            for c in range(k):
                out[i, c] += a * x[j, c]


@_njit
def _column_dot(a, b, out):
    n = a.shape[0]
    for j in range(a.shape[1]):
        out[j] = _pairwise_block_dot(a, b, j, 0, n)


@_njit
def _column_norms(a, out):
    n = a.shape[0]
    for j in range(a.shape[1]):
        out[j] = np.sqrt(_pairwise_block_dot(a, a, j, 0, n))


@_njit
def _column_means(a, out):
    n = a.shape[0]
    denom = float(max(n, 1))
    for j in range(a.shape[1]):
        out[j] = _pairwise_block_sum(a, j, 0, n) / denom


@_njit
def _subtract_column_means(v, out):
    n = v.shape[0]
    denom = float(max(n, 1))
    for j in range(v.shape[1]):
        mean = _pairwise_block_sum(v, j, 0, n) / denom
        for i in range(n):
            out[i, j] = v[i, j] - mean


@_njit
def _subtract_gathered_block(v, scaled, labels, out):
    k = v.shape[1]
    for i in range(v.shape[0]):
        lab = labels[i]
        for j in range(k):
            out[i, j] = v[i, j] - scaled[lab, j]


@_njit
def _cg_update_solution(x, r, p, ap, alpha):
    k = x.shape[1]
    for i in range(x.shape[0]):
        for j in range(k):
            x[i, j] += alpha[j] * p[i, j]
            r[i, j] -= alpha[j] * ap[i, j]


@_njit
def _cg_update_direction(p, z, beta):
    k = p.shape[1]
    for i in range(p.shape[0]):
        for j in range(k):
            p[i, j] = z[i, j] + beta[j] * p[i, j]


@_njit
def _cheb_update_x_vec(x, p, alpha):
    for i in range(x.shape[0]):
        x[i] += alpha * p[i]


@_njit
def _cheb_update_x_block(x, p, alpha):
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            x[i, j] += alpha * p[i, j]


@_njit
def _cheb_update_p_vec(p, z, beta):
    for i in range(p.shape[0]):
        p[i] = z[i] + beta * p[i]


@_njit
def _cheb_update_p_block(p, z, beta):
    for i in range(p.shape[0]):
        for j in range(p.shape[1]):
            p[i, j] = z[i, j] + beta * p[i, j]


@_njit
def _cheb_update_r_vec(r, ap, alpha):
    for i in range(r.shape[0]):
        r[i] -= alpha * ap[i]


@_njit
def _cheb_update_r_block(r, ap, alpha):
    for i in range(r.shape[0]):
        for j in range(r.shape[1]):
            r[i, j] -= alpha * ap[i, j]


@_njit
def _diag_scale_vec(inv, r, out):
    for i in range(r.shape[0]):
        out[i] = inv[i] * r[i]


@_njit
def _diag_scale_block(inv, r, out):
    for i in range(r.shape[0]):
        for j in range(r.shape[1]):
            out[i, j] = inv[i] * r[i, j]


# --------------------------------------------------------------------------- #
# KernelSet entry points (thin Python dispatchers over the jitted cores)
# --------------------------------------------------------------------------- #
def forward_rake(carry, u, v, layers) -> None:
    if carry.ndim == 1:
        _forward_rake_vec(carry, u, v)
    else:
        _forward_rake_block(carry, u, v)


def forward_compress(carry, targets, sources, coeffs, layers) -> None:
    if carry.ndim == 1:
        _forward_compress_vec(carry, targets, sources, coeffs)
    else:
        _forward_compress_block(carry, targets, sources, coeffs)


def backward_rake(x, carry, v, u, w) -> None:
    if x.ndim == 1:
        _backward_rake_vec(x, carry, v, u, w)
    else:
        _backward_rake_block(x, carry, v, u, w)


def backward_compress(x, carry, v, u1, u2, w1, w2, total) -> None:
    if x.ndim == 1:
        _backward_compress_vec(x, carry, v, u1, u2, w1, w2, total)
    else:
        _backward_compress_block(x, carry, v, u1, u2, w1, w2, total)


def csr_matvec(operand: CsrOperand, x):
    x = np.asarray(x, dtype=np.float64)
    n_rows = operand.shape[0]
    if x.ndim == 1:
        out = np.zeros(n_rows)
        _csr_matvec_vec(operand.indptr, operand.indices, operand.data, x, out)
    else:
        out = np.zeros((n_rows, x.shape[1]))
        _csr_matvec_block(operand.indptr, operand.indices, operand.data, x, out)
    return out


def column_dot(a, b):
    out = np.empty(a.shape[1])
    _column_dot(a, b, out)
    return out


def column_norms(a):
    out = np.empty(a.shape[1])
    _column_norms(a, out)
    return out


def column_means(a):
    out = np.empty(a.shape[1])
    _column_means(a, out)
    return out


def subtract_column_means(v):
    # NumPy's broadcasting `v - means` yields a C-ordered block for the mixed
    # (n, k) op (k,) operand pair; match that layout for downstream sweeps.
    out = np.empty(v.shape)
    _subtract_column_means(v, out)
    return out


def subtract_gathered(v, scaled, labels):
    if v.ndim == 1:
        # Not on the block hot path; the reference expression is already the
        # bit-exact semantics.
        return v - scaled[labels]
    out = np.empty(v.shape)
    _subtract_gathered_block(v, scaled, labels, out)
    return out


def cg_update_solution(x, r, p, ap, alpha) -> None:
    _cg_update_solution(x, r, p, ap, alpha)


def cg_update_direction(p, z, beta) -> None:
    _cg_update_direction(p, z, beta)


def cheb_update_x(x, p, alpha) -> None:
    if x.ndim == 1:
        _cheb_update_x_vec(x, p, float(alpha))
    else:
        _cheb_update_x_block(x, p, float(alpha))


def cheb_update_p(p, z, beta) -> None:
    if p.ndim == 1:
        _cheb_update_p_vec(p, z, float(beta))
    else:
        _cheb_update_p_block(p, z, float(beta))


def cheb_update_r(r, ap, alpha) -> None:
    if r.ndim == 1:
        _cheb_update_r_vec(r, ap, float(alpha))
    else:
        _cheb_update_r_block(r, ap, float(alpha))


def diag_scale(inv, r):
    if r.ndim == 1:
        out = np.empty(r.shape[0])
        _diag_scale_vec(inv, r, out)
    else:
        out = np.empty(r.shape)
        _diag_scale_block(inv, r, out)
    return out


def build_kernels() -> KernelSet:
    """Assemble the numba :class:`KernelSet`.

    With numba installed the cores above are jitted dispatchers
    (``jit=True``); without it they are the same loops as plain Python
    (``jit=False``) — selectable only through this function, for tests, and
    never returned by :func:`repro.kernels.get_kernels`.

    The compiled loops read and write host NumPy buffers, so this backend is
    host-only: it is always built over the ``"numpy"`` array namespace, and
    :func:`repro.kernels.get_kernels` rejects combining it with any other
    ``array_backend``.
    """
    from repro.kernels.array_ns import get_namespace

    return KernelSet(
        name="numba",
        jit=HAVE_NUMBA,
        array_ns=get_namespace("numpy"),
        forward_rake=forward_rake,
        forward_compress=forward_compress,
        backward_rake=backward_rake,
        backward_compress=backward_compress,
        csr_matvec=csr_matvec,
        column_dot=column_dot,
        column_norms=column_norms,
        column_means=column_means,
        subtract_column_means=subtract_column_means,
        subtract_gathered=subtract_gathered,
        cg_update_solution=cg_update_solution,
        cg_update_direction=cg_update_direction,
        cheb_update_x=cheb_update_x,
        cheb_update_p=cheb_update_p,
        cheb_update_r=cheb_update_r,
        diag_scale=diag_scale,
    )


_KERNELS = None


def load() -> KernelSet:
    """The process-wide numba kernel set (requires numba; see ``get_kernels``)."""
    global _KERNELS
    if _KERNELS is None:
        if not HAVE_NUMBA:  # pragma: no cover - guarded by resolve_backend
            from repro.kernels import KernelBackendError

            raise KernelBackendError(
                "numba backend loaded without numba installed; "
                "use get_kernels('auto') for graceful fallback"
            )
        _KERNELS = build_kernels()
    return _KERNELS
