"""Namespace-generic reference implementation of the solve-path kernels.

These are the exact sweeps the solver ran before the kernel layer existed,
moved verbatim behind the :class:`~repro.kernels.KernelSet` interface —
now written once against an :class:`~repro.kernels.array_ns.ArrayNamespace`
(``ns``) instead of module-level NumPy calls, so the *same* kernel bodies
execute on host NumPy, CuPy, Array-API views, or the test-only fakedevice
wrappers.  This module deliberately contains no direct NumPy reference
(a CI grep-gate enforces it): every array operation goes through ``ns``
hooks or the arrays' own operator surface.

Instantiated over the host namespace (``KERNELS``, the default backend)
the closures execute byte-for-byte the historical operation sequence and
define the bit-exactness contract every other backend must match:

* forward transfers replay ``np.add.at``'s sequential per-slot accumulation
  (vectors via ``ns.scatter_add``; batched blocks through the
  duplicate-free-target *layer* decomposition computed at compile time,
  which applies the adds aimed at any single slot in original step order);
* column reductions are the width-invariant pairwise sums of
  :mod:`repro.linalg.norms`, via ``ns.column_sum`` (a Fortran-copy
  ``add.reduce`` on host; device backends document ≤1e-12 agreement);
* CSR matvecs accumulate in the sparse library's stored-entry order
  (``ns.csr_matvec``);
* elementwise recurrence updates evaluate the historical expressions
  (in-place, which changes no bits — only allocation).
"""

from __future__ import annotations

from typing import Dict

from repro.kernels import KernelSet
from repro.kernels.array_ns import ArrayNamespace, get_namespace


def build_kernels(ns: ArrayNamespace) -> KernelSet:
    """Build the reference :class:`KernelSet` over an array namespace."""
    xp = ns.xp

    # ---------------------------------------------------------------- #
    # elimination transfers
    # ---------------------------------------------------------------- #
    def forward_rake(carry, u, v, layers) -> None:
        """Degree-1 forward sub-round: ``carry[u[i]] += carry[v[i]]`` in step order."""
        if carry.ndim == 1:
            ns.scatter_add(carry, u, carry[v])
            return
        for u_layer, v_layer in layers:
            carry[u_layer] += carry[v_layer]

    def forward_compress(carry, targets, sources, coeffs, layers) -> None:
        """Degree-2 forward sub-round: ``carry[t[i]] += c[i] * carry[s[i]]`` in step order."""
        if carry.ndim == 1:
            ns.scatter_add(carry, targets, coeffs * carry[sources])
            return
        for t_layer, s_layer, c_layer in layers:
            carry[t_layer] += c_layer[:, None] * carry[s_layer]

    def backward_rake(x, carry, v, u, w) -> None:
        """Degree-1 back-substitution: ``x[v] = x[u] + carry[v] / w`` (unique ``v``)."""
        if x.ndim == 1:
            x[v] = x[u] + carry[v] / w
        else:
            x[v] = x[u] + carry[v] / w[:, None]

    def backward_compress(x, carry, v, u1, u2, w1, w2, total) -> None:
        """Degree-2 back-substitution: ``x[v] = (w1 x[u1] + w2 x[u2] + carry[v]) / total``."""
        if x.ndim == 1:
            x[v] = (w1 * x[u1] + w2 * x[u2] + carry[v]) / total
        else:
            x[v] = (w1[:, None] * x[u1] + w2[:, None] * x[u2] + carry[v]) / total[:, None]

    # ---------------------------------------------------------------- #
    # sparse apply
    # ---------------------------------------------------------------- #
    def csr_matvec(operand, x):
        """Apply the CSR matrix to a vec or block (stored-entry order)."""
        return ns.csr_matvec(operand, x)

    # ---------------------------------------------------------------- #
    # column reductions / projections (see repro.linalg.norms)
    # ---------------------------------------------------------------- #
    def column_dot(a, b):
        """Per-column dot products of two equal-shape blocks."""
        return ns.column_sum(a * b)

    def column_norms(a):
        """Per-column Euclidean norms of a block."""
        return xp.sqrt(ns.column_sum(a * a))

    def column_means(a):
        """Per-column means of a block."""
        return ns.column_sum(a) / max(a.shape[0], 1)

    def subtract_column_means(v):
        """``v - column_means(v)`` for an ``(n, k)`` block (new array)."""
        return v - column_means(v)

    def subtract_gathered(v, scaled, labels):
        """``v - scaled[labels]`` (per-component mean removal; new array)."""
        return v - scaled[labels]

    # ---------------------------------------------------------------- #
    # batched CG recurrences
    # ---------------------------------------------------------------- #
    def cg_update_solution(x, r, p, ap, alpha) -> None:
        """``x += alpha * p``; ``r -= alpha * ap`` with per-column ``alpha`` (in place)."""
        x += alpha * p
        r -= alpha * ap

    def cg_update_direction(p, z, beta) -> None:
        """``p = z + beta * p`` with per-column ``beta`` (in place)."""
        p *= beta
        p += z

    # ---------------------------------------------------------------- #
    # Chebyshev semi-iteration updates (scalar coefficients)
    # ---------------------------------------------------------------- #
    def cheb_update_x(x, p, alpha: float) -> None:
        """``x += alpha * p`` (in place)."""
        x += alpha * p

    def cheb_update_p(p, z, beta: float) -> None:
        """``p = z + beta * p`` (in place)."""
        p *= beta
        p += z

    def cheb_update_r(r, ap, alpha: float) -> None:
        """``r -= alpha * ap`` (in place)."""
        r -= alpha * ap

    # ---------------------------------------------------------------- #
    # diagonal preconditioner
    # ---------------------------------------------------------------- #
    def diag_scale(inv, r):
        """``inv * r`` columnwise (new array)."""
        if r.ndim == 2:
            return inv[:, None] * r
        return inv * r

    return KernelSet(
        name="numpy",
        jit=False,
        forward_rake=forward_rake,
        forward_compress=forward_compress,
        backward_rake=backward_rake,
        backward_compress=backward_compress,
        csr_matvec=csr_matvec,
        column_dot=column_dot,
        column_norms=column_norms,
        column_means=column_means,
        subtract_column_means=subtract_column_means,
        subtract_gathered=subtract_gathered,
        cg_update_solution=cg_update_solution,
        cg_update_direction=cg_update_direction,
        cheb_update_x=cheb_update_x,
        cheb_update_p=cheb_update_p,
        cheb_update_r=cheb_update_r,
        diag_scale=diag_scale,
        array_ns=ns,
    )


_KERNEL_CACHE: Dict[str, KernelSet] = {}


def kernels_for(ns: ArrayNamespace) -> KernelSet:
    """The (cached) reference :class:`KernelSet` for a namespace."""
    kset = _KERNEL_CACHE.get(ns.name)
    if kset is None or kset.array_ns is not ns:
        kset = build_kernels(ns)
        _KERNEL_CACHE[ns.name] = kset
    return kset


#: The host (NumPy) reference kernels — the default backend and the
#: bit-exactness oracle.  ``get_kernels("numpy") is KERNELS`` holds.
KERNELS = kernels_for(get_namespace("numpy"))
