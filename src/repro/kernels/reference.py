"""Pure-NumPy reference implementation of the solve-path kernels.

These are the exact sweeps the solver ran before the kernel layer existed,
moved verbatim behind the :class:`~repro.kernels.KernelSet` interface.
They define the bit-exactness contract every other backend must match:

* forward transfers replay ``np.add.at``'s sequential per-slot accumulation
  (vectors directly; batched blocks through the duplicate-free-target
  *layer* decomposition computed at compile time, which applies the adds
  aimed at any single slot in original step order);
* column reductions are the width-invariant pairwise sums of
  :mod:`repro.linalg.norms`;
* CSR matvecs are SciPy's ``@``;
* elementwise recurrence updates evaluate the historical expressions
  (in-place, which changes no bits — only allocation).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import CsrOperand, KernelSet
from repro.linalg.norms import column_dot, column_means, column_norms


# --------------------------------------------------------------------------- #
# elimination transfers
# --------------------------------------------------------------------------- #
def forward_rake(carry: np.ndarray, u: np.ndarray, v: np.ndarray, layers) -> None:
    """Degree-1 forward sub-round: ``carry[u[i]] += carry[v[i]]`` in step order."""
    if carry.ndim == 1:
        np.add.at(carry, u, carry[v])
        return
    for u_layer, v_layer in layers:
        carry[u_layer] += carry[v_layer]


def forward_compress(
    carry: np.ndarray,
    targets: np.ndarray,
    sources: np.ndarray,
    coeffs: np.ndarray,
    layers,
) -> None:
    """Degree-2 forward sub-round: ``carry[t[i]] += c[i] * carry[s[i]]`` in step order."""
    if carry.ndim == 1:
        np.add.at(carry, targets, coeffs * carry[sources])
        return
    for t_layer, s_layer, c_layer in layers:
        carry[t_layer] += c_layer[:, None] * carry[s_layer]


def backward_rake(
    x: np.ndarray, carry: np.ndarray, v: np.ndarray, u: np.ndarray, w: np.ndarray
) -> None:
    """Degree-1 back-substitution: ``x[v] = x[u] + carry[v] / w`` (unique ``v``)."""
    if x.ndim == 1:
        x[v] = x[u] + carry[v] / w
    else:
        x[v] = x[u] + carry[v] / w[:, None]


def backward_compress(
    x: np.ndarray,
    carry: np.ndarray,
    v: np.ndarray,
    u1: np.ndarray,
    u2: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    total: np.ndarray,
) -> None:
    """Degree-2 back-substitution: ``x[v] = (w1 x[u1] + w2 x[u2] + carry[v]) / total``."""
    if x.ndim == 1:
        x[v] = (w1 * x[u1] + w2 * x[u2] + carry[v]) / total
    else:
        x[v] = (w1[:, None] * x[u1] + w2[:, None] * x[u2] + carry[v]) / total[:, None]


# --------------------------------------------------------------------------- #
# sparse apply
# --------------------------------------------------------------------------- #
def csr_matvec(operand: CsrOperand, x: np.ndarray) -> np.ndarray:
    """Apply the CSR matrix to a vec or block (SciPy's stored-entry order)."""
    return operand.matrix @ x


# --------------------------------------------------------------------------- #
# column reductions / projections (see repro.linalg.norms)
# --------------------------------------------------------------------------- #
def subtract_column_means(v: np.ndarray) -> np.ndarray:
    """``v - column_means(v)`` for an ``(n, k)`` block (new array)."""
    return v - column_means(v)


def subtract_gathered(v: np.ndarray, scaled: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """``v - scaled[labels]`` (per-component mean removal; new array)."""
    return v - scaled[labels]


# --------------------------------------------------------------------------- #
# batched CG recurrences
# --------------------------------------------------------------------------- #
def cg_update_solution(
    x: np.ndarray, r: np.ndarray, p: np.ndarray, ap: np.ndarray, alpha: np.ndarray
) -> None:
    """``x += alpha * p``; ``r -= alpha * ap`` with per-column ``alpha`` (in place)."""
    x += alpha * p
    r -= alpha * ap


def cg_update_direction(p: np.ndarray, z: np.ndarray, beta: np.ndarray) -> None:
    """``p = z + beta * p`` with per-column ``beta`` (in place)."""
    p *= beta
    p += z


# --------------------------------------------------------------------------- #
# Chebyshev semi-iteration updates (scalar coefficients)
# --------------------------------------------------------------------------- #
def cheb_update_x(x: np.ndarray, p: np.ndarray, alpha: float) -> None:
    """``x += alpha * p`` (in place)."""
    x += alpha * p


def cheb_update_p(p: np.ndarray, z: np.ndarray, beta: float) -> None:
    """``p = z + beta * p`` (in place)."""
    p *= beta
    p += z


def cheb_update_r(r: np.ndarray, ap: np.ndarray, alpha: float) -> None:
    """``r -= alpha * ap`` (in place)."""
    r -= alpha * ap


# --------------------------------------------------------------------------- #
# diagonal preconditioner
# --------------------------------------------------------------------------- #
def diag_scale(inv: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``inv * r`` columnwise (new array)."""
    if r.ndim == 2:
        return inv[:, None] * r
    return inv * r


KERNELS = KernelSet(
    name="numpy",
    jit=False,
    forward_rake=forward_rake,
    forward_compress=forward_compress,
    backward_rake=backward_rake,
    backward_compress=backward_compress,
    csr_matvec=csr_matvec,
    column_dot=column_dot,
    column_norms=column_norms,
    column_means=column_means,
    subtract_column_means=subtract_column_means,
    subtract_gathered=subtract_gathered,
    cg_update_solution=cg_update_solution,
    cg_update_direction=cg_update_direction,
    cheb_update_x=cheb_update_x,
    cheb_update_p=cheb_update_p,
    cheb_update_r=cheb_update_r,
    diag_scale=diag_scale,
)
