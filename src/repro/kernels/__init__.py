"""Runtime-dispatched compiled kernels for the solve hot path.

Every hot sweep of a solve — the elimination-transfer scatter/gathers
(:mod:`repro.core.transfer`), the batched CG recurrences
(:mod:`repro.linalg.cg`), the Chebyshev/Jacobi smoothing updates, the CSR
matvecs at each chain level, and the null-space projections — is a small
dense loop that NumPy executes while *holding the GIL*.  One thread solving
on a shared :class:`~repro.core.operator.LaplacianOperator` is fine;
``BENCH_concurrency.json`` showed eight threads are *slower* than one,
because the sweeps are many tiny GIL-bound calls.

This package puts those inner loops behind a narrow, bit-stable interface —
:class:`KernelSet` — with two interchangeable implementations:

* :mod:`repro.kernels.reference` — the pure-NumPy sweeps the solver has
  always run (today's code, refactored behind the interface).  Always
  available; the fallback and the bit-exactness oracle.
* :mod:`repro.kernels.numba_backend` — the same loops as ``numba``
  ``@njit(nogil=True, cache=True)`` kernels.  Because they release the GIL
  for the duration of each sweep, threads hammering one shared operator can
  actually overlap on multi-core hardware.  When numba is not installed the
  module still imports (the kernel *source* runs as plain Python, which is
  how the test suite pins its bit-identity without numba), but the backend
  is not selectable.

**The bit-for-bit contract.**  For identical inputs, every kernel of every
backend returns results bitwise equal to the reference: scatter-adds
replay ``np.add.at``'s per-slot accumulation order, column reductions
reproduce NumPy's pairwise summation tree exactly (see
:mod:`repro.linalg.norms`), CSR matvecs accumulate in SciPy's stored-entry
order, and elementwise updates evaluate the reference expression per
element.  Solves therefore produce identical iteration counts, residuals,
and solutions on every backend — the property ``tests/test_kernels.py``
pins over the fuzz corpus — and PRAM work/depth accounting is untouched
(kernels never charge; the call sites do, identically).

Backend selection
-----------------
:func:`get_kernels` resolves a backend name:

* ``"numpy"`` — the reference sweeps;
* ``"numba"`` — the compiled sweeps (raises :class:`KernelBackendError`
  with an actionable message when numba is missing);
* ``"auto"`` (default) — ``"numba"`` when importable, else ``"numpy"``.

The environment variable ``REPRO_KERNEL_BACKEND`` overrides the requested
name (useful for CI lanes and for flipping a deployed service without code
changes).  Selection normally happens once per operator, at
:func:`~repro.core.operator.factorize` time, from
``SolverConfig.kernel_backend``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kernels.array_ns import (
    ARRAY_BACKEND_ENV_VAR,
    ARRAY_BACKEND_NAMES,
    ArrayBackendError,
    ArrayNamespace,
    available_array_backends,
    get_namespace,
    resolve_backend_name,
)

__all__ = [
    "KernelSet",
    "CsrOperand",
    "KernelBackendError",
    "available_backends",
    "numba_available",
    "numba_version",
    "resolve_backend",
    "get_kernels",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "ARRAY_BACKEND_ENV_VAR",
    "ARRAY_BACKEND_NAMES",
    "ArrayBackendError",
    "ArrayNamespace",
    "available_array_backends",
    "get_namespace",
    "resolve_backend_name",
]

#: Environment variable overriding the configured backend name.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Names accepted by ``SolverConfig.kernel_backend`` / :func:`resolve_backend`.
BACKEND_NAMES = ("auto", "numpy", "numba")


class KernelBackendError(RuntimeError):
    """An unknown or unavailable kernel backend was requested."""


class CsrOperand:
    """A CSR matrix prepared for kernel-level matvecs.

    Holds both the :mod:`scipy.sparse` matrix (the reference backend applies
    it with ``@``) and its raw ``indptr``/``indices``/``data`` arrays (what
    compiled kernels iterate).  Built once per chain level at factorize
    time; immutable thereafter.

    When constructed with a non-host :class:`~repro.kernels.array_ns.ArrayNamespace`,
    ``device`` additionally holds the backend-side sparse payload produced by
    :meth:`~repro.kernels.array_ns.ArrayNamespace.prepare_csr` (e.g. a
    ``cupyx.scipy.sparse.csr_matrix``); namespaces whose matvec runs on host
    CSR buffers (fakedevice, array-api views) leave it ``None``.
    """

    __slots__ = ("matrix", "indptr", "indices", "data", "shape", "array_ns", "device")

    def __init__(
        self, matrix: sp.spmatrix, array_ns: Optional[ArrayNamespace] = None
    ) -> None:
        csr = sp.csr_matrix(matrix)
        if csr.dtype != np.float64:
            csr = csr.astype(np.float64)
        self.matrix = csr
        self.indptr = csr.indptr
        self.indices = csr.indices
        self.data = csr.data
        self.shape = csr.shape
        self.array_ns = array_ns
        self.device = (
            array_ns.prepare_csr(csr) if array_ns is not None and not array_ns.is_host else None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrOperand(shape={self.shape}, nnz={self.data.shape[0]})"


@dataclass(frozen=True)
class KernelSet:
    """One complete implementation of the solve-path inner loops.

    All array arguments are ``float64``; "block" means an ``(n, k)`` array
    of any memory order, "vec" a 1-D ``(n,)`` array.  Kernels marked
    *in-place* mutate their first argument(s) and return ``None``; the rest
    return fresh arrays.  Every function is required to be bitwise equal to
    its :mod:`repro.kernels.reference` counterpart (see the package
    docstring for the contract).

    Attributes
    ----------
    name:
        Backend name (``"numpy"`` or ``"numba"``).
    jit:
        Whether the kernels are actually JIT-compiled.  The numba backend
        reports ``False`` when numba is missing and the kernel source runs
        as plain Python (only reachable explicitly, via
        ``numba_backend.build_kernels()`` — never from :func:`get_kernels`).
    """

    name: str
    jit: bool

    # --- elimination transfers (in-place on carry / x) ------------------- #
    forward_rake: Callable = field(repr=False)
    forward_compress: Callable = field(repr=False)
    backward_rake: Callable = field(repr=False)
    backward_compress: Callable = field(repr=False)

    # --- sparse apply ----------------------------------------------------- #
    csr_matvec: Callable = field(repr=False)

    # --- width-invariant column reductions (blocks) ----------------------- #
    column_dot: Callable = field(repr=False)
    column_norms: Callable = field(repr=False)
    column_means: Callable = field(repr=False)
    subtract_column_means: Callable = field(repr=False)
    subtract_gathered: Callable = field(repr=False)

    # --- batched CG recurrences (in-place) -------------------------------- #
    cg_update_solution: Callable = field(repr=False)
    cg_update_direction: Callable = field(repr=False)

    # --- Chebyshev semi-iteration updates (in-place, scalar coeffs) ------- #
    cheb_update_x: Callable = field(repr=False)
    cheb_update_p: Callable = field(repr=False)
    cheb_update_r: Callable = field(repr=False)

    # --- diagonal (Jacobi) preconditioner application --------------------- #
    diag_scale: Callable = field(repr=False)

    # --- the array namespace the kernels operate in ------------------------ #
    # Host NumPy by default; non-host sets are built per-namespace by
    # ``reference.kernels_for(ns)``.  The numba backend is host-only.
    array_ns: ArrayNamespace = field(
        default_factory=lambda: get_namespace("numpy"), repr=False
    )


_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the ``numba`` package is importable (checked once, lazily)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def numba_version() -> Optional[str]:
    """The installed numba version string, or ``None`` when missing."""
    if not numba_available():
        return None
    import numba

    return str(numba.__version__)


def available_backends() -> Tuple[str, ...]:
    """Concrete backend names selectable right now (never includes "auto")."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a requested backend name to a concrete one.

    Resolution order: the ``REPRO_KERNEL_BACKEND`` environment variable when
    set (and non-empty), else ``backend``, else ``"auto"``.  ``"auto"``
    selects ``"numba"`` when importable and falls back to ``"numpy"``
    silently; an explicit ``"numba"`` raises :class:`KernelBackendError`
    when numba is missing.
    """
    env = os.environ.get(BACKEND_ENV_VAR)
    name = env if env else (backend if backend else "auto")
    if name not in BACKEND_NAMES:
        source = f"{BACKEND_ENV_VAR}={env!r}" if env else f"kernel_backend={name!r}"
        raise KernelBackendError(
            f"unknown kernel backend from {source}; expected one of {BACKEND_NAMES}"
        )
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise KernelBackendError(
            "kernel backend 'numba' was requested but numba is not installed; "
            "install the optional extra (pip install 'repro-sdd-solver[kernels]') "
            "or select backend 'numpy'/'auto'"
        )
    return name


def get_kernels(
    backend: Optional[str] = None, array_ns: Optional[ArrayNamespace] = None
) -> KernelSet:
    """Return the :class:`KernelSet` for ``backend`` (see :func:`resolve_backend`).

    When ``array_ns`` is a non-host namespace, the reference sweeps are
    instantiated over that namespace (``reference.kernels_for``).  The numba
    backend compiles host-memory loops, so combining an explicit
    ``kernel_backend="numba"`` with a non-host array backend raises
    :class:`KernelBackendError` — before the numba-availability check, so
    the combination error is the one users see regardless of what is
    installed.  ``"auto"`` falls back to the namespace-generic sweeps
    silently, mirroring its numba-missing fallback.
    """
    if array_ns is not None and not array_ns.is_host:
        env = os.environ.get(BACKEND_ENV_VAR)
        requested = env if env else (backend if backend else "auto")
        if requested not in BACKEND_NAMES:
            resolve_backend(backend)  # raises the canonical unknown-name error
        if requested == "numba":
            raise KernelBackendError(
                "kernel backend 'numba' supports only array_backend='numpy' "
                f"(got array backend {array_ns.name!r}); the compiled kernels "
                "operate on host NumPy arrays — select kernel_backend "
                "'numpy'/'auto' or array_backend 'numpy'"
            )
        from repro.kernels import reference

        return reference.kernels_for(array_ns)
    name = resolve_backend(backend)
    if name == "numpy":
        from repro.kernels import reference

        return reference.KERNELS
    from repro.kernels import numba_backend

    return numba_backend.load()


def default_kernels() -> KernelSet:
    """The always-available reference kernels (internal default argument)."""
    from repro.kernels import reference

    return reference.KERNELS
