"""Pluggable array namespaces for the compiled solve path.

The solve half of the stack — elimination transfers, batched CG, Chebyshev
smoothing, Jacobi scaling, null-space projections — is pure scatter/gather,
CSR matvec, and elementwise recurrence arithmetic.  Nothing in it is
NumPy-specific except the spelling.  This module abstracts that spelling
behind an :class:`ArrayNamespace` object (``xp`` in Array-API parlance) so
the identical kernel code (:func:`repro.kernels.reference.build_kernels`)
executes on NumPy, CuPy, or any Array-API namespace, with chain arrays
resident on the target device and **no per-iteration host round-trips**.

Backends (resolved by name, see :func:`get_namespace`)
------------------------------------------------------
``"numpy"``
    The host namespace.  Transfer points are identity functions; results are
    bit-for-bit identical to the historical hard-coded-NumPy code paths.
``"cupy"``
    CuPy device arrays (requires ``cupy``; raises :class:`ArrayBackendError`
    when not importable).  Arrays live on the GPU; the sanctioned host
    boundaries are RHS ingress, solution egress, per-iteration O(k) control
    pulls, and the bottom-level LU solve.
``"array_api:<module>"``
    Any importable Array-API namespace (e.g. ``array_api_strict``).  Data
    round-trips through the module at the transfer points and the sweeps run
    on zero-copy DLPack views, so only CPU-backed namespaces are supported —
    the construction-time probe rejects modules whose arrays cannot be
    viewed by NumPy.
``"fakedevice"``
    A test-only namespace proving the residency contract.  Arrays are NumPy
    wrappers (:class:`FakeDeviceArray`) that *refuse implicit coercion*:
    ``__array__``/``__bool__``/``__float__`` raise, and mixing a host
    ``ndarray`` into device arithmetic raises — so any silent host sync in
    the iteration loop is a hard test failure, not a slow path.  Every
    sanctioned transfer is counted, by reason, in :attr:`ArrayNamespace.counter`.

Transfer-boundary contract
--------------------------
All host↔device movement goes through three methods, each tagged with a
``reason`` recorded by the namespace's :class:`TransferCounter`:

* :meth:`ArrayNamespace.asarray` — host → device (``"ingress"`` for RHS
  data, ``"upload"`` for chain/schedule arrays at factorize time,
  ``"setup"`` for one-time calibration, ``"bottom"`` for the bottom-level
  scatter).
* :meth:`ArrayNamespace.to_host` — device → host (``"egress"`` for the
  solution, ``"bottom"`` for the bottom-level gather, ``"setup"``).
* :meth:`ArrayNamespace.pull` — device → host for O(k)-sized control data
  (residual norms, breakdown flags).  These scale with the iteration count
  but never with ``n``; array-sized ingress/egress is O(1) per solve.

Pinned dtype rules: floating payloads are always ``float64`` (the bitwise
reproducibility story is a float64 story); integer schedule arrays keep
their compiled dtype.  :meth:`ArrayNamespace.ensure` is the float64-pinning
equivalent of the historical ``np.asarray(x, dtype=float)`` idiom.
"""

from __future__ import annotations

import importlib
import os
import threading
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ARRAY_BACKEND_ENV_VAR",
    "ARRAY_BACKEND_NAMES",
    "ArrayBackendError",
    "ArrayNamespace",
    "FakeDeviceArray",
    "TransferCounter",
    "available_array_backends",
    "get_namespace",
    "is_valid_backend_name",
    "resolve_backend_name",
]

#: Environment variable overriding ``SolverConfig.array_backend`` at
#: factorize time (mirrors ``REPRO_KERNEL_BACKEND``).  Unlike the kernel
#: override, the resolved name is folded into the config *before* the chain
#: cache key is computed: array backends change where arrays live, so a
#: cached operator for one backend must never serve a caller of another.
ARRAY_BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

#: Fixed backend names; ``"array_api:<module>"`` is additionally accepted.
ARRAY_BACKEND_NAMES = ("numpy", "cupy", "fakedevice")

_ARRAY_API_PREFIX = "array_api:"


class ArrayBackendError(RuntimeError):
    """An unknown or unavailable array backend was requested, or the
    fakedevice namespace caught an implicit host↔device coercion."""


def is_valid_backend_name(name: object) -> bool:
    """Whether ``name`` is a syntactically valid array-backend name."""
    if not isinstance(name, str):
        return False
    if name in ARRAY_BACKEND_NAMES:
        return True
    return name.startswith(_ARRAY_API_PREFIX) and len(name) > len(_ARRAY_API_PREFIX)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve the requested array-backend name to a concrete one.

    The ``REPRO_ARRAY_BACKEND`` environment variable (when set and
    non-empty) wins over ``name``; ``None`` means ``"numpy"``.  Only the
    *name* is validated here — availability (is cupy importable, does the
    Array-API module exist) is checked by :func:`get_namespace`.
    """
    env = os.environ.get(ARRAY_BACKEND_ENV_VAR)
    resolved = env if env else (name if name else "numpy")
    if not is_valid_backend_name(resolved):
        source = (
            f"{ARRAY_BACKEND_ENV_VAR}={env!r}" if env else f"array_backend={resolved!r}"
        )
        raise ArrayBackendError(
            f"unknown array backend from {source}; expected one of "
            f"{ARRAY_BACKEND_NAMES} or 'array_api:<module>'"
        )
    return resolved


def available_array_backends() -> Tuple[str, ...]:
    """Concrete backend names selectable right now (cupy only if importable)."""
    names = ["numpy", "fakedevice"]
    try:
        import cupy  # noqa: F401

        names.insert(1, "cupy")
    except ImportError:
        pass
    return tuple(names)


# --------------------------------------------------------------------------- #
# transfer accounting
# --------------------------------------------------------------------------- #
class TransferCounter:
    """Reason-keyed counters of host↔device transfers (thread-safe).

    ``counts[reason]`` is the number of transfer calls, ``elements[reason]``
    the total array elements moved, and ``max_elements[reason]`` the largest
    single transfer — the fakedevice residency tests assert that ``ingress``
    and ``egress`` stay O(1) per solve while ``control`` pulls stay O(k).
    """

    __slots__ = ("_lock", "counts", "elements", "max_elements")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {}
        self.elements: Dict[str, int] = {}
        self.max_elements: Dict[str, int] = {}

    def record(self, reason: str, num_elements: int) -> None:
        with self._lock:
            self.counts[reason] = self.counts.get(reason, 0) + 1
            self.elements[reason] = self.elements.get(reason, 0) + int(num_elements)
            if int(num_elements) > self.max_elements.get(reason, 0):
                self.max_elements[reason] = int(num_elements)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """An immutable copy of all counters (for delta assertions)."""
        with self._lock:
            return {
                "counts": dict(self.counts),
                "elements": dict(self.elements),
                "max_elements": dict(self.max_elements),
            }

    def reset(self) -> None:
        with self._lock:
            self.counts.clear()
            self.elements.clear()
            self.max_elements.clear()


class _NullCounter(TransferCounter):
    """No-op counter for the host namespace (keeps the hot path free)."""

    def record(self, reason: str, num_elements: int) -> None:  # noqa: D102
        pass


def _size_of(x: Any) -> int:
    size = getattr(x, "size", None)
    return int(size) if size is not None else 1


# --------------------------------------------------------------------------- #
# the namespace interface + host (NumPy) implementation
# --------------------------------------------------------------------------- #
class ArrayNamespace:
    """The array-namespace surface the solve path is written against.

    The base class *is* the host NumPy implementation: every transfer point
    is an identity (modulo the historical dtype pinning), so threading it
    through the kernels changes no bits relative to the hard-coded-``np``
    code it replaced.  Non-host backends subclass and override the transfer
    points plus the handful of primitives whose spelling differs.

    Attributes
    ----------
    name:
        The resolved backend name (``"numpy"``, ``"cupy"``, ``"fakedevice"``,
        ``"array_api:<module>"``).
    xp:
        The raw array module (NumPy itself for the host namespace; a
        NumPy-surface proxy for fakedevice; CuPy for cupy).  Kernels reach
        elementwise/creation functions through it.
    is_host:
        Whether arrays of this namespace are plain host ``ndarray`` objects.
        ``True`` only for ``"numpy"``.
    counter:
        The :class:`TransferCounter` recording sanctioned transfers (a
        no-op instance on the host namespace).
    """

    name = "numpy"
    is_host = True

    def __init__(self) -> None:
        self.xp = np
        self.counter: TransferCounter = _NullCounter()

    # -- transfer points ------------------------------------------------- #
    def asarray(self, x: Any, dtype: Any = None, *, reason: str = "ingress") -> Any:
        """Move host data into the namespace (dtype preserved by default)."""
        return np.asarray(x, dtype=dtype)

    def to_host(self, x: Any, *, reason: str = "egress") -> np.ndarray:
        """Move an array back to a host ``ndarray``."""
        return np.asarray(x)

    def pull(self, x: Any, *, reason: str = "control") -> np.ndarray:
        """Read a small (O(k)) control array back to host."""
        return np.asarray(x)

    # -- construction / layout ------------------------------------------- #
    def ensure(self, x: Any) -> Any:
        """The namespace equivalent of ``np.asarray(x, dtype=float)``."""
        return np.asarray(x, dtype=float)

    def zeros(self, shape: Any) -> Any:
        return np.zeros(shape)

    def zeros_like(self, x: Any) -> Any:
        return np.zeros_like(x)

    def copy(self, x: Any, order: str = "C") -> Any:
        """A fresh float64 copy in the requested memory order."""
        return np.array(x, dtype=float, copy=True, order=order)

    def ascontiguous(self, x: Any) -> Any:
        return np.ascontiguousarray(x)

    # -- kernel primitives ------------------------------------------------ #
    def scatter_add(self, arr: Any, idx: Any, vals: Any) -> None:
        """``arr[idx[i]] += vals[i]`` replaying ``np.add.at``'s slot order."""
        np.add.at(arr, idx, vals)

    def column_sum(self, block: Any) -> Any:
        """Width-invariant per-column sum (NumPy's pairwise tree on a
        Fortran copy — see :mod:`repro.linalg.norms`)."""
        return np.add.reduce(np.asfortranarray(block), axis=0)

    def prepare_csr(self, csr) -> Any:
        """Backend-side payload for a :class:`~repro.kernels.CsrOperand`."""
        return None

    def csr_matvec(self, operand, x: Any) -> Any:
        """Apply a prepared CSR operand to a vec/block of this namespace."""
        return operand.matrix @ x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayNamespace(name={self.name!r}, is_host={self.is_host})"


# --------------------------------------------------------------------------- #
# fakedevice: coercion-refusing NumPy wrappers with transfer accounting
# --------------------------------------------------------------------------- #
def _is_host_array(x: Any) -> bool:
    return isinstance(x, np.ndarray) and x.ndim > 0


def _fd_unwrap(x: Any) -> Any:
    if isinstance(x, FakeDeviceArray):
        return x._a
    if isinstance(x, tuple):
        return tuple(_fd_unwrap(item) for item in x)
    if isinstance(x, list):
        return [_fd_unwrap(item) for item in x]
    return x


def _fd_wrap(x: Any) -> Any:
    if isinstance(x, np.ndarray):
        return FakeDeviceArray(x)
    if isinstance(x, tuple):
        return tuple(_fd_wrap(item) for item in x)
    return x


class FakeDeviceArray:
    """A "device-resident" array: NumPy data that refuses implicit host syncs.

    The wrapper forwards indexing and arithmetic to the wrapped ``ndarray``
    (so the generic kernels run unchanged) but makes every *implicit* host
    boundary loud: ``np.asarray``/``__array__`` raises, truthiness and
    scalar conversion raise, and any binary operation mixing in a host
    ``ndarray`` (``ndim > 0``) raises :class:`ArrayBackendError`.  Host
    *index* arrays are allowed — they are O(active-columns) metadata, and
    real device libraries (CuPy) accept host index arrays the same way —
    but host-array *values* assigned into a device array are not.
    """

    __slots__ = ("_a",)

    # Keep NumPy from routing ufuncs through the wrapped buffer: a host
    # operand's ufunc returns NotImplemented, deferring to our reflected
    # dunder, which raises explicitly.
    __array_ufunc__ = None

    def __init__(self, a: np.ndarray) -> None:
        self._a = a

    # -- metadata (host-visible without a sync, as on real devices) ------- #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._a.shape

    @property
    def ndim(self) -> int:
        return self._a.ndim

    @property
    def dtype(self):
        return self._a.dtype

    @property
    def size(self) -> int:
        return self._a.size

    @property
    def nbytes(self) -> int:
        return self._a.nbytes

    def __len__(self) -> int:
        return self._a.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FakeDeviceArray(shape={self._a.shape}, dtype={self._a.dtype})"

    # -- forbidden implicit host syncs ------------------------------------ #
    def __array__(self, dtype=None, copy=None):
        raise ArrayBackendError(
            "implicit host transfer: np.asarray() called on a fakedevice array; "
            "use ArrayNamespace.to_host()/pull() at a sanctioned boundary"
        )

    def __bool__(self) -> bool:
        raise ArrayBackendError(
            "implicit host transfer: truth value of a fakedevice array"
        )

    def __float__(self) -> float:
        raise ArrayBackendError(
            "implicit host transfer: float() of a fakedevice array"
        )

    def __int__(self) -> int:
        raise ArrayBackendError("implicit host transfer: int() of a fakedevice array")

    def __iter__(self):
        raise ArrayBackendError(
            "implicit host transfer: iteration over a fakedevice array"
        )

    # -- device-side methods ---------------------------------------------- #
    def copy(self, order: str = "C") -> "FakeDeviceArray":
        # Default "C" matches ndarray.copy(): downstream layout-sensitive
        # reductions must see the same memory order the host path produces.
        return FakeDeviceArray(self._a.copy(order=order))

    def mean(self, *args, **kwargs):
        return self._a.mean(*args, **kwargs)

    # -- indexing ---------------------------------------------------------- #
    def __getitem__(self, key):
        return _fd_wrap(self._a[_fd_unwrap(key)])

    def __setitem__(self, key, value) -> None:
        if _is_host_array(value):
            raise ArrayBackendError(
                "implicit device transfer: assigning a host ndarray into a "
                "fakedevice array; upload it with ArrayNamespace.asarray() first"
            )
        self._a[_fd_unwrap(key)] = _fd_unwrap(value)

    # -- arithmetic --------------------------------------------------------- #
    def _coerce(self, other: Any) -> Any:
        if isinstance(other, FakeDeviceArray):
            return other._a
        if _is_host_array(other):
            raise ArrayBackendError(
                "implicit host/device mix: binary op between a fakedevice array "
                "and a host ndarray"
            )
        return other

    def __add__(self, other):
        return _fd_wrap(self._a + self._coerce(other))

    def __radd__(self, other):
        return _fd_wrap(self._coerce(other) + self._a)

    def __sub__(self, other):
        return _fd_wrap(self._a - self._coerce(other))

    def __rsub__(self, other):
        return _fd_wrap(self._coerce(other) - self._a)

    def __mul__(self, other):
        return _fd_wrap(self._a * self._coerce(other))

    def __rmul__(self, other):
        return _fd_wrap(self._coerce(other) * self._a)

    def __truediv__(self, other):
        return _fd_wrap(self._a / self._coerce(other))

    def __rtruediv__(self, other):
        return _fd_wrap(self._coerce(other) / self._a)

    def __pow__(self, other):
        return _fd_wrap(self._a ** self._coerce(other))

    def __neg__(self):
        return _fd_wrap(-self._a)

    def __iadd__(self, other):
        self._a += self._coerce(other)
        return self

    def __isub__(self, other):
        self._a -= self._coerce(other)
        return self

    def __imul__(self, other):
        self._a *= self._coerce(other)
        return self

    def __itruediv__(self, other):
        self._a /= self._coerce(other)
        return self

    def __matmul__(self, other):
        return _fd_wrap(self._a @ self._coerce(other))

    def __rmatmul__(self, other):
        return _fd_wrap(self._coerce(other) @ self._a)

    def __lt__(self, other):
        return _fd_wrap(self._a < self._coerce(other))

    def __le__(self, other):
        return _fd_wrap(self._a <= self._coerce(other))

    def __gt__(self, other):
        return _fd_wrap(self._a > self._coerce(other))

    def __ge__(self, other):
        return _fd_wrap(self._a >= self._coerce(other))

    def __eq__(self, other):  # type: ignore[override]
        return _fd_wrap(self._a == self._coerce(other))

    def __ne__(self, other):  # type: ignore[override]
        return _fd_wrap(self._a != self._coerce(other))

    __hash__ = None  # type: ignore[assignment]


class _FakeUfunc:
    """Proxy of a NumPy ufunc operating on fakedevice payloads."""

    __slots__ = ("_ufunc",)

    def __init__(self, ufunc: np.ufunc) -> None:
        self._ufunc = ufunc

    def __call__(self, *args, **kwargs):
        return _fd_wrap(self._ufunc(*map(_fd_unwrap, args), **kwargs))

    def at(self, arr, idx, vals=None) -> None:
        if vals is None:
            self._ufunc.at(_fd_unwrap(arr), _fd_unwrap(idx))
        else:
            self._ufunc.at(_fd_unwrap(arr), _fd_unwrap(idx), _fd_unwrap(vals))

    def reduce(self, *args, **kwargs):
        return _fd_wrap(self._ufunc.reduce(*map(_fd_unwrap, args), **kwargs))


class _FakeXp:
    """NumPy-surface module proxy: unwrap fakedevice args, wrap results.

    Only invoked from namespace-aware code (the generic kernels), so host
    ``ndarray`` arguments are passed through untouched — strictness against
    accidental mixing lives on the *array* dunders, where accidents happen.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[str, Any] = {}

    def __getattr__(self, name: str) -> Any:
        try:
            return self._cache[name]
        except KeyError:
            pass
        attr = getattr(np, name)
        if isinstance(attr, np.ufunc):
            wrapped: Any = _FakeUfunc(attr)
        elif callable(attr):
            def wrapped(*args, _fn=attr, **kwargs):  # type: ignore[misc]
                return _fd_wrap(
                    _fn(*map(_fd_unwrap, args), **{k: _fd_unwrap(v) for k, v in kwargs.items()})
                )
        else:
            wrapped = attr
        self._cache[name] = wrapped
        return wrapped


class FakeDeviceNamespace(ArrayNamespace):
    """Test-only namespace proving solve-path residency (see module docs)."""

    name = "fakedevice"
    is_host = False

    def __init__(self) -> None:
        self.xp = _FakeXp()
        self.counter = TransferCounter()

    def asarray(self, x, dtype=None, *, reason="ingress"):
        if isinstance(x, FakeDeviceArray):
            return x
        a = np.asarray(x, dtype=dtype)
        if a.dtype.kind == "f" and a.dtype != np.float64:
            a = a.astype(np.float64)
        self.counter.record(reason, a.size)
        return FakeDeviceArray(a.copy())

    def to_host(self, x, *, reason="egress"):
        if isinstance(x, FakeDeviceArray):
            self.counter.record(reason, x.size)
            return x._a
        return np.asarray(x)

    def pull(self, x, *, reason="control"):
        if isinstance(x, FakeDeviceArray):
            self.counter.record(reason, x.size)
            return x._a
        return np.asarray(x)

    def ensure(self, x):
        if isinstance(x, FakeDeviceArray):
            return x
        return self.asarray(x, dtype=float, reason="ingress")

    def zeros(self, shape):
        return FakeDeviceArray(np.zeros(shape))

    def zeros_like(self, x):
        return FakeDeviceArray(np.zeros_like(_fd_unwrap(x)))

    def copy(self, x, order="C"):
        if not isinstance(x, FakeDeviceArray):
            return self.asarray(
                np.array(x, dtype=float, copy=True, order=order), reason="ingress"
            )
        return FakeDeviceArray(np.array(x._a, dtype=float, copy=True, order=order))

    def ascontiguous(self, x):
        return FakeDeviceArray(np.ascontiguousarray(_fd_unwrap(x)))

    def scatter_add(self, arr, idx, vals) -> None:
        np.add.at(_fd_unwrap(arr), _fd_unwrap(idx), _fd_unwrap(vals))

    def column_sum(self, block):
        return FakeDeviceArray(
            np.add.reduce(np.asfortranarray(_fd_unwrap(block)), axis=0)
        )

    def csr_matvec(self, operand, x):
        return FakeDeviceArray(operand.matrix @ _fd_unwrap(x))


# --------------------------------------------------------------------------- #
# generic Array-API namespaces (CPU interop via DLPack views)
# --------------------------------------------------------------------------- #
class ArrayApiNamespace(ArrayNamespace):
    """A namespace backed by an importable Array-API module.

    Data enters through ``<module>.asarray`` and is then viewed zero-copy by
    NumPy via DLPack, so the sweeps run NumPy code on memory the module
    owns.  This supports any *CPU-backed* Array-API namespace (the
    construction probe rejects modules NumPy cannot view — for GPUs use the
    native ``"cupy"`` backend).  Because the compute is the reference NumPy
    compute on float64 buffers, results are bit-identical to the ``"numpy"``
    backend; what this lane buys is proof that the solve path never touches
    an array except through the namespace surface.
    """

    is_host = False

    def __init__(self, module_name: str) -> None:
        try:
            api = importlib.import_module(module_name)
        except ImportError as exc:
            raise ArrayBackendError(
                f"array backend 'array_api:{module_name}' requires the module "
                f"{module_name!r}, which is not importable: {exc}"
            ) from exc
        self.name = f"{_ARRAY_API_PREFIX}{module_name}"
        self.api = api
        self.xp = np
        self.counter = TransferCounter()
        if not hasattr(api, "asarray"):
            raise ArrayBackendError(
                f"module {module_name!r} is not an Array-API namespace "
                "(missing asarray)"
            )
        try:
            probe = self._view(api.asarray(np.asarray([0.0, 1.0])))
        except Exception as exc:
            raise ArrayBackendError(
                f"array backend 'array_api:{module_name}': NumPy cannot view the "
                f"module's arrays ({exc!r}); only CPU-backed Array-API namespaces "
                "are supported — use the native 'cupy' backend for GPUs"
            ) from exc
        if probe.shape != (2,):  # pragma: no cover - defensive
            raise ArrayBackendError(
                f"array backend 'array_api:{module_name}' round-trip probe failed"
            )

    def _view(self, device_array) -> np.ndarray:
        """A host view of a module-owned array (copying only if read-only)."""
        try:
            view = np.from_dlpack(device_array)
        except (TypeError, AttributeError, RuntimeError, BufferError):
            view = np.asarray(device_array)
        if isinstance(view, np.ndarray) and not view.flags.writeable:
            view = view.copy()
        return view

    def asarray(self, x, dtype=None, *, reason="ingress"):
        a = np.asarray(x, dtype=dtype)
        if a.dtype.kind == "f" and a.dtype != np.float64:
            a = a.astype(np.float64)
        self.counter.record(reason, a.size)
        # Round-trip through the module: the returned working array shares
        # (or is a faithful copy of) buffers the module allocated.
        return self._view(self.api.asarray(a))

    def to_host(self, x, *, reason="egress"):
        a = np.asarray(x)
        self.counter.record(reason, a.size)
        return a

    def pull(self, x, *, reason="control"):
        a = np.asarray(x)
        self.counter.record(reason, a.size)
        return a


class CupyNamespace(ArrayNamespace):
    """CuPy device namespace (GPU).  Gated on ``import cupy``.

    The sweeps reuse the generic kernels: CuPy's ndarray implements the
    NumPy operator surface, scatter-adds go through ``cupyx.scatter_add``,
    and CSR matvecs through ``cupyx.scipy.sparse``.  Column reductions use
    ``sum(axis=0)`` — device reductions do not replay NumPy's pairwise tree,
    so the cross-backend agreement contract for CuPy is ≤1e-12 (the
    fakedevice namespace, which shares every transfer boundary, pins the
    residency contract bitwise on CPU).
    """

    name = "cupy"
    is_host = False

    def __init__(self) -> None:
        try:
            import cupy
            import cupyx
            import cupyx.scipy.sparse as cpsp
        except ImportError as exc:
            raise ArrayBackendError(
                "array backend 'cupy' was requested but cupy is not installed; "
                "install cupy for your CUDA/ROCm toolkit or select "
                "array_backend 'numpy'"
            ) from exc
        self.xp = cupy
        self._cupy = cupy
        self._cupyx = cupyx
        self._cpsp = cpsp
        self.counter = TransferCounter()

    def asarray(self, x, dtype=None, *, reason="ingress"):
        a = np.asarray(x, dtype=dtype)
        if a.dtype.kind == "f" and a.dtype != np.float64:
            a = a.astype(np.float64)
        self.counter.record(reason, a.size)
        return self._cupy.asarray(a)

    def to_host(self, x, *, reason="egress"):
        a = self._cupy.asnumpy(x)
        self.counter.record(reason, a.size)
        return np.asarray(a)

    def pull(self, x, *, reason="control"):
        a = self._cupy.asnumpy(x)
        self.counter.record(reason, a.size)
        return np.asarray(a)

    def ensure(self, x):
        return self._cupy.asarray(x, dtype=self._cupy.float64)

    def zeros(self, shape):
        return self._cupy.zeros(shape)

    def zeros_like(self, x):
        return self._cupy.zeros_like(x)

    def copy(self, x, order="C"):
        return self._cupy.array(x, dtype=self._cupy.float64, copy=True, order=order)

    def ascontiguous(self, x):
        return self._cupy.ascontiguousarray(x)

    def scatter_add(self, arr, idx, vals) -> None:
        self._cupyx.scatter_add(arr, idx, vals)

    def column_sum(self, block):
        return block.sum(axis=0)

    def prepare_csr(self, csr):
        return self._cpsp.csr_matrix(csr)

    def csr_matvec(self, operand, x):
        return operand.device @ x


# --------------------------------------------------------------------------- #
# resolution
# --------------------------------------------------------------------------- #
_NAMESPACES: Dict[str, ArrayNamespace] = {}
_NAMESPACES_LOCK = threading.Lock()

_FACTORIES: Dict[str, Callable[[], ArrayNamespace]] = {
    "numpy": ArrayNamespace,
    "fakedevice": FakeDeviceNamespace,
    "cupy": CupyNamespace,
}


def get_namespace(name: Optional[str] = None) -> ArrayNamespace:
    """The (cached, process-wide) :class:`ArrayNamespace` for ``name``.

    ``name`` must already be concrete (see :func:`resolve_backend_name` for
    the env-override step).  Raises :class:`ArrayBackendError` for unknown
    names and for backends whose module is unavailable.  Namespaces are
    singletons: the fakedevice transfer counter is shared by every operator
    on that backend in the process, which is what lets tests snapshot/delta
    around individual solves.
    """
    concrete = name if name else "numpy"
    if not is_valid_backend_name(concrete):
        raise ArrayBackendError(
            f"unknown array backend {concrete!r}; expected one of "
            f"{ARRAY_BACKEND_NAMES} or 'array_api:<module>'"
        )
    with _NAMESPACES_LOCK:
        ns = _NAMESPACES.get(concrete)
        if ns is None:
            if concrete.startswith(_ARRAY_API_PREFIX):
                ns = ArrayApiNamespace(concrete[len(_ARRAY_API_PREFIX):])
            else:
                ns = _FACTORIES[concrete]()
            _NAMESPACES[concrete] = ns
        return ns
