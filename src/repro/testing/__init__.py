"""Test infrastructure shared by the test suite and future PRs.

Two layers, both importable from application tests and benchmarks:

* :mod:`repro.testing.corpus` — a **seeded random-graph fuzz corpus**: a
  deterministic catalogue of small graphs covering the shapes that have
  historically broken Laplacian-solver code (single vertices, single edges,
  stars, trees, weighted grids, parallel-edge multigraphs, disconnected
  unions with isolated vertices).  Every test file that wants breadth
  parameterizes over :func:`fuzz_corpus` instead of inventing its own
  ad-hoc graphs.
* :mod:`repro.testing.oracles` — **dense reference oracles**: slow,
  obviously-correct dense implementations (``pinv``-based effective
  resistances, a dense harmonic boundary-value solve, ``eigh``-based
  spectral embeddings, generalized eigenvalue extremes) that the fast
  solver-based workloads in :mod:`repro.apps` are checked against.

The package depends only on :mod:`repro.graph` and NumPy/SciPy — it never
imports :mod:`repro.apps`, so the apps can be validated against it without
an import cycle.
"""

from repro.testing.corpus import (
    CorpusCase,
    corpus_case,
    corpus_names,
    disjoint_union,
    fuzz_corpus,
    random_tree,
    with_parallel_edges,
)
from repro.testing.oracles import (
    dense_effective_resistances,
    dense_fiedler_value,
    dense_harmonic_interpolation,
    dense_solve_laplacian,
    dense_spectral_embedding,
    generalized_eigen_extremes,
)

__all__ = [
    "CorpusCase",
    "corpus_case",
    "corpus_names",
    "disjoint_union",
    "fuzz_corpus",
    "random_tree",
    "with_parallel_edges",
    "dense_effective_resistances",
    "dense_fiedler_value",
    "dense_harmonic_interpolation",
    "dense_solve_laplacian",
    "dense_spectral_embedding",
    "generalized_eigen_extremes",
]
