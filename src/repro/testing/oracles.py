"""Dense reference oracles the solver-based workloads are validated against.

Every oracle here is the slow-but-obviously-correct dense computation of a
quantity that :mod:`repro.apps` produces with the factorized solver:

* :func:`dense_solve_laplacian` — minimum-norm ``L^+ b`` via dense ``pinv``.
* :func:`dense_effective_resistances` — pairwise effective resistances from
  the dense pseudo-inverse (``inf`` across components, ``0`` on the
  diagonal).
* :func:`dense_harmonic_interpolation` — the harmonic extension of boundary
  values via a dense least-squares solve on the interior block.
* :func:`dense_spectral_embedding` / :func:`dense_fiedler_value` — smallest
  nontrivial Laplacian eigenpairs via ``numpy.linalg.eigh``.
* :func:`generalized_eigen_extremes` — extreme generalized eigenvalues of a
  Laplacian pair (the spectral-sandwich certificates used by the
  sparsification tests).

All oracles are dense O(n^3); they exist for the (small) fuzz corpus, not
for production graphs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian


def _dense_pinv(graph: Graph) -> np.ndarray:
    return np.linalg.pinv(graph_to_laplacian(graph).toarray(), hermitian=True)


def dense_solve_laplacian(graph: Graph, b: np.ndarray) -> np.ndarray:
    """Minimum-norm solution ``L^+ b`` (``b`` is projected per component).

    Accepts a vector ``(n,)`` or a block ``(n, k)``.  The right-hand side is
    first projected onto the Laplacian's range (per-component zero sum), so
    the result is the same limit an iterative solve converges to.
    """
    b = np.asarray(b, dtype=float)
    _, labels = connected_components(graph)
    counts = np.bincount(labels).astype(float)
    sums = np.zeros((counts.shape[0],) + b.shape[1:], dtype=float)
    np.add.at(sums, labels, b)
    if b.ndim == 1:
        b = b - (sums / counts)[labels]
    else:
        b = b - (sums / counts[:, None])[labels]
    return _dense_pinv(graph) @ b


def dense_effective_resistances(graph: Graph, pairs: Optional[np.ndarray] = None) -> np.ndarray:
    """Effective resistances from the dense pseudo-inverse.

    Parameters
    ----------
    pairs:
        ``(q, 2)`` array of vertex pairs; ``None`` means one entry per edge
        of the graph (parallel edges each get their own — equal — entry).

    Returns
    -------
    ``(q,)`` resistances.  A pair within one component gets
    ``R(u, v) = L^+[u, u] + L^+[v, v] - 2 L^+[u, v]``; a pair spanning two
    components gets ``inf`` (no current can flow); ``u == v`` gets ``0``.
    """
    if pairs is None:
        pairs = np.column_stack([graph.u, graph.v])
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if pairs.size == 0:
        return np.zeros(0)
    a, b = pairs[:, 0], pairs[:, 1]
    pinv = _dense_pinv(graph)
    out = pinv[a, a] + pinv[b, b] - 2.0 * pinv[a, b]
    _, labels = connected_components(graph)
    out = np.where(labels[a] == labels[b], out, np.inf)
    return np.where(a == b, 0.0, out)


def dense_harmonic_interpolation(
    graph: Graph, boundary: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Harmonic extension of ``values`` on ``boundary`` to the whole graph.

    Solves ``L_II x_I = -L_IB x_B`` densely (minimum-norm least squares, so
    interior components with no path to any boundary vertex — where the
    block is singular with a zero right-hand side — get exactly ``0``, the
    behavior the fast implementation pins down).

    ``values`` may be ``(b,)`` or multi-label ``(b, k)``; the result has
    shape ``(n,)`` / ``(n, k)`` with the boundary rows equal to ``values``.
    """
    boundary = np.asarray(boundary, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=float)
    single = values.ndim == 1
    block = values[:, None] if single else values
    if boundary.shape[0] != block.shape[0]:
        raise ValueError("values must have one row per boundary vertex")
    n = graph.n
    x = np.zeros((n, block.shape[1]))
    x[boundary] = block
    interior = np.setdiff1d(np.arange(n, dtype=np.int64), boundary)
    if interior.size:
        lap = graph_to_laplacian(graph).toarray()
        lii = lap[np.ix_(interior, interior)]
        rhs = -lap[np.ix_(interior, boundary)] @ block
        x[interior] = np.linalg.lstsq(lii, rhs, rcond=None)[0]
    return x[:, 0] if single else x


def dense_spectral_embedding(graph: Graph, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest ``k`` *nontrivial* Laplacian eigenpairs via dense ``eigh``.

    The ``c`` zero eigenvalues of a ``c``-component graph are skipped by
    count (not by numerical thresholding).  Returns ``(eigenvalues,
    vectors)`` with eigenvalues ascending and vectors orthonormal columns.
    """
    num_components, _ = connected_components(graph)
    max_k = graph.n - num_components
    if k < 1 or k > max_k:
        raise ValueError(f"k must be in [1, {max_k}] for this graph")
    evals, evecs = np.linalg.eigh(graph_to_laplacian(graph).toarray())
    lo = num_components
    return evals[lo : lo + k], evecs[:, lo : lo + k]


def dense_fiedler_value(graph: Graph) -> float:
    """Smallest nontrivial eigenvalue (algebraic connectivity when connected)."""
    return float(dense_spectral_embedding(graph, 1)[0][0])


def generalized_eigen_extremes(graph_a: Graph, graph_b: Graph) -> Tuple[float, float]:
    """Extreme generalized eigenvalues of ``(L_A, L_B)`` on the range.

    Both Laplacians are shifted by the rank-one ``11^T / n`` term so the
    shared all-ones null space does not pollute the pencil; the returned
    ``(lo, hi)`` certify ``lo * L_B ⪯ L_A ⪯ hi * L_B``.
    """
    n = graph_a.n
    if graph_b.n != n:
        raise ValueError("graphs must share a vertex set")
    la = graph_to_laplacian(graph_a).toarray()
    lb = graph_to_laplacian(graph_b).toarray()
    shift = np.ones((n, n)) / n
    evals = np.sort(np.real(sla.eigvalsh(la + shift, lb + shift)))
    return float(evals[0]), float(evals[-1])
