"""Seeded random-graph fuzz corpus shared by the test suite.

The corpus is a deterministic function of a single integer seed: every case
is built from an independent child stream of one :class:`numpy.random.
SeedSequence`, so ``fuzz_corpus(seed=3)`` produces the same graphs in every
process and the suite can be re-fuzzed by parameterizing over seeds.

Cases deliberately cover the degenerate shapes that ad-hoc test graphs tend
to miss: a single vertex (empty Laplacian), a single edge, isolated
vertices, stars (depth-1 trees), random trees (the chain's low-stretch
basis is a forest), weighted grids with a wide weight spread, parallel-edge
multigraphs (which arise from AKPW contractions), and disconnected unions
(which exercise the per-component null-space projectors end to end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.graph import generators
from repro.graph.graph import Graph
from repro.util.rng import RngLike, as_rng


@dataclass(frozen=True)
class CorpusCase:
    """One named graph of the fuzz corpus.

    Attributes
    ----------
    name:
        Stable identifier (used as the pytest parameter id).
    graph:
        The graph itself.
    tags:
        Structural properties (``"tree"``, ``"disconnected"``,
        ``"multigraph"``, ...) tests can filter on.
    """

    name: str
    graph: Graph
    tags: frozenset = field(default_factory=frozenset)

    def has(self, tag: str) -> bool:
        return tag in self.tags


def random_tree(n: int, seed: RngLike = None, *, weighted: bool = False, spread: float = 50.0) -> Graph:
    """Uniform-attachment random tree on ``n`` vertices.

    Vertex ``i >= 1`` attaches to a uniformly random earlier vertex, giving
    trees of random (logarithmic-ish) depth.  With ``weighted=True`` edges
    get log-uniform weights in ``[1, spread]``.
    """
    rng = as_rng(seed)
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return Graph(1, [], [], [])
    v = np.arange(1, n, dtype=np.int64)
    u = (rng.random(n - 1) * v).astype(np.int64)
    w = None
    if weighted:
        w = np.exp(rng.uniform(0.0, np.log(max(spread, 1.0)), size=n - 1))
    return Graph(n, u, v, w)


def with_parallel_edges(graph: Graph, seed: RngLike = None, *, fraction: float = 0.4) -> Graph:
    """Duplicate a random ``fraction`` of edges with perturbed weights.

    The result is a genuine multigraph (parallel edges are kept distinct,
    not coalesced), matching what AKPW contraction produces internally.
    """
    rng = as_rng(seed)
    m = graph.num_edges
    if m == 0:
        return graph.copy()
    count = max(1, int(round(fraction * m)))
    pick = rng.choice(m, size=min(count, m), replace=False)
    extra_w = graph.w[pick] * rng.uniform(0.5, 2.0, size=pick.size)
    return graph.add_edges(graph.u[pick], graph.v[pick], extra_w)


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union of ``graphs`` with vertices relabeled consecutively."""
    if not graphs:
        raise ValueError("need at least one graph")
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    ws: List[np.ndarray] = []
    offset = 0
    for g in graphs:
        us.append(g.u + offset)
        vs.append(g.v + offset)
        ws.append(g.w)
        offset += g.n
    return Graph(offset, np.concatenate(us), np.concatenate(vs), np.concatenate(ws))


def fuzz_corpus(seed: int = 0, *, include_large: bool = False) -> List[CorpusCase]:
    """The seeded fuzz corpus: a list of named :class:`CorpusCase` graphs.

    Parameters
    ----------
    seed:
        Master seed; each case draws from an independent child stream, so
        two corpora with different seeds differ in every randomized case
        while structured cases (paths, stars, grids) stay fixed.
    include_large:
        Append the larger stress cases used by ``slow``-marked tests.
    """
    children = iter(np.random.SeedSequence(seed).spawn(32))

    def rng() -> np.random.Generator:
        return np.random.default_rng(next(children))

    cases = [
        CorpusCase("single_vertex", Graph(1, [], [], []), frozenset({"edgeless", "tree"})),
        CorpusCase("single_edge", Graph(2, [0], [1], [2.5]), frozenset({"tree", "weighted"})),
        CorpusCase(
            "edge_plus_isolated",
            Graph(4, [1], [2], [1.5]),
            frozenset({"disconnected", "weighted"}),
        ),
        CorpusCase(
            "parallel_single_edge",
            Graph(2, [0, 0, 0], [1, 1, 1], [1.0, 2.0, 0.5]),
            frozenset({"multigraph", "weighted"}),
        ),
        CorpusCase("star_9", generators.star_graph(9), frozenset({"tree"})),
        CorpusCase("path_12", generators.path_graph(12), frozenset({"tree"})),
        CorpusCase("cycle_8", generators.cycle_graph(8), frozenset()),
        CorpusCase("tree_20", random_tree(20, rng()), frozenset({"tree"})),
        CorpusCase(
            "wtree_24",
            random_tree(24, rng(), weighted=True),
            frozenset({"tree", "weighted"}),
        ),
        CorpusCase(
            "wgrid_5x6",
            generators.with_random_weights(generators.grid_2d(5, 6), rng(), spread=50.0),
            frozenset({"weighted"}),
        ),
        CorpusCase(
            "multigraph_er16",
            with_parallel_edges(generators.erdos_renyi_gnm(16, 28, rng()), rng()),
            frozenset({"multigraph"}),
        ),
        CorpusCase(
            "disconnected_trees",
            disjoint_union([random_tree(10, rng()), random_tree(7, rng(), weighted=True), Graph(1, [], [], [])]),
            frozenset({"disconnected", "tree", "weighted"}),
        ),
        CorpusCase(
            "disconnected_grids",
            disjoint_union(
                [
                    generators.grid_2d(3, 4),
                    generators.with_random_weights(generators.grid_2d(4, 3), rng(), spread=20.0),
                ]
            ),
            frozenset({"disconnected", "weighted"}),
        ),
        CorpusCase("er_30_60", generators.erdos_renyi_gnm(30, 60, rng()), frozenset()),
    ]
    if include_large:
        cases += [
            CorpusCase("large_tree_400", random_tree(400, rng(), weighted=True), frozenset({"tree", "weighted", "large"})),
            CorpusCase(
                "large_wgrid_14x14",
                generators.weighted_grid_2d(14, 14, seed=rng(), spread=100.0),
                frozenset({"weighted", "large"}),
            ),
            CorpusCase("large_er_300_900", generators.erdos_renyi_gnm(300, 900, rng()), frozenset({"large"})),
            CorpusCase(
                "large_disconnected",
                disjoint_union(
                    [
                        generators.grid_2d(8, 8),
                        with_parallel_edges(generators.erdos_renyi_gnm(40, 90, rng()), rng()),
                        random_tree(30, rng(), weighted=True),
                    ]
                ),
                frozenset({"disconnected", "multigraph", "weighted", "large"}),
            ),
        ]
    return cases


def corpus_names(seed: int = 0, *, include_large: bool = False) -> List[str]:
    """Names of the corpus cases (stable pytest parameter ids)."""
    return [case.name for case in fuzz_corpus(seed, include_large=include_large)]


def corpus_case(name: str, seed: int = 0) -> CorpusCase:
    """Look up a single corpus case by name."""
    table: Dict[str, CorpusCase] = {
        case.name: case for case in fuzz_corpus(seed, include_large=True)
    }
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"unknown corpus case {name!r}; available: {sorted(table)}") from None
