"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is (strictly) positive and return it."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_square(name: str, matrix) -> None:
    """Validate that ``matrix`` is 2-D and square."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {matrix.shape}")


def check_vector(name: str, vector: np.ndarray, n: int) -> np.ndarray:
    """Validate that ``vector`` is a 1-D float array of length ``n``."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1 or vector.shape[0] != n:
        raise ValueError(f"{name} must be a vector of length {n}, got shape {vector.shape}")
    return vector


def check_symmetric(name: str, matrix: sp.spmatrix, tol: float = 1e-10) -> None:
    """Validate that a sparse matrix is numerically symmetric."""
    diff = matrix - matrix.T
    if diff.nnz and np.max(np.abs(diff.data)) > tol:
        raise ValueError(f"{name} must be symmetric (max asymmetry {np.max(np.abs(diff.data))})")
