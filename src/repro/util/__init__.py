"""Shared utilities: RNG handling, validation helpers, result records."""

from repro.util.rng import as_rng, spawn_rngs
from repro.util.validation import (
    check_positive,
    check_probability,
    check_square,
    check_vector,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_square",
    "check_vector",
]
