"""Random-number-generator plumbing.

Every randomized routine in :mod:`repro` accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralizes the conversion so that all algorithms are reproducible
given a seed and so that nested algorithms can derive independent child
streams deterministically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, an existing ``Generator``
        (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    Used by algorithms that conceptually run many parallel sub-tasks (e.g.
    ball growing from many centers) so that the result does not depend on the
    order in which the sub-tasks are simulated.
    """
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        children = seed.spawn(n) if hasattr(seed, "spawn") else None
        if children is not None:
            return children
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (for handing to sub-routines)."""
    return int(rng.integers(0, 2**63 - 1))
