"""Per-stage memory instrumentation for the chain build.

Two tiers of measurement:

* **Cheap, always available** — resident-set sampling from
  ``/proc/self/status`` (``VmRSS`` / ``VmHWM``), falling back to
  ``resource.getrusage`` where procfs is absent.  Reading procfs costs
  microseconds, so :class:`StageMemoryTracker` samples it around every
  build stage unconditionally.
* **Opt-in, exact** — ``tracemalloc`` per-stage allocation peaks, enabled
  with ``memory_profile=True`` on :func:`repro.core.chain.build_chain` /
  :func:`repro.core.operator.factorize`.  tracemalloc slows allocation-heavy
  code by 2-4x, so it is never on by default; the benchmark harness uses it
  for the audited per-stage numbers while timing a separate unprofiled run.

When profiling, the tracker additionally resets the kernel RSS high-water
mark (``/proc/self/clear_refs``) before each stage so ``VmHWM`` reads as a
true per-stage peak rather than a monotone process-lifetime maximum.
"""

from __future__ import annotations

import resource
import tracemalloc
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


def read_rss_bytes() -> int:
    """Current resident set size in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


def read_peak_rss_bytes() -> int:
    """Process peak resident set size in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


def reset_peak_rss() -> bool:
    """Reset the kernel RSS high-water mark; True when supported.

    Writing ``5`` to ``/proc/self/clear_refs`` resets ``VmHWM`` (and peak
    data/stack accounting) for the calling process only.  Unsupported
    platforms return False and peak readings stay monotone.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


class StageMemoryTracker:
    """Collect per-stage memory stats for :func:`build_chain`.

    Cheap RSS sampling is always on; ``profile=True`` adds tracemalloc
    per-stage peaks and per-stage RSS high-water resets.  Results are
    flat ``{metric_name: float_bytes}`` suitable for ``chain.stats``.
    """

    def __init__(self, profile: bool = False) -> None:
        self.profile = bool(profile)
        self._stages: Dict[str, Dict[str, int]] = {}
        self._rss_start = read_rss_bytes()
        self._started_tracemalloc = False
        self._can_reset_peak = False
        if self.profile:
            self._can_reset_peak = reset_peak_rss()
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Measure one named build stage (re-entrant per name: peaks max, deltas sum)."""
        if self.profile:
            if self._can_reset_peak:
                reset_peak_rss()
            tracemalloc.reset_peak()
        rss_before = read_rss_bytes()
        try:
            yield
        finally:
            rss_after = read_rss_bytes()
            rec = self._stages.setdefault(
                name, {"rss_delta": 0, "rss_peak": 0, "traced_peak": 0}
            )
            rec["rss_delta"] += rss_after - rss_before
            if self.profile:
                if self._can_reset_peak:
                    rec["rss_peak"] = max(rec["rss_peak"], read_peak_rss_bytes())
                if tracemalloc.is_tracing():
                    rec["traced_peak"] = max(
                        rec["traced_peak"], tracemalloc.get_traced_memory()[1]
                    )

    def finish(self) -> Dict[str, float]:
        """Stop profiling (if this tracker started it) and return the stats."""
        stats: Dict[str, float] = {}
        for name, rec in self._stages.items():
            stats[f"mem_rss_delta_{name}"] = float(rec["rss_delta"])
            if self.profile:
                if self._can_reset_peak:
                    stats[f"mem_rss_peak_{name}"] = float(rec["rss_peak"])
                stats[f"mem_traced_peak_{name}"] = float(rec["traced_peak"])
        stats["mem_rss_start"] = float(self._rss_start)
        stats["mem_rss_end"] = float(read_rss_bytes())
        stats["mem_rss_peak"] = float(read_peak_rss_bytes())
        stats["mem_profiled"] = 1.0 if self.profile else 0.0
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        return stats
