"""Index/value dtype policy for the memory-lean chain build.

The build pipeline stores every vertex/edge index array in a configurable
integer dtype (``ChainConfig.index_dtype``).  The default is int32, which
halves the footprint of the index-dominated stages (CSR adjacency, Euler
tours, union-find, Borůvka, elimination schedules) and is safe for any graph
with fewer than ~2^31 vertices *and* fewer than ~2^30 edges — the Euler-tour
and adjacency structures index ``2m`` arcs plus a sentinel, so the guard
checks ``2m + 2`` as well as ``n``.

Two hard rules keep dtype changes bit-identical on the float side:

* index dtypes never participate in floating-point arithmetic, and
* any integer arithmetic that can exceed the index range (e.g. the edge
  coalescing keys ``lo * n + hi``) is explicitly promoted to int64 at the
  call site regardless of the storage dtype.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Accepted ``ChainConfig.index_dtype`` values.
INDEX_DTYPE_NAMES = ("int32", "int64", "auto")
#: Accepted ``ChainConfig.value_dtype`` values.
VALUE_DTYPE_NAMES = ("float64", "float32")

_INT32_MAX = np.iinfo(np.int32).max


class IndexOverflowError(OverflowError):
    """Raised when a graph does not fit the requested index dtype."""


def index_capacity_ok(dtype: np.dtype, n: int, m: int) -> bool:
    """Whether ``(n, m)`` index arrays are safe in ``dtype``.

    Requires every vertex id (< n), edge id (< m), CSR offset (<= 2m) and
    Euler-tour arc id plus its end-of-tour sentinel (<= 2m + 1) to be
    representable.
    """
    cap = np.iinfo(np.dtype(dtype)).max
    return max(int(n), 2 * int(m) + 2) <= cap


def min_index_dtype(n: int, m: int) -> np.dtype:
    """Smallest supported index dtype that safely covers ``(n, m)``."""
    if index_capacity_ok(np.int32, n, m):
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def resolve_index_dtype(name: Union[str, np.dtype, type], n: int, m: int) -> np.dtype:
    """Map a configured index-dtype name to a concrete dtype for ``(n, m)``.

    ``"auto"`` picks :func:`min_index_dtype`.  An explicit ``"int32"``
    raises :class:`IndexOverflowError` when the graph does not fit, so a
    too-small configuration fails loudly instead of wrapping around.
    """
    if isinstance(name, str):
        if name not in INDEX_DTYPE_NAMES:
            raise ValueError(
                f"unknown index_dtype {name!r}; expected one of {INDEX_DTYPE_NAMES}"
            )
        if name == "auto":
            return min_index_dtype(n, m)
        dtype = np.dtype(name)
    else:
        dtype = np.dtype(name)
        if dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            raise ValueError(f"unsupported index dtype {dtype!r}")
    if not index_capacity_ok(dtype, n, m):
        raise IndexOverflowError(
            f"graph with n={n}, m={m} does not fit index_dtype={dtype.name!r} "
            f"(needs max(n, 2m + 2) <= {np.iinfo(dtype).max}); "
            "use index_dtype='int64' or 'auto'"
        )
    return dtype


def resolve_value_dtype(name: Union[str, np.dtype, type]) -> np.dtype:
    """Map a configured value-dtype name to a concrete dtype."""
    if isinstance(name, str) and name not in VALUE_DTYPE_NAMES:
        raise ValueError(
            f"unknown value_dtype {name!r}; expected one of {VALUE_DTYPE_NAMES}"
        )
    dtype = np.dtype(name)
    if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"unsupported value dtype {dtype!r}")
    return dtype


def as_index_array(a, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """View/convert ``a`` as a 1-D index array without an unnecessary copy.

    With ``dtype=None``, integer input arrays keep their dtype (int32/int64
    pass through untouched — slices of a lean parent stay lean) and anything
    else is converted to int64.
    """
    arr = np.asarray(a)
    if dtype is not None:
        return arr.astype(dtype, copy=False).ravel()
    if arr.dtype in (np.dtype(np.int32), np.dtype(np.int64)):
        return arr.ravel()
    return arr.astype(np.int64, copy=False).ravel()
