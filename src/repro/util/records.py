"""Structured result records used by benchmarks and examples.

The benchmark harness prints tables comparing paper guarantees against
measured quantities.  Keeping the rows as small dataclasses (instead of ad
hoc dicts) makes the harness output uniform and easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Dict, List, Optional


@dataclass
class ExperimentRow:
    """One row of an experiment table.

    Attributes
    ----------
    experiment:
        Experiment id from DESIGN.md (e.g. ``"E2"``).
    workload:
        Human-readable workload description (e.g. ``"grid 64x64"``).
    params:
        Parameter setting for the row (e.g. ``{"rho": 16}``).
    measured:
        Measured quantities (e.g. cut fraction, stretch, work).
    bound:
        The paper's bound for the measured quantity, when applicable.
    """

    experiment: str
    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    bound: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def format_table(rows: List[ExperimentRow], columns: Optional[List[str]] = None) -> str:
    """Render experiment rows as an aligned plain-text table.

    ``columns`` selects keys from ``params`` and ``measured``; if omitted, the
    union of keys across rows is used (params first, then measured).
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        pkeys: List[str] = []
        mkeys: List[str] = []
        for r in rows:
            for k in r.params:
                if k not in pkeys:
                    pkeys.append(k)
            for k in r.measured:
                if k not in mkeys:
                    mkeys.append(k)
        columns = pkeys + mkeys
    header = ["workload"] + columns
    table: List[List[str]] = [header]
    for r in rows:
        row = [r.workload]
        for c in columns:
            val = r.params.get(c, r.measured.get(c, ""))
            if isinstance(val, float):
                row.append(f"{val:.4g}")
            else:
                row.append(str(val))
        table.append(row)
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(header))))
    return "\n".join(lines)
