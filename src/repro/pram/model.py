"""PRAM work-depth accounting.

The :class:`CostModel` is a pair of counters (work, depth) together with a
small amount of structure for expressing *parallel composition*: when an
algorithm runs several sub-tasks in parallel, the work of the composition is
the sum of the sub-task works while the depth is the maximum.  Algorithms
express this via :meth:`CostModel.parallel` which yields child models and
merges them on exit.

The numbers reported are operation counts in the same units the paper uses:
one unit per edge/vertex touched per round, ``log n`` units of depth per
global synchronization round (the standard CRCW-to-EREW style accounting the
paper references for parallel ball growing).

Threading contract: a :class:`CostModel` is **single-owner** mutable state —
charges are plain read-modify-write float updates with no internal locking.
Code that runs concurrently must charge into a private model (obtained with
:meth:`CostModel.child`) and merge it into the shared one afterwards
(:meth:`CostModel.sequential` / :meth:`CostModel.parallel_merge`), with the
merge serialized by the caller.  This is how the solver's per-call solve
contexts keep ``SolveReport.work``/``depth`` exact under concurrent solves.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class CostModel:
    """Accumulates work and depth for one (sub-)computation.

    Attributes
    ----------
    work:
        Total operation count charged so far.
    depth:
        Length of the longest dependency chain charged so far.
    rounds:
        Number of global synchronization rounds charged (useful for
        sanity-checking e.g. that BFS depth equals the radius).
    counters:
        Free-form named counters (e.g. ``"bfs_rounds"``, ``"cut_edges"``)
        that algorithms may bump for diagnostics.
    """

    work: float = 0.0
    depth: float = 0.0
    rounds: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    enabled: bool = True

    # ------------------------------------------------------------------ #
    # basic charging
    # ------------------------------------------------------------------ #
    def charge(self, work: float = 0.0, depth: float = 0.0) -> None:
        """Charge ``work`` units of work and ``depth`` units of depth."""
        if not self.enabled:
            return
        self.work += work
        self.depth += depth

    def charge_round(self, work: float, depth: float = 1.0) -> None:
        """Charge one synchronization round doing ``work`` total operations."""
        if not self.enabled:
            return
        self.work += work
        self.depth += depth
        self.rounds += 1

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment a named diagnostic counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + amount

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def child(self) -> "CostModel":
        """A fresh zeroed model inheriting only the ``enabled`` flag.

        The building block of the single-owner threading contract (see the
        module docstring): each concurrent sub-computation charges a child
        and the owner of the parent merges the children when they finish.
        """
        return CostModel(enabled=self.enabled)

    def sequential(self, other: "CostModel") -> None:
        """Merge ``other`` as if it ran *after* everything charged so far."""
        if not self.enabled:
            return
        self.work += other.work
        self.depth += other.depth
        self.rounds += other.rounds
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0.0) + v

    def parallel_merge(self, children: List["CostModel"]) -> None:
        """Merge ``children`` as tasks that ran concurrently.

        Work adds up; depth increases by the maximum child depth.
        """
        if not self.enabled or not children:
            return
        self.work += sum(c.work for c in children)
        self.depth += max(c.depth for c in children)
        self.rounds += max(c.rounds for c in children)
        for c in children:
            for k, v in c.counters.items():
                self.counters[k] = self.counters.get(k, 0.0) + v

    @contextmanager
    def parallel(self, n_tasks: int) -> Iterator[List["CostModel"]]:
        """Context manager yielding ``n_tasks`` child models.

        On exit the children are merged with parallel semantics (sum of work,
        max of depth).  Example::

            with cost.parallel(len(centers)) as children:
                for child, c in zip(children, centers):
                    grow_ball(..., cost=child)
        """
        children = [CostModel(enabled=self.enabled) for _ in range(n_tasks)]
        yield children
        self.parallel_merge(children)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """Return the current totals as a plain dict (for result tables)."""
        out = {"work": self.work, "depth": self.depth, "rounds": float(self.rounds)}
        out.update(self.counters)
        return out

    def reset(self) -> None:
        """Zero all counters."""
        self.work = 0.0
        self.depth = 0.0
        self.rounds = 0
        self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(work={self.work:.3g}, depth={self.depth:.3g}, rounds={self.rounds})"


class _NullCost(CostModel):
    """A cost model that ignores all charges (used as the default argument)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)


#: Shared sink for algorithms called without an explicit cost model.
NULL_COST = _NullCost()


def null_cost() -> CostModel:
    """Return the shared no-op cost model."""
    return NULL_COST


@dataclass
class ParallelSection:
    """Convenience wrapper for charging a named phase of an algorithm.

    Example::

        with ParallelSection(cost, "ball-growing") as sec:
            ...
            sec.charge_round(frontier_size)

    On exit the section's totals are also recorded under
    ``cost.counters["<name>_work"]`` / ``..._depth`` so benchmarks can break
    work down per phase.
    """

    parent: CostModel
    name: str
    section: CostModel = field(default_factory=CostModel)

    def __enter__(self) -> CostModel:
        self.section = CostModel(enabled=self.parent.enabled)
        return self.section

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self.parent.enabled:
            self.parent.sequential(self.section)
            self.parent.counters[f"{self.name}_work"] = (
                self.parent.counters.get(f"{self.name}_work", 0.0) + self.section.work
            )
            self.parent.counters[f"{self.name}_depth"] = (
                self.parent.counters.get(f"{self.name}_depth", 0.0) + self.section.depth
            )


def log2ceil(n: int) -> float:
    """``max(1, ceil(log2 n))`` — the depth charged for one global sync."""
    return max(1.0, math.ceil(math.log2(max(n, 2))))
