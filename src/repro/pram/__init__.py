"""Work-depth (PRAM) cost model.

The paper analyzes all algorithms in the PRAM model in terms of *work* (total
operation count) and *depth* (longest chain of dependencies).  This package
provides a light-weight accounting layer: parallel algorithms in
:mod:`repro.core` charge their operations to a :class:`CostModel`, which the
benchmark harness then reads to reproduce the paper's work/depth scaling
claims without needing actual parallel hardware.
"""

from repro.pram.model import CostModel, ParallelSection, null_cost
from repro.pram.primitives import (
    charge_elimination_transfer,
    charge_filter,
    charge_map,
    charge_pack,
    charge_reduce,
    charge_scan,
    charge_sort,
)

__all__ = [
    "CostModel",
    "ParallelSection",
    "null_cost",
    "charge_map",
    "charge_reduce",
    "charge_scan",
    "charge_filter",
    "charge_pack",
    "charge_sort",
    "charge_elimination_transfer",
]
