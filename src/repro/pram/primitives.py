"""Cost accounting for the standard parallel primitives.

The paper's algorithms are built from a handful of classic work-efficient
PRAM primitives (map, reduce, scan/prefix-sum, filter/pack, integer sort).
These helpers charge the textbook work/depth of each primitive to a
:class:`~repro.pram.model.CostModel`.  The actual data movement is done with
NumPy (which is the "simulate the parallel machine with vectorized
sequential code" substitution documented in DESIGN.md).
"""

from __future__ import annotations

import math

from repro.pram.model import CostModel, log2ceil


def charge_map(cost: CostModel, n: int, per_item_work: float = 1.0) -> None:
    """A parallel map over ``n`` items: O(n) work, O(1) depth."""
    if n <= 0:
        return
    cost.charge(work=n * per_item_work, depth=1.0)


def charge_reduce(cost: CostModel, n: int) -> None:
    """A parallel reduction over ``n`` items: O(n) work, O(log n) depth."""
    if n <= 0:
        return
    cost.charge(work=float(n), depth=log2ceil(n))


def charge_scan(cost: CostModel, n: int) -> None:
    """A parallel prefix sum over ``n`` items: O(n) work, O(log n) depth."""
    if n <= 0:
        return
    cost.charge(work=2.0 * n, depth=2.0 * log2ceil(n))


def charge_filter(cost: CostModel, n: int) -> None:
    """A parallel filter (map + scan + scatter): O(n) work, O(log n) depth."""
    if n <= 0:
        return
    cost.charge(work=3.0 * n, depth=2.0 * log2ceil(n) + 1.0)


def charge_pack(cost: CostModel, n: int) -> None:
    """Alias of :func:`charge_filter` (compaction of marked items)."""
    charge_filter(cost, n)


def charge_sort(cost: CostModel, n: int) -> None:
    """A work-efficient parallel sort: O(n log n) work, O(log^2 n) depth.

    The algorithms in the paper only need semisorting / integer sorting of
    keys bounded by n, for which O(n) work randomized algorithms exist; we
    charge the more conservative comparison-sort cost.
    """
    if n <= 1:
        return
    logn = log2ceil(n)
    cost.charge(work=n * logn, depth=logn * logn)


def charge_elimination_transfer(
    cost: CostModel, num_eliminated: int, rounds: int, width: int = 1
) -> None:
    """One direction of an elimination solve transfer (forward or backward).

    Work is linear in the eliminated vertices (times the batch ``width``);
    depth is one unit per rake/compress *round* — the paper's O(log n)
    parallel tree-contraction depth (Lemma 6.5) — because the steps of a
    round are independent but consecutive rounds are sequentially dependent.

    ``cost`` is whatever model owns the calling computation — on the solve
    hot path that is the per-call solve context's model, never the shared
    operator model (see the threading contract in :mod:`repro.pram.model`).
    """
    cost.charge(
        work=float(num_eliminated + 1) * max(width, 1),
        depth=float(max(rounds, 1)),
    )


def charge_bfs_round(cost: CostModel, frontier_edges: int, n: int) -> None:
    """One level-synchronous BFS round touching ``frontier_edges`` edges.

    Matches the parallel ball-growing cost quoted in Section 2 of the paper:
    O(log n) depth per level and work proportional to the edges scanned.
    """
    cost.charge_round(work=float(max(frontier_edges, 1)), depth=log2ceil(n))


def charge_ball_growing_round(
    cost: CostModel, scanned_edges: int, candidates: int, n: int
) -> None:
    """One synchronous round of delayed multi-source ball growing.

    The round scans the frontier's adjacency (``scanned_edges`` entries) and
    resolves ownership conflicts among ``candidates`` claimed vertices by a
    semisort — O(scanned + candidates) work and O(log n) depth, the
    parallel-ball-growing cost of Section 2 used by Theorem 4.1's depth
    bound of O(rho log^2 n).
    """
    cost.charge_round(
        work=float(max(scanned_edges, 1)) + float(max(candidates, 0)),
        depth=log2ceil(n),
    )


def charge_pointer_jump(cost: CostModel, n: int) -> None:
    """One pointer-jumping sweep ``p <- p[p]`` over ``n`` pointers.

    O(n) work and O(1) depth per sweep; O(log n) sweeps flatten any forest,
    which is the bulk connectivity / hooking primitive of the
    Andoni et al. log-diameter connectivity style used by the array
    union-find and the forest-rooting pipeline.
    """
    if n <= 0:
        return
    cost.charge_round(work=float(n), depth=1.0)


def charge_rooting_sweep(cost: CostModel, arcs: int) -> None:
    """One list-ranking / Euler-tour sweep over ``arcs`` tour arcs.

    Rooting a forest takes O(log n) such sweeps (pointer doubling over the
    Euler tour successors), for O(m log n) total work and O(log n) depth —
    the parallel tree-rooting bound the low-stretch pipeline charges per
    rooting pass.
    """
    if arcs <= 0:
        return
    cost.charge_round(work=float(arcs), depth=1.0)


def charge_semisort(cost: CostModel, n: int) -> None:
    """Semisort / bucket-group ``n`` integer keys bounded by ``poly(n)``.

    Randomized semisorting is O(n) work and O(log n) depth; this is the
    primitive behind the AKPW weight-class bucket grouping and the
    owner-resolution steps of ball growing.
    """
    if n <= 0:
        return
    cost.charge(work=float(n), depth=log2ceil(n))
