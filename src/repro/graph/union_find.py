"""Disjoint-set (union-find) with scalar *and* bulk array operations.

Used by Kruskal/Borůvka spanning forests, graph contraction bookkeeping, the
AKPW driver, and the forest-rooting pipeline.  Two interfaces coexist:

* the classic scalar ``find`` / ``union`` (path compression + union by
  size), kept for incremental callers, and
* bulk array operations (:meth:`UnionFind.union_arrays`,
  :meth:`UnionFind.find_many`) that process whole edge arrays with min-root
  hooking and pointer-jumping (path-halving) sweeps — O(log n) sweeps of
  O(n + m) vectorized work, the CRCW hooking scheme the paper's parallel
  connectivity primitives assume.

:func:`connected_components_arrays` is the shared entry point for "labels of
the graph spanned by these edges" that the MST, forest rooting, stretch
measurement, and component utilities all use.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_pointer_jump
from repro.util.dtypes import as_index_array, min_index_dtype


def _flatten(parent: np.ndarray, cost: CostModel) -> np.ndarray:
    """Pointer-jump ``parent`` to a depth-1 forest (every entry a root)."""
    while True:
        grand = parent[parent]
        charge_pointer_jump(cost, parent.shape[0])
        if np.array_equal(grand, parent):
            return parent
        parent[:] = grand


class UnionFind:
    """Union-find over elements ``0..n-1`` with path compression + union by size."""

    __slots__ = ("parent", "size", "_count")

    def __init__(self, n: int) -> None:
        idt = min_index_dtype(n, 0)
        self.parent = np.arange(n, dtype=idt)
        self.size = np.ones(n, dtype=idt)
        self._count = int(n)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path compression)."""
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    # ------------------------------------------------------------------ #
    # bulk array operations
    # ------------------------------------------------------------------ #
    def find_many(self, xs: np.ndarray, cost: Optional[CostModel] = None) -> np.ndarray:
        """Representatives of every element of ``xs`` (vectorized).

        Flattens the whole parent forest by pointer jumping first, so
        repeated bulk queries are O(1) gathers.
        """
        cost = cost or null_cost()
        _flatten(self.parent, cost)
        return self.parent[as_index_array(xs)]

    def union_arrays(
        self, us: np.ndarray, vs: np.ndarray, cost: Optional[CostModel] = None
    ) -> int:
        """Merge the sets of every pair ``(us[i], vs[i])`` in bulk.

        Runs min-root hooking rounds (concurrent writes resolved by
        ``np.minimum.at``) interleaved with pointer-jumping flattening until
        every pair is merged — O(log n) rounds.  Returns the number of
        distinct sets that were merged away.
        """
        cost = cost or null_cost()
        us = as_index_array(us)
        vs = as_index_array(vs)
        if us.shape != vs.shape:
            raise ValueError("us and vs must have the same shape")
        parent = self.parent
        before = self._count
        if us.size:
            while True:
                _flatten(parent, cost)
                ru = parent[us]
                rv = parent[vs]
                live = ru != rv
                charge_pointer_jump(cost, us.shape[0])
                if not np.any(live):
                    break
                lo = np.minimum(ru[live], rv[live])
                hi = np.maximum(ru[live], rv[live])
                np.minimum.at(parent, hi, lo)
        _flatten(parent, cost)
        counts = np.bincount(parent, minlength=parent.shape[0])
        self.size = counts[parent].astype(parent.dtype)
        self._count = int(np.count_nonzero(counts))
        return before - self._count

    def labels(self, compact: bool = True) -> np.ndarray:
        """Per-element set labels (vectorized via pointer jumping).

        With ``compact=True`` labels are renumbered ``0..num_sets-1`` in
        order of first appearance (equivalently by each set's smallest
        element), which makes the numbering independent of which internal
        representative a merge sequence happened to pick.
        """
        roots = _flatten(self.parent, null_cost()).copy()
        if not compact:
            return roots
        idt = roots.dtype
        _, first_index, inverse = np.unique(roots, return_index=True, return_inverse=True)
        rank = np.empty(first_index.shape[0], dtype=idt)
        rank[np.argsort(first_index, kind="stable")] = np.arange(
            first_index.shape[0], dtype=idt
        )
        return rank[inverse].astype(idt, copy=False)


def connected_components_arrays(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    cost: Optional[CostModel] = None,
) -> Tuple[int, np.ndarray]:
    """Connected components of the graph ``(n, u, v)`` via bulk union-find.

    Returns ``(count, labels)`` with labels compacted to ``0..count-1`` in
    increasing order of each component's smallest vertex — the same
    numbering a vertex-order BFS sweep produces.  O(log n) hooking +
    pointer-jumping sweeps, each a vectorized O(n + m) pass.
    """
    cost = cost or null_cost()
    u = as_index_array(u)
    v = as_index_array(v)
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    uf = UnionFind(n)
    uf.union_arrays(u, v, cost=cost)
    roots = uf.parent  # flattened by union_arrays
    uniq, labels = np.unique(roots, return_inverse=True)
    return int(uniq.shape[0]), labels.astype(roots.dtype, copy=False)
