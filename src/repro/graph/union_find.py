"""Disjoint-set (union-find) data structure.

Used by Kruskal's MST, graph contraction bookkeeping, and the AKPW driver to
maintain super-vertex labels across iterations.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Union-find over elements ``0..n-1`` with path compression + union by size."""

    __slots__ = ("parent", "size", "_count")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self._count = int(n)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path compression)."""
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def labels(self, compact: bool = True) -> np.ndarray:
        """Per-element set labels.

        With ``compact=True`` labels are renumbered ``0..num_sets-1`` in order
        of first appearance.
        """
        roots = np.array([self.find(i) for i in range(self.parent.shape[0])], dtype=np.int64)
        if not compact:
            return roots
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)
