"""BFS and Dijkstra shortest paths.

* :func:`bfs_distances` — level-synchronous (hop-count) BFS from one or many
  sources, with PRAM cost accounting matching the "parallel ball growing"
  primitive of Section 2.
* :func:`bfs_tree` — a BFS tree restricted to a vertex subset (used to build
  the per-component spanning trees in AKPW step iv.2).
* :func:`dijkstra_distances` / :func:`shortest_path_distances` — weighted
  distances via ``scipy.sparse.csgraph`` (used for exact stretch computation,
  which is a *measurement* tool, not part of the parallel algorithm).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph._gather import gather_ranges
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_bfs_round


def bfs_distances(
    graph: Graph,
    sources: Union[int, Sequence[int]],
    max_depth: Optional[int] = None,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Hop-count distances from the nearest source via level-synchronous BFS.

    Unreached vertices (or vertices farther than ``max_depth``) get ``-1``.
    """
    cost = cost or null_cost()
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    srcs = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if srcs.size == 0 or n == 0:
        return dist
    indptr, neighbors, _ = graph.adjacency
    dist[srcs] = 0
    frontier = np.unique(srcs)
    level = 0
    while frontier.size and (max_depth is None or level < max_depth):
        positions, _ = gather_ranges(indptr, frontier)
        charge_bfs_round(cost, positions.size, n)
        if positions.size == 0:
            break
        nbrs = neighbors[positions]
        nbrs = np.unique(nbrs)
        new = nbrs[dist[nbrs] < 0]
        if new.size == 0:
            break
        level += 1
        dist[new] = level
        frontier = new
    return dist


def bfs_tree(
    graph: Graph,
    root: int,
    allowed_vertices: Optional[np.ndarray] = None,
    cost: Optional[CostModel] = None,
) -> np.ndarray:
    """Edge indices of a BFS tree rooted at ``root``.

    When ``allowed_vertices`` is given, the BFS only walks inside that vertex
    set (the induced subgraph), which is how AKPW builds a spanning tree of
    each low-diameter component without leaving it (strong diameter).
    """
    cost = cost or null_cost()
    n = graph.n
    indptr, neighbors, edge_ids = graph.adjacency
    allowed = np.ones(n, dtype=bool)
    if allowed_vertices is not None:
        allowed = np.zeros(n, dtype=bool)
        allowed[np.asarray(allowed_vertices, dtype=np.int64)] = True
    if not allowed[root]:
        raise ValueError("root is not in the allowed vertex set")
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    tree_edges = []
    while frontier.size:
        positions, _ = gather_ranges(indptr, frontier)
        charge_bfs_round(cost, positions.size, n)
        if positions.size == 0:
            break
        nbrs = neighbors[positions]
        eids = edge_ids[positions]
        ok = allowed[nbrs] & (~visited[nbrs])
        nbrs = nbrs[ok]
        eids = eids[ok]
        if nbrs.size == 0:
            break
        # Keep one (neighbor, edge) pair per newly discovered vertex.
        first = np.unique(nbrs, return_index=True)[1]
        new_vertices = nbrs[first]
        new_edges = eids[first]
        visited[new_vertices] = True
        tree_edges.append(new_edges)
        frontier = new_vertices
    if tree_edges:
        return np.concatenate(tree_edges)
    return np.empty(0, dtype=np.int64)


def dijkstra_distances(
    graph: Graph,
    sources: Union[int, Sequence[int]],
    *,
    limit: float = np.inf,
) -> np.ndarray:
    """Weighted shortest-path distances from each source (rows) to all vertices."""
    srcs = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    adj = graph.adjacency_matrix(weighted=True)
    if adj.nnz == 0:
        out = np.full((srcs.size, graph.n), np.inf)
        out[np.arange(srcs.size), srcs] = 0.0
        return out
    return csgraph.dijkstra(adj, directed=False, indices=srcs, limit=limit)


def shortest_path_distances(
    graph: Graph,
    pairs: Iterable[Tuple[int, int]],
    chunk_size: int = 256,
) -> np.ndarray:
    """Exact weighted distances for a list of vertex pairs.

    Runs Dijkstra from the unique sources in chunks to bound memory; used by
    the stretch-measurement code.
    """
    pairs = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    if pairs.size == 0:
        return np.zeros(0)
    out = np.empty(pairs.shape[0], dtype=float)
    sources, inverse = np.unique(pairs[:, 0], return_inverse=True)
    adj = graph.adjacency_matrix(weighted=True)
    for start in range(0, sources.size, chunk_size):
        chunk = sources[start : start + chunk_size]
        dist = csgraph.dijkstra(adj, directed=False, indices=chunk)
        sel = (inverse >= start) & (inverse < start + chunk.size)
        rows = inverse[sel] - start
        out[sel] = dist[rows, pairs[sel, 1]]
    return out
