"""Graph substrate: weighted undirected multigraphs and graph linear algebra.

Everything the paper's algorithms need from a graph library is implemented
here from scratch on top of NumPy/SciPy arrays:

* :class:`~repro.graph.graph.Graph` — edge-array + CSR adjacency container.
* :mod:`~repro.graph.generators` — workload generators for the experiments.
* :mod:`~repro.graph.laplacian` — graph ⟷ Laplacian conversion and the
  Gremban reduction from general SDD systems to Laplacians.
* :mod:`~repro.graph.components`, :mod:`~repro.graph.shortest_paths`,
  :mod:`~repro.graph.mst`, :mod:`~repro.graph.contraction`,
  :mod:`~repro.graph.union_find`, :mod:`~repro.graph.forest` — classic
  graph primitives used as sub-routines (connected components, BFS/Dijkstra,
  Borůvka spanning forests, vertex quotients, bulk disjoint sets, and
  vectorized forest rooting via Euler tours + pointer jumping).
* :mod:`~repro.graph.io` — chunked/memmap edge-list ingestion that builds
  the CSR graph in streaming passes for graphs that don't fit comfortably
  in RAM twice.
"""

from repro.graph.graph import Graph
from repro.graph.edits import EdgeEdits
from repro.graph.laplacian import (
    graph_to_laplacian,
    laplacian_to_graph,
    is_laplacian,
    is_sdd,
    sdd_to_laplacian,
    GrembanReduction,
)
from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.mst import minimum_spanning_tree_edges, maximum_spanning_tree_edges
from repro.graph.shortest_paths import (
    bfs_distances,
    bfs_tree,
    dijkstra_distances,
    shortest_path_distances,
)
from repro.graph.contraction import contract_vertices
from repro.graph.union_find import UnionFind, connected_components_arrays
from repro.graph.forest import RootedForest, forest_components, is_forest_edges, root_forest
from repro.graph.io import (
    graph_from_edge_blocks,
    graph_from_edge_list,
    iter_edge_blocks,
    save_edge_list_binary,
    save_edge_list_npy,
)
from repro.graph import generators

__all__ = [
    "Graph",
    "EdgeEdits",
    "graph_to_laplacian",
    "laplacian_to_graph",
    "is_laplacian",
    "is_sdd",
    "sdd_to_laplacian",
    "GrembanReduction",
    "connected_components",
    "is_connected",
    "largest_component",
    "minimum_spanning_tree_edges",
    "maximum_spanning_tree_edges",
    "bfs_distances",
    "bfs_tree",
    "dijkstra_distances",
    "shortest_path_distances",
    "contract_vertices",
    "UnionFind",
    "connected_components_arrays",
    "RootedForest",
    "forest_components",
    "is_forest_edges",
    "root_forest",
    "graph_from_edge_blocks",
    "graph_from_edge_list",
    "iter_edge_blocks",
    "save_edge_list_binary",
    "save_edge_list_npy",
    "generators",
]
