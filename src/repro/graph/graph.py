"""Core weighted undirected multigraph container.

The :class:`Graph` stores edges as three parallel NumPy arrays ``(u, v, w)``
with each undirected edge stored exactly once, plus a lazily-built CSR
adjacency structure over *both* directions for traversal.  This mirrors the
compressed-sparse-row representation the paper assumes for its parallel
ball-growing primitive and keeps all per-edge algorithms (decomposition,
stretch computation, sparsification) vectorizable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.util.dtypes import (
    as_index_array,
    index_capacity_ok,
    min_index_dtype,
    resolve_index_dtype,
)

_INT_DTYPES = (np.dtype(np.int32), np.dtype(np.int64))
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class Graph:
    """An undirected weighted multigraph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    u, v:
        Integer arrays of endpoints; edge ``i`` connects ``u[i]`` and ``v[i]``.
        Self-loops are rejected (they carry no information for Laplacians).
    w:
        Positive edge weights.  Defaults to all ones.
    index_dtype:
        Storage dtype for the endpoint arrays: ``"int32"``, ``"int64"``, or
        ``None`` (default) to keep an already-int32/int64 input array as
        given (slices of a lean parent stay lean, no copy) and otherwise use
        the smallest dtype that safely covers ``(n, m)`` — see
        :func:`repro.util.dtypes.min_index_dtype`.  An explicit ``"int32"``
        raises :class:`~repro.util.dtypes.IndexOverflowError` when the graph
        is too large for 32-bit indexing.
    validate:
        Skip the O(m) invariant scan (index bounds, self-loops, weight
        positivity) when ``False``.  Internal call sites that construct
        graphs from already-validated arrays use this to avoid redundant
        passes over million-edge arrays.

    Notes
    -----
    * Edges are **directionless**: ``(u, v)`` and ``(v, u)`` denote the same
      edge.  Internally endpoints are kept as given.
    * Parallel edges are allowed (they arise naturally from the contractions
      in the AKPW algorithm); :meth:`coalesce` merges them by summing
      weights.
    * Weights are stored as given for float32/float64 input arrays (the
      chain build's optional float32 value mode relies on this) and
      converted to float64 otherwise.
    """

    __slots__ = ("n", "u", "v", "w", "_adj", "_fingerprint")

    def __init__(
        self,
        n: int,
        u: Iterable[int],
        v: Iterable[int],
        w: Optional[Iterable[float]] = None,
        *,
        index_dtype: Union[str, np.dtype, None] = None,
        validate: bool = True,
    ) -> None:
        self.n = int(n)
        u_arr = np.asarray(u)
        v_arr = np.asarray(v)
        if u_arr.shape != v_arr.shape:
            raise ValueError("u and v must have the same length")
        m = int(u_arr.size)
        if index_dtype is not None:
            idt = resolve_index_dtype(index_dtype, self.n, m)
        elif (
            u_arr.dtype in _INT_DTYPES
            and v_arr.dtype == u_arr.dtype
            and index_capacity_ok(u_arr.dtype, self.n, m)
        ):
            idt = u_arr.dtype
        else:
            idt = min_index_dtype(self.n, m)
        self.u = u_arr.astype(idt, copy=False).ravel()
        self.v = v_arr.astype(idt, copy=False).ravel()
        if w is None:
            self.w = np.ones(m, dtype=np.float64)
        else:
            w_arr = np.asarray(w)
            wdt = w_arr.dtype if w_arr.dtype in _FLOAT_DTYPES else np.dtype(np.float64)
            self.w = w_arr.astype(wdt, copy=False).ravel()
            if self.w.shape != self.u.shape:
                raise ValueError("w must have the same length as u and v")
        if validate and self.u.size:
            # Bounds are checked on the pre-cast arrays so an out-of-range
            # value can never wrap into range during an int64 -> int32 cast.
            if u_arr.min(initial=0) < 0 or v_arr.min(initial=0) < 0:
                raise ValueError("vertex indices must be non-negative")
            if max(u_arr.max(initial=-1), v_arr.max(initial=-1)) >= self.n:
                raise ValueError("vertex index out of range")
            if np.any(self.u == self.v):
                raise ValueError("self-loops are not allowed")
            if np.any(self.w <= 0):
                raise ValueError("edge weights must be positive")
        self._adj: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return int(self.u.shape[0])

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.w.sum())

    def degrees(self, weighted: bool = False) -> np.ndarray:
        """Per-vertex degree (edge count) or weighted degree."""
        if not weighted:
            return np.bincount(self.u, minlength=self.n) + np.bincount(
                self.v, minlength=self.n
            )
        deg = np.zeros(self.n, dtype=np.float64)
        np.add.at(deg, self.u, self.w)
        np.add.at(deg, self.v, self.w)
        return deg

    def copy(self) -> "Graph":
        """Deep copy of the graph (adjacency cache is not copied)."""
        return Graph(self.n, self.u.copy(), self.v.copy(), self.w.copy(), validate=False)

    def fingerprint(self) -> str:
        """Content hash of ``(n, u, v, w)`` (cached after the first call).

        Used as the graph part of the process-level chain-cache key: two
        graphs with equal fingerprints produce identical Laplacians and
        hence identical factorizations for a fixed seed and configuration.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.int64(self.n).tobytes())
            # Endpoints hash through a canonical int64 view so logically
            # equal graphs fingerprint identically whatever index dtype they
            # happen to be stored in (and int64 graphs hash as before).
            h.update(np.ascontiguousarray(self.u, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.v, dtype=np.int64).tobytes())
            # Weights hash through a canonical float64 view for the same
            # reason: a float32-weight graph and its value-identical float64
            # twin produce identical Laplacians up to the float64 cast the
            # chain build applies, so they must share one cache entry
            # instead of factorizing (and caching) twice.
            h.update(np.ascontiguousarray(self.w, dtype=np.float64).tobytes())
            self._fingerprint = "g:" + h.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.array_equal(self.w, other.w)
        )

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def _build_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build CSR adjacency arrays ``(indptr, neighbors, edge_ids)``.

        Both directions of every edge are present, so ``neighbors[indptr[x] :
        indptr[x + 1]]`` lists every neighbor of ``x`` (with multiplicity for
        parallel edges) and ``edge_ids`` gives the owning edge index.
        """
        m = self.num_edges
        idt = self.u.dtype
        src = np.concatenate([self.u, self.v])
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=self.n)
        del src  # free the 2m source copy before gathering neighbors
        dst = np.concatenate([self.v, self.u])
        neighbors = dst[order]
        del dst
        ar = np.arange(m, dtype=idt)
        eid = np.concatenate([ar, ar])
        edge_ids = eid[order]
        indptr = np.zeros(self.n + 1, dtype=idt)
        indptr[1:] = np.cumsum(counts)
        return indptr, neighbors, edge_ids

    @property
    def adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, neighbors, edge_ids)`` (built lazily)."""
        if self._adj is None:
            self._adj = self._build_adjacency()
        return self._adj

    def neighbors(self, x: int) -> np.ndarray:
        """Neighbors of vertex ``x`` (with multiplicity)."""
        indptr, nbrs, _ = self.adjacency
        return nbrs[indptr[x] : indptr[x + 1]]

    def incident_edges(self, x: int) -> np.ndarray:
        """Edge indices incident to vertex ``x``."""
        indptr, _, eids = self.adjacency
        return eids[indptr[x] : indptr[x + 1]]

    def adjacency_matrix(self, weighted: bool = True) -> sp.csr_matrix:
        """Symmetric (weighted) adjacency matrix as ``scipy.sparse.csr_matrix``."""
        vals = self.w if weighted else np.ones_like(self.w)
        data = np.concatenate([vals, vals])
        rows = np.concatenate([self.u, self.v])
        cols = np.concatenate([self.v, self.u])
        mat = sp.coo_matrix((data, (rows, cols)), shape=(self.n, self.n))
        return mat.tocsr()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edge_list(n: int, edges: Iterable[Tuple[int, int, float]]) -> "Graph":
        """Build a graph from ``(u, v, w)`` triples."""
        edges = list(edges)
        if not edges:
            return Graph(n, [], [], [])
        arr = np.asarray(edges, dtype=np.float64)
        idt = min_index_dtype(n, arr.shape[0])
        return Graph(n, arr[:, 0].astype(idt), arr[:, 1].astype(idt), arr[:, 2])

    @staticmethod
    def from_scipy_adjacency(adj: sp.spmatrix) -> "Graph":
        """Build a graph from a symmetric sparse adjacency matrix."""
        adj = sp.csr_matrix(adj)
        coo = sp.triu(adj, k=1).tocoo()
        return Graph(adj.shape[0], coo.row, coo.col, coo.data)

    def edge_subgraph(self, edge_indices: np.ndarray) -> "Graph":
        """Graph on the same vertex set containing only the given edges."""
        edge_indices = np.asarray(edge_indices)
        if edge_indices.dtype == bool:
            edge_indices = np.flatnonzero(edge_indices)
        return Graph(
            self.n,
            self.u[edge_indices],
            self.v[edge_indices],
            self.w[edge_indices],
            validate=False,
        )

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabeled ``0..len(vertices)-1``)
        and the array of original edge indices that survive.
        """
        idt = self.u.dtype
        vertices = np.asarray(vertices, dtype=idt)
        keep = np.full(self.n, -1, dtype=idt)
        keep[vertices] = np.arange(vertices.shape[0], dtype=idt)
        mask = (keep[self.u] >= 0) & (keep[self.v] >= 0)
        eidx = np.flatnonzero(mask)
        sub = Graph(
            vertices.shape[0],
            keep[self.u[eidx]],
            keep[self.v[eidx]],
            self.w[eidx],
            validate=False,
        )
        return sub, eidx

    def coalesce(self) -> Tuple["Graph", np.ndarray]:
        """Merge parallel edges by summing weights.

        Returns the simple graph and an array mapping each original edge to
        its representative edge index in the coalesced graph.
        """
        if self.num_edges == 0:
            return self.copy(), np.zeros(0, dtype=np.int64)
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        # Keys are always computed in int64: lo * n + hi overflows int32 for
        # n beyond ~46k even when the indices themselves fit comfortably.
        keys = lo * np.int64(self.n) + hi
        uniq, inverse = np.unique(keys, return_inverse=True)
        w_new = np.zeros(uniq.shape[0], dtype=self.w.dtype)
        np.add.at(w_new, inverse, self.w)
        idt = self.u.dtype
        u_new = (uniq // self.n).astype(idt)
        v_new = (uniq % self.n).astype(idt)
        return Graph(self.n, u_new, v_new, w_new, validate=False), inverse

    def reweighted(self, w: np.ndarray) -> "Graph":
        """Copy of the graph with new edge weights ``w`` (endpoints shared)."""
        w = np.asarray(w)
        if w.size and np.any(w <= 0):
            raise ValueError("edge weights must be positive")
        return Graph(self.n, self.u, self.v, w, validate=False)

    def _extended_index_dtype(self, new_m: int) -> np.dtype:
        """This graph's index dtype, widened only when ``new_m`` requires it.

        Mutation helpers preserve the source graph's dtype preference (an
        explicit ``index_dtype="int64"`` graph must not silently downcast to
        int32 just because the edited edge count happens to fit) and widen
        exactly when the grown edge array exceeds the current dtype's
        capacity.
        """
        if index_capacity_ok(self.u.dtype, self.n, new_m):
            return self.u.dtype
        return min_index_dtype(self.n, new_m)

    def add_edges(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> "Graph":
        """New graph with extra edges appended (source dtype preserved)."""
        uu = np.concatenate([self.u, np.asarray(u)])
        vv = np.concatenate([self.v, np.asarray(v)])
        ww = np.concatenate([self.w, np.asarray(w)])
        return Graph(self.n, uu, vv, ww, index_dtype=self._extended_index_dtype(uu.shape[0]))

    def delete_edges(self, edge_indices: np.ndarray) -> "Graph":
        """New graph with the named edges removed (order of survivors kept).

        ``edge_indices`` may be an integer index array (duplicates allowed)
        or a boolean mask of length ``m``.
        """
        edge_indices = np.asarray(edge_indices)
        if edge_indices.dtype == bool:
            if edge_indices.shape != self.u.shape:
                raise ValueError("boolean delete mask must have length m")
            drop = edge_indices
        else:
            edge_indices = as_index_array(edge_indices)
            if edge_indices.size and (
                edge_indices.min() < 0 or edge_indices.max() >= self.num_edges
            ):
                raise ValueError("edge index out of range")
            drop = np.zeros(self.num_edges, dtype=bool)
            drop[edge_indices] = True
        keep = ~drop
        return Graph(
            self.n, self.u[keep], self.v[keep], self.w[keep], validate=False
        )

    def reweight_edges(self, edge_indices: np.ndarray, new_w: np.ndarray) -> "Graph":
        """New graph with ``w[edge_indices[i]] = new_w[i]`` (endpoints shared)."""
        edge_indices = as_index_array(edge_indices)
        new_w = np.asarray(new_w, dtype=np.float64)
        if edge_indices.size and (
            edge_indices.min() < 0 or edge_indices.max() >= self.num_edges
        ):
            raise ValueError("edge index out of range")
        if new_w.size and np.any(new_w <= 0):
            raise ValueError("edge weights must be positive")
        w = self.w.copy()
        w[edge_indices] = new_w.astype(self.w.dtype, copy=False)
        return Graph(self.n, self.u, self.v, w, validate=False)

    def apply_edits(
        self, edits, *, return_index_map: bool = False
    ) -> Union["Graph", Tuple["Graph", np.ndarray]]:
        """Apply one :class:`~repro.graph.edits.EdgeEdits` batch.

        Deterministic edge order: surviving original edges first (original
        relative order, reweights applied in place), then the inserted
        edges in batch order — so two identical mutation histories produce
        byte-identical edge arrays and hence equal fingerprints.  The index
        dtype follows the preserve-or-widen rule of :meth:`add_edges`; the
        weight dtype is preserved.

        With ``return_index_map=True`` additionally returns an int64 array
        of length ``m`` mapping each original edge index to its index in
        the new graph (``-1`` for deleted edges); inserted edges occupy
        indices ``m_surviving ..`` in batch order.
        """
        edits.validate_for(self)
        m = self.num_edges
        keep = np.ones(m, dtype=bool)
        keep[edits.delete] = False
        w = self.w
        if edits.num_reweights:
            w = w.copy()
            w[edits.reweight] = edits.reweight_w.astype(w.dtype, copy=False)
        new_m = int(np.count_nonzero(keep)) + edits.num_inserts
        idt = self._extended_index_dtype(new_m)
        uu = np.concatenate([self.u[keep], edits.insert_u]).astype(idt, copy=False)
        vv = np.concatenate([self.v[keep], edits.insert_v]).astype(idt, copy=False)
        ww = np.concatenate([w[keep], edits.insert_w.astype(w.dtype, copy=False)])
        mutated = Graph(self.n, uu, vv, ww, index_dtype=idt, validate=False)
        if not return_index_map:
            return mutated
        index_map = np.cumsum(keep, dtype=np.int64) - 1
        index_map[~keep] = -1
        return mutated, index_map

    # ------------------------------------------------------------------ #
    # edge utilities
    # ------------------------------------------------------------------ #
    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(u, v)`` endpoint arrays."""
        return self.u, self.v

    def incidence_matrix(self) -> sp.csr_matrix:
        """Signed edge-vertex incidence matrix ``B`` (m x n).

        Row ``e`` has ``+sqrt(w_e)`` at ``u[e]`` and ``-sqrt(w_e)`` at
        ``v[e]`` so that ``B.T @ B`` equals the graph Laplacian.
        """
        m = self.num_edges
        sq = np.sqrt(self.w)
        rows = np.repeat(np.arange(m), 2)
        cols = np.empty(2 * m, dtype=np.int64)
        cols[0::2] = self.u
        cols[1::2] = self.v
        data = np.empty(2 * m, dtype=np.float64)
        data[0::2] = sq
        data[1::2] = -sq
        return sp.csr_matrix((data, (rows, cols)), shape=(m, self.n))

    def weight_buckets(self, base: float, w_min: Optional[float] = None) -> np.ndarray:
        """Assign each edge to a geometric weight class.

        Edge ``e`` goes to class ``i >= 1`` when ``w_e / w_min`` lies in
        ``[base^(i-1), base^i)``.  This is the bucketing used by the AKPW
        algorithm (Algorithm 5.1 step iii).
        """
        if base <= 1:
            raise ValueError("base must be > 1")
        if self.num_edges == 0:
            return np.zeros(0, dtype=np.int64)
        wm = float(self.w.min()) if w_min is None else float(w_min)
        ratio = self.w / wm
        # Guard against floating point issues at bucket boundaries.
        cls = np.floor(np.log(ratio) / np.log(base) + 1e-12).astype(np.int64) + 1
        return np.maximum(cls, 1)
