"""Core weighted undirected multigraph container.

The :class:`Graph` stores edges as three parallel NumPy arrays ``(u, v, w)``
with each undirected edge stored exactly once, plus a lazily-built CSR
adjacency structure over *both* directions for traversal.  This mirrors the
compressed-sparse-row representation the paper assumes for its parallel
ball-growing primitive and keeps all per-edge algorithms (decomposition,
stretch computation, sparsification) vectorizable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp


class Graph:
    """An undirected weighted multigraph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    u, v:
        Integer arrays of endpoints; edge ``i`` connects ``u[i]`` and ``v[i]``.
        Self-loops are rejected (they carry no information for Laplacians).
    w:
        Positive edge weights.  Defaults to all ones.

    Notes
    -----
    * Edges are **directionless**: ``(u, v)`` and ``(v, u)`` denote the same
      edge.  Internally endpoints are kept as given.
    * Parallel edges are allowed (they arise naturally from the contractions
      in the AKPW algorithm); :meth:`coalesce` merges them by summing
      weights.
    """

    __slots__ = ("n", "u", "v", "w", "_adj", "_fingerprint")

    def __init__(
        self,
        n: int,
        u: Iterable[int],
        v: Iterable[int],
        w: Optional[Iterable[float]] = None,
    ) -> None:
        self.n = int(n)
        self.u = np.asarray(u, dtype=np.int64).ravel()
        self.v = np.asarray(v, dtype=np.int64).ravel()
        if self.u.shape != self.v.shape:
            raise ValueError("u and v must have the same length")
        if w is None:
            self.w = np.ones(self.u.shape[0], dtype=np.float64)
        else:
            self.w = np.asarray(w, dtype=np.float64).ravel()
            if self.w.shape != self.u.shape:
                raise ValueError("w must have the same length as u and v")
        if self.u.size:
            if self.u.min(initial=0) < 0 or self.v.min(initial=0) < 0:
                raise ValueError("vertex indices must be non-negative")
            if max(self.u.max(initial=-1), self.v.max(initial=-1)) >= self.n:
                raise ValueError("vertex index out of range")
            if np.any(self.u == self.v):
                raise ValueError("self-loops are not allowed")
            if np.any(self.w <= 0):
                raise ValueError("edge weights must be positive")
        self._adj: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return int(self.u.shape[0])

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.w.sum())

    def degrees(self, weighted: bool = False) -> np.ndarray:
        """Per-vertex degree (edge count) or weighted degree."""
        vals = self.w if weighted else np.ones_like(self.w)
        deg = np.zeros(self.n, dtype=np.float64)
        np.add.at(deg, self.u, vals)
        np.add.at(deg, self.v, vals)
        return deg if weighted else deg.astype(np.int64)

    def copy(self) -> "Graph":
        """Deep copy of the graph (adjacency cache is not copied)."""
        return Graph(self.n, self.u.copy(), self.v.copy(), self.w.copy())

    def fingerprint(self) -> str:
        """Content hash of ``(n, u, v, w)`` (cached after the first call).

        Used as the graph part of the process-level chain-cache key: two
        graphs with equal fingerprints produce identical Laplacians and
        hence identical factorizations for a fixed seed and configuration.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.int64(self.n).tobytes())
            h.update(np.ascontiguousarray(self.u).tobytes())
            h.update(np.ascontiguousarray(self.v).tobytes())
            h.update(np.ascontiguousarray(self.w).tobytes())
            self._fingerprint = "g:" + h.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.array_equal(self.w, other.w)
        )

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #
    def _build_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build CSR adjacency arrays ``(indptr, neighbors, edge_ids)``.

        Both directions of every edge are present, so ``neighbors[indptr[x] :
        indptr[x + 1]]`` lists every neighbor of ``x`` (with multiplicity for
        parallel edges) and ``edge_ids`` gives the owning edge index.
        """
        m = self.num_edges
        src = np.concatenate([self.u, self.v])
        dst = np.concatenate([self.v, self.u])
        eid = np.concatenate([np.arange(m), np.arange(m)])
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        neighbors = dst[order]
        edge_ids = eid[order]
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        counts = np.bincount(src_sorted, minlength=self.n)
        indptr[1:] = np.cumsum(counts)
        return indptr, neighbors, edge_ids

    @property
    def adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, neighbors, edge_ids)`` (built lazily)."""
        if self._adj is None:
            self._adj = self._build_adjacency()
        return self._adj

    def neighbors(self, x: int) -> np.ndarray:
        """Neighbors of vertex ``x`` (with multiplicity)."""
        indptr, nbrs, _ = self.adjacency
        return nbrs[indptr[x] : indptr[x + 1]]

    def incident_edges(self, x: int) -> np.ndarray:
        """Edge indices incident to vertex ``x``."""
        indptr, _, eids = self.adjacency
        return eids[indptr[x] : indptr[x + 1]]

    def adjacency_matrix(self, weighted: bool = True) -> sp.csr_matrix:
        """Symmetric (weighted) adjacency matrix as ``scipy.sparse.csr_matrix``."""
        vals = self.w if weighted else np.ones_like(self.w)
        data = np.concatenate([vals, vals])
        rows = np.concatenate([self.u, self.v])
        cols = np.concatenate([self.v, self.u])
        mat = sp.coo_matrix((data, (rows, cols)), shape=(self.n, self.n))
        return mat.tocsr()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edge_list(n: int, edges: Iterable[Tuple[int, int, float]]) -> "Graph":
        """Build a graph from ``(u, v, w)`` triples."""
        edges = list(edges)
        if not edges:
            return Graph(n, [], [], [])
        arr = np.asarray(edges, dtype=np.float64)
        return Graph(n, arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64), arr[:, 2])

    @staticmethod
    def from_scipy_adjacency(adj: sp.spmatrix) -> "Graph":
        """Build a graph from a symmetric sparse adjacency matrix."""
        adj = sp.csr_matrix(adj)
        coo = sp.triu(adj, k=1).tocoo()
        return Graph(adj.shape[0], coo.row, coo.col, coo.data)

    def edge_subgraph(self, edge_indices: np.ndarray) -> "Graph":
        """Graph on the same vertex set containing only the given edges."""
        edge_indices = np.asarray(edge_indices)
        if edge_indices.dtype == bool:
            edge_indices = np.flatnonzero(edge_indices)
        return Graph(self.n, self.u[edge_indices], self.v[edge_indices], self.w[edge_indices])

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabeled ``0..len(vertices)-1``)
        and the array of original edge indices that survive.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        keep = np.full(self.n, -1, dtype=np.int64)
        keep[vertices] = np.arange(vertices.shape[0])
        mask = (keep[self.u] >= 0) & (keep[self.v] >= 0)
        eidx = np.flatnonzero(mask)
        sub = Graph(vertices.shape[0], keep[self.u[eidx]], keep[self.v[eidx]], self.w[eidx])
        return sub, eidx

    def coalesce(self) -> Tuple["Graph", np.ndarray]:
        """Merge parallel edges by summing weights.

        Returns the simple graph and an array mapping each original edge to
        its representative edge index in the coalesced graph.
        """
        if self.num_edges == 0:
            return self.copy(), np.zeros(0, dtype=np.int64)
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        keys = lo * np.int64(self.n) + hi
        uniq, inverse = np.unique(keys, return_inverse=True)
        w_new = np.zeros(uniq.shape[0], dtype=np.float64)
        np.add.at(w_new, inverse, self.w)
        u_new = (uniq // self.n).astype(np.int64)
        v_new = (uniq % self.n).astype(np.int64)
        return Graph(self.n, u_new, v_new, w_new), inverse

    def reweighted(self, w: np.ndarray) -> "Graph":
        """Copy of the graph with new edge weights ``w``."""
        return Graph(self.n, self.u.copy(), self.v.copy(), np.asarray(w, dtype=float))

    def add_edges(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> "Graph":
        """New graph with extra edges appended."""
        return Graph(
            self.n,
            np.concatenate([self.u, np.asarray(u, dtype=np.int64)]),
            np.concatenate([self.v, np.asarray(v, dtype=np.int64)]),
            np.concatenate([self.w, np.asarray(w, dtype=np.float64)]),
        )

    # ------------------------------------------------------------------ #
    # edge utilities
    # ------------------------------------------------------------------ #
    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(u, v)`` endpoint arrays."""
        return self.u, self.v

    def incidence_matrix(self) -> sp.csr_matrix:
        """Signed edge-vertex incidence matrix ``B`` (m x n).

        Row ``e`` has ``+sqrt(w_e)`` at ``u[e]`` and ``-sqrt(w_e)`` at
        ``v[e]`` so that ``B.T @ B`` equals the graph Laplacian.
        """
        m = self.num_edges
        sq = np.sqrt(self.w)
        rows = np.repeat(np.arange(m), 2)
        cols = np.empty(2 * m, dtype=np.int64)
        cols[0::2] = self.u
        cols[1::2] = self.v
        data = np.empty(2 * m, dtype=np.float64)
        data[0::2] = sq
        data[1::2] = -sq
        return sp.csr_matrix((data, (rows, cols)), shape=(m, self.n))

    def weight_buckets(self, base: float, w_min: Optional[float] = None) -> np.ndarray:
        """Assign each edge to a geometric weight class.

        Edge ``e`` goes to class ``i >= 1`` when ``w_e / w_min`` lies in
        ``[base^(i-1), base^i)``.  This is the bucketing used by the AKPW
        algorithm (Algorithm 5.1 step iii).
        """
        if base <= 1:
            raise ValueError("base must be > 1")
        if self.num_edges == 0:
            return np.zeros(0, dtype=np.int64)
        wm = float(self.w.min()) if w_min is None else float(w_min)
        ratio = self.w / wm
        # Guard against floating point issues at bucket boundaries.
        cls = np.floor(np.log(ratio) / np.log(base) + 1e-12).astype(np.int64) + 1
        return np.maximum(cls, 1)
