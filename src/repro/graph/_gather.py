"""Vectorized multi-range gather used by all frontier-synchronous traversals.

Given CSR arrays and a frontier of vertices, collect the concatenation of all
their adjacency ranges without a Python-level loop.  This is the inner loop
of parallel BFS / ball growing, so it must be fully vectorized.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def gather_ranges(
    indptr: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return flattened CSR positions for every vertex in ``frontier``.

    Returns
    -------
    positions:
        Indices into the CSR ``neighbors`` / ``edge_ids`` arrays covering the
        adjacency lists of all frontier vertices, in frontier order.
    owners:
        For each position, the index *into the frontier array* of the vertex
        that owns that adjacency entry (useful for propagating per-source
        values such as distances or owner labels).
    """
    idt = indptr.dtype if indptr.dtype in (np.dtype(np.int32), np.dtype(np.int64)) else np.dtype(np.int64)
    starts = indptr[frontier]
    ends = indptr[frontier + 1]
    counts = (ends - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=idt), np.empty(0, dtype=idt)
    owners = np.repeat(np.arange(frontier.shape[0], dtype=idt), counts)
    # positions = starts[owner] + (local offset within the owner's range)
    offsets = np.arange(total, dtype=idt) - np.repeat(
        np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(idt, copy=False), counts
    )
    positions = starts[owners] + offsets
    return positions, owners
