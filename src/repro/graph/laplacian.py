"""Graph Laplacians and the reduction from general SDD systems.

Implements:

* ``graph_to_laplacian`` / ``laplacian_to_graph`` — the one-to-one
  correspondence between weighted graphs and graph Laplacians the paper uses
  throughout Section 6.
* ``is_sdd`` / ``is_laplacian`` — structural checks.
* ``sdd_to_laplacian`` — the Gremban-style reduction quoted in Section 2 of
  the paper ("Solving an SDD system reduces in O(m) work and polylog depth to
  solving a graph Laplacian"): a general SDD matrix is embedded into a
  Laplacian on a double cover of the vertex set plus one grounded vertex, and
  solutions are recovered by averaging the two copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph


def graph_to_laplacian(graph: Graph) -> sp.csr_matrix:
    """Laplacian ``L = D - A`` of a weighted graph as a CSR matrix.

    The COO scratch rows/cols inherit the graph's (possibly int32) index
    dtype, which halves the dominant temporary on dtype-lean graphs; the
    matrix data is always float64 — solves accumulate in double precision
    regardless of the chain's value dtype.
    """
    n, m = graph.n, graph.num_edges
    if m == 0:
        return sp.csr_matrix((n, n))
    # concatenate preserves the common endpoint dtype (int32 stays int32).
    rows = np.concatenate([graph.u, graph.v, graph.u, graph.v])
    cols = np.concatenate([graph.v, graph.u, graph.u, graph.v])
    w64 = np.ascontiguousarray(graph.w, dtype=np.float64)
    data = np.concatenate([-w64, -w64, w64, w64])
    lap = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    lap.sum_duplicates()
    return lap


def laplacian_to_graph(lap: sp.spmatrix, tol: float = 1e-12) -> Graph:
    """Recover the weighted graph of a Laplacian matrix.

    Off-diagonal entries must be non-positive; entries with magnitude below
    ``tol`` (relative to the largest entry) are dropped.
    """
    lap = sp.csr_matrix(lap)
    upper = sp.triu(lap, k=1).tocoo()
    if upper.nnz == 0:
        return Graph(lap.shape[0], [], [], [])
    scale = max(abs(upper.data).max(), 1.0)
    keep = np.abs(upper.data) > tol * scale
    data = upper.data[keep]
    if np.any(data > 0):
        raise ValueError("matrix has positive off-diagonal entries; not a Laplacian")
    return Graph(lap.shape[0], upper.row[keep], upper.col[keep], -data)


def is_sdd(matrix: sp.spmatrix, tol: float = 1e-9) -> bool:
    """True when ``matrix`` is symmetric and diagonally dominant."""
    matrix = sp.csr_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        return False
    asym = matrix - matrix.T
    if asym.nnz and np.max(np.abs(asym.data)) > tol * max(np.abs(matrix.data).max(), 1.0):
        return False
    diag = matrix.diagonal()
    off = matrix - sp.diags(diag)
    row_abs = np.abs(off).sum(axis=1).A.ravel() if hasattr(np.abs(off).sum(axis=1), "A") else np.asarray(np.abs(off).sum(axis=1)).ravel()
    return bool(np.all(diag + tol * (1.0 + np.abs(diag)) >= row_abs))


def is_laplacian(matrix: sp.spmatrix, tol: float = 1e-9) -> bool:
    """True when ``matrix`` is a graph Laplacian (SDD, non-positive
    off-diagonals, zero row sums)."""
    matrix = sp.csr_matrix(matrix)
    if not is_sdd(matrix, tol):
        return False
    off = matrix - sp.diags(matrix.diagonal())
    if off.nnz and off.data.max(initial=0.0) > tol:
        return False
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = max(np.abs(matrix.diagonal()).max(initial=1.0), 1.0)
    return bool(np.all(np.abs(row_sums) <= tol * scale * matrix.shape[0]))


@dataclass
class GrembanReduction:
    """Result of reducing an SDD system to a Laplacian system.

    Attributes
    ----------
    laplacian:
        The (2n+1) x (2n+1) graph Laplacian (the last vertex is the ground).
        When the input had no positive off-diagonals and no diagonal excess
        the reduction is trivial and ``laplacian`` is the input itself
        (``trivial=True``).
    n:
        Dimension of the original system.
    trivial:
        Whether the input was already a Laplacian.
    """

    laplacian: sp.csr_matrix
    n: int
    trivial: bool

    def expand_rhs(self, b: np.ndarray) -> np.ndarray:
        """Lift right-hand side(s) of the original system to the reduced one.

        Accepts a vector ``(n,)`` or a batch ``(n, k)``; the ground-vertex
        row is zero either way.
        """
        b = np.asarray(b, dtype=float)
        if self.trivial:
            return b
        if b.ndim == 1:
            return np.concatenate([b, -b, [0.0]])
        return np.concatenate([b, -b, np.zeros((1, b.shape[1]))], axis=0)

    def restrict_solution(self, x: np.ndarray) -> np.ndarray:
        """Project solution(s) of the reduced system back to the original.

        Accepts a vector ``(2n+1,)`` or a batch ``(2n+1, k)``.
        """
        x = np.asarray(x, dtype=float)
        if self.trivial:
            return x
        return 0.5 * (x[: self.n] - x[self.n : 2 * self.n])


def sdd_to_laplacian(matrix: sp.spmatrix, tol: float = 1e-12) -> GrembanReduction:
    """Reduce a general SDD matrix to a graph Laplacian (Gremban reduction).

    Writing ``A = D + N + P`` with ``D`` diagonal, ``N`` the negative
    off-diagonal part and ``P`` the positive off-diagonal part, the reduced
    matrix is the Laplacian of a graph on ``2n + 1`` vertices:

    * vertex ``i`` and its copy ``i + n`` are connected to neighbors as in
      ``N`` (within the same copy) and as in ``P`` (across copies),
    * the diagonal excess ``d_i = A_ii - sum_j |A_ij|`` connects both copies
      of ``i`` to a shared ground vertex ``2n``.

    Solving ``L [x1; x2; xg] = [b; -b; 0]`` and returning ``(x1 - x2) / 2``
    solves ``A x = b`` exactly.
    """
    matrix = sp.csr_matrix(matrix).astype(float)
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    if not is_sdd(matrix):
        raise ValueError("matrix is not symmetric diagonally dominant")
    diag = matrix.diagonal()
    off = (matrix - sp.diags(diag)).tocoo()
    abs_rowsum = np.zeros(n)
    if off.nnz:
        np.add.at(abs_rowsum, off.row, np.abs(off.data))
    excess = diag - abs_rowsum
    excess[np.abs(excess) < tol * (1.0 + np.abs(diag))] = 0.0

    has_positive = off.nnz > 0 and np.any(off.data > tol)
    has_excess = np.any(excess > 0)
    if not has_positive and not has_excess:
        # Already a Laplacian.
        return GrembanReduction(laplacian=matrix, n=n, trivial=True)

    # Undirected edge list of the 2n+1 vertex cover graph.  Using only the
    # upper-triangular entries of the off-diagonal part avoids double
    # counting the symmetric matrix entries.
    off_ut = sp.triu(off, k=1).tocoo()
    rows = []
    cols = []
    vals = []
    if off_ut.nnz:
        neg = off_ut.data < 0
        pos = off_ut.data > 0
        # Negative off-diagonal A_ij (i < j): same-copy edges (i, j) and
        # (i + n, j + n), each of weight |A_ij|.
        r, c, d = off_ut.row[neg], off_ut.col[neg], -off_ut.data[neg]
        rows.extend([r, r + n])
        cols.extend([c, c + n])
        vals.extend([d, d])
        # Positive off-diagonal A_ij (i < j): cross-copy edges (i, j + n) and
        # (j, i + n), each of weight A_ij.
        r, c, d = off_ut.row[pos], off_ut.col[pos], off_ut.data[pos]
        rows.extend([r, r + n])
        cols.extend([c + n, c])
        vals.extend([d, d])
    # Diagonal excess: edges to the ground vertex 2n.
    gi = np.flatnonzero(excess > 0)
    if gi.size:
        ground = np.full(gi.size, 2 * n, dtype=np.int64)
        rows.extend([gi, gi + n])
        cols.extend([ground, ground])
        vals.extend([excess[gi], excess[gi]])

    rows_arr = np.concatenate(rows)
    cols_arr = np.concatenate(cols)
    vals_arr = np.concatenate(vals)
    # Each undirected edge appears once above; add both directions.
    size = 2 * n + 1
    adj = sp.coo_matrix(
        (
            np.concatenate([vals_arr, vals_arr]),
            (np.concatenate([rows_arr, cols_arr]), np.concatenate([cols_arr, rows_arr])),
        ),
        shape=(size, size),
    ).tocsr()
    adj.sum_duplicates()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj
    return GrembanReduction(laplacian=sp.csr_matrix(lap), n=n, trivial=False)


def laplacian_nullspace_projector(n: int) -> np.ndarray:
    """Return a function-friendly constant vector for range projection.

    For a connected graph the Laplacian null space is spanned by the all-ones
    vector; projecting right-hand sides and solutions onto its orthogonal
    complement (i.e. subtracting the mean) keeps iterative methods well
    defined.
    """
    return np.full(n, 1.0 / np.sqrt(n))


def project_out_nullspace(x: np.ndarray) -> np.ndarray:
    """Subtract the mean (projection onto the range of a connected Laplacian)."""
    x = np.asarray(x, dtype=float)
    return x - x.mean()
