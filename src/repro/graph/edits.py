"""Batched edge-edit descriptions for mutating graphs.

Real traffic mutates graphs: edges are inserted, deleted, and reweighted
between solves.  :class:`EdgeEdits` is the value object that describes one
such batch — the input of :meth:`repro.graph.graph.Graph.apply_edits` (which
produces the mutated graph) and of
:meth:`repro.core.operator.LaplacianOperator.update` (which patches the
factorization instead of rebuilding it).

An edit batch is expressed against a *specific* graph's edge numbering:

* **inserts** are new ``(u, v, w)`` edges on the existing vertex set;
* **deletes** name edge indices of the current graph;
* **reweights** name edge indices of the current graph plus their new
  positive weights.

Deletes and reweights must be disjoint and duplicate-free (an edge cannot
be deleted twice, or deleted and reweighted in one batch) — the batch is a
*set* of edits with no ordering ambiguity, which is what lets the update
machinery reason about damage without replaying a log.  The vertex set is
fixed: edits never change ``n`` (grow the graph by building it with spare
vertices, or rebuild through the constructor).

Batches are immutable; combine them with :meth:`EdgeEdits.merge`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.graph import Graph

__all__ = ["EdgeEdits"]

_EMPTY_INT = np.zeros(0, dtype=np.int64)
_EMPTY_FLOAT = np.zeros(0, dtype=np.float64)


def _as_int_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values if values is not None else _EMPTY_INT)
    if arr.size == 0:
        return _EMPTY_INT
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.number) or np.any(arr != np.floor(arr)):
            raise TypeError(f"{name} must be an integer array")
    return arr.astype(np.int64, copy=False).ravel()


def _as_weight_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values if values is not None else _EMPTY_FLOAT, dtype=np.float64).ravel()
    if arr.size and not np.all(arr > 0):
        raise ValueError(f"{name} must be positive")
    return arr


class EdgeEdits:
    """One immutable batch of edge inserts, deletes, and reweights.

    Build with the classmethod constructors (:meth:`inserts`,
    :meth:`deletes`, :meth:`reweights`) and combine with :meth:`merge`, or
    pass the arrays directly.  All arrays are normalized to int64 / float64
    and validated for internal consistency at construction; bounds against
    a concrete graph are checked by :meth:`validate_for`.
    """

    __slots__ = ("insert_u", "insert_v", "insert_w", "delete", "reweight", "reweight_w")

    def __init__(
        self,
        *,
        insert_u: Optional[Iterable[int]] = None,
        insert_v: Optional[Iterable[int]] = None,
        insert_w: Optional[Iterable[float]] = None,
        delete: Optional[Iterable[int]] = None,
        reweight: Optional[Iterable[int]] = None,
        reweight_w: Optional[Iterable[float]] = None,
    ) -> None:
        self.insert_u = _as_int_array(insert_u, "insert_u")
        self.insert_v = _as_int_array(insert_v, "insert_v")
        self.insert_w = _as_weight_array(insert_w, "insert_w")
        self.delete = _as_int_array(delete, "delete")
        self.reweight = _as_int_array(reweight, "reweight")
        self.reweight_w = _as_weight_array(reweight_w, "reweight_w")
        if not (self.insert_u.shape == self.insert_v.shape == self.insert_w.shape):
            raise ValueError("insert_u, insert_v, insert_w must have equal lengths")
        if self.reweight.shape != self.reweight_w.shape:
            raise ValueError("reweight and reweight_w must have equal lengths")
        if np.any(self.insert_u == self.insert_v):
            raise ValueError("inserted edges must not be self-loops")
        if self.delete.size and np.unique(self.delete).size != self.delete.size:
            raise ValueError("delete indices must be unique")
        if self.reweight.size and np.unique(self.reweight).size != self.reweight.size:
            raise ValueError("reweight indices must be unique")
        if self.delete.size and self.reweight.size:
            if np.intersect1d(self.delete, self.reweight).size:
                raise ValueError("an edge cannot be both deleted and reweighted")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def inserts(cls, u, v, w) -> "EdgeEdits":
        """A batch of pure edge insertions ``(u[i], v[i], w[i])``."""
        return cls(insert_u=u, insert_v=v, insert_w=w)

    @classmethod
    def deletes(cls, edge_indices) -> "EdgeEdits":
        """A batch of pure deletions of the named edge indices."""
        return cls(delete=edge_indices)

    @classmethod
    def reweights(cls, edge_indices, new_w) -> "EdgeEdits":
        """A batch of pure reweights: edge ``edge_indices[i]`` gets ``new_w[i]``."""
        return cls(reweight=edge_indices, reweight_w=new_w)

    @classmethod
    def empty(cls) -> "EdgeEdits":
        """The no-op batch."""
        return cls()

    @staticmethod
    def merge(*batches: "EdgeEdits") -> "EdgeEdits":
        """Union of several batches (re-validated: overlaps are rejected)."""
        return EdgeEdits(
            insert_u=np.concatenate([b.insert_u for b in batches]) if batches else None,
            insert_v=np.concatenate([b.insert_v for b in batches]) if batches else None,
            insert_w=np.concatenate([b.insert_w for b in batches]) if batches else None,
            delete=np.concatenate([b.delete for b in batches]) if batches else None,
            reweight=np.concatenate([b.reweight for b in batches]) if batches else None,
            reweight_w=np.concatenate([b.reweight_w for b in batches]) if batches else None,
        )

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def num_inserts(self) -> int:
        return int(self.insert_u.size)

    @property
    def num_deletes(self) -> int:
        return int(self.delete.size)

    @property
    def num_reweights(self) -> int:
        return int(self.reweight.size)

    @property
    def num_edits(self) -> int:
        """Total edit count across all three kinds."""
        return self.num_inserts + self.num_deletes + self.num_reweights

    @property
    def is_empty(self) -> bool:
        return self.num_edits == 0

    def touched_edge_indices(self) -> np.ndarray:
        """Sorted unique indices of existing edges this batch touches."""
        return np.union1d(self.delete, self.reweight)

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique endpoints of the *inserted* edges.

        Deleted/reweighted endpoints need the owning graph to resolve; use
        :meth:`Graph.apply_edits` / the update machinery for those.
        """
        return np.union1d(self.insert_u, self.insert_v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeEdits(inserts={self.num_inserts}, deletes={self.num_deletes}, "
            f"reweights={self.num_reweights})"
        )

    # ------------------------------------------------------------------ #
    # validation against a graph
    # ------------------------------------------------------------------ #
    def validate_for(self, graph: "Graph") -> None:
        """Check every index in this batch against ``graph``'s bounds."""
        n, m = graph.n, graph.num_edges
        for name, arr in (("insert_u", self.insert_u), ("insert_v", self.insert_v)):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(f"{name} contains vertex indices outside [0, {n})")
        for name, arr in (("delete", self.delete), ("reweight", self.reweight)):
            if arr.size and (arr.min() < 0 or arr.max() >= m):
                raise ValueError(f"{name} contains edge indices outside [0, {m})")
