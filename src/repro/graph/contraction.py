"""Vertex-quotient contraction (graph minors).

Contraction is the workhorse of the AKPW construction (Algorithm 5.1 step
iv.3): after each partition round, every low-diameter component is collapsed
into a single super-vertex, self-loops are discarded and parallel edges are
kept.  The function below performs the quotient and reports which original
edges survive so callers can keep tracking edge identities across rounds.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_filter, charge_map


def contract_vertices(
    graph: Graph,
    labels: np.ndarray,
    cost: CostModel = None,
) -> Tuple[Graph, np.ndarray, int]:
    """Contract every label class of ``labels`` into a single vertex.

    Parameters
    ----------
    graph:
        Input multigraph.
    labels:
        Per-vertex integer labels; vertices sharing a label are merged.
        Labels need not be contiguous — they are compacted internally.

    Returns
    -------
    contracted:
        The quotient multigraph (parallel edges preserved, self-loops
        dropped).
    surviving_edges:
        Indices (into ``graph``'s edge arrays) of the edges that survive,
        aligned with the contracted graph's edge arrays.
    num_groups:
        Number of super-vertices.
    """
    cost = cost or null_cost()
    labels = np.asarray(labels)
    if labels.shape[0] != graph.n:
        raise ValueError("labels must have one entry per vertex")
    uniq, compact = np.unique(labels, return_inverse=True)
    num_groups = int(uniq.shape[0])
    # np.unique's inverse comes back as intp; the contracted vertex ids fit
    # the parent graph's lean index dtype.
    compact = compact.astype(graph.u.dtype, copy=False)
    charge_map(cost, graph.n)
    new_u = compact[graph.u]
    new_v = compact[graph.v]
    keep = new_u != new_v
    charge_filter(cost, graph.num_edges)
    surviving = np.flatnonzero(keep)
    contracted = Graph(
        num_groups, new_u[surviving], new_v[surviving], graph.w[surviving], validate=False
    )
    return contracted, surviving, num_groups
