"""Minimum / maximum spanning forests (vectorized Borůvka rounds).

The MST is used by the spread-independence trick of Lemma 5.8: to start
SparseAKPW at a "special" weight class without running all earlier
iterations, one contracts the MST edges from lower classes.  Returning edge
*indices* (rather than a matrix, as ``scipy`` does) is essential because the
AKPW drivers track original edge identities through contractions.

The forest is found by Borůvka rounds — every component selects its
minimum incident edge under the total order ``(weight, edge index)``, the
selected edges are merged with the bulk array union-find, and the process
repeats for O(log n) rounds of O(m) vectorized work.  Because the order is
total, the minimum spanning forest is unique and the output is *identical*
(same edge indices, same order) to the sequential Kruskal scan this
replaces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Graph
from repro.graph.union_find import UnionFind, connected_components_arrays
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_map
from repro.util.dtypes import as_index_array, min_index_dtype


def _spanning_forest_edges(
    graph: Graph, order: np.ndarray, cost: Optional[CostModel] = None
) -> np.ndarray:
    """Spanning forest minimizing the total order given by ``order``.

    ``order`` lists all edge indices from most to least preferred (e.g. the
    stable argsort by weight); the unique optimal spanning forest under that
    total order is returned, sorted by preference — exactly what a
    sequential Kruskal scan over ``order`` would select.
    """
    cost = cost or null_cost()
    n, m = graph.n, graph.num_edges
    idt = min_index_dtype(n, m)
    order = as_index_array(order).astype(idt, copy=False)
    rank = np.empty(m, dtype=idt)
    rank[order] = np.arange(m, dtype=idt)
    charge_map(cost, m)

    uf = UnionFind(n)
    labels = np.arange(n, dtype=idt)
    alive = np.arange(m, dtype=idt)
    chosen = []
    sentinel = m
    # One claim buffer reused across every Borůvka round (refilled with the
    # sentinel in place) instead of a fresh n-array allocation per round.
    best = np.empty(n, dtype=idt)
    while alive.size:
        lu = labels[graph.u[alive]]
        lv = labels[graph.v[alive]]
        cross = lu != lv
        alive = alive[cross]
        if alive.size == 0:
            break
        lu = lu[cross]
        lv = lv[cross]
        # Each component claims its minimum-rank incident edge (cut
        # property: with a total order that edge is in the unique MSF).
        best.fill(sentinel)
        r = rank[alive]
        np.minimum.at(best, lu, r)
        np.minimum.at(best, lv, r)
        cost.charge_round(work=float(alive.size), depth=1.0)
        selected = order[np.unique(best[best < sentinel])]
        chosen.append(selected)
        uf.union_arrays(graph.u[selected], graph.v[selected], cost=cost)
        labels = uf.parent.astype(idt, copy=False)  # flattened by union_arrays
    if not chosen:
        return np.empty(0, dtype=np.int64)
    out = np.concatenate(chosen)
    return out[np.argsort(rank[out], kind="stable")]


def minimum_spanning_tree_edges(graph: Graph, cost: Optional[CostModel] = None) -> np.ndarray:
    """Edge indices of a minimum-weight spanning forest."""
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(graph.w, kind="stable")
    return _spanning_forest_edges(graph, order, cost=cost)


def maximum_spanning_tree_edges(graph: Graph, cost: Optional[CostModel] = None) -> np.ndarray:
    """Edge indices of a maximum-weight spanning forest."""
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-graph.w, kind="stable")
    return _spanning_forest_edges(graph, order, cost=cost)


def is_spanning_forest(graph: Graph, edge_indices: np.ndarray) -> bool:
    """Check that the edge set is acyclic and spans every component of ``graph``."""
    edge_indices = np.asarray(edge_indices, dtype=np.int64)
    n = graph.n
    sub_u = graph.u[edge_indices]
    sub_v = graph.v[edge_indices]
    count_sub, _ = connected_components_arrays(n, sub_u, sub_v)
    if int(edge_indices.shape[0]) != n - count_sub:
        return False  # cycle (or repeated edge index)
    count_full, _ = connected_components_arrays(n, graph.u, graph.v)
    return count_sub == count_full
