"""Minimum / maximum spanning forests (Kruskal with union-find).

The MST is used by the spread-independence trick of Lemma 5.8: to start
SparseAKPW at a "special" weight class without running all earlier
iterations, one contracts the MST edges from lower classes.  Returning edge
*indices* (rather than a matrix, as ``scipy`` does) is essential because the
AKPW drivers track original edge identities through contractions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.union_find import UnionFind


def _spanning_forest_edges(graph: Graph, order: np.ndarray) -> np.ndarray:
    uf = UnionFind(graph.n)
    chosen = []
    for e in order:
        if uf.union(int(graph.u[e]), int(graph.v[e])):
            chosen.append(e)
            if uf.num_sets == 1:
                break
    return np.asarray(chosen, dtype=np.int64)


def minimum_spanning_tree_edges(graph: Graph) -> np.ndarray:
    """Edge indices of a minimum-weight spanning forest (Kruskal)."""
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(graph.w, kind="stable")
    return _spanning_forest_edges(graph, order)


def maximum_spanning_tree_edges(graph: Graph) -> np.ndarray:
    """Edge indices of a maximum-weight spanning forest."""
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-graph.w, kind="stable")
    return _spanning_forest_edges(graph, order)


def is_spanning_forest(graph: Graph, edge_indices: np.ndarray) -> bool:
    """Check that the edge set is acyclic and spans every component of ``graph``."""
    edge_indices = np.asarray(edge_indices, dtype=np.int64)
    uf = UnionFind(graph.n)
    for e in edge_indices:
        if not uf.union(int(graph.u[e]), int(graph.v[e])):
            return False  # cycle
    # Spanning: same number of components as the full graph.
    uf_full = UnionFind(graph.n)
    for e in range(graph.num_edges):
        uf_full.union(int(graph.u[e]), int(graph.v[e]))
    return uf.num_sets == uf_full.num_sets
