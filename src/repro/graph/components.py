"""Connected components via bulk union-find (hooking + pointer jumping).

Components are found with the array union-find's min-root hooking rounds —
O(log n) sweeps of O(n + m) vectorized work and O(1) depth each, the
log-diameter connectivity style of Andoni et al. — instead of a per-source
Python BFS loop.  Labels are numbered by each component's smallest vertex,
matching the vertex-order BFS numbering this replaces.  Cost models are
charged one round per sweep.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.union_find import connected_components_arrays
from repro.pram.model import CostModel, null_cost


def connected_components(graph: Graph, cost: Optional[CostModel] = None) -> Tuple[int, np.ndarray]:
    """Number of components and a per-vertex component label array."""
    cost = cost or null_cost()
    return connected_components_arrays(graph.n, graph.u, graph.v, cost=cost)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true for n <= 1)."""
    if graph.n <= 1:
        return True
    count, _ = connected_components(graph)
    return count == 1


def largest_component(graph: Graph) -> np.ndarray:
    """Vertex indices of the largest connected component."""
    count, labels = connected_components(graph)
    if count <= 1:
        return np.arange(graph.n, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    return np.flatnonzero(labels == int(np.argmax(sizes)))
