"""Connected components via frontier-synchronous BFS.

Also charges PRAM cost when given a cost model: components are found by
parallel BFS, O(component diameter) rounds per component with work
proportional to edges scanned.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph._gather import gather_ranges
from repro.graph.graph import Graph
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_bfs_round


def connected_components(graph: Graph, cost: Optional[CostModel] = None) -> Tuple[int, np.ndarray]:
    """Number of components and a per-vertex component label array."""
    cost = cost or null_cost()
    n = graph.n
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return 0, labels
    indptr, neighbors, _ = graph.adjacency
    comp = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = comp
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            positions, _ = gather_ranges(indptr, frontier)
            charge_bfs_round(cost, positions.size, n)
            if positions.size == 0:
                break
            nbrs = np.unique(neighbors[positions])
            new = nbrs[labels[nbrs] < 0]
            if new.size == 0:
                break
            labels[new] = comp
            frontier = new
        comp += 1
    return comp, labels


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true for n <= 1)."""
    if graph.n <= 1:
        return True
    count, _ = connected_components(graph)
    return count == 1


def largest_component(graph: Graph) -> np.ndarray:
    """Vertex indices of the largest connected component."""
    count, labels = connected_components(graph)
    if count <= 1:
        return np.arange(graph.n, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    return np.flatnonzero(labels == int(np.argmax(sizes)))
