"""Chunked edge-list ingestion: build CSR graphs in streaming passes.

Million-edge graphs should not require the edge list to exist twice in
memory (once in the caller's format, once inside :class:`Graph`).  This
module builds a graph from a stream of ``(u, v, w)`` blocks instead:

* :func:`iter_edge_blocks` adapts the common sources — in-memory array
  triples, 2-D ``(m, 3)`` NumPy ``.npy`` files (opened as memmaps, so the
  OS pages the edge list in block by block), structured-record ``.npy``
  files, and raw packed binary files — into a block iterator;
* :func:`graph_from_edge_blocks` consumes any block iterator, validates
  each block while it is small, and fills preallocated lean arrays, so the
  transient overhead is one block rather than one edge list;
* :func:`save_edge_list_npy` / :func:`save_edge_list_binary` write the
  matching on-disk formats (used by benchmarks and tests).

The resulting graph is bit-identical — same ``n``, same endpoint/weight
values, same lean dtypes — to ``Graph(n, u, v, w)`` on the concatenated
edge list; the streaming-ingestion tests assert exactly that across the
fuzz corpus, multigraphs and disconnected unions included.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.graph.graph import Graph
from repro.util.dtypes import (
    IndexOverflowError,
    index_capacity_ok,
    min_index_dtype,
    resolve_index_dtype,
    resolve_value_dtype,
)

#: One streamed chunk of edges: ``(u, v, w)`` parallel arrays.
EdgeBlock = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Default record layout for packed binary edge files.
BINARY_EDGE_DTYPE = np.dtype([("u", "<i8"), ("v", "<i8"), ("w", "<f8")])

DEFAULT_BLOCK_EDGES = 1 << 20


def _blocks_from_arrays(
    u: np.ndarray, v: np.ndarray, w: Optional[np.ndarray], block_edges: int
) -> Iterator[EdgeBlock]:
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same length")
    if w is not None:
        w = np.asarray(w)
        if w.shape != u.shape:
            raise ValueError("w must have the same length as u and v")
    m = int(u.shape[0])
    for start in range(0, m, block_edges):
        stop = min(start + block_edges, m)
        wb = (
            w[start:stop]
            if w is not None
            else np.ones(stop - start, dtype=np.float64)
        )
        yield u[start:stop], v[start:stop], wb
    if m == 0:
        yield u[:0], v[:0], np.ones(0, dtype=np.float64)


def _blocks_from_npy(path: str, block_edges: int) -> Iterator[EdgeBlock]:
    arr = np.load(path, mmap_mode="r")
    if arr.dtype.names is not None:
        names = arr.dtype.names
        if not {"u", "v"} <= set(names):
            raise ValueError(
                f"structured edge file {path!r} needs fields 'u' and 'v' (got {names})"
            )
        has_w = "w" in names
        m = int(arr.shape[0])
        for start in range(0, max(m, 1), block_edges):
            stop = min(start + block_edges, m)
            chunk = np.asarray(arr[start:stop])  # one block paged in
            wb = (
                np.ascontiguousarray(chunk["w"])
                if has_w
                else np.ones(stop - start, dtype=np.float64)
            )
            yield np.ascontiguousarray(chunk["u"]), np.ascontiguousarray(chunk["v"]), wb
        return
    if arr.ndim != 2 or arr.shape[1] not in (2, 3):
        raise ValueError(
            f"edge file {path!r} must be an (m, 2) or (m, 3) array "
            f"or a structured array with u/v[/w] fields (got shape {arr.shape})"
        )
    m = int(arr.shape[0])
    has_w = arr.shape[1] == 3
    for start in range(0, max(m, 1), block_edges):
        stop = min(start + block_edges, m)
        chunk = np.asarray(arr[start:stop])
        u = chunk[:, 0].astype(np.int64)
        v = chunk[:, 1].astype(np.int64)
        wb = (
            np.ascontiguousarray(chunk[:, 2])
            if has_w
            else np.ones(stop - start, dtype=np.float64)
        )
        yield u, v, wb


def _blocks_from_binary(
    path: str, record_dtype: np.dtype, block_edges: int
) -> Iterator[EdgeBlock]:
    record_dtype = np.dtype(record_dtype)
    if record_dtype.names is None or not {"u", "v"} <= set(record_dtype.names):
        raise ValueError("binary record dtype needs at least fields 'u' and 'v'")
    size = os.path.getsize(path)
    if size % record_dtype.itemsize:
        raise ValueError(
            f"binary edge file {path!r} size {size} is not a multiple of "
            f"the record size {record_dtype.itemsize}"
        )
    m = size // record_dtype.itemsize
    has_w = "w" in record_dtype.names
    with open(path, "rb") as fh:
        remaining = m
        while True:
            count = min(block_edges, remaining)
            chunk = np.fromfile(fh, dtype=record_dtype, count=count)
            remaining -= chunk.shape[0]
            wb = (
                np.ascontiguousarray(chunk["w"])
                if has_w
                else np.ones(chunk.shape[0], dtype=np.float64)
            )
            yield np.ascontiguousarray(chunk["u"]), np.ascontiguousarray(chunk["v"]), wb
            if remaining <= 0 or chunk.shape[0] == 0:
                break


def iter_edge_blocks(
    source: Union[str, os.PathLike, Tuple, Graph, Iterable[EdgeBlock]],
    *,
    block_edges: int = DEFAULT_BLOCK_EDGES,
    binary_dtype: Optional[np.dtype] = None,
) -> Iterator[EdgeBlock]:
    """Adapt an edge-list source into an iterator of ``(u, v, w)`` blocks.

    Accepted sources:

    * a :class:`Graph` — blocks are views of its arrays;
    * a tuple/list ``(u, v)`` or ``(u, v, w)`` of array-likes;
    * a path to a ``.npy`` file — either a 2-D ``(m, 2)``/``(m, 3)`` array
      (columns ``u, v[, w]``) or a 1-D structured array with fields
      ``u``/``v``[/``w``]; opened with ``mmap_mode="r"`` so only the block
      being ingested is resident;
    * a path to a packed binary record file (``binary_dtype`` gives the
      record layout, default :data:`BINARY_EDGE_DTYPE`);
    * any iterator/iterable of ``(u, v, w)`` blocks — passed through.

    Missing weights default to ones.
    """
    if block_edges < 1:
        raise ValueError("block_edges must be >= 1")
    if isinstance(source, Graph):
        return _blocks_from_arrays(source.u, source.v, source.w, block_edges)
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        if binary_dtype is None and path.endswith(".npy"):
            return _blocks_from_npy(path, block_edges)
        return _blocks_from_binary(path, binary_dtype or BINARY_EDGE_DTYPE, block_edges)
    if isinstance(source, (tuple, list)) and len(source) in (2, 3):
        first = np.asarray(source[0])
        if first.ndim <= 1 and (first.ndim == 0 or first.dtype != object):
            u, v = source[0], source[1]
            w = source[2] if len(source) == 3 else None
            return _blocks_from_arrays(np.asarray(u), np.asarray(v), w, block_edges)
    return iter(source)


def _validate_block(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> None:
    if u.shape != v.shape or w.shape != u.shape:
        raise ValueError("block arrays u, v, w must have the same length")
    if not u.size:
        return
    if u.min(initial=0) < 0 or v.min(initial=0) < 0:
        raise ValueError("vertex indices must be non-negative")
    if max(u.max(initial=-1), v.max(initial=-1)) >= n:
        raise ValueError("vertex index out of range")
    if np.any(u == v):
        raise ValueError("self-loops are not allowed")
    if np.any(w <= 0):
        raise ValueError("edge weights must be positive")


def graph_from_edge_blocks(
    n: int,
    blocks: Iterable[EdgeBlock],
    *,
    num_edges: Optional[int] = None,
    index_dtype: Union[str, np.dtype] = "auto",
    value_dtype: Union[str, np.dtype] = "float64",
    validate: bool = True,
) -> Graph:
    """Build a :class:`Graph` by streaming ``(u, v, w)`` blocks into place.

    Each block is validated while it is small (bounds, self-loops, weight
    positivity — skipped with ``validate=False`` for trusted producers) and
    copied into the final storage arrays, so peak memory is the final graph
    plus one block.  With ``num_edges`` given the storage is allocated
    exactly once; otherwise it grows by doubling (amortized O(m), peak
    ~1.5x the final arrays during the last regrow).

    ``index_dtype="auto"`` sizes storage for ``num_edges`` when known and
    otherwise starts at the leanest dtype that covers ``n``, upcasting
    mid-stream in the (rare) case the edge count outgrows int32 capacity.
    An explicit ``"int32"`` raises
    :class:`~repro.util.dtypes.IndexOverflowError` instead of upcasting.
    """
    n = int(n)
    if n < 0:
        raise ValueError("n must be >= 0")
    wdt = resolve_value_dtype(value_dtype)
    explicit = isinstance(index_dtype, str) and index_dtype != "auto" or not isinstance(
        index_dtype, str
    )
    if num_edges is not None:
        idt = resolve_index_dtype(index_dtype, n, int(num_edges))
        cap = int(num_edges)
    else:
        idt = resolve_index_dtype(index_dtype, n, 0)
        cap = 0
    u = np.empty(cap, dtype=idt)
    v = np.empty(cap, dtype=idt)
    w = np.empty(cap, dtype=wdt)
    filled = 0
    for bu, bv, bw in blocks:
        bu = np.asarray(bu).ravel()
        bv = np.asarray(bv).ravel()
        bw = np.asarray(bw).ravel()
        if validate:
            _validate_block(n, bu, bv, bw)
        need = filled + bu.shape[0]
        if need > u.shape[0]:
            if num_edges is not None:
                raise ValueError(
                    f"edge stream produced more than the declared num_edges={num_edges}"
                )
            new_cap = max(need, 2 * u.shape[0], 1024)
            if not index_capacity_ok(idt, n, new_cap):
                if explicit:
                    raise IndexOverflowError(
                        f"edge stream outgrew index_dtype={idt.name!r} capacity "
                        f"at {need} edges; use index_dtype='int64' or 'auto'"
                    )
                idt = np.dtype(np.int64)
            u = _regrow(u, new_cap, idt)
            v = _regrow(v, new_cap, idt)
            w = _regrow(w, new_cap, wdt)
        u[filled:need] = bu
        v[filled:need] = bv
        w[filled:need] = bw
        filled = need
    if num_edges is not None and filled != num_edges:
        raise ValueError(
            f"edge stream produced {filled} edges but num_edges={num_edges} were declared"
        )
    if filled != u.shape[0]:
        u = u[:filled].copy()
        v = v[:filled].copy()
        w = w[:filled].copy()
    # Guard again with the true edge count (2m arc capacity matters too).
    if not index_capacity_ok(idt, n, filled):
        if explicit:
            raise IndexOverflowError(
                f"graph with n={n}, m={filled} does not fit index_dtype={idt.name!r}; "
                "use index_dtype='int64' or 'auto'"
            )
        u = u.astype(np.int64)
        v = v.astype(np.int64)
    return Graph(n, u, v, w, validate=False)


def _regrow(arr: np.ndarray, new_cap: int, dtype: np.dtype) -> np.ndarray:
    out = np.empty(new_cap, dtype=dtype)
    out[: arr.shape[0]] = arr
    return out


def graph_from_edge_list(
    n: int,
    source: Union[str, os.PathLike, Tuple, Graph, Iterable[EdgeBlock]],
    *,
    block_edges: int = DEFAULT_BLOCK_EDGES,
    binary_dtype: Optional[np.dtype] = None,
    index_dtype: Union[str, np.dtype] = "auto",
    value_dtype: Union[str, np.dtype] = "float64",
    validate: bool = True,
) -> Graph:
    """Build a graph from any :func:`iter_edge_blocks` source, streaming."""
    blocks = iter_edge_blocks(source, block_edges=block_edges, binary_dtype=binary_dtype)
    return graph_from_edge_blocks(
        n,
        blocks,
        index_dtype=index_dtype,
        value_dtype=value_dtype,
        validate=validate,
    )


def save_edge_list_npy(graph: Graph, path: Union[str, os.PathLike]) -> str:
    """Write ``graph``'s edges as a structured ``.npy`` (fields ``u, v, w``).

    The structured layout round-trips endpoint integers exactly and is
    memmap-friendly for :func:`iter_edge_blocks`.
    """
    path = os.fspath(path)
    rec = np.empty(graph.num_edges, dtype=BINARY_EDGE_DTYPE)
    rec["u"] = graph.u
    rec["v"] = graph.v
    rec["w"] = graph.w
    np.save(path, rec)
    return path if path.endswith(".npy") else path + ".npy"


def save_edge_list_binary(
    graph: Graph,
    path: Union[str, os.PathLike],
    *,
    record_dtype: np.dtype = BINARY_EDGE_DTYPE,
) -> str:
    """Write ``graph``'s edges as packed binary records (default u/v/w int64+float64)."""
    path = os.fspath(path)
    record_dtype = np.dtype(record_dtype)
    rec = np.empty(graph.num_edges, dtype=record_dtype)
    rec["u"] = graph.u
    rec["v"] = graph.v
    if "w" in record_dtype.names:
        rec["w"] = graph.w
    rec.tofile(path)
    return path
