"""Vectorized forest rooting (Euler tours + pointer jumping).

Rooting every tree of a forest — computing parents, hop/weighted depths and
component labels — is the per-level workhorse behind tree-stretch
measurement (binary-lifting LCA needs rooted depths) and the low-stretch
pipeline.  The classic sequential answer is a per-vertex DFS; this module
replaces it with the textbook parallel construction so the whole pass is a
handful of O(n + m) array sweeps:

1. **components** — bulk union-find hooking with pointer-jumping sweeps
   (:func:`repro.graph.union_find.connected_components_arrays`);
2. **orientation** — build the Euler tour of every tree (two arcs per edge,
   ``succ(a) = next arc out of head(a) after twin(a)``), cut each tour at
   its component's root, and list-rank the arcs by pointer doubling;
   an arc is *downward* (parent → child) exactly when it precedes its twin
   in the tour;
3. **depths** — pointer-double over the resulting parent pointers,
   accumulating hop and weighted depths in O(log depth) sweeps.

Every sweep is charged to the PRAM cost model as one O(items)-work,
O(1)-depth round (:func:`repro.pram.primitives.charge_rooting_sweep` /
``charge_pointer_jump``), matching the O(m log n) work / O(log n) depth
rooting bound the paper's Section 2 toolbox assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.union_find import connected_components_arrays
from repro.pram.model import CostModel, null_cost
from repro.pram.primitives import charge_map, charge_pointer_jump, charge_rooting_sweep
from repro.util.dtypes import as_index_array, min_index_dtype


@dataclass
class RootedForest:
    """A forest with every tree rooted at its smallest vertex.

    Attributes
    ----------
    parent:
        Per-vertex parent vertex (``-1`` at roots).
    parent_edge:
        Index (into the forest's edge arrays as passed to
        :func:`root_forest`) of the edge joining the vertex to its parent
        (``-1`` at roots).
    parent_weight:
        Weight of the parent edge (``0`` at roots).
    hop_depth, weighted_depth:
        Unweighted / weighted distance to the root of the vertex's tree.
    component:
        Per-vertex tree index, numbered ``0..num_trees-1`` by increasing
        root vertex.
    roots:
        Root vertex of each tree (sorted ascending).
    """

    parent: np.ndarray
    parent_edge: np.ndarray
    parent_weight: np.ndarray
    hop_depth: np.ndarray
    weighted_depth: np.ndarray
    component: np.ndarray
    roots: np.ndarray

    @property
    def num_trees(self) -> int:
        """Number of trees in the forest."""
        return int(self.roots.shape[0])


def forest_components(
    n: int, u: np.ndarray, v: np.ndarray, cost: Optional[CostModel] = None
) -> Tuple[int, np.ndarray]:
    """Component count and labels of the graph spanned by ``(u, v)``.

    Thin alias of :func:`connected_components_arrays`, exported here so the
    rooting / stretch / MST call sites share one connectivity primitive.
    """
    return connected_components_arrays(n, u, v, cost=cost)


def is_forest_edges(n: int, u: np.ndarray, v: np.ndarray) -> bool:
    """Whether the edge multiset ``(u, v)`` on ``n`` vertices is acyclic.

    An edge set is a forest iff ``m == n - (number of components)``; parallel
    edges (two copies of the same edge) therefore count as a cycle.
    """
    u = as_index_array(u)
    if u.shape[0] >= max(n, 1):
        return False
    count, _ = forest_components(n, u, v)
    return int(u.shape[0]) == n - count


def root_forest(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: Optional[np.ndarray] = None,
    *,
    cost: Optional[CostModel] = None,
) -> RootedForest:
    """Root every tree of the forest ``(n, u, v, w)`` at its smallest vertex.

    Parameters
    ----------
    n:
        Number of vertices (isolated vertices become single-vertex trees).
    u, v:
        Endpoint arrays of the forest edges.  Raises :class:`ValueError`
        when the edges contain a cycle — including a parallel copy of an
        existing edge, since a multigraph with a repeated edge is not a
        forest.
    w:
        Optional positive edge weights (defaults to ones) used for
        ``weighted_depth``.
    cost:
        Optional PRAM cost model; charged one O(arcs)-work O(1)-depth round
        per pointer-jumping / list-ranking sweep.

    Returns
    -------
    RootedForest
        Identical parents/depths/components to a sequential DFS from each
        tree's smallest vertex (the tree structure determines them uniquely
        given the root), computed in O(log n) bulk sweeps.
    """
    cost = cost or null_cost()
    u = as_index_array(u)
    v = as_index_array(v)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same length")
    m = int(u.shape[0])
    # Everything that indexes vertices or arcs lives in the lean index dtype
    # (arc ids go up to 2m + 1 including the tour sentinel, which
    # min_index_dtype accounts for).
    idt = min_index_dtype(n, m)
    u = u.astype(idt, copy=False)
    v = v.astype(idt, copy=False)
    if w is None:
        w = np.ones(m, dtype=np.float64)
    else:
        w = np.asarray(w).ravel()
        if w.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            w = w.astype(np.float64)
        if w.shape[0] != m:
            raise ValueError("w must have one entry per edge")
    if m and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise ValueError("vertex index out of range")

    num_comp, component = forest_components(n, u, v, cost=cost)
    if m != n - num_comp:
        raise ValueError("edges contain a cycle (not a forest)")

    parent = np.full(n, -1, dtype=idt)
    parent_edge = np.full(n, -1, dtype=idt)
    parent_weight = np.zeros(n, dtype=w.dtype)
    hop_depth = np.zeros(n, dtype=idt)
    weighted_depth = np.zeros(n, dtype=w.dtype)
    # Roots are the per-component minima; with min-root hooking the smallest
    # vertex of a component is exactly the first vertex carrying each label.
    roots = np.full(num_comp, n, dtype=idt)
    if n:
        np.minimum.at(roots, component, np.arange(n, dtype=idt))
    if m == 0:
        return RootedForest(
            parent, parent_edge, parent_weight, hop_depth, weighted_depth, component, roots
        )

    # ------------------------------------------------------------------ #
    # Euler tour arcs: arc i is u[i] -> v[i], arc i + m is v[i] -> u[i].
    # ------------------------------------------------------------------ #
    num_arcs = 2 * m
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    arc_ar = np.arange(m, dtype=idt)
    arc_edge = np.concatenate([arc_ar, arc_ar])
    twin = np.concatenate([np.arange(m, num_arcs, dtype=idt), arc_ar])
    charge_map(cost, num_arcs)

    # arcs grouped by source vertex (argsort returns intp; cast once so
    # every derived arc array below stays lean)
    order = np.argsort(src, kind="stable").astype(idt, copy=False)
    deg = np.bincount(src, minlength=n).astype(idt, copy=False)
    indptr = np.zeros(n + 1, dtype=idt)
    indptr[1:] = np.cumsum(deg)
    # Position of each arc inside its source's adjacency block, and the
    # cyclic-next arc out of the same source.
    arc_pos = np.empty(num_arcs, dtype=idt)
    arc_pos[order] = np.arange(num_arcs, dtype=idt) - np.repeat(indptr[:-1], deg)
    cyc_next = order[indptr[src] + (arc_pos + 1) % deg[src]]
    # succ(a) = next arc out of head(a) after twin(a): one Euler cycle/tree.
    succ = cyc_next[twin]
    charge_rooting_sweep(cost, num_arcs)

    # Cut every tree's cycle at its root's first outgoing arc.
    term = num_arcs  # sentinel "end of tour"
    active_roots = roots[deg[roots] > 0]
    first_arc = order[indptr[active_roots]]
    pred = np.empty(num_arcs, dtype=idt)
    pred[succ] = np.arange(num_arcs, dtype=idt)
    succ[pred[first_arc]] = term
    charge_rooting_sweep(cost, num_arcs)

    # List-rank by pointer doubling: dist[a] = #arcs from a to the cut.
    nxt = np.empty(num_arcs + 1, dtype=idt)
    nxt[:num_arcs] = succ
    nxt[num_arcs] = term
    dist = np.ones(num_arcs + 1, dtype=idt)
    dist[num_arcs] = 0
    while True:
        charge_rooting_sweep(cost, num_arcs)
        if np.all(nxt[:num_arcs] == term):
            break
        dist[:num_arcs] += dist[nxt[:num_arcs]]
        nxt[:num_arcs] = nxt[nxt[:num_arcs]]
    dist = dist[:num_arcs]

    # An arc is downward (parent -> child) iff it precedes its twin in the
    # tour, i.e. it is farther from the cut.
    down = dist > dist[twin]
    child = dst[down]
    parent[child] = src[down]
    parent_edge[child] = arc_edge[down]
    parent_weight[child] = w[arc_edge[down]]
    charge_map(cost, num_arcs)

    # Depths by pointer doubling over parent pointers.
    anc = np.where(parent >= 0, parent, np.arange(n, dtype=idt))
    hop = (parent >= 0).astype(idt)
    wsum = parent_weight.copy()
    while True:
        charge_pointer_jump(cost, n)
        if np.array_equal(anc, anc[anc]):
            # All chains terminate at roots; one more accumulation closes
            # nothing because roots contribute zero.
            break
        hop = hop + hop[anc]
        wsum = wsum + wsum[anc]
        anc = anc[anc]
    hop_depth[:] = hop
    weighted_depth[:] = wsum

    return RootedForest(
        parent, parent_edge, parent_weight, hop_depth, weighted_depth, component, roots
    )
