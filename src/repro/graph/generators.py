"""Workload generators for the experiments.

The paper's solver and decomposition routines are evaluated here on the
standard Laplacian-solver workloads: 2-D/3-D grid graphs (discretized Poisson
problems), tori, random regular graphs, Erdős–Rényi graphs, preferential
attachment graphs, random geometric graphs, and weighted variants with
log-uniform weights (to exercise many AKPW weight classes).  All generators
return :class:`~repro.graph.graph.Graph` objects and are deterministic given
a seed.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.util.dtypes import min_index_dtype
from repro.util.rng import RngLike, as_rng


# --------------------------------------------------------------------------- #
# structured meshes
# --------------------------------------------------------------------------- #
def path_graph(n: int, weights: Optional[np.ndarray] = None) -> Graph:
    """Path on ``n`` vertices."""
    if n < 1:
        raise ValueError("n must be >= 1")
    u = np.arange(n - 1, dtype=min_index_dtype(n, n))
    v = u + 1
    return Graph(n, u, v, weights)


def cycle_graph(n: int, weights: Optional[np.ndarray] = None) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("n must be >= 3")
    u = np.arange(n, dtype=min_index_dtype(n, n))
    v = (u + 1) % n
    return Graph(n, u, v, weights)


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves."""
    if n < 2:
        raise ValueError("n must be >= 2")
    idt = min_index_dtype(n, n)
    u = np.zeros(n - 1, dtype=idt)
    v = np.arange(1, n, dtype=idt)
    return Graph(n, u, v)


def complete_graph(n: int) -> Graph:
    """Complete graph K_n."""
    iu = np.triu_indices(n, k=1)
    return Graph(n, iu[0], iu[1], index_dtype="auto")


def grid_2d(rows: int, cols: int, *, wrap: bool = False) -> Graph:
    """2-D grid (or torus when ``wrap=True``) with unit weights.

    Vertex ``(r, c)`` has index ``r * cols + c``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    # A grid/torus has m <= 2n edges, so sizing the index dtype for (n, 2n)
    # keeps every edge array lean without counting edges up front.
    idx = np.arange(rows * cols, dtype=min_index_dtype(rows * cols, 2 * rows * cols)).reshape(
        rows, cols
    )
    us = []
    vs = []
    # horizontal edges
    us.append(idx[:, :-1].ravel())
    vs.append(idx[:, 1:].ravel())
    # vertical edges
    us.append(idx[:-1, :].ravel())
    vs.append(idx[1:, :].ravel())
    if wrap:
        if cols > 2:
            us.append(idx[:, -1].ravel())
            vs.append(idx[:, 0].ravel())
        if rows > 2:
            us.append(idx[-1, :].ravel())
            vs.append(idx[0, :].ravel())
    u = np.concatenate(us)
    v = np.concatenate(vs)
    return Graph(rows * cols, u, v)


def torus_2d(rows: int, cols: int) -> Graph:
    """2-D torus (grid with wrap-around)."""
    return grid_2d(rows, cols, wrap=True)


def grid_3d(nx: int, ny: int, nz: int) -> Graph:
    """3-D grid with unit weights."""
    if min(nx, ny, nz) < 1:
        raise ValueError("dimensions must be >= 1")
    nverts = nx * ny * nz
    idx = np.arange(nverts, dtype=min_index_dtype(nverts, 3 * nverts)).reshape(nx, ny, nz)
    us = []
    vs = []
    us.append(idx[:-1, :, :].ravel())
    vs.append(idx[1:, :, :].ravel())
    us.append(idx[:, :-1, :].ravel())
    vs.append(idx[:, 1:, :].ravel())
    us.append(idx[:, :, :-1].ravel())
    vs.append(idx[:, :, 1:].ravel())
    return Graph(nx * ny * nz, np.concatenate(us), np.concatenate(vs))


# --------------------------------------------------------------------------- #
# random graphs
# --------------------------------------------------------------------------- #
def erdos_renyi_gnm(n: int, m: int, seed: RngLike = None, *, connected: bool = True) -> Graph:
    """G(n, m) random graph (simple).

    With ``connected=True`` a random spanning tree is inserted first so that
    the result is always connected (the solver assumes connectivity); the
    remaining ``m - (n - 1)`` edges are sampled uniformly without duplicates.
    """
    rng = as_rng(seed)
    if n < 1:
        raise ValueError("n must be >= 1")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"too many edges requested ({m} > {max_edges})")
    edges = set()
    us = []
    vs = []
    if connected and n > 1:
        perm = rng.permutation(n)
        for i in range(1, n):
            a = int(perm[rng.integers(0, i)])
            b = int(perm[i])
            lo, hi = (a, b) if a < b else (b, a)
            edges.add((lo, hi))
            us.append(lo)
            vs.append(hi)
        if m < n - 1:
            raise ValueError("connected G(n, m) needs m >= n - 1")
    target = m
    while len(edges) < target:
        need = target - len(edges)
        cand_u = rng.integers(0, n, size=2 * need + 8)
        cand_v = rng.integers(0, n, size=2 * need + 8)
        for a, b in zip(cand_u, cand_v):
            if a == b:
                continue
            lo, hi = (int(a), int(b)) if a < b else (int(b), int(a))
            if (lo, hi) in edges:
                continue
            edges.add((lo, hi))
            us.append(lo)
            vs.append(hi)
            if len(edges) >= target:
                break
    return Graph(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), index_dtype="auto")


def random_regular_graph(n: int, d: int, seed: RngLike = None, max_rounds: int = 500) -> Graph:
    """Random ``d``-regular simple graph via the configuration model.

    A random stub pairing is drawn and then repaired: every self-loop or
    duplicate edge is broken by a random double edge swap (which preserves
    all degrees).  Repair converges quickly for the moderate degrees used in
    the benchmarks; if it stalls the pairing is redrawn.
    """
    rng = as_rng(seed)
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    if d >= n:
        raise ValueError("d must be < n")

    def edge_key(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        return lo * np.int64(n) + hi

    for _attempt in range(20):
        stubs = np.repeat(np.arange(n, dtype=min_index_dtype(n, n * d // 2)), d)
        rng.shuffle(stubs)
        u = stubs[0::2].copy()
        v = stubs[1::2].copy()
        m = u.shape[0]
        for _round in range(max_rounds):
            keys = edge_key(u, v)
            order = np.argsort(keys, kind="stable")
            dup = np.zeros(m, dtype=bool)
            dup[order[1:]] = keys[order[1:]] == keys[order[:-1]]
            bad = np.flatnonzero((u == v) | dup)
            if bad.size == 0:
                return Graph(n, u, v)
            # Swap each bad edge with a random partner edge: (u1,v1),(u2,v2)
            # -> (u1,v2),(u2,v1).  Degrees are preserved; repeat until clean.
            partners = rng.integers(0, m, size=bad.size)
            for e, f in zip(bad, partners):
                if e == f:
                    continue
                u[e], v[f] = v[f], u[e]
        # repair stalled; redraw the pairing
    raise RuntimeError("failed to generate a simple random regular graph; try a different seed")


def preferential_attachment(n: int, k: int, seed: RngLike = None) -> Graph:
    """Barabási–Albert style preferential attachment graph.

    Starts from a clique on ``k + 1`` vertices; each new vertex attaches to
    ``k`` distinct existing vertices chosen with probability proportional to
    degree.
    """
    rng = as_rng(seed)
    if k < 1 or n <= k + 1:
        raise ValueError("need n > k + 1 >= 2")
    us = []
    vs = []
    targets = []  # repeated-by-degree pool
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            us.append(i)
            vs.append(j)
            targets.extend([i, j])
    for new in range(k + 1, n):
        chosen = set()
        pool = np.asarray(targets, dtype=np.int64)
        while len(chosen) < k:
            pick = int(pool[rng.integers(0, pool.shape[0])])
            chosen.add(pick)
        for t in chosen:
            us.append(new)
            vs.append(t)
            targets.extend([new, t])
    return Graph(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), index_dtype="auto")


def random_geometric_graph(
    n: int, radius: float, seed: RngLike = None, *, connect: bool = True
) -> Graph:
    """Random geometric graph on the unit square.

    Vertices are uniform points; edges join pairs within ``radius``.  With
    ``connect=True`` a nearest-neighbor chain over a random ordering is added
    to guarantee connectivity.
    """
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    iu = np.triu_indices(n, k=1)
    mask = dist[iu] <= radius
    us = iu[0][mask]
    vs = iu[1][mask]
    if connect and n > 1:
        order = np.argsort(pts[:, 0], kind="stable")
        us = np.concatenate([us, order[:-1]])
        vs = np.concatenate([vs, order[1:]])
        g = Graph(n, us, vs, index_dtype="auto")
        g, _ = g.coalesce()
        return g
    return Graph(n, us, vs, index_dtype="auto")


def rmat_edge_blocks(
    scale: int,
    edge_factor: int = 8,
    seed: RngLike = None,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    block_edges: int = 1 << 20,
):
    """Yield ``(u, v, w)`` blocks of a recursive-matrix (R-MAT) multigraph.

    The Graph500-style generator on ``n = 2**scale`` vertices with
    ``edge_factor * n`` directed edge draws: each edge picks one quadrant of
    the adjacency matrix per bit level with probabilities ``(a, b, c, d)``
    (``d = 1 - a - b - c``).  Self-loops are dropped; parallel edges are
    kept (the chain build coalesces multigraphs anyway).  Blocks are emitted
    with lean index dtypes and unit weights, sized so generation never
    materializes the full edge list — feed them to
    :func:`repro.graph.io.graph_from_edge_blocks`.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = as_rng(seed)
    n = 1 << scale
    remaining = edge_factor * n
    idt = min_index_dtype(n, remaining)
    while remaining > 0:
        size = min(int(block_edges), remaining)
        remaining -= size
        u = np.zeros(size, dtype=idt)
        v = np.zeros(size, dtype=idt)
        for _bit in range(scale):
            r = rng.random(size)
            # quadrants: [0, a) -> (0, 0); [a, a+b) -> (0, 1);
            #            [a+b, a+b+c) -> (1, 0); rest -> (1, 1)
            ubit = r >= a + b
            vbit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
            u = (u << 1) | ubit.astype(idt)
            v = (v << 1) | vbit.astype(idt)
        keep = u != v
        if not keep.all():
            u = u[keep]
            v = v[keep]
        yield u, v, np.ones(u.shape[0], dtype=np.float64)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    seed: RngLike = None,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    block_edges: int = 1 << 20,
) -> Graph:
    """R-MAT multigraph on ``2**scale`` vertices (see :func:`rmat_edge_blocks`).

    Built through the streaming ingestion path, so peak memory during
    generation is one block plus the final arrays.
    """
    from repro.graph.io import graph_from_edge_blocks

    blocks = rmat_edge_blocks(
        scale, edge_factor, seed, a=a, b=b, c=c, block_edges=block_edges
    )
    n = 1 << scale
    return graph_from_edge_blocks(n, blocks, validate=False)


# --------------------------------------------------------------------------- #
# weighted variants
# --------------------------------------------------------------------------- #
def with_random_weights(
    graph: Graph,
    seed: RngLike = None,
    *,
    spread: float = 1e3,
    distribution: str = "loguniform",
) -> Graph:
    """Assign random positive weights to an existing graph.

    ``spread`` is the ratio between the largest and smallest possible weight
    (the paper's Delta); "loguniform" exercises many AKPW weight classes.
    """
    rng = as_rng(seed)
    m = graph.num_edges
    if distribution == "loguniform":
        w = np.exp(rng.uniform(0.0, math.log(max(spread, 1.0)), size=m))
    elif distribution == "uniform":
        w = 1.0 + rng.random(m) * (spread - 1.0)
    elif distribution == "exponential":
        w = 1.0 + rng.exponential(scale=spread / 4.0, size=m)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    return graph.reweighted(w)


def weighted_grid_2d(rows: int, cols: int, seed: RngLike = None, spread: float = 1e3) -> Graph:
    """2-D grid with log-uniform random weights (anisotropic Poisson-like)."""
    return with_random_weights(grid_2d(rows, cols), seed=seed, spread=spread)


def weighted_sdd_system(
    n: int,
    m: int,
    seed: RngLike = None,
    *,
    excess_fraction: float = 0.1,
    positive_offdiag_fraction: float = 0.1,
):
    """A random general SDD matrix (not a Laplacian) plus a compatible rhs.

    Used to exercise the Gremban reduction path of the solver: a connected
    random graph Laplacian is perturbed with positive off-diagonal entries
    and diagonal excess.

    Returns ``(matrix, b)`` where ``matrix`` is ``scipy.sparse.csr_matrix``.
    """
    import scipy.sparse as sp

    from repro.graph.laplacian import graph_to_laplacian

    rng = as_rng(seed)
    g = erdos_renyi_gnm(n, m, seed=rng)
    lap = graph_to_laplacian(g).tolil()
    # positive off-diagonal entries: flip the sign of a few edges' entries
    # while keeping diagonal dominance by increasing the diagonal.
    num_flip = max(1, int(positive_offdiag_fraction * g.num_edges))
    flip = rng.choice(g.num_edges, size=num_flip, replace=False)
    for e in flip:
        i, j = int(g.u[e]), int(g.v[e])
        wij = g.w[e]
        lap[i, j] += 2 * wij
        lap[j, i] += 2 * wij
        lap[i, i] += 2 * wij
        lap[j, j] += 2 * wij
    # diagonal excess on a few vertices
    num_excess = max(1, int(excess_fraction * n))
    bump = rng.choice(n, size=num_excess, replace=False)
    for i in bump:
        lap[i, i] += 1.0 + rng.random()
    matrix = sp.csr_matrix(lap)
    b = rng.standard_normal(n)
    return matrix, b


# --------------------------------------------------------------------------- #
# registry used by benchmarks
# --------------------------------------------------------------------------- #
def standard_workloads(scale: str = "small", seed: int = 0):
    """Named workload suite used across the benchmark harness.

    Returns a list of ``(name, Graph)`` pairs.  ``scale`` in {"tiny",
    "small", "medium"} controls the sizes.
    """
    sizes = {
        "tiny": dict(grid=12, grid3=5, nrand=200, mrand=600, dreg=6),
        "small": dict(grid=32, grid3=8, nrand=1000, mrand=4000, dreg=6),
        "medium": dict(grid=64, grid3=12, nrand=4000, mrand=16000, dreg=8),
    }
    if scale not in sizes:
        raise ValueError(f"unknown scale {scale!r}")
    s = sizes[scale]
    out = [
        (f"grid_{s['grid']}x{s['grid']}", grid_2d(s["grid"], s["grid"])),
        (f"grid3d_{s['grid3']}^3", grid_3d(s["grid3"], s["grid3"], s["grid3"])),
        (f"er_n{s['nrand']}_m{s['mrand']}", erdos_renyi_gnm(s["nrand"], s["mrand"], seed=seed)),
        (f"reg_n{s['nrand']}_d{s['dreg']}", random_regular_graph(s["nrand"], s["dreg"], seed=seed + 1)),
        (
            f"wgrid_{s['grid']}x{s['grid']}",
            weighted_grid_2d(s["grid"], s["grid"], seed=seed + 2, spread=1e3),
        ),
    ]
    return out
