"""Shared pytest fixtures, drawn from the :mod:`repro.testing` fuzz corpus.

The named graphs many tests share (grids, weighted grids, random graphs)
stay as session fixtures; breadth-style tests parameterize over
``fuzz_corpus()`` directly (see ``tests/test_property_random.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.testing import CorpusCase, fuzz_corpus


@pytest.fixture(scope="session")
def grid_graph() -> Graph:
    """A modest 2-D grid used by many tests."""
    return generators.grid_2d(12, 12)


@pytest.fixture(scope="session")
def weighted_grid_graph() -> Graph:
    """A weighted 2-D grid with a wide weight spread (many AKPW classes)."""
    return generators.weighted_grid_2d(12, 12, seed=7, spread=1e4)


@pytest.fixture(scope="session")
def random_graph() -> Graph:
    """A connected Erdős–Rényi graph."""
    return generators.erdos_renyi_gnm(200, 700, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# --------------------------------------------------------------------------- #
# fuzz-corpus fixtures (repro.testing.corpus)
# --------------------------------------------------------------------------- #
_CORPUS = fuzz_corpus(seed=0)


@pytest.fixture(scope="session")
def corpus() -> list:
    """The default seeded fuzz corpus (seed 0), one list for ad-hoc sweeps."""
    return _CORPUS


@pytest.fixture(params=_CORPUS, ids=lambda case: case.name)
def corpus_case(request) -> CorpusCase:
    """Parameterized over every case of the seed-0 fuzz corpus."""
    return request.param


@pytest.fixture(
    params=[case for case in _CORPUS if case.graph.num_edges > 0],
    ids=lambda case: case.name,
)
def edged_corpus_case(request) -> CorpusCase:
    """Corpus cases with at least one edge (resistance-style workloads)."""
    return request.param
