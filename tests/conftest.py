"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.graph import Graph


@pytest.fixture(scope="session")
def grid_graph() -> Graph:
    """A modest 2-D grid used by many tests."""
    return generators.grid_2d(12, 12)


@pytest.fixture(scope="session")
def weighted_grid_graph() -> Graph:
    """A weighted 2-D grid with a wide weight spread (many AKPW classes)."""
    return generators.weighted_grid_2d(12, 12, seed=7, spread=1e4)


@pytest.fixture(scope="session")
def random_graph() -> Graph:
    """A connected Erdős–Rényi graph."""
    return generators.erdos_renyi_gnm(200, 700, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
