"""Tests for the batched effective-resistance oracle (apps/resistance).

The exact path is validated against the dense ``pinv`` oracle across the
full fuzz corpus at 1e-8 relative error; edge cases (single edge, parallel
edges, cross-component pairs) pin the documented behavior.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.apps.resistance import ResistanceOracle, default_jl_dimension, effective_resistance_pairs
from repro.apps.sparsification import effective_resistances
from repro.graph import generators
from repro.graph.graph import Graph
from repro.testing import dense_effective_resistances, disjoint_union


def _random_pairs(n, q, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(q, 2))


class TestExactPathAgainstDenseOracle:
    def test_matches_oracle_on_corpus(self, edged_corpus_case):
        g = edged_corpus_case.graph
        oracle = ResistanceOracle(g, seed=0)
        pairs = _random_pairs(g.n, 8, seed=1)
        got = oracle.query(pairs, exact=True)
        ref = dense_effective_resistances(g, pairs)
        assert np.array_equal(np.isinf(got), np.isinf(ref))
        finite = np.isfinite(ref) & (ref > 0)
        assert np.all(np.abs(got[finite] - ref[finite]) <= 1e-8 * ref[finite])
        assert np.all(got[pairs[:, 0] == pairs[:, 1]] == 0.0)

    def test_edge_resistances_match_oracle(self, edged_corpus_case):
        g = edged_corpus_case.graph
        oracle = ResistanceOracle(g, seed=0)
        got = oracle.edge_resistances(exact=True)
        ref = dense_effective_resistances(g)
        assert np.all(np.abs(got - ref) <= 1e-8 * np.maximum(ref, 1e-12))


class TestSketchedPath:
    def test_sketch_estimates_close_on_random_graph(self):
        g = generators.erdos_renyi_gnm(60, 200, seed=0)
        oracle = ResistanceOracle(g, seed=1, jl_dimension=150)
        ref = dense_effective_resistances(g)
        rel = np.abs(oracle.edge_resistances() - ref) / ref
        assert np.median(rel) <= 0.35

    def test_sketch_is_built_once_and_reused(self):
        g = generators.grid_2d(5, 5)
        oracle = ResistanceOracle(g, seed=0, jl_dimension=16)
        z1 = oracle.sketch
        r1 = oracle.query(np.array([[0, 24]]))
        assert oracle.sketch is z1
        assert oracle.query(np.array([[0, 24]]))[0] == r1[0]

    def test_default_dimension_bounds(self):
        assert default_jl_dimension(2, 10.0) == 4
        assert default_jl_dimension(10**9, 0.01) == 200


class TestEdgeCases:
    """Pinned behavior the module docstring documents."""

    def test_single_edge_graph(self):
        g = Graph(2, [0], [1], [4.0])
        assert effective_resistances(g, exact=True)[0] == pytest.approx(0.25)
        # The JL path agrees on this degenerate instance too.
        approx = effective_resistances(g, jl_dimension=64, seed=0, solver_tol=1e-12)
        assert approx[0] == pytest.approx(0.25, rel=0.5)
        assert ResistanceOracle(g, seed=0).query((0, 1), exact=True)[0] == pytest.approx(0.25, rel=1e-8)

    def test_parallel_edges_report_combined_resistance_per_edge(self):
        g = Graph(2, [0, 0], [1, 1], [1.0, 3.0])
        r = effective_resistances(g, exact=True)
        # each parallel edge reports the resistance of the coalesced pair
        assert np.allclose(r, 0.25)
        exact = ResistanceOracle(g, seed=0).edge_resistances(exact=True)
        assert np.allclose(exact, 0.25, rtol=1e-8)

    def test_cross_component_pairs_return_inf(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(2)])
        oracle = ResistanceOracle(g, seed=0)
        pairs = np.array([[0, 3], [2, 4], [0, 2], [3, 4]])
        for exact in (False, True):
            r = oracle.query(pairs, exact=exact)
            assert np.isinf(r[0]) and np.isinf(r[1])
            assert np.isfinite(r[2]) and np.isfinite(r[3])

    def test_same_vertex_pair_is_zero(self):
        g = generators.path_graph(4)
        assert ResistanceOracle(g, seed=0).query((2, 2))[0] == 0.0

    def test_out_of_range_pair_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            ResistanceOracle(g, seed=0).query((0, 4))

    def test_empty_pair_set(self):
        g = generators.path_graph(4)
        assert ResistanceOracle(g, seed=0).query(np.zeros((0, 2), dtype=int)).shape == (0,)


class TestCachingAndReuse:
    def test_repeated_oracles_hit_chain_cache(self):
        repro.clear_chain_cache()
        g = generators.grid_2d(6, 6)
        ResistanceOracle(g, seed=0)
        before = repro.chain_cache_stats()
        ResistanceOracle(g, seed=0)
        after = repro.chain_cache_stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_convenience_function_exact(self):
        g = generators.cycle_graph(4)
        r = effective_resistance_pairs(g, np.array([[0, 1]]))
        assert r[0] == pytest.approx(0.75, rel=1e-8)

    def test_operator_reuse(self):
        g = generators.grid_2d(4, 4)
        op = repro.factorize(g, seed=0)
        oracle = ResistanceOracle(g, operator=op)
        assert oracle.operator is op

    def test_sketch_converged_flag_and_unconverged_warning(self):
        g = generators.grid_2d(6, 6)
        oracle = ResistanceOracle(g, seed=0)
        assert oracle.sketch_converged is None
        oracle.sketch
        assert oracle.sketch_converged is True
        # Starving the solver of iterations must be loudly detectable (the
        # graph must be large enough for a real multi-level chain — tiny
        # graphs get the exact bottom solve and converge in one iteration).
        big = generators.grid_2d(16, 16)
        starved = ResistanceOracle(
            big, seed=0, solver=repro.SolverConfig(max_iterations=1), use_cache=False
        )
        with pytest.warns(RuntimeWarning, match="did not reach its tolerance"):
            starved.query((0, big.n - 1), exact=True)
        with pytest.warns(RuntimeWarning):
            starved.sketch
        assert starved.sketch_converged is False
