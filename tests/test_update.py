"""Incremental update tests: patched/rebuilt equivalence to fresh factorize.

The correctness contract of ``LaplacianOperator.update`` is
solve-equivalence: for any edit batch, solving on the updated operator must
agree with solving on a fresh ``factorize()`` of the mutated graph to
<= 1e-8 at tol=1e-10 — and when the damage threshold triggers the full
rebuild, the result must be **bit-identical** to the fresh factorization
(same seed, same chain, same arithmetic).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import chain_cache
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.core.update import UpdateReport
from repro.graph import generators
from repro.graph.edits import EdgeEdits
from repro.graph.graph import Graph

#: The acceptance tolerance of the equivalence contract.
EQUIV_ATOL = 1e-8
SOLVE_TOL = 1e-10


@pytest.fixture(autouse=True)
def fresh_cache():
    repro.clear_chain_cache()
    yield
    repro.clear_chain_cache()


def _rhs(graph: Graph, seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(graph.n)


def _assert_solve_equivalent(updated, mutated_graph: Graph, *, seed) -> None:
    """Updated-operator solves agree with a fresh factorize of the graph."""
    fresh = factorize(mutated_graph, updated.chain_config, updated.solver_config, seed=seed)
    b = _rhs(mutated_graph)
    x_upd = updated.solve(b, tol=SOLVE_TOL).x
    x_ref = fresh.solve(b, tol=SOLVE_TOL).x
    assert np.max(np.abs(x_upd - x_ref)) <= EQUIV_ATOL


def _random_edits(graph: Graph, rng: np.random.Generator, *, fraction: float = 0.1) -> EdgeEdits:
    """A mixed batch touching about ``fraction`` of the edges, plus inserts."""
    m = graph.num_edges
    k = max(1, int(round(fraction * m)))
    perm = rng.permutation(m)
    delete = np.sort(perm[:k])
    reweight = np.sort(perm[k : 2 * k])
    batches = []
    if delete.size:
        batches.append(EdgeEdits.deletes(delete))
    if reweight.size:
        batches.append(
            EdgeEdits.reweights(reweight, rng.uniform(0.5, 4.0, size=reweight.size))
        )
    if graph.n >= 2:
        u = rng.integers(0, graph.n, size=k)
        v = rng.integers(0, graph.n, size=k)
        keep = u != v
        if np.any(keep):
            batches.append(
                EdgeEdits.inserts(u[keep], v[keep], rng.uniform(0.5, 4.0, size=int(keep.sum())))
            )
    return EdgeEdits.merge(*batches) if batches else EdgeEdits.empty()


# --------------------------------------------------------------------------- #
# fuzzed equivalence over the corpus
# --------------------------------------------------------------------------- #
class TestFuzzedEquivalence:
    def test_update_sequence_matches_fresh_factorize(self, corpus_case):
        """Two successive random batches; solves agree with fresh factorize.

        Covers both strategies: merging inserts force rebuilds, the rest
        patch — equivalence must hold either way, and across *sequences*
        (the second batch exercises the chain-edge index translation).
        """
        g = corpus_case.graph
        if g.num_edges == 0:
            pytest.skip("no edges to edit")
        rng = np.random.default_rng(hash(corpus_case.name) % 2**32)
        op = factorize(g, seed=3)
        for _ in range(2):
            edits = _random_edits(g, rng)
            if edits.is_empty:
                continue
            g = g.apply_edits(edits)
            op, report = op.update(edits)
            assert report.strategy in ("patched", "rebuilt")
        assert op.graph.fingerprint() == g.fingerprint()
        _assert_solve_equivalent(op, g, seed=3)

    def test_reweight_only_batch_patches_and_matches(self, grid_graph):
        op = factorize(grid_graph, seed=0)
        m = grid_graph.num_edges
        idx = np.arange(0, m, 7)
        edits = EdgeEdits.reweights(idx, np.linspace(0.5, 5.0, idx.size))
        updated, report = op.update(edits)
        assert report.strategy == "patched"
        assert report.num_edits == idx.size
        _assert_solve_equivalent(updated, grid_graph.apply_edits(edits), seed=0)

    def test_chebyshev_method_recalibrates_after_patch(self, grid_graph):
        solver = SolverConfig(method="chebyshev")
        op = factorize(grid_graph, solver=solver, seed=0)
        edits = EdgeEdits.reweights([0, 5, 10], [3.0, 0.25, 2.0])
        updated, report = op.update(edits)
        assert report.strategy == "patched"
        mutated = grid_graph.apply_edits(edits)
        fresh = factorize(mutated, solver=solver, seed=0)
        b = _rhs(mutated)
        x_upd = updated.solve(b, tol=1e-8).x
        x_ref = fresh.solve(b, tol=1e-8).x
        r_upd = updated.solve(b, tol=1e-8).relative_residual
        assert r_upd <= 1e-8
        assert np.max(np.abs(x_upd - x_ref)) <= 1e-6  # both meet tol independently


# --------------------------------------------------------------------------- #
# strategy selection
# --------------------------------------------------------------------------- #
class TestStrategySelection:
    def test_empty_batch_is_noop_returning_same_operator(self, grid_graph):
        op = factorize(grid_graph, seed=0)
        same, report = op.update(EdgeEdits.empty())
        assert same is op
        assert report.strategy == "noop"
        assert report.num_edits == 0

    def test_small_batch_patches(self, grid_graph):
        op = factorize(grid_graph, seed=0)
        updated, report = op.update(EdgeEdits.reweights([0], [2.0]))
        assert report.strategy == "patched"
        assert updated is not op
        assert 0.0 <= report.batch_damage <= report.threshold

    def test_zero_threshold_disables_patching(self, grid_graph):
        cfg = ChainConfig(update_rebuild_fraction=0.0)
        op = factorize(grid_graph, cfg, seed=0)
        _, report = op.update(EdgeEdits.reweights([0], [2.0]))
        assert report.strategy == "rebuilt"
        assert "disabled" in report.reason

    def test_damage_accumulates_across_patches_until_rebuild(self, grid_graph):
        cfg = ChainConfig(update_rebuild_fraction=0.02)
        op = factorize(grid_graph, cfg, seed=0)
        strategies = []
        for i in range(12):
            op, report = op.update(EdgeEdits.inserts([0], [2 + i], [1.0]))
            strategies.append(report.strategy)
        assert "rebuilt" in strategies
        first_rebuild = strategies.index("rebuilt")
        assert all(s == "patched" for s in strategies[:first_rebuild])
        # after the rebuild the damage accumulator resets and patching resumes
        assert strategies[first_rebuild + 1] == "patched"

    def test_untouched_chain_edges_cost_no_damage(self, grid_graph):
        """Deleting only unsampled edges leaves the accumulated damage at 0."""
        op = factorize(grid_graph, seed=0)
        top = op.chain.levels[0]
        assert top.sparsifier is not None
        chain_edges = np.union1d(
            top.sparsifier.subgraph_edges, top.sparsifier.sampled_edges
        )
        unsampled = np.setdiff1d(np.arange(grid_graph.num_edges), chain_edges)
        if unsampled.size == 0:
            pytest.skip("chain consumed every edge")
        updated, report = op.update(EdgeEdits.deletes(unsampled[:3]))
        assert report.strategy == "patched"
        assert report.batch_damage == 0.0

    def test_disconnect_patches_then_reconnect_rebuilds(self):
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=1)
        incident = np.flatnonzero((g.u == 0) | (g.v == 0))
        disconnected, report = op.update(EdgeEdits.deletes(incident))
        # A split never forces a rebuild (the stale preconditioner stays SPD
        # on the shrunken range); equivalence must hold on the split graph.
        assert report.strategy == "patched"
        _assert_solve_equivalent(disconnected, g.delete_edges(incident), seed=1)
        # Reconnecting the components merges them: mandatory rebuild even
        # though one inserted edge is far below any damage threshold.
        reconnected, report2 = disconnected.update(EdgeEdits.inserts([0], [1], [1.0]))
        assert report2.strategy == "rebuilt"
        assert "merged" in report2.reason
        _assert_solve_equivalent(
            reconnected, g.delete_edges(incident).add_edges([0], [1], [1.0]), seed=1
        )


# --------------------------------------------------------------------------- #
# rebuild bit-identity
# --------------------------------------------------------------------------- #
class TestRebuildBitIdentity:
    def test_rebuilt_operator_solves_bit_identical_to_fresh(self, grid_graph):
        cfg = ChainConfig(update_rebuild_fraction=0.0)
        op = factorize(grid_graph, cfg, seed=7)
        edits = EdgeEdits.reweights([0, 1, 2], [2.0, 3.0, 4.0])
        rebuilt, report = op.update(edits)
        assert report.strategy == "rebuilt"
        mutated = grid_graph.apply_edits(edits)
        fresh = factorize(mutated, cfg, seed=7)
        b = _rhs(mutated)
        assert np.array_equal(rebuilt.solve(b, tol=SOLVE_TOL).x, fresh.solve(b, tol=SOLVE_TOL).x)

    def test_rebuild_uses_original_factorize_seed(self, grid_graph):
        cfg = ChainConfig(update_rebuild_fraction=0.0)
        op = factorize(grid_graph, cfg, seed=42)
        assert op.factorize_seed == 42
        rebuilt, _ = op.update(EdgeEdits.reweights([0], [2.0]))
        assert rebuilt.factorize_seed == 42


# --------------------------------------------------------------------------- #
# cache interaction
# --------------------------------------------------------------------------- #
class TestCacheInteraction:
    def test_patched_operator_never_enters_the_chain_cache(self, grid_graph):
        op = factorize(grid_graph, seed=0, cache=True)
        edits = EdgeEdits.reweights([0], [2.0])
        updated, report = op.update(edits, cache=True)
        assert report.strategy == "patched"
        mutated = grid_graph.apply_edits(edits)
        key = chain_cache.make_key(mutated, op.chain_config, op.solver_config, 0)
        assert chain_cache.lookup(key) is None

    def test_rebuilt_operator_is_cached_when_asked(self, grid_graph):
        cfg = ChainConfig(update_rebuild_fraction=0.0)
        op = factorize(grid_graph, cfg, seed=0, cache=True)
        edits = EdgeEdits.reweights([0], [2.0])
        rebuilt, report = op.update(edits, cache=True)
        assert report.strategy == "rebuilt"
        mutated = grid_graph.apply_edits(edits)
        key = chain_cache.make_key(mutated, cfg, op.solver_config, 0)
        assert chain_cache.lookup(key) is rebuilt

    def test_invalidate_cache_evicts_stale_fingerprint(self, grid_graph):
        op = factorize(grid_graph, seed=0, cache=True)
        assert chain_cache.chain_cache_stats().size == 1
        op.update(EdgeEdits.reweights([0], [2.0]), invalidate_cache=True)
        stats = chain_cache.chain_cache_stats()
        assert stats.size == 0
        assert stats.evictions_explicit == 1

    def test_update_on_chain_cached_operator_leaves_cache_sound(self, grid_graph):
        """A cache hit after an update still returns the pristine operator."""
        op = factorize(grid_graph, seed=0, cache=True)
        op.update(EdgeEdits.reweights([0], [2.0]))  # no invalidation requested
        key = chain_cache.make_key(grid_graph, op.chain_config, op.solver_config, 0)
        assert chain_cache.lookup(key) is op  # original entry untouched


# --------------------------------------------------------------------------- #
# validation and reporting
# --------------------------------------------------------------------------- #
class TestValidationAndReport:
    def test_gremban_backed_operator_raises(self):
        import scipy.sparse as sp

        mat = sp.csr_matrix(np.array([[3.0, 1.0], [1.0, 3.0]]))  # SDD, not Laplacian
        op = factorize(mat, seed=0)
        with pytest.raises(ValueError, match="Gremban"):
            op.update(EdgeEdits.empty())

    def test_out_of_range_edits_rejected(self, grid_graph):
        op = factorize(grid_graph, seed=0)
        with pytest.raises(ValueError):
            op.update(EdgeEdits.deletes([grid_graph.num_edges]))
        with pytest.raises(ValueError):
            op.update(EdgeEdits.inserts([0], [grid_graph.n], [1.0]))

    def test_report_fields(self, grid_graph):
        op = factorize(grid_graph, seed=0)
        _, report = op.update(EdgeEdits.reweights([0, 1], [2.0, 2.0]))
        assert isinstance(report, UpdateReport)
        assert report.num_edits == 2
        assert report.threshold == op.chain_config.update_rebuild_fraction
        assert report.seconds >= 0.0
        assert report.accumulated_damage >= report.batch_damage >= 0.0

    def test_original_operator_still_solves_old_graph(self, grid_graph):
        """update() never mutates the original operator (in-flight safety)."""
        op = factorize(grid_graph, seed=0)
        b = _rhs(grid_graph)
        before = op.solve(b, tol=SOLVE_TOL).x
        op.update(EdgeEdits.reweights([0], [9.0]))
        after = op.solve(b, tol=SOLVE_TOL).x
        assert np.array_equal(before, after)
        assert op.graph is not None and op.graph.num_edges == grid_graph.num_edges
