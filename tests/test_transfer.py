"""Tests for compiled solve transfers (repro.core.transfer).

The compiled operators must reproduce the historical per-step op-list replay
*bit for bit* — the solver's iteration counts and residuals are fixed-seed
reproducible across the interpreted->compiled refactor only because of this.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.chain import build_chain
from repro.core.elimination import (
    EliminationSchedule,
    greedy_elimination,
)
from repro.core.transfer import compile_schedule, compile_transfers
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.direct import solve_laplacian_direct


# Reference: the pre-refactor interpreted replay, shared with the benchmark
# harness so the test and bench baselines cannot drift apart.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.bench_elimination import (  # noqa: E402
    legacy_backward_solution as replay_backward,
    legacy_forward_rhs as replay_forward,
)


def _random_tree(n: int, seed: int, weighted: bool = True) -> Graph:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    u = [int(perm[rng.integers(0, i)]) for i in range(1, n)]
    v = [int(perm[i]) for i in range(1, n)]
    w = rng.uniform(0.05, 20.0, n - 1) if weighted else None
    return Graph(n, u, v, w)


def _tree_plus_chords(n: int, chords: int, seed: int) -> Graph:
    g = _random_tree(n, seed)
    rng = np.random.default_rng(seed + 1000)
    eu, ev = [], []
    while len(eu) < chords:
        a, b = rng.integers(0, n, 2)
        if a != b:
            eu.append(int(a))
            ev.append(int(b))
    return g.add_edges(eu, ev, rng.uniform(0.05, 20.0, chords))


def _disconnected(seed: int) -> Graph:
    g1 = _random_tree(70, seed)
    g2 = _tree_plus_chords(50, 6, seed + 1)
    g3 = generators.cycle_graph(17)
    n = g1.n + g2.n + g3.n
    return Graph(
        n,
        np.concatenate([g1.u, g2.u + g1.n, g3.u + g1.n + g2.n]),
        np.concatenate([g1.v, g2.v + g1.n, g3.v + g1.n + g2.n]),
        np.concatenate([g1.w, g2.w, g3.w]),
    )


def _multigraph(seed: int) -> Graph:
    """Random sparse graph with duplicated (parallel) edges."""
    base = _tree_plus_chords(60, 8, seed)
    rng = np.random.default_rng(seed + 17)
    dup = rng.integers(0, base.num_edges, 25)
    return base.add_edges(base.u[dup], base.v[dup], rng.uniform(0.1, 5.0, 25))


GRAPH_CASES = [
    ("tree", lambda s: _random_tree(150, s)),
    ("tree_chords", lambda s: _tree_plus_chords(150, 12, s)),
    ("disconnected", lambda s: _disconnected(s)),
    ("multigraph", lambda s: _multigraph(s)),
    ("path", lambda s: generators.path_graph(128)),
    ("weighted_grid", lambda s: generators.weighted_grid_2d(7, 7, seed=s, spread=1e3)),
]


class TestBitForBitEquivalence:
    @pytest.mark.parametrize("name,make", GRAPH_CASES, ids=[c[0] for c in GRAPH_CASES])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_oplist_replay(self, name, make, seed):
        g = make(seed)
        elim = greedy_elimination(g, seed=seed)
        rng = np.random.default_rng(seed + 99)
        b = rng.standard_normal(g.n)
        x_red = rng.standard_normal(elim.reduced_graph.n)
        transfers = elim.transfer
        assert np.array_equal(replay_forward(elim, b), transfers.forward_rhs(b))
        assert np.array_equal(
            replay_backward(elim, b, x_red), transfers.backward_solution(b, x_red)
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sequential_mode_matches_replay(self, seed):
        g = _tree_plus_chords(90, 10, seed)
        elim = greedy_elimination(g, seed=seed, parallel_degree2=False)
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(g.n)
        x_red = rng.standard_normal(elim.reduced_graph.n)
        assert np.array_equal(replay_forward(elim, b), elim.forward_rhs(b))
        assert np.array_equal(
            replay_backward(elim, b, x_red), elim.backward_solution(b, x_red)
        )

    def test_forward_carry_equals_backward_solution_path(self):
        """The carry-reusing pair equals the legacy two-pass signatures."""
        g = _tree_plus_chords(120, 9, seed=4)
        elim = greedy_elimination(g, seed=4)
        t = elim.transfer
        rng = np.random.default_rng(0)
        b = rng.standard_normal(g.n)
        x_red = rng.standard_normal(elim.reduced_graph.n)
        b_red, carry = t.forward(b)
        assert np.array_equal(b_red, t.forward_rhs(b))
        assert np.array_equal(t.backward(carry, x_red), t.backward_solution(b, x_red))


class TestBatched:
    @pytest.mark.parametrize("name,make", GRAPH_CASES, ids=[c[0] for c in GRAPH_CASES])
    def test_batched_matches_looped_columns(self, name, make):
        g = make(5)
        elim = greedy_elimination(g, seed=5)
        t = elim.transfer
        rng = np.random.default_rng(11)
        k = 5
        B = rng.standard_normal((g.n, k))
        XR = rng.standard_normal((elim.reduced_graph.n, k))
        b_red, carry = t.forward(B)
        x = t.backward(carry, XR)
        assert b_red.shape == (elim.reduced_graph.n, k)
        assert x.shape == (g.n, k)
        for j in range(k):
            b_red_j, carry_j = t.forward(B[:, j])
            assert np.array_equal(b_red[:, j], b_red_j)
            assert np.array_equal(x[:, j], t.backward(carry_j, XR[:, j]))

    def test_single_column_batch(self):
        g = _random_tree(80, 2)
        elim = greedy_elimination(g, seed=2)
        b = np.random.default_rng(0).standard_normal((g.n, 1))
        assert np.array_equal(
            elim.forward_rhs(b)[:, 0], elim.forward_rhs(b[:, 0])
        )


class TestOperationsRoundTrip:
    @pytest.mark.parametrize("name,make", GRAPH_CASES, ids=[c[0] for c in GRAPH_CASES])
    def test_schedule_operations_schedule(self, name, make):
        """Deprecated op-list view rebuilds into an equivalent schedule."""
        g = make(7)
        elim = greedy_elimination(g, seed=7)
        ops = elim.operations
        rebuilt = EliminationSchedule.from_operations(g.n, ops)
        assert rebuilt.to_operations() == ops
        t_rebuilt = compile_schedule(rebuilt, elim.kept_vertices)
        rng = np.random.default_rng(23)
        b = rng.standard_normal(g.n)
        x_red = rng.standard_normal(elim.reduced_graph.n)
        assert np.array_equal(elim.forward_rhs(b), t_rebuilt.forward_rhs(b))
        assert np.array_equal(
            elim.backward_solution(b, x_red), t_rebuilt.backward_solution(b, x_red)
        )

    def test_operations_format_and_cache(self):
        g = _tree_plus_chords(60, 5, seed=1)
        elim = greedy_elimination(g, seed=1)
        assert elim.operations is elim.operations  # lazily cached
        for op in elim.operations:
            assert op[0] in ("d1", "d2")
            assert isinstance(op[1], int) and isinstance(op[2], int)
            assert isinstance(op[3], float)
            if op[0] == "d2":
                assert isinstance(op[4], int) and isinstance(op[5], float)
        assert len(elim.operations) == elim.num_eliminated

    def test_empty_operations_roundtrip(self):
        sched = EliminationSchedule.from_operations(4, [])
        assert sched.num_steps == 0
        assert sched.num_subrounds == 0
        assert sched.to_operations() == []


class TestOperatorProperties:
    def test_forward_matrix_matches_sweeps(self):
        g = _tree_plus_chords(100, 8, seed=3)
        elim = greedy_elimination(g, seed=3)
        F = elim.transfer.forward_matrix()
        assert F.shape == (elim.reduced_graph.n, g.n)
        rng = np.random.default_rng(1)
        for _ in range(3):
            b = rng.standard_normal(g.n)
            assert np.allclose(F @ b, elim.forward_rhs(b), atol=1e-12)

    def test_transfer_is_linear(self):
        g = _random_tree(90, 6)
        elim = greedy_elimination(g, seed=6)
        rng = np.random.default_rng(2)
        b1, b2 = rng.standard_normal((2, g.n))
        lhs = elim.forward_rhs(2.0 * b1 - 3.0 * b2)
        rhs = 2.0 * elim.forward_rhs(b1) - 3.0 * elim.forward_rhs(b2)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_no_elimination_graph(self):
        # K5: minimum degree 4, nothing rakes or compresses
        n = 5
        u, v = np.triu_indices(n, k=1)
        g = Graph(n, u, v, np.arange(1.0, u.shape[0] + 1.0))
        elim = greedy_elimination(g, seed=0)
        assert elim.num_eliminated == 0
        b = np.random.default_rng(0).standard_normal(n)
        assert np.array_equal(elim.forward_rhs(b), b)
        x_red = np.random.default_rng(1).standard_normal(n)
        assert np.array_equal(elim.backward_solution(b, x_red), x_red)

    def test_solve_through_compiled_transfers(self):
        """Compiled transfer + exact reduced solve reproduces the full solve."""
        g = _multigraph(9)
        lap = graph_to_laplacian(g)
        rng = np.random.default_rng(9)
        b = rng.standard_normal(g.n)
        b -= b.mean()
        elim = greedy_elimination(g, seed=9)
        reduced_lap = graph_to_laplacian(elim.reduced_graph)
        b_red, carry = elim.transfer.forward(b)
        x_red = np.linalg.pinv(reduced_lap.toarray(), hermitian=True) @ b_red
        x = elim.transfer.backward(carry, x_red)
        x_exact = solve_laplacian_direct(lap, b)
        assert np.allclose(x - x.mean(), x_exact, atol=1e-8)

    def test_result_transfer_cached(self):
        g = _random_tree(40, 0)
        elim = greedy_elimination(g, seed=0)
        assert elim.transfer is elim.transfer


class TestChainIntegration:
    def test_chain_levels_precompiled(self):
        g = generators.grid_2d(16, 16)
        chain = build_chain(g, seed=0)
        assert chain.depth >= 2
        for lvl in chain.levels[:-1]:
            assert lvl.elimination is not None
            assert lvl.transfers is not None
            assert lvl.transfers.num_steps == lvl.elimination.num_eliminated
        assert chain.levels[-1].transfers is None

    def test_compile_transfers_function(self):
        g = _random_tree(60, 3)
        elim = greedy_elimination(g, seed=3)
        t = compile_transfers(elim)
        b = np.random.default_rng(0).standard_normal(g.n)
        assert np.array_equal(t.forward_rhs(b), elim.forward_rhs(b))
