"""End-to-end tests for the SDD solver (Theorem 1.1).

These tests intentionally drive the deprecated ``SDDSolver`` / ``sdd_solve``
shims: they pin down that the legacy surface keeps working (and keeps its
accuracy guarantees) while it forwards to the factorize-once API.  New-API
coverage lives in ``test_api.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.solver import SDDSolver, sdd_solve
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.direct import solve_laplacian_direct, solve_sdd_direct
from repro.linalg.norms import relative_a_norm_error
from repro.pram.model import CostModel


def _laplacian_problem(graph, seed=0):
    lap = graph_to_laplacian(graph)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    b -= b.mean()
    return lap, b, solve_laplacian_direct(lap, b)


class TestLaplacianSolves:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: generators.grid_2d(16, 16),
            lambda: generators.weighted_grid_2d(14, 14, seed=1, spread=1e3),
            lambda: generators.erdos_renyi_gnm(300, 1000, seed=2),
            lambda: generators.random_regular_graph(200, 4, seed=3),
        ],
    )
    def test_theorem_1_1_accuracy(self, graph_factory):
        """||x - A^+ b||_A <= eps ||A^+ b||_A for the requested tolerance."""
        g = graph_factory()
        lap, b, x_exact = _laplacian_problem(g)
        report = sdd_solve(g, b, tol=1e-8, seed=0)
        assert report.converged
        err = relative_a_norm_error(lap, report.x - report.x.mean(), x_exact)
        assert err <= 1e-5

    def test_tighter_tolerance_gives_smaller_error(self):
        g = generators.grid_2d(14, 14)
        lap, b, x_exact = _laplacian_problem(g)
        solver = SDDSolver(g, seed=0)
        loose = solver.solve(b, tol=1e-3)
        tight = solver.solve(b, tol=1e-10)
        err_loose = relative_a_norm_error(lap, loose.x - loose.x.mean(), x_exact)
        err_tight = relative_a_norm_error(lap, tight.x - tight.x.mean(), x_exact)
        assert err_tight <= err_loose

    def test_solver_reusable_for_multiple_rhs(self):
        g = generators.grid_2d(12, 12)
        lap = graph_to_laplacian(g)
        solver = SDDSolver(g, seed=0)
        rng = np.random.default_rng(5)
        for _ in range(3):
            b = rng.standard_normal(g.n)
            b -= b.mean()
            report = solver.solve(b, tol=1e-8)
            x_exact = solve_laplacian_direct(lap, b)
            assert relative_a_norm_error(lap, report.x - report.x.mean(), x_exact) <= 1e-5

    def test_chebyshev_method(self):
        g = generators.grid_2d(14, 14)
        lap, b, x_exact = _laplacian_problem(g)
        report = sdd_solve(g, b, tol=1e-8, seed=0, method="chebyshev")
        assert report.converged
        assert relative_a_norm_error(lap, report.x - report.x.mean(), x_exact) <= 1e-5

    def test_laplacian_matrix_input(self):
        g = generators.grid_2d(10, 10)
        lap, b, x_exact = _laplacian_problem(g)
        report = sdd_solve(lap, b, tol=1e-8, seed=0)
        assert relative_a_norm_error(lap, report.x - report.x.mean(), x_exact) <= 1e-5

    def test_disconnected_graph(self):
        from repro.graph.graph import Graph

        # two separate paths
        g = Graph(8, [0, 1, 2, 4, 5, 6], [1, 2, 3, 5, 6, 7])
        lap = graph_to_laplacian(g)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(8)
        # make b consistent per component
        b[:4] -= b[:4].mean()
        b[4:] -= b[4:].mean()
        report = sdd_solve(g, b, tol=1e-9, seed=0)
        assert np.linalg.norm(lap @ report.x - b) <= 1e-6 * np.linalg.norm(b)

    def test_report_contents(self):
        g = generators.grid_2d(10, 10)
        _, b, _ = _laplacian_problem(g)
        cost = CostModel()
        solver = SDDSolver(g, seed=0, cost=cost)
        report = solver.solve(b, tol=1e-6)
        assert report.iterations > 0
        assert report.work > 0
        assert report.depth > 0
        assert report.stats["chain_levels"] >= 1

    def test_tree_only_ablation_converges(self):
        g = generators.grid_2d(12, 12)
        lap, b, x_exact = _laplacian_problem(g)
        report = sdd_solve(g, b, tol=1e-8, seed=0, use_tree_only=True)
        assert relative_a_norm_error(lap, report.x - report.x.mean(), x_exact) <= 1e-5


class TestSDDInputs:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_general_sdd_system(self, seed):
        mat, b = generators.weighted_sdd_system(60, 150, seed=seed)
        x_exact = solve_sdd_direct(mat, b)
        report = sdd_solve(mat, b, tol=1e-9, seed=seed)
        assert np.linalg.norm(report.x - x_exact) <= 1e-4 * np.linalg.norm(x_exact)

    def test_sdd_with_diagonal_excess_only(self):
        g = generators.grid_2d(8, 8)
        lap = graph_to_laplacian(g).tolil()
        lap[0, 0] += 3.0
        mat = sp.csr_matrix(lap)
        b = np.random.default_rng(1).standard_normal(64)
        x_exact = solve_sdd_direct(mat, b)
        report = sdd_solve(mat, b, tol=1e-9, seed=0)
        assert np.linalg.norm(report.x - x_exact) <= 1e-4 * np.linalg.norm(x_exact)

    def test_rejects_non_sdd(self):
        mat = sp.csr_matrix(np.array([[1.0, -5.0], [-5.0, 1.0]]))
        with pytest.raises(ValueError):
            SDDSolver(mat)

    def test_rejects_bad_rhs_length(self):
        g = generators.grid_2d(6, 6)
        solver = SDDSolver(g, seed=0)
        with pytest.raises(ValueError):
            solver.solve(np.ones(5))

    def test_rejects_unknown_method(self):
        g = generators.grid_2d(6, 6)
        with pytest.raises(ValueError):
            SDDSolver(g, method="bogus")


class TestScalingBehaviour:
    def test_work_grows_much_slower_than_direct_solve(self):
        """Charged work should fall ever further below the O(n^3) dense cost.

        (Strict near-linearity needs the paper's asymptotic parameter regime;
        what is checkable at laptop scale is that the work exponent is far
        below the dense-factorization one and the gap widens with size —
        see EXPERIMENTS.md, experiment E8.)
        """
        ratios = []
        for size in (12, 24):
            g = generators.grid_2d(size, size)
            cost = CostModel()
            solver = SDDSolver(g, seed=0, cost=cost)
            b = np.random.default_rng(0).standard_normal(g.n)
            b -= b.mean()
            solver.solve(b, tol=1e-6)
            ratios.append(cost.work / float(g.n) ** 3)
        assert ratios[1] < ratios[0]
        assert ratios[1] < 0.2

    def test_depth_much_smaller_than_work(self):
        g = generators.grid_2d(20, 20)
        cost = CostModel()
        solver = SDDSolver(g, seed=0, cost=cost)
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        report = solver.solve(b, tol=1e-6)
        assert report.depth < report.work / 10.0
