"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.components import is_connected


class TestStructured:
    def test_path_graph(self):
        g = generators.path_graph(6)
        assert g.n == 6 and g.num_edges == 5
        assert is_connected(g)

    def test_path_rejects_zero(self):
        with pytest.raises(ValueError):
            generators.path_graph(0)

    def test_cycle_graph(self):
        g = generators.cycle_graph(5)
        assert g.num_edges == 5
        assert np.all(g.degrees() == 2)

    def test_star_graph(self):
        g = generators.star_graph(7)
        assert g.degrees()[0] == 6
        assert np.all(g.degrees()[1:] == 1)

    def test_complete_graph(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert np.all(g.degrees() == 5)

    def test_grid_2d_counts(self):
        g = generators.grid_2d(4, 5)
        assert g.n == 20
        assert g.num_edges == 4 * 4 + 3 * 5
        assert is_connected(g)

    def test_torus_regular(self):
        g = generators.torus_2d(5, 5)
        assert np.all(g.degrees() == 4)

    def test_grid_3d_counts(self):
        g = generators.grid_3d(3, 3, 3)
        assert g.n == 27
        assert g.num_edges == 3 * (2 * 3 * 3)
        assert is_connected(g)

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            generators.grid_2d(0, 3)


class TestRandom:
    def test_erdos_renyi_connected(self):
        g = generators.erdos_renyi_gnm(100, 300, seed=0)
        assert g.n == 100 and g.num_edges == 300
        assert is_connected(g)

    def test_erdos_renyi_simple(self):
        g = generators.erdos_renyi_gnm(50, 200, seed=1)
        keys = set()
        for a, b in zip(g.u, g.v):
            key = (min(a, b), max(a, b))
            assert key not in keys
            keys.add(key)

    def test_erdos_renyi_deterministic(self):
        g1 = generators.erdos_renyi_gnm(40, 100, seed=5)
        g2 = generators.erdos_renyi_gnm(40, 100, seed=5)
        assert g1 == g2

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_gnm(5, 100, seed=0)

    def test_random_regular_degrees(self):
        g = generators.random_regular_graph(60, 4, seed=0)
        assert np.all(g.degrees() == 4)

    def test_random_regular_large(self):
        g = generators.random_regular_graph(500, 6, seed=3)
        assert np.all(g.degrees() == 6)
        # simple graph
        keys = {(min(a, b), max(a, b)) for a, b in zip(g.u, g.v)}
        assert len(keys) == g.num_edges

    def test_random_regular_rejects_odd(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(5, 3, seed=0)

    def test_preferential_attachment(self):
        g = generators.preferential_attachment(50, 3, seed=0)
        assert g.n == 50
        assert is_connected(g)

    def test_random_geometric_connected(self):
        g = generators.random_geometric_graph(60, 0.2, seed=0)
        assert is_connected(g)


class TestWeighted:
    def test_with_random_weights_spread(self):
        g = generators.with_random_weights(generators.grid_2d(10, 10), seed=0, spread=1e3)
        assert g.w.min() >= 1.0 - 1e-9
        assert g.w.max() <= 1e3 + 1e-6

    def test_weight_distributions(self):
        base = generators.grid_2d(6, 6)
        for dist in ("loguniform", "uniform", "exponential"):
            g = generators.with_random_weights(base, seed=1, distribution=dist)
            assert np.all(g.w > 0)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generators.with_random_weights(generators.path_graph(5), distribution="bogus")

    def test_weighted_sdd_system_is_sdd(self):
        from repro.graph.laplacian import is_laplacian, is_sdd

        mat, b = generators.weighted_sdd_system(30, 80, seed=2)
        assert is_sdd(mat)
        assert not is_laplacian(mat)
        assert b.shape == (30,)

    def test_standard_workloads(self):
        loads = generators.standard_workloads("tiny", seed=0)
        assert len(loads) >= 4
        for name, g in loads:
            assert isinstance(name, str)
            assert g.num_edges > 0

    def test_standard_workloads_bad_scale(self):
        with pytest.raises(ValueError):
            generators.standard_workloads("huge")
