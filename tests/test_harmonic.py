"""Tests for harmonic interpolation / label propagation (apps/harmonic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.harmonic import harmonic_interpolation, harmonic_labels
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.testing import dense_harmonic_interpolation, disjoint_union


def _boundary_and_values(g, *, k=3, seed=0):
    rng = np.random.default_rng(seed)
    nb = max(1, g.n // 4)
    boundary = rng.choice(g.n, size=nb, replace=False)
    return boundary, rng.standard_normal((nb, k))


class TestAgainstDenseOracle:
    def test_matches_oracle_on_corpus(self, corpus_case):
        g = corpus_case.graph
        boundary, values = _boundary_and_values(g, seed=7)
        got = harmonic_interpolation(g, boundary, values, tol=1e-12).x
        ref = dense_harmonic_interpolation(g, boundary, values)
        scale = max(float(np.abs(ref).max()), 1e-12)
        assert np.abs(got - ref).max() <= 1e-8 * scale

    def test_vector_values_match_oracle(self):
        g = generators.weighted_grid_2d(5, 5, seed=3, spread=30.0)
        boundary = np.array([0, 12, 24])
        values = np.array([1.0, -1.0, 2.0])
        got = harmonic_interpolation(g, boundary, values, tol=1e-12)
        ref = dense_harmonic_interpolation(g, boundary, values)
        assert got.x.shape == (g.n,)
        assert np.abs(got.x - ref).max() <= 1e-8 * np.abs(ref).max()
        assert got.converged


class TestHarmonicStructure:
    def test_boundary_values_are_preserved_exactly(self):
        g = generators.grid_2d(5, 5)
        boundary = np.array([3, 11, 20])
        values = np.array([5.0, -2.0, 0.5])
        x = harmonic_interpolation(g, boundary, values).x
        assert np.array_equal(x[boundary], values)

    def test_interior_residual_is_zero(self):
        g = generators.erdos_renyi_gnm(40, 100, seed=2)
        boundary, values = _boundary_and_values(g, k=2, seed=4)
        x = harmonic_interpolation(g, boundary, values, tol=1e-12).x
        residual = graph_to_laplacian(g) @ x
        interior = np.setdiff1d(np.arange(g.n), boundary)
        assert np.abs(residual[interior]).max() <= 1e-8

    def test_maximum_principle(self):
        g = generators.weighted_grid_2d(6, 6, seed=5, spread=20.0)
        boundary = np.array([0, 35])
        x = harmonic_interpolation(g, boundary, np.array([0.0, 1.0]), tol=1e-12).x
        assert x.min() >= -1e-9 and x.max() <= 1.0 + 1e-9

    def test_linear_interpolation_on_path(self):
        g = generators.path_graph(6)
        x = harmonic_interpolation(g, np.array([0, 5]), np.array([0.0, 1.0]), tol=1e-12).x
        assert np.allclose(x, np.linspace(0.0, 1.0, 6), atol=1e-9)

    def test_floating_components_pinned_to_zero(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(4)])
        res = harmonic_interpolation(g, np.array([0]), np.array([3.0]))
        assert np.allclose(res.x[:3], 3.0)  # constant in the boundary's component
        assert np.array_equal(res.x[3:], np.zeros(4))
        assert set(res.floating.tolist()) == {3, 4, 5, 6}

    def test_all_vertices_boundary(self):
        g = generators.path_graph(3)
        values = np.array([1.0, 2.0, 3.0])
        res = harmonic_interpolation(g, np.arange(3), values)
        assert np.array_equal(res.x, values)
        assert res.iterations == 0 and res.converged


class TestBatchedLabels:
    def test_multi_label_matches_looped_single_labels(self):
        g = generators.weighted_grid_2d(5, 4, seed=6, spread=10.0)
        boundary, values = _boundary_and_values(g, k=4, seed=8)
        batched = harmonic_interpolation(g, boundary, values, tol=1e-12).x
        for j in range(values.shape[1]):
            single = harmonic_interpolation(g, boundary, values[:, j], tol=1e-12).x
            assert np.array_equal(single, batched[:, j])

    def test_label_propagation_on_two_clusters(self):
        # two dense clusters joined by one weak edge: labels stay local
        a = generators.complete_graph(6)
        b = generators.complete_graph(6)
        g = disjoint_union([a, b])
        g = g.add_edges(np.array([5]), np.array([6]), np.array([1e-3]))
        res = harmonic_labels(g, np.array([0, 11]), np.array([0, 1]))
        assert np.all(res.predictions[:6] == 0)
        assert np.all(res.predictions[6:] == 1)
        assert res.scores.shape == (12, 2)

    def test_unreachable_vertices_labeled_minus_one(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(3)])
        res = harmonic_labels(g, np.array([0]), np.array([0]))
        assert np.all(res.predictions[:3] == 0)
        assert np.all(res.predictions[3:] == -1)


class TestValidation:
    def test_empty_boundary_raises(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            harmonic_interpolation(g, np.array([], dtype=int), np.array([]))

    def test_duplicate_boundary_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            harmonic_interpolation(g, np.array([0, 0]), np.array([1.0, 2.0]))

    def test_out_of_range_boundary_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            harmonic_interpolation(g, np.array([4]), np.array([1.0]))

    def test_mismatched_values_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            harmonic_interpolation(g, np.array([0, 1]), np.array([1.0]))

    def test_mismatched_labels_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            harmonic_labels(g, np.array([0, 1]), np.array([0]))

    def test_label_exceeding_num_classes_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError, match="num_classes"):
            harmonic_labels(g, np.array([0, 1]), np.array([0, 3]), num_classes=2)

    def test_empty_labeled_set_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            harmonic_labels(g, np.array([], dtype=int), np.array([], dtype=int))
