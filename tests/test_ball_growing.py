"""Tests for delayed multi-source ball growing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ball_growing import grow_balls
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.shortest_paths import bfs_distances
from repro.pram.model import CostModel


class TestBasicGrowth:
    def test_single_center_covers_ball(self):
        g = generators.path_graph(10)
        res = grow_balls(g, centers=np.array([0]), delays=np.array([0]), radius=3)
        assert np.all(res.owner[:4] == 0)
        assert np.all(res.owner[4:] == -1)
        assert res.arrival[:4].tolist() == [0, 1, 2, 3]

    def test_delay_shrinks_ball(self):
        g = generators.path_graph(10)
        res = grow_balls(g, centers=np.array([0]), delays=np.array([2]), radius=3)
        # effective radius = 3 - 2 = 1
        assert np.all(res.owner[:2] == 0)
        assert np.all(res.owner[2:] == -1)

    def test_all_vertices_covered_with_enough_radius(self, grid_graph):
        res = grow_balls(grid_graph, np.array([0]), np.array([0]), radius=50)
        assert np.all(res.owner == 0)

    def test_assignment_minimizes_delayed_distance(self):
        g = generators.path_graph(9)
        centers = np.array([0, 8])
        delays = np.array([0, 2])
        res = grow_balls(g, centers, delays, radius=10)
        dist0 = bfs_distances(g, 0)
        dist8 = bfs_distances(g, 8)
        for v in range(9):
            key0 = dist0[v] + 0
            key8 = dist8[v] + 2
            expected = 0 if (key0 < key8 or (key0 == key8 and 0 < 8)) else 8
            assert res.owner[v] == expected

    def test_tie_break_prefers_smaller_center(self):
        g = generators.path_graph(5)
        res = grow_balls(g, centers=np.array([0, 4]), delays=np.array([0, 0]), radius=5)
        # vertex 2 is equidistant; smaller center id wins
        assert res.owner[2] == 0

    def test_parent_chain_stays_in_component(self, grid_graph):
        rng = np.random.default_rng(0)
        centers = rng.choice(grid_graph.n, size=6, replace=False)
        delays = rng.integers(0, 3, size=6)
        res = grow_balls(grid_graph, centers, delays, radius=8)
        for v in range(grid_graph.n):
            if res.owner[v] < 0 or res.parent[v] < 0:
                continue
            assert res.owner[res.parent[v]] == res.owner[v]
            assert res.arrival[res.parent[v]] == res.arrival[v] - 1

    def test_claimed_center_produces_empty_component(self):
        g = generators.path_graph(3)
        # center 1 is claimed by center 0 (delay 0) before its own delay 2 expires
        res = grow_balls(g, centers=np.array([0, 1]), delays=np.array([0, 2]), radius=4)
        assert res.owner[1] == 0
        assert not np.any(res.owner == 1)

    def test_alive_mask_restricts_growth(self):
        g = generators.path_graph(7)
        alive = np.ones(7, dtype=bool)
        alive[3] = False  # break the path
        res = grow_balls(g, np.array([0]), np.array([0]), radius=10, alive=alive)
        assert np.all(res.owner[:3] == 0)
        assert np.all(res.owner[3:] == -1)

    def test_center_must_be_alive(self):
        g = generators.path_graph(4)
        alive = np.ones(4, dtype=bool)
        alive[0] = False
        with pytest.raises(ValueError):
            grow_balls(g, np.array([0]), np.array([0]), radius=2, alive=alive)


class TestValidation:
    def test_mismatched_shapes(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            grow_balls(g, np.array([0, 1]), np.array([0]), radius=2)

    def test_negative_delay(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            grow_balls(g, np.array([0]), np.array([-1]), radius=2)

    def test_negative_radius(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            grow_balls(g, np.array([0]), np.array([0]), radius=-1)

    def test_empty_centers(self):
        g = generators.path_graph(4)
        res = grow_balls(g, np.array([], dtype=int), np.array([], dtype=int), radius=2)
        assert np.all(res.owner == -1)

    def test_radius_zero_claims_only_centers(self):
        g = generators.path_graph(5)
        res = grow_balls(g, np.array([2]), np.array([0]), radius=0)
        assert res.owner[2] == 2
        assert np.count_nonzero(res.owner >= 0) == 1


class TestCostAccounting:
    def test_rounds_bounded_by_radius(self, grid_graph):
        cost = CostModel()
        res = grow_balls(grid_graph, np.array([0]), np.array([0]), radius=5, cost=cost)
        assert res.rounds <= 6
        assert cost.work > 0

    def test_work_scales_with_coverage(self):
        g = generators.grid_2d(20, 20)
        c_small = CostModel()
        grow_balls(g, np.array([0]), np.array([0]), radius=2, cost=c_small)
        c_big = CostModel()
        grow_balls(g, np.array([0]), np.array([0]), radius=30, cost=c_big)
        assert c_big.work > c_small.work
