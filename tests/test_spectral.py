"""Tests for spectral embeddings / Fiedler vectors (apps/spectral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.spectral import component_nullspace_basis, fiedler_vector, spectral_embedding
from repro.graph import generators
from repro.graph.components import connected_components
from repro.graph.laplacian import graph_to_laplacian
from repro.testing import dense_fiedler_value, dense_spectral_embedding, disjoint_union


class TestAgainstDenseOracle:
    def test_eigenvalues_match_oracle_on_corpus(self, corpus_case):
        g = corpus_case.graph
        num_components, _ = connected_components(g)
        max_k = g.n - num_components
        if max_k < 1:
            pytest.skip("graph has no nontrivial eigenpairs")
        k = min(2, max_k)
        result = spectral_embedding(g, k, seed=0)
        evals_ref, _ = dense_spectral_embedding(g, k)
        assert result.converged
        assert np.all(np.abs(result.eigenvalues - evals_ref) <= 1e-8 * evals_ref)

    def test_vectors_satisfy_eigen_equation(self, corpus_case):
        g = corpus_case.graph
        num_components, _ = connected_components(g)
        if g.n - num_components < 1:
            pytest.skip("graph has no nontrivial eigenpairs")
        result = spectral_embedding(g, 1, seed=0)
        lap = graph_to_laplacian(g)
        v = result.vectors[:, 0]
        lam = result.eigenvalues[0]
        assert np.linalg.norm(lap @ v - lam * v) <= 1e-7 * max(lam, 1e-12)

    def test_fiedler_value_of_path(self):
        n = 10
        lam, v = fiedler_vector(generators.path_graph(n), seed=0)
        assert lam == pytest.approx(4.0 * np.sin(np.pi / (2 * n)) ** 2, rel=1e-8)
        # The Fiedler vector of a path is monotone: one sign change.
        signs = np.sign(v[np.abs(v) > 1e-9])
        assert np.count_nonzero(np.diff(signs) != 0) == 1

    def test_fiedler_matches_dense_on_weighted_graph(self):
        g = generators.weighted_grid_2d(5, 4, seed=2, spread=30.0)
        lam, _ = fiedler_vector(g, seed=0)
        assert lam == pytest.approx(dense_fiedler_value(g), rel=1e-8)


class TestStructure:
    def test_vectors_are_orthonormal_and_deflated(self):
        g = disjoint_union([generators.grid_2d(3, 3), generators.path_graph(4)])
        result = spectral_embedding(g, 3, seed=1)
        v = result.vectors
        assert np.allclose(v.T @ v, np.eye(3), atol=1e-8)
        basis = component_nullspace_basis(g)
        assert np.abs(basis.T @ v).max() <= 1e-8

    def test_component_nullspace_basis_spans_kernel(self):
        g = disjoint_union([generators.path_graph(3), generators.cycle_graph(4)])
        basis = component_nullspace_basis(g)
        assert basis.shape == (7, 2)
        assert np.allclose(basis.T @ basis, np.eye(2), atol=1e-12)
        assert np.abs(graph_to_laplacian(g) @ basis).max() <= 1e-12

    def test_disconnected_graph_returns_nontrivial_pairs(self):
        g = disjoint_union([generators.cycle_graph(5), generators.cycle_graph(6)])
        result = spectral_embedding(g, 2, seed=0)
        evals_ref, _ = dense_spectral_embedding(g, 2)
        assert np.all(result.eigenvalues > 1e-8)
        assert np.allclose(result.eigenvalues, evals_ref, rtol=1e-8)

    def test_eigenvalues_ascending(self):
        g = generators.erdos_renyi_gnm(30, 70, seed=3)
        result = spectral_embedding(g, 4, seed=0)
        assert np.all(np.diff(result.eigenvalues) >= -1e-12)

    def test_embedding_separates_weakly_joined_clusters(self):
        a = generators.complete_graph(8)
        b = generators.complete_graph(8)
        g = disjoint_union([a, b]).add_edges(np.array([0]), np.array([8]), np.array([1e-3]))
        _, v = fiedler_vector(g, seed=0)
        assert len(set(np.sign(v[:8]).tolist())) == 1
        assert len(set(np.sign(v[8:]).tolist())) == 1
        assert np.sign(v[0]) != np.sign(v[8])


class TestValidation:
    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            spectral_embedding(generators.path_graph(4), 0)

    def test_k_exceeding_nontrivial_dimension_raises(self):
        g = disjoint_union([generators.path_graph(2), generators.path_graph(2)])
        with pytest.raises(ValueError):
            spectral_embedding(g, 3)

    def test_single_vertex_raises(self):
        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            spectral_embedding(Graph(1, [], [], []), 1)

    def test_operator_reuse(self):
        import repro

        g = generators.grid_2d(4, 4)
        op = repro.factorize(g, seed=0)
        result = spectral_embedding(g, 2, operator=op, seed=0)
        assert result.converged
