"""Tests for the parallel low-diameter decomposition (Theorem 4.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    cut_edge_mask,
    cut_fraction_per_class,
    decomposition_radii,
    partition,
    split_graph,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.mst import is_spanning_forest
from repro.pram.model import CostModel


class TestSplitGraphGuarantees:
    """Properties (P1) and (P2) hold deterministically; check them directly."""

    @pytest.mark.parametrize("rho", [2, 4, 8, 16])
    def test_strong_radius_bounded(self, grid_graph, rho):
        decomp = split_graph(grid_graph, rho=rho, seed=0)
        radii = decomposition_radii(grid_graph, decomp)
        assert radii.max(initial=0) <= rho

    def test_every_vertex_covered(self, grid_graph):
        decomp = split_graph(grid_graph, rho=4, seed=1)
        assert np.all(decomp.labels >= 0)
        assert decomp.labels.max() == decomp.num_components - 1

    def test_centers_in_own_component(self, grid_graph):
        decomp = split_graph(grid_graph, rho=6, seed=2)
        for idx, center in enumerate(decomp.centers):
            assert decomp.labels[center] == idx

    def test_components_internally_connected(self, random_graph):
        decomp = split_graph(random_graph, rho=4, seed=3)
        # decomposition_radii BFS-checks internal connectivity and raises if
        # a component is not connected.
        decomposition_radii(random_graph, decomp)

    def test_tree_edges_form_spanning_forest_of_components(self, grid_graph):
        from repro.graph.union_find import UnionFind

        decomp = split_graph(grid_graph, rho=6, seed=4)
        tree = decomp.tree_edges()
        assert len(tree) == grid_graph.n - decomp.num_components
        # acyclic, and connects exactly the vertices of each component
        uf = UnionFind(grid_graph.n)
        for e in tree:
            assert uf.union(int(grid_graph.u[e]), int(grid_graph.v[e]))  # no cycles
        assert uf.num_sets == decomp.num_components
        # tree edges never cross components
        assert not np.any(cut_edge_mask(grid_graph, decomp.labels)[tree])

    def test_component_sizes_sum_to_n(self, grid_graph):
        decomp = split_graph(grid_graph, rho=8, seed=5)
        assert decomp.component_sizes().sum() == grid_graph.n

    def test_deterministic_given_seed(self, grid_graph):
        d1 = split_graph(grid_graph, rho=6, seed=42)
        d2 = split_graph(grid_graph, rho=6, seed=42)
        assert np.array_equal(d1.labels, d2.labels)
        assert np.array_equal(d1.centers, d2.centers)

    def test_jitter_range_validation(self, grid_graph):
        with pytest.raises(ValueError):
            split_graph(grid_graph, rho=4, jitter_range=10)

    def test_rho_validation(self, grid_graph):
        with pytest.raises(ValueError):
            split_graph(grid_graph, rho=0)

    def test_empty_graph(self):
        g = Graph(0, [], [], [])
        decomp = split_graph(g, rho=3)
        assert decomp.num_components == 0

    def test_singleton_graph(self):
        g = Graph(1, [], [], [])
        decomp = split_graph(g, rho=3, seed=0)
        assert decomp.num_components == 1
        assert decomp.labels[0] == 0

    def test_disconnected_graph_covered(self):
        g = Graph(6, [0, 1, 3, 4], [1, 2, 4, 5])
        decomp = split_graph(g, rho=3, seed=0)
        assert np.all(decomp.labels >= 0)


class TestCutFraction:
    """Property (P3): few edges are cut, decaying with rho."""

    def test_cut_fraction_decays_with_rho(self):
        g = generators.grid_2d(30, 30)
        fractions = []
        for rho in (4, 16, 64):
            d = split_graph(g, rho=rho, seed=7, jitter_range=max(1, rho // 2), sample_coefficient=1.0)
            fractions.append(cut_edge_mask(g, d.labels).mean())
        assert fractions[2] < fractions[0]

    def test_cut_fraction_within_paper_bound(self, grid_graph):
        # With the paper's constant the bound is extremely generous; it must
        # hold for every run.
        rho = 8
        d = split_graph(grid_graph, rho=rho, seed=8)
        n = grid_graph.n
        bound = 136.0 * (math.log2(n) ** 3) / rho
        assert cut_edge_mask(grid_graph, d.labels).mean() <= bound

    def test_cut_fraction_per_class_keys(self, grid_graph):
        d = split_graph(grid_graph, rho=6, seed=9)
        classes = np.arange(grid_graph.num_edges) % 3
        fractions = cut_fraction_per_class(grid_graph, d.labels, classes)
        assert set(fractions.keys()) == {0, 1, 2}
        assert all(0.0 <= f <= 1.0 for f in fractions.values())


class TestPartition:
    def test_partition_respects_radius(self, grid_graph):
        p = partition(grid_graph, rho=6, seed=0, c1=1.0)
        assert decomposition_radii(grid_graph, p).max() <= 6

    def test_partition_validates_per_class_bound(self):
        g = generators.grid_2d(20, 20)
        classes = np.arange(g.num_edges) % 3
        rho = 16
        p = partition(g, rho=rho, edge_classes=classes, seed=1, c1=1.0,
                      jitter_range=rho // 2, sample_coefficient=1.0)
        bound = p.stats["cut_bound"]
        fractions = cut_fraction_per_class(g, p.labels, classes)
        assert max(fractions.values()) <= bound
        assert "retries" in p.stats

    def test_partition_without_validation(self, grid_graph):
        p = partition(grid_graph, rho=4, seed=2, validate=False)
        assert np.all(p.labels >= 0)

    def test_partition_edge_classes_length_checked(self, grid_graph):
        with pytest.raises(ValueError):
            partition(grid_graph, rho=4, edge_classes=np.zeros(3, dtype=int))

    def test_partition_single_class_default(self, random_graph):
        p = partition(random_graph, rho=4, seed=3, c1=1.0)
        assert p.num_components >= 1


class TestCostAccounting:
    def test_work_near_linear(self):
        """Work should grow roughly linearly in m (within a log factor)."""
        works = []
        for size in (16, 32):
            g = generators.grid_2d(size, size)
            cost = CostModel()
            split_graph(g, rho=8, seed=0, cost=cost)
            works.append((g.num_edges, cost.work))
        (m1, w1), (m2, w2) = works
        ratio = (w2 / w1) / (m2 / m1)
        assert ratio < 10.0  # near-linear: far from quadratic blow-up

    def test_depth_bounded_by_rho_polylog(self):
        """Depth stays within O(rho log^2 n) for both small and large rho."""
        import math

        g = generators.grid_2d(40, 40)
        logn = math.ceil(math.log2(g.n))
        for rho in (4, 32):
            cost = CostModel()
            split_graph(g, rho=rho, seed=0, cost=cost)
            assert cost.depth <= 10.0 * rho * logn**2


@settings(max_examples=15, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=8),
    cols=st.integers(min_value=2, max_value=8),
    rho=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_radius_and_coverage(rows, cols, rho, seed):
    g = generators.grid_2d(rows, cols)
    decomp = split_graph(g, rho=rho, seed=seed)
    assert np.all(decomp.labels >= 0)
    assert decomposition_radii(g, decomp).max(initial=0) <= rho
    for idx, center in enumerate(decomp.centers):
        assert decomp.labels[center] == idx
