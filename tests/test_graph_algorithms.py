"""Tests for components, shortest paths, MST, contraction, and union-find."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.contraction import contract_vertices
from repro.graph.graph import Graph
from repro.graph.mst import (
    is_spanning_forest,
    maximum_spanning_tree_edges,
    minimum_spanning_tree_edges,
)
from repro.graph.shortest_paths import (
    bfs_distances,
    bfs_tree,
    dijkstra_distances,
    shortest_path_distances,
)
from repro.graph.union_find import UnionFind
from repro.pram.model import CostModel


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.num_sets == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(0, 1)
        assert uf.num_sets == 4

    def test_labels_compact(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 4

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)


class TestComponents:
    def test_connected_grid(self, grid_graph):
        count, labels = connected_components(grid_graph)
        assert count == 1
        assert np.all(labels == 0)

    def test_disconnected(self):
        g = Graph(6, [0, 1, 3, 4], [1, 2, 4, 5])
        count, labels = connected_components(g)
        assert count == 2
        assert labels[0] == labels[2]
        assert labels[3] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_vertices(self):
        g = Graph(4, [0], [1])
        count, _ = connected_components(g)
        assert count == 3

    def test_is_connected_trivial(self):
        assert is_connected(Graph(1, [], [], []))
        assert is_connected(Graph(0, [], [], []))

    def test_largest_component(self):
        g = Graph(7, [0, 1, 2, 4], [1, 2, 3, 5])
        comp = largest_component(g)
        assert set(comp.tolist()) == {0, 1, 2, 3}

    def test_cost_charged(self, grid_graph):
        cost = CostModel()
        connected_components(grid_graph, cost=cost)
        assert cost.work > 0
        assert cost.rounds > 0


class TestBFS:
    def test_bfs_distances_path(self):
        g = generators.path_graph(6)
        dist = bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_bfs_multi_source(self):
        g = generators.path_graph(7)
        dist = bfs_distances(g, [0, 6])
        assert dist.tolist() == [0, 1, 2, 3, 2, 1, 0]

    def test_bfs_max_depth(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 0, max_depth=3)
        assert dist[3] == 3
        assert dist[4] == -1

    def test_bfs_unreachable(self):
        g = Graph(4, [0], [1])
        dist = bfs_distances(g, 0)
        assert dist[2] == -1 and dist[3] == -1

    def test_bfs_grid_diameter(self, grid_graph):
        dist = bfs_distances(grid_graph, 0)
        assert dist.max() == 22  # (12-1) + (12-1)

    def test_bfs_tree_spans_component(self, grid_graph):
        edges = bfs_tree(grid_graph, 0)
        assert len(edges) == grid_graph.n - 1
        assert is_spanning_forest(grid_graph, edges)

    def test_bfs_tree_restricted(self, grid_graph):
        allowed = np.arange(12)  # first row only
        edges = bfs_tree(grid_graph, 0, allowed_vertices=allowed)
        assert len(edges) == 11
        # all edges stay inside the allowed set
        assert np.all(np.isin(grid_graph.u[edges], allowed))
        assert np.all(np.isin(grid_graph.v[edges], allowed))

    def test_bfs_tree_bad_root(self, grid_graph):
        with pytest.raises(ValueError):
            bfs_tree(grid_graph, 20, allowed_vertices=np.arange(5))

    def test_cost_depth_tracks_radius(self):
        g = generators.path_graph(64)
        cost = CostModel()
        bfs_distances(g, 0, cost=cost)
        assert cost.rounds >= 63


class TestDijkstra:
    def test_matches_bfs_on_unit_weights(self, grid_graph):
        d1 = bfs_distances(grid_graph, 0).astype(float)
        d2 = dijkstra_distances(grid_graph, 0)[0]
        assert np.allclose(d1, d2)

    def test_weighted_path(self):
        g = Graph(3, [0, 1], [1, 2], [2.0, 3.0])
        d = dijkstra_distances(g, 0)[0]
        assert d.tolist() == [0.0, 2.0, 5.0]

    def test_pair_distances(self):
        g = generators.weighted_grid_2d(6, 6, seed=0)
        pairs = [(0, 35), (3, 20), (35, 0)]
        dist = shortest_path_distances(g, pairs)
        full = dijkstra_distances(g, [0, 3, 35])
        assert dist[0] == pytest.approx(full[0, 35])
        assert dist[1] == pytest.approx(full[1, 20])
        assert dist[2] == pytest.approx(full[2, 0])

    def test_empty_pairs(self):
        g = generators.path_graph(4)
        assert shortest_path_distances(g, []).shape == (0,)


class TestMST:
    def test_mst_is_spanning_forest(self, random_graph):
        edges = minimum_spanning_tree_edges(random_graph)
        assert is_spanning_forest(random_graph, edges)
        assert len(edges) == random_graph.n - 1

    def test_mst_weight_matches_scipy(self, weighted_grid_graph):
        import scipy.sparse.csgraph as csgraph

        edges = minimum_spanning_tree_edges(weighted_grid_graph)
        ours = weighted_grid_graph.w[edges].sum()
        theirs = csgraph.minimum_spanning_tree(weighted_grid_graph.adjacency_matrix()).sum()
        assert ours == pytest.approx(theirs)

    def test_max_spanning_tree_heavier(self, weighted_grid_graph):
        mn = weighted_grid_graph.w[minimum_spanning_tree_edges(weighted_grid_graph)].sum()
        mx = weighted_grid_graph.w[maximum_spanning_tree_edges(weighted_grid_graph)].sum()
        assert mx >= mn

    def test_spanning_forest_detects_cycle(self):
        g = generators.cycle_graph(4)
        assert not is_spanning_forest(g, np.arange(4))

    def test_empty_graph(self):
        g = Graph(3, [], [], [])
        assert minimum_spanning_tree_edges(g).size == 0


class TestContraction:
    def test_contract_to_single_vertex(self, grid_graph):
        labels = np.zeros(grid_graph.n, dtype=int)
        contracted, surviving, k = contract_vertices(grid_graph, labels)
        assert k == 1
        assert contracted.num_edges == 0
        assert surviving.size == 0

    def test_contract_identity(self, grid_graph):
        labels = np.arange(grid_graph.n)
        contracted, surviving, k = contract_vertices(grid_graph, labels)
        assert k == grid_graph.n
        assert contracted.num_edges == grid_graph.num_edges

    def test_contract_pairs(self):
        g = generators.path_graph(6)
        labels = np.array([0, 0, 1, 1, 2, 2])
        contracted, surviving, k = contract_vertices(g, labels)
        assert k == 3
        assert contracted.num_edges == 2  # edges 1-2 and 3-4 survive
        assert set(surviving.tolist()) == {1, 3}

    def test_contract_keeps_parallel_edges(self):
        g = generators.cycle_graph(4)
        labels = np.array([0, 1, 0, 1])
        contracted, surviving, k = contract_vertices(g, labels)
        assert k == 2
        assert contracted.num_edges == 4  # all cycle edges become parallel

    def test_labels_length_checked(self, grid_graph):
        with pytest.raises(ValueError):
            contract_vertices(grid_graph, np.zeros(3, dtype=int))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
def test_mst_has_components_minus_vertices_edges(n, seed):
    rng = np.random.default_rng(seed)
    m = max(1, n // 2 * 3)
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    keep = u != v
    if not np.any(keep):
        return
    g = Graph(n, u[keep], v[keep], rng.random(int(keep.sum())) + 0.1)
    count, _ = connected_components(g)
    edges = minimum_spanning_tree_edges(g)
    assert len(edges) == n - count
    assert is_spanning_forest(g, edges)
