"""Tests for the preconditioner chain and preconditioned Chebyshev iteration."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.chain import build_chain, default_bottom_size
from repro.core.chebyshev import chebyshev_apply, estimate_extreme_eigenvalues
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.pram.model import CostModel


class TestChainConstruction:
    def test_chain_levels_shrink(self):
        g = generators.grid_2d(24, 24)
        chain = build_chain(g, seed=0)
        sizes = [lvl.num_vertices for lvl in chain.levels]
        assert sizes[0] == g.n
        assert all(sizes[i + 1] < sizes[i] for i in range(len(sizes) - 1))

    def test_bottom_level_has_pseudoinverse(self):
        g = generators.grid_2d(16, 16)
        chain = build_chain(g, seed=0)
        bottom = chain.levels[-1]
        assert chain.bottom_pseudoinverse.shape == (bottom.num_vertices, bottom.num_vertices)
        # pinv really inverts the bottom Laplacian on its range
        lap = bottom.laplacian.toarray()
        x = np.random.default_rng(0).standard_normal(bottom.num_vertices)
        x -= x.mean()
        assert np.allclose(lap @ (chain.bottom_pseudoinverse @ (lap @ x)), lap @ x, atol=1e-6)

    def test_intermediate_levels_have_preconditioners(self):
        g = generators.grid_2d(20, 20)
        chain = build_chain(g, seed=1)
        for lvl in chain.levels[:-1]:
            assert lvl.sparsifier is not None
            assert lvl.elimination is not None
            assert lvl.kappa > 1
        assert chain.levels[-1].sparsifier is None

    def test_max_levels_respected(self):
        g = generators.grid_2d(24, 24)
        chain = build_chain(g, seed=0, max_levels=2)
        assert chain.depth <= 2

    def test_small_graph_single_level(self):
        g = generators.grid_2d(4, 4)
        chain = build_chain(g, seed=0)
        assert chain.depth == 1

    def test_level_sizes_summary(self):
        g = generators.grid_2d(16, 16)
        chain = build_chain(g, seed=0)
        rows = chain.level_sizes()
        assert rows[0]["n"] == g.n
        assert rows[0]["level"] == 1

    def test_tree_only_ablation_builds(self):
        g = generators.grid_2d(16, 16)
        chain = build_chain(g, seed=0, use_tree_only=True)
        assert chain.depth >= 1

    def test_cost_charged(self):
        g = generators.grid_2d(16, 16)
        cost = CostModel()
        build_chain(g, seed=0, cost=cost)
        assert cost.work > 0

    def test_default_bottom_size(self):
        assert default_bottom_size(1000, 0) >= 40
        assert default_bottom_size(10**9, 0) == 1000
        assert default_bottom_size(100, 12000) == min(1500, 2000)

    def test_empty_graph_rejected(self):
        from repro.graph.graph import Graph

        with pytest.raises(ValueError):
            build_chain(Graph(0, [], [], []), seed=0)


class TestChebyshev:
    @pytest.fixture(scope="class")
    def spd(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((30, 30))
        a = sp.csr_matrix(m @ m.T + 30 * np.eye(30))
        b = rng.standard_normal(30)
        return a, b

    def test_converges_with_exact_bounds(self, spd):
        a, b = spd
        dense = a.toarray()
        eigs = np.linalg.eigvalsh(dense)
        x = chebyshev_apply(
            lambda v: a @ v,
            lambda v: v,
            b,
            lambda_min=eigs[0],
            lambda_max=eigs[-1],
            iterations=120,
        )
        assert np.allclose(a @ x, b, atol=1e-5 * np.linalg.norm(b))

    def test_more_iterations_reduce_error(self, spd):
        a, b = spd
        eigs = np.linalg.eigvalsh(a.toarray())
        errs = []
        for iters in (5, 40):
            x = chebyshev_apply(
                lambda v: a @ v, lambda v: v, b, lambda_min=eigs[0], lambda_max=eigs[-1], iterations=iters
            )
            errs.append(np.linalg.norm(a @ x - b))
        assert errs[1] < errs[0]

    def test_preconditioner_accelerates(self, spd):
        a, b = spd
        diag = a.diagonal()
        precond = lambda v: v / diag
        # bounds of the Jacobi-preconditioned system
        m_inv_a = np.diag(1.0 / diag) @ a.toarray()
        eigs = np.linalg.eigvalsh(0.5 * (m_inv_a + m_inv_a.T))
        x = chebyshev_apply(
            lambda v: a @ v, precond, b, lambda_min=max(eigs[0], 1e-6), lambda_max=eigs[-1], iterations=60
        )
        assert np.allclose(a @ x, b, atol=1e-4 * np.linalg.norm(b))

    def test_invalid_bounds(self, spd):
        a, b = spd
        with pytest.raises(ValueError):
            chebyshev_apply(lambda v: a @ v, lambda v: v, b, lambda_min=2.0, lambda_max=1.0, iterations=5)

    def test_zero_iterations_returns_x0(self, spd):
        a, b = spd
        x = chebyshev_apply(lambda v: a @ v, lambda v: v, b, lambda_min=1.0, lambda_max=2.0, iterations=0)
        assert np.allclose(x, 0.0)

    def test_laplacian_with_projection(self):
        g = generators.grid_2d(8, 8)
        lap = graph_to_laplacian(g)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(g.n)
        b -= b.mean()
        eigs = np.linalg.eigvalsh(lap.toarray())
        project = lambda v: v - v.mean()
        x = chebyshev_apply(
            lambda v: lap @ v,
            lambda v: v,
            b,
            lambda_min=max(eigs[1], 1e-9),
            lambda_max=eigs[-1],
            iterations=400,
            project=project,
        )
        assert np.linalg.norm(lap @ x - b) <= 1e-4 * np.linalg.norm(b)


class TestEigenvalueEstimation:
    def test_estimates_bracket_spectrum(self):
        rng = np.random.default_rng(2)
        m = rng.standard_normal((40, 40))
        a = sp.csr_matrix(m @ m.T + 40 * np.eye(40))
        eigs = np.linalg.eigvalsh(a.toarray())
        lo, hi = estimate_extreme_eigenvalues(lambda v: a @ v, lambda v: v, 40, num_iterations=40, seed=0)
        assert lo <= eigs[0] * 1.3
        assert hi >= eigs[-1] * 0.7

    def test_identity_preconditioned_by_itself(self):
        n = 20
        ident = sp.eye(n).tocsr()
        lo, hi = estimate_extreme_eigenvalues(lambda v: ident @ v, lambda v: v, n, seed=1)
        assert lo <= 1.0 <= hi * 1.5
