"""Tests for exact stretch measurement (tree LCA path and Dijkstra path)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stretch import average_stretch, edge_stretches, total_stretch, tree_stretches
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.mst import minimum_spanning_tree_edges
from repro.graph.shortest_paths import dijkstra_distances


class TestTreeStretches:
    def test_path_tree_stretch_is_one(self):
        g = generators.path_graph(6)
        stretches = tree_stretches(g, np.arange(5))
        assert np.allclose(stretches, 1.0)

    def test_cycle_with_path_tree(self):
        g = generators.cycle_graph(5)
        tree = np.arange(4)  # drop the closing edge
        stretches = tree_stretches(g, tree)
        assert np.allclose(stretches[:4], 1.0)
        assert stretches[4] == pytest.approx(4.0)  # closing edge routed the long way

    def test_weighted_cycle(self):
        g = Graph(4, [0, 1, 2, 3], [1, 2, 3, 0], [1.0, 2.0, 3.0, 10.0])
        tree = np.array([0, 1, 2])
        stretches = tree_stretches(g, tree)
        assert stretches[3] == pytest.approx((1.0 + 2.0 + 3.0) / 10.0)

    def test_star_tree(self):
        g = generators.complete_graph(5)
        # star tree: edges incident to vertex 0
        tree = np.array([e for e in range(g.num_edges) if 0 in (g.u[e], g.v[e])])
        stretches = tree_stretches(g, tree)
        non_tree = np.setdiff1d(np.arange(g.num_edges), tree)
        assert np.allclose(stretches[tree], 1.0)
        assert np.allclose(stretches[non_tree], 2.0)

    def test_tree_edge_stretch_always_one(self, weighted_grid_graph):
        tree = minimum_spanning_tree_edges(weighted_grid_graph)
        stretches = tree_stretches(weighted_grid_graph, tree, query_edges=tree)
        assert np.allclose(stretches, 1.0)

    def test_matches_dijkstra_reference(self, weighted_grid_graph):
        g = weighted_grid_graph
        tree = minimum_spanning_tree_edges(g)
        stretches = tree_stretches(g, tree)
        tree_graph = g.edge_subgraph(tree)
        # verify a sample of edges against exact Dijkstra distances in the tree
        rng = np.random.default_rng(0)
        sample = rng.choice(g.num_edges, size=20, replace=False)
        for e in sample:
            d = dijkstra_distances(tree_graph, int(g.u[e]))[0, int(g.v[e])]
            assert stretches[e] == pytest.approx(d / g.w[e], rel=1e-9)

    def test_disconnected_forest_gives_inf(self):
        g = generators.path_graph(4)
        forest = np.array([0, 2])  # omit the middle edge
        stretches = tree_stretches(g, forest)
        assert np.isinf(stretches[1])

    def test_rejects_cyclic_tree_edges(self):
        g = generators.cycle_graph(4)
        with pytest.raises(ValueError):
            tree_stretches(g, np.arange(4))

    def test_query_subset(self, grid_graph):
        tree = minimum_spanning_tree_edges(grid_graph)
        q = np.array([0, 5, 10])
        stretches = tree_stretches(grid_graph, tree, query_edges=q)
        assert stretches.shape == (3,)


class TestSubgraphStretches:
    def test_full_graph_stretch_at_most_one(self, weighted_grid_graph):
        g = weighted_grid_graph
        stretches = edge_stretches(g, np.arange(g.num_edges))
        assert np.all(stretches <= 1.0 + 1e-9)

    def test_subgraph_with_cycle_uses_dijkstra(self):
        g = generators.cycle_graph(6)
        sub = np.arange(6)  # the whole cycle (has a cycle, not a forest)
        stretches = edge_stretches(g, sub)
        assert np.allclose(stretches, 1.0)

    def test_forest_dispatch_matches_tree_path(self, grid_graph):
        tree = minimum_spanning_tree_edges(grid_graph)
        s1 = edge_stretches(grid_graph, tree)
        s2 = tree_stretches(grid_graph, tree)
        assert np.allclose(s1, s2)

    def test_extra_edges_reduce_stretch(self, grid_graph):
        tree = minimum_spanning_tree_edges(grid_graph)
        t_total = total_stretch(grid_graph, tree)
        richer = np.union1d(tree, np.arange(0, grid_graph.num_edges, 7))
        r_total = total_stretch(grid_graph, richer)
        assert r_total <= t_total + 1e-9

    def test_aggregates(self, grid_graph):
        tree = minimum_spanning_tree_edges(grid_graph)
        stretches = edge_stretches(grid_graph, tree)
        assert total_stretch(grid_graph, tree) == pytest.approx(stretches.sum())
        assert average_stretch(grid_graph, tree) == pytest.approx(stretches.mean())


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=25),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_tree_stretch_at_least_one_for_unit_weights(n, seed):
    """For unweighted graphs tree distances are at least the edge length 1."""
    rng = np.random.default_rng(seed)
    m = min(n * (n - 1) // 2, 3 * n)
    g = generators.erdos_renyi_gnm(n, max(n - 1, m // 2), seed=seed)
    tree = minimum_spanning_tree_edges(g)
    stretches = tree_stretches(g, tree)
    assert np.all(stretches >= 1.0 - 1e-9)
    # tree edges have stretch exactly 1
    assert np.allclose(stretches[tree], 1.0)
