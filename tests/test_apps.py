"""Tests for the applications built on the solver and decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.maxflow import approx_max_flow, exact_max_flow
from repro.apps.spanner import approximate_distances, decomposition_spanner
from repro.apps.sparsification import (
    effective_resistances,
    quadratic_form_distortion,
    spectral_sparsify,
)
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.graph.shortest_paths import dijkstra_distances
from repro.testing import dense_effective_resistances


class TestEffectiveResistances:
    def test_exact_resistance_of_path(self):
        g = generators.path_graph(4)
        r = effective_resistances(g, exact=True)
        assert np.allclose(r, 1.0)
        assert np.allclose(r, dense_effective_resistances(g))

    def test_exact_resistance_of_parallel_paths(self):
        # cycle of length 4: each edge sees 1 ohm in series with 3 ohms in parallel
        g = generators.cycle_graph(4)
        r = effective_resistances(g, exact=True)
        assert np.allclose(r, 0.75)

    def test_exact_path_matches_dense_oracle(self):
        g = generators.weighted_grid_2d(5, 5, seed=2, spread=20.0)
        assert np.allclose(
            effective_resistances(g, exact=True), dense_effective_resistances(g), rtol=1e-10
        )

    def test_solver_based_estimates_close_to_exact(self):
        g = generators.erdos_renyi_gnm(60, 200, seed=0)
        exact = dense_effective_resistances(g)
        approx = effective_resistances(g, jl_dimension=120, seed=1, solver_tol=1e-8)
        rel = np.abs(approx - exact) / exact
        assert np.median(rel) <= 0.35

    def test_sum_of_leverage_scores_is_n_minus_one(self):
        g = generators.erdos_renyi_gnm(40, 150, seed=1)
        r = dense_effective_resistances(g)
        assert float(np.sum(g.w * r)) == pytest.approx(g.n - 1, rel=1e-6)


class TestSpectralSparsifier:
    def test_sparsifier_preserves_quadratic_forms(self):
        g = generators.erdos_renyi_gnm(80, 800, seed=2)
        res = spectral_sparsify(g, epsilon=0.5, seed=0, exact_resistances=True)
        distortion = quadratic_form_distortion(g, res.graph, seed=3)
        assert distortion <= 0.5

    def test_sparsifier_reduces_edges_on_dense_graph(self):
        g = generators.complete_graph(60)
        res = spectral_sparsify(g, epsilon=0.5, seed=0, exact_resistances=True,
                                num_samples=8 * g.n)
        assert res.graph.num_edges < g.num_edges

    def test_total_weight_roughly_preserved(self):
        g = generators.erdos_renyi_gnm(60, 500, seed=4)
        res = spectral_sparsify(g, epsilon=0.5, seed=1, exact_resistances=True)
        assert res.graph.total_weight == pytest.approx(g.total_weight, rel=0.5)

    def test_empty_graph(self):
        g = Graph(4, [], [], [])
        res = spectral_sparsify(g, seed=0)
        assert res.graph.num_edges == 0


class TestMaxFlow:
    def test_exact_on_path(self):
        g = Graph(3, [0, 1], [1, 2], [2.0, 5.0])
        res = exact_max_flow(g, 0, 2)
        assert res.value == pytest.approx(2.0)

    def test_exact_on_parallel_paths(self):
        # two disjoint s-t paths with capacities 1 and 2
        g = Graph(4, [0, 1, 0, 2], [1, 3, 2, 3], [1.0, 1.0, 2.0, 2.0])
        res = exact_max_flow(g, 0, 3)
        assert res.value == pytest.approx(3.0)

    def test_exact_flow_conservation(self):
        g = generators.grid_2d(5, 5)
        res = exact_max_flow(g, 0, 24)
        net = np.zeros(g.n)
        np.add.at(net, g.u, -res.flow)
        np.add.at(net, g.v, res.flow)
        interior = np.setdiff1d(np.arange(g.n), [0, 24])
        assert np.allclose(net[interior], 0.0, atol=1e-9)
        assert net[24] == pytest.approx(res.value)

    def test_exact_respects_capacities(self):
        g = generators.weighted_grid_2d(5, 5, seed=0, spread=5)
        res = exact_max_flow(g, 0, 24)
        assert res.congestion <= 1.0 + 1e-9

    def test_exact_rejects_same_source_sink(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            exact_max_flow(g, 1, 1)

    def test_approx_close_to_exact_on_grid(self):
        g = generators.grid_2d(6, 6)
        exact = exact_max_flow(g, 0, g.n - 1)
        approx = approx_max_flow(g, 0, g.n - 1, epsilon=0.3, seed=0)
        assert approx.value >= (1 - 0.45) * exact.value
        assert approx.value <= exact.value * (1 + 0.45)
        assert approx.congestion <= 1.0 + 0.3 + 1e-6

    def test_approx_certifies_given_value(self):
        g = generators.grid_2d(5, 5)
        exact = exact_max_flow(g, 0, 24)
        res = approx_max_flow(g, 0, 24, epsilon=0.3, seed=1, flow_value=0.5 * exact.value)
        assert res.stats["feasible"] == 1.0

    def test_approx_empty_graph(self):
        g = Graph(2, [], [], [])
        res = approx_max_flow(g, 0, 1, seed=0)
        assert res.value == 0.0


class TestSpanner:
    def test_spanner_spans(self, grid_graph):
        sp = decomposition_spanner(grid_graph, rho=4, seed=0)
        dist = approximate_distances(grid_graph, sp, np.array([0]))[0]
        assert np.all(np.isfinite(dist))

    def test_spanner_sparser_than_graph(self):
        g = generators.erdos_renyi_gnm(300, 2000, seed=1)
        sp = decomposition_spanner(g, rho=4, seed=0)
        assert sp.num_edges < g.num_edges

    def test_spanner_distance_distortion_bounded(self, grid_graph):
        sp = decomposition_spanner(grid_graph, rho=4, seed=0)
        d_orig = dijkstra_distances(grid_graph, 0)[0]
        d_span = approximate_distances(grid_graph, sp, np.array([0]))[0]
        ratio = d_span[1:] / d_orig[1:]
        assert np.max(ratio) <= 16.0  # O(rho)-ish per level

    def test_spanner_contains_forest(self, grid_graph):
        from repro.graph.mst import is_spanning_forest
        from repro.graph.union_find import UnionFind

        sp = decomposition_spanner(grid_graph, rho=4, seed=0)
        uf = UnionFind(grid_graph.n)
        for e in sp.edge_indices:
            uf.union(int(grid_graph.u[e]), int(grid_graph.v[e]))
        assert uf.num_sets == 1
