"""Concurrent solves on one shared factorized operator.

The paper's parallel-solver story only serves traffic if a single
:class:`~repro.core.operator.LaplacianOperator` (possibly shared through the
process-level chain cache) can run many solves at once.  These tests pin the
re-entrancy contract: every concurrent :class:`SolveReport` must match the
serial one **bit for bit** — ``x``, ``work``, and ``depth`` — for warm and
cold-start operators, for both chain methods, and the chain cache must stay
exact under concurrent store/lookup pressure.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.chain_cache import (
    chain_cache_stats,
    clear_chain_cache,
    set_chain_cache_capacity,
)
from repro.core.config import SolverConfig
from repro.core.operator import factorize
from repro.graph import generators

NUM_THREADS = 8
SOLVES_PER_THREAD = 3


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_chain_cache()
    yield
    clear_chain_cache()


def _problem(side=6, seed=1, width=None):
    g = generators.grid_2d(side, side)
    rng = np.random.default_rng(seed)
    shape = (g.n,) if width is None else (g.n, width)
    b = rng.standard_normal(shape)
    b -= b.mean(axis=0)
    return g, b


def _run_threads(worker, num_threads=NUM_THREADS):
    """Run ``worker(i)`` on ``num_threads`` threads through a start barrier."""
    barrier = threading.Barrier(num_threads)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            worker(i)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def _assert_report_matches(report, reference):
    np.testing.assert_array_equal(report.x, reference.x)
    assert report.work == reference.work
    assert report.depth == reference.depth
    assert report.iterations == reference.iterations
    assert report.relative_residual == reference.relative_residual
    assert report.converged == reference.converged


class TestSharedOperatorStress:
    @pytest.mark.parametrize("method", ["pcg", "chebyshev"])
    def test_warm_operator_bit_identical_under_8_threads(self, method):
        """The ISSUE repro: concurrent per-solve work must equal serial work."""
        g, b = _problem()
        op = factorize(g, solver=SolverConfig(method=method), seed=0)
        reference = op.solve(b)  # warm: any lazy calibration happens here
        assert reference.converged

        reports = [[None] * SOLVES_PER_THREAD for _ in range(NUM_THREADS)]

        def worker(i):
            for j in range(SOLVES_PER_THREAD):
                reports[i][j] = op.solve(b)

        _run_threads(worker)
        for per_thread in reports:
            for report in per_thread:
                _assert_report_matches(report, reference)

    @pytest.mark.parametrize("method", ["pcg", "chebyshev"])
    def test_cold_start_concurrent_solves(self, method):
        """First-ever solves race the lazy initializers; all must still agree."""
        g, b = _problem()
        op = factorize(g, solver=SolverConfig(method=method), seed=0)
        reports = [None] * NUM_THREADS

        def worker(i):
            reports[i] = op.solve(b)

        _run_threads(worker)
        reference = op.solve(b)
        for report in reports:
            _assert_report_matches(report, reference)

    def test_cold_start_method_overrides(self):
        """Lazy Chebyshev/dense/Jacobi setup races on a pcg-configured operator."""
        g, b = _problem()
        op = factorize(g, seed=0)
        methods = ["chebyshev", "direct", "jacobi", "pcg"]
        reports = [None] * NUM_THREADS

        def worker(i):
            reports[i] = op.solve(b, method=methods[i % len(methods)])

        _run_threads(worker)
        references = {m: op.solve(b, method=m) for m in methods}
        for i, report in enumerate(reports):
            _assert_report_matches(report, references[methods[i % len(methods)]])

    def test_lazy_setup_charged_once_and_never_to_a_solve(self):
        """Cold-start races must not duplicate calibration/factorization work."""
        g, b = _problem()
        op = factorize(g, seed=0)
        setup_before = op.setup_work

        def worker(i):
            op.solve(b, method="chebyshev" if i % 2 == 0 else "direct")

        _run_threads(worker)
        calibrated_setup = op.setup_work
        assert calibrated_setup > setup_before  # charged to setup accounting...
        op.solve(b, method="chebyshev")
        op.solve(b, method="direct")
        assert op.setup_work == calibrated_setup  # ...exactly once

    def test_batched_and_mixed_width_solves(self):
        """Concurrent (n,) and (n, k) solves on one operator stay exact."""
        g, b1 = _problem()
        _, b4 = _problem(width=4, seed=7)
        op = factorize(g, seed=0)
        ref1, ref4 = op.solve(b1), op.solve(b4)
        reports = [None] * NUM_THREADS

        def worker(i):
            reports[i] = op.solve(b1 if i % 2 == 0 else b4)

        _run_threads(worker)
        for i, report in enumerate(reports):
            _assert_report_matches(report, ref1 if i % 2 == 0 else ref4)

    def test_cumulative_accounting_is_lossless(self):
        """op.cost accumulates exactly num_solves * per-solve work."""
        g, b = _problem()
        op = factorize(g, seed=0)
        reference = op.solve(b)
        work_before = op.cost.work

        def worker(i):
            for _ in range(SOLVES_PER_THREAD):
                op.solve(b)

        _run_threads(worker)
        total = NUM_THREADS * SOLVES_PER_THREAD
        assert op.cost.work - work_before == pytest.approx(total * reference.work)


class TestChainCacheConcurrency:
    def test_concurrent_hits_on_warm_cache_count_exactly(self):
        g, b = _problem(side=8)
        op = factorize(g, seed=0, cache=True)  # warm: exactly one miss
        reference = op.solve(b)
        lookups_per_thread = 4

        def worker(i):
            for _ in range(lookups_per_thread):
                shared = factorize(g, seed=0, cache=True)
                assert shared is op
                _assert_report_matches(shared.solve(b), reference)

        _run_threads(worker)
        stats = chain_cache_stats()
        assert stats.misses == 1
        assert stats.hits == NUM_THREADS * lookups_per_thread
        assert stats.size == 1

    def test_concurrent_stores_of_distinct_keys(self):
        graphs = [generators.grid_2d(4 + i, 4) for i in range(NUM_THREADS)]

        def worker(i):
            factorize(graphs[i], seed=0, cache=True)

        _run_threads(worker)
        stats = chain_cache_stats()
        assert stats.misses == NUM_THREADS
        assert stats.hits == 0
        assert stats.size == NUM_THREADS
        # every key is now resident: a second sweep is all hits
        _run_threads(worker)
        assert chain_cache_stats().hits == NUM_THREADS

    def test_concurrent_stores_respect_capacity(self):
        set_chain_cache_capacity(4)
        try:
            graphs = [generators.grid_2d(4 + i, 4) for i in range(NUM_THREADS)]

            def worker(i):
                factorize(graphs[i], seed=0, cache=True)

            _run_threads(worker)
            assert chain_cache_stats().size == 4
        finally:
            set_chain_cache_capacity(32)


class TestUpdateRacingSolves:
    def test_update_while_8_threads_solve_old_operator(self):
        """``op.update`` builds new operators; it never touches the old one.

        Threads hammer the original operator while the main thread applies a
        sequence of patch/rebuild updates.  Every concurrent report must stay
        bit-identical to the pre-update serial reference, and each updated
        operator must still converge on its own (mutated) graph.
        """
        from repro.graph.edits import EdgeEdits

        g, b = _problem(side=8, seed=2)
        op = factorize(g, seed=0)
        reference = op.solve(b, tol=1e-8)
        updated_ops = []

        def worker(i):
            for _ in range(SOLVES_PER_THREAD):
                _assert_report_matches(op.solve(b, tol=1e-8), reference)

        barrier = threading.Barrier(NUM_THREADS + 1)
        errors = []

        def wrapped(i):
            try:
                barrier.wait()
                worker(i)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=wrapped, args=(i,)) for i in range(NUM_THREADS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        cur, cur_g = op, g
        for i in range(4):
            edits = EdgeEdits.reweights([i], [2.0 + i])
            cur_g = cur_g.apply_edits(edits)
            cur, report = cur.update(edits)
            assert report.strategy in ("patched", "rebuilt")
            updated_ops.append((cur, cur_g))
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        # The final updated operator agrees with a fresh factorize of the
        # final graph — the race changed nothing about update correctness.
        final_op, final_g = updated_ops[-1]
        fresh = factorize(final_g, seed=0)
        rng = np.random.default_rng(9)
        rhs = rng.standard_normal(final_g.n)
        x_upd = final_op.solve(rhs, tol=1e-10).x
        x_ref = fresh.solve(rhs, tol=1e-10).x
        assert np.max(np.abs(x_upd - x_ref)) <= 1e-8
