"""Tests for the shared linear-algebra helpers and baseline solvers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.cg import conjugate_gradient
from repro.linalg.direct import (
    laplacian_pseudoinverse,
    solve_laplacian_direct,
    solve_sdd_direct,
)
from repro.linalg.jacobi import gauss_seidel_sweep, jacobi_preconditioner
from repro.linalg.norms import a_norm, a_norm_error, relative_a_norm_error, residual_norm
from repro.linalg.operators import MatvecCounter, as_operator


@pytest.fixture(scope="module")
def spd_system():
    """A small SPD system with a known solution."""
    rng = np.random.default_rng(0)
    m = rng.standard_normal((40, 40))
    a = sp.csr_matrix(m @ m.T + 40 * np.eye(40))
    x = rng.standard_normal(40)
    return a, a @ x, x


@pytest.fixture(scope="module")
def laplacian_system():
    g = generators.weighted_grid_2d(10, 10, seed=1, spread=50)
    lap = graph_to_laplacian(g)
    rng = np.random.default_rng(1)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    return lap, b


class TestNorms:
    def test_a_norm_identity(self):
        a = sp.eye(3).tocsr()
        assert a_norm(a, [3.0, 4.0, 0.0]) == pytest.approx(5.0)

    def test_a_norm_nonnegative_rounding(self):
        a = sp.csr_matrix(np.zeros((2, 2)))
        assert a_norm(a, [1.0, 1.0]) == 0.0

    def test_relative_error_zero_for_exact(self, spd_system):
        a, b, x = spd_system
        assert relative_a_norm_error(a, x, x) == 0.0

    def test_relative_error_scale_invariance(self, spd_system):
        a, _, x = spd_system
        err1 = relative_a_norm_error(a, 1.1 * x, x)
        err2 = relative_a_norm_error(2 * a, 1.1 * x, x)
        assert err1 == pytest.approx(err2)

    def test_residual_norm(self, spd_system):
        a, b, x = spd_system
        assert residual_norm(a, x, b) == pytest.approx(0.0, abs=1e-10)
        assert residual_norm(a, np.zeros_like(x), b) == pytest.approx(1.0)

    def test_a_norm_error_triangle(self, spd_system):
        a, _, x = spd_system
        y = x + 1.0
        assert a_norm_error(a, y, x) == pytest.approx(a_norm(a, np.ones_like(x)))


class TestOperators:
    def test_counter_counts(self, spd_system):
        a, b, _ = spd_system
        op = MatvecCounter(a)
        op(b)
        op @ b
        assert op.count == 2
        assert op.nnz == a.nnz
        assert op.work == 2 * a.nnz

    def test_counter_wraps_callable(self):
        op = MatvecCounter(lambda x: 2 * x)
        assert np.allclose(op(np.ones(3)), 2.0)
        assert op.count == 1

    def test_as_operator(self, spd_system):
        a, b, _ = spd_system
        f = as_operator(a)
        assert np.allclose(f(b), a @ b)
        g = as_operator(lambda x: x + 1)
        assert np.allclose(g(np.zeros(2)), 1.0)


class TestConjugateGradient:
    def test_solves_spd(self, spd_system):
        a, b, x = spd_system
        res = conjugate_gradient(a, b, tol=1e-12, max_iterations=500)
        assert res.converged
        assert np.allclose(res.x, x, atol=1e-6)

    def test_preconditioned_faster(self, laplacian_system):
        lap, b = laplacian_system
        plain = conjugate_gradient(lap, b, tol=1e-10, max_iterations=2000, project_nullspace=True)
        precond = conjugate_gradient(
            lap,
            b,
            tol=1e-10,
            max_iterations=2000,
            preconditioner=jacobi_preconditioner(lap),
            project_nullspace=True,
        )
        assert precond.converged and plain.converged
        assert precond.iterations <= plain.iterations + 5

    def test_laplacian_with_projection(self, laplacian_system):
        lap, b = laplacian_system
        res = conjugate_gradient(lap, b, tol=1e-10, max_iterations=2000, project_nullspace=True)
        assert res.converged
        x_exact = solve_laplacian_direct(lap, b)
        assert np.allclose(res.x - res.x.mean(), x_exact, atol=1e-6)

    def test_fixed_iterations(self, spd_system):
        a, b, _ = spd_system
        res = conjugate_gradient(a, b, fixed_iterations=3)
        assert res.iterations == 3

    def test_zero_rhs(self, spd_system):
        a, _, _ = spd_system
        res = conjugate_gradient(a, np.zeros(a.shape[0]))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_x0_used(self, spd_system):
        a, b, x = spd_system
        res = conjugate_gradient(a, b, x0=x, tol=1e-12)
        assert res.iterations <= 1

    def test_residual_history_monotone_overall(self, spd_system):
        a, b, _ = spd_system
        res = conjugate_gradient(a, b, tol=1e-12, max_iterations=200)
        assert res.residual_norms[-1] < res.residual_norms[0]


class TestJacobiGaussSeidel:
    def test_jacobi_preconditioner_is_diag_inverse(self, spd_system):
        a, b, _ = spd_system
        m = jacobi_preconditioner(a)
        assert np.allclose(m(b), b / a.diagonal())

    def test_jacobi_handles_zero_diag(self):
        a = sp.csr_matrix(np.diag([2.0, 0.0, 4.0]))
        m = jacobi_preconditioner(a)
        out = m(np.ones(3))
        assert out[1] == 0.0

    def test_gauss_seidel_reduces_residual(self, spd_system):
        a, b, x = spd_system
        x0 = np.zeros_like(b)
        x1 = gauss_seidel_sweep(a, b, x0, sweeps=5)
        assert residual_norm(a, x1, b) < residual_norm(a, x0, b)


class TestDirect:
    def test_solve_laplacian_direct(self, laplacian_system):
        lap, b = laplacian_system
        x = solve_laplacian_direct(lap, b)
        assert np.allclose(lap @ x, b - b.mean(), atol=1e-8)
        assert abs(x.mean()) < 1e-10

    def test_laplacian_pseudoinverse(self, laplacian_system):
        lap, b = laplacian_system
        pinv = laplacian_pseudoinverse(lap)
        x = pinv @ b
        assert np.allclose(lap @ x, b, atol=1e-7)

    def test_solve_sdd_direct(self):
        mat, b = generators.weighted_sdd_system(30, 70, seed=0)
        x = solve_sdd_direct(mat, b)
        assert np.allclose(mat @ x, b, atol=1e-8)

    def test_single_vertex_laplacian(self):
        lap = sp.csr_matrix((1, 1))
        assert solve_laplacian_direct(lap, np.array([0.0])).shape == (1,)
