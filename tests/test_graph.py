"""Unit and property tests for the core Graph container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.edits import EdgeEdits
from repro.graph.graph import Graph


# --------------------------------------------------------------------------- #
# construction and validation
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_basic_construction(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.total_weight == pytest.approx(6.0)

    def test_default_unit_weights(self):
        g = Graph(3, [0, 1], [1, 2])
        assert np.allclose(g.w, 1.0)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [0, 2])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            Graph(3, [0], [1], [-1.0])

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            Graph(3, [0], [1], [0.0])

    def test_rejects_out_of_range_vertex(self):
        with pytest.raises(ValueError):
            Graph(2, [0], [5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])

    def test_empty_graph(self):
        g = Graph(5, [], [], [])
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0] * 5

    def test_from_edge_list(self):
        g = Graph.from_edge_list(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_edges == 2
        assert g.w.tolist() == [2.0, 3.0]

    def test_from_scipy_adjacency_roundtrip(self):
        g = generators.grid_2d(4, 4)
        adj = g.adjacency_matrix()
        g2 = Graph.from_scipy_adjacency(adj)
        assert g2.num_edges == g.num_edges
        assert g2.total_weight == pytest.approx(g.total_weight)

    def test_equality(self):
        g1 = Graph(3, [0, 1], [1, 2])
        g2 = Graph(3, [0, 1], [1, 2])
        g3 = Graph(3, [0], [2])
        assert g1 == g2
        assert g1 != g3


# --------------------------------------------------------------------------- #
# degrees, adjacency, incidence
# --------------------------------------------------------------------------- #
class TestAdjacency:
    def test_degrees_path(self):
        g = generators.path_graph(5)
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_weighted_degrees(self):
        g = Graph(3, [0, 1], [1, 2], [2.0, 5.0])
        assert g.degrees(weighted=True).tolist() == [2.0, 7.0, 5.0]

    def test_neighbors(self):
        g = generators.star_graph(5)
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 3, 4]
        assert g.neighbors(1).tolist() == [0]

    def test_incident_edges(self):
        g = generators.path_graph(4)
        assert len(g.incident_edges(0)) == 1
        assert len(g.incident_edges(1)) == 2

    def test_adjacency_matrix_symmetric(self):
        g = generators.erdos_renyi_gnm(30, 80, seed=0)
        adj = g.adjacency_matrix()
        assert (adj - adj.T).nnz == 0

    def test_incidence_matrix_gives_laplacian(self):
        from repro.graph.laplacian import graph_to_laplacian

        g = generators.weighted_grid_2d(5, 5, seed=2)
        B = g.incidence_matrix()
        L = graph_to_laplacian(g)
        assert np.allclose((B.T @ B).toarray(), L.toarray())

    def test_parallel_edges_counted(self):
        g = Graph(3, [0, 0], [1, 1], [1.0, 2.0])
        assert g.num_edges == 2
        assert g.degrees()[0] == 2


# --------------------------------------------------------------------------- #
# subgraphs, coalescing, reweighting
# --------------------------------------------------------------------------- #
class TestTransforms:
    def test_edge_subgraph(self):
        g = generators.path_graph(5)
        sub = g.edge_subgraph(np.array([0, 2]))
        assert sub.num_edges == 2
        assert sub.n == g.n

    def test_edge_subgraph_bool_mask(self):
        g = generators.path_graph(5)
        mask = np.array([True, False, True, False])
        sub = g.edge_subgraph(mask)
        assert sub.num_edges == 2

    def test_induced_subgraph(self):
        g = generators.grid_2d(4, 4)
        verts = np.array([0, 1, 2, 3])  # first row
        sub, eidx = g.induced_subgraph(verts)
        assert sub.n == 4
        assert sub.num_edges == 3
        assert np.all(g.u[eidx] < 4) and np.all(g.v[eidx] < 4)

    def test_coalesce_merges_parallel_edges(self):
        g = Graph(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 5.0])
        simple, inverse = g.coalesce()
        assert simple.num_edges == 2
        assert simple.total_weight == pytest.approx(8.0)
        assert inverse.shape[0] == 3

    def test_reweighted(self):
        g = generators.path_graph(4)
        g2 = g.reweighted([2.0, 3.0, 4.0])
        assert g2.total_weight == pytest.approx(9.0)
        assert g.total_weight == pytest.approx(3.0)

    def test_add_edges(self):
        g = generators.path_graph(4)
        g2 = g.add_edges([0], [3], [7.0])
        assert g2.num_edges == g.num_edges + 1
        assert g2.w[-1] == 7.0

    def test_copy_independent(self):
        g = generators.path_graph(3)
        g2 = g.copy()
        g2.w[0] = 100.0
        assert g.w[0] == 1.0

    def test_weight_buckets(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 4.0, 16.0])
        buckets = g.weight_buckets(4.0)
        assert buckets.tolist() == [1, 2, 3]

    def test_weight_buckets_requires_base_gt_one(self):
        g = generators.path_graph(3)
        with pytest.raises(ValueError):
            g.weight_buckets(1.0)


# --------------------------------------------------------------------------- #
# mutation helpers and fingerprint canonicalization
# --------------------------------------------------------------------------- #
class TestMutation:
    def test_add_edges_preserves_index_dtype(self):
        """Regression: appending used to downcast explicit index dtypes."""
        for dtype in (np.int32, np.int64):
            g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0], index_dtype=dtype)
            g2 = g.add_edges([0], [3], [7.0])
            assert g2.u.dtype == np.dtype(dtype)
            assert g2.v.dtype == np.dtype(dtype)

    def test_fingerprint_invariant_under_weight_dtype(self):
        """Regression: float32 weights hashed different bytes than float64."""
        u, v, w = [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0]
        g64 = Graph(4, u, v, np.array(w, dtype=np.float64))
        g32 = Graph(4, u, v, np.array(w, dtype=np.float32))
        assert g64.fingerprint() == g32.fingerprint()

    def test_delete_edges_by_index_and_mask(self):
        g = generators.path_graph(5)
        by_index = g.delete_edges([1, 3])
        mask = np.zeros(g.num_edges, dtype=bool)
        mask[[1, 3]] = True
        by_mask = g.delete_edges(mask)
        for g2 in (by_index, by_mask):
            assert g2.num_edges == 2
            assert g2.n == g.n
        assert np.array_equal(by_index.u, by_mask.u)

    def test_delete_edges_empty_selection_roundtrips(self):
        g = generators.path_graph(4)
        g2 = g.delete_edges([])
        assert g2.num_edges == g.num_edges
        assert g2.fingerprint() == g.fingerprint()

    def test_reweight_edges(self):
        g = generators.path_graph(4)
        g2 = g.reweight_edges([0, 2], [5.0, 9.0])
        assert g2.w.tolist() == [5.0, 1.0, 9.0]
        assert g.w.tolist() == [1.0, 1.0, 1.0]  # original untouched

    def test_apply_edits_order_and_index_map(self):
        g = generators.path_graph(5)  # edges (0,1),(1,2),(2,3),(3,4)
        edits = EdgeEdits.merge(
            EdgeEdits.deletes([1]),
            EdgeEdits.reweights([3], [4.0]),
            EdgeEdits.inserts([0], [4], [2.5]),
        )
        g2, index_map = g.apply_edits(edits, return_index_map=True)
        # Surviving originals keep their relative order, inserts go last.
        assert g2.num_edges == 4
        assert index_map.tolist() == [0, -1, 1, 2]
        assert g2.w[index_map[3]] == 4.0
        assert g2.w[-1] == 2.5
        assert (g2.u[-1], g2.v[-1]) == (0, 4)

    def test_apply_edits_validates_bounds(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            g.apply_edits(EdgeEdits.deletes([g.num_edges]))
        with pytest.raises(ValueError):
            g.apply_edits(EdgeEdits.inserts([0], [g.n], [1.0]))

    def test_edge_edits_rejects_overlapping_delete_reweight(self):
        with pytest.raises(ValueError):
            EdgeEdits.merge(EdgeEdits.deletes([2]), EdgeEdits.reweights([2], [1.0]))


# --------------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    keep = u != v
    if not np.any(keep):
        u, v = np.array([0]), np.array([1])
        keep = np.array([True])
    w = rng.random(keep.sum()) + 0.1
    return Graph(n, u[keep], v[keep], w)


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_degrees_sum_to_twice_edges(g: Graph):
    assert int(g.degrees().sum()) == 2 * g.num_edges


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_adjacency_consistent_with_edges(g: Graph):
    indptr, neighbors, edge_ids = g.adjacency
    assert indptr[-1] == 2 * g.num_edges
    # Every edge id appears exactly twice.
    counts = np.bincount(edge_ids, minlength=g.num_edges)
    assert np.all(counts == 2)


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_coalesce_preserves_total_weight(g: Graph):
    simple, _ = g.coalesce()
    assert simple.total_weight == pytest.approx(g.total_weight)
    # No parallel edges remain.
    keys = set()
    for a, b in zip(simple.u, simple.v):
        key = (min(a, b), max(a, b))
        assert key not in keys
        keys.add(key)


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_incidence_matches_laplacian(g: Graph):
    from repro.graph.laplacian import graph_to_laplacian

    B = g.incidence_matrix()
    L = graph_to_laplacian(g)
    assert np.allclose((B.T @ B).toarray(), L.toarray(), atol=1e-9)
