"""Array-namespace backend tests: residency, strictness, and agreement.

The fakedevice backend is the residency proof for the whole array-namespace
abstraction: its arrays refuse every implicit host coercion, so any code
path that silently falls back to host NumPy fails loudly, and its transfer
counter lets these tests assert the O(1)-host-syncs-per-solve contract —
one RHS ingress, one solution egress, with only scalar-sized control pulls
in between (plus the sanctioned bottom-level round trips).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.core import chain_cache
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.kernels import KernelBackendError, get_kernels
from repro.kernels.array_ns import (
    ARRAY_BACKEND_ENV_VAR,
    ArrayBackendError,
    FakeDeviceArray,
    available_array_backends,
    get_namespace,
    is_valid_backend_name,
    resolve_backend_name,
)
from repro.testing import fuzz_corpus


@pytest.fixture(autouse=True)
def _no_env_backend(monkeypatch):
    """These tests select backends explicitly; neutralize the CI lane env."""
    monkeypatch.delenv(ARRAY_BACKEND_ENV_VAR, raising=False)


FD = get_namespace("fakedevice")

#: Corpus cases, built once (graph construction is the expensive part).
CASES = fuzz_corpus(seed=0)
CASE_IDS = [c.name for c in CASES]


def _rhs(graph, k=2, seed=11):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((graph.n, k))
    return b - b.mean(axis=0)


# --------------------------------------------------------------------------- #
# backend-name resolution
# --------------------------------------------------------------------------- #
class TestBackendNames:
    def test_valid_names(self):
        assert is_valid_backend_name("numpy")
        assert is_valid_backend_name("cupy")
        assert is_valid_backend_name("fakedevice")
        assert is_valid_backend_name("array_api:array_api_strict")
        assert not is_valid_backend_name("array_api:")
        assert not is_valid_backend_name("bogus")
        assert not is_valid_backend_name(None)
        assert not is_valid_backend_name(3)

    def test_resolve_defaults_to_numpy(self):
        assert resolve_backend_name(None) == "numpy"
        assert resolve_backend_name("fakedevice") == "fakedevice"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "fakedevice")
        assert resolve_backend_name("numpy") == "fakedevice"

    def test_env_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ArrayBackendError, match="REPRO_ARRAY_BACKEND"):
            resolve_backend_name("numpy")

    def test_get_namespace_unknown_raises(self):
        with pytest.raises(ArrayBackendError, match="unknown array backend"):
            get_namespace("bogus")

    def test_get_namespace_is_cached_singleton(self):
        assert get_namespace("fakedevice") is get_namespace("fakedevice")
        assert get_namespace("numpy").is_host

    def test_available_backends(self):
        names = available_array_backends()
        assert "numpy" in names
        assert "fakedevice" in names

    def test_solver_config_validates_name(self):
        with pytest.raises(ValueError, match="unknown array_backend"):
            SolverConfig(array_backend="bogus")
        cfg = SolverConfig(array_backend="fakedevice")
        assert cfg.array_backend in cfg.cache_key()

    def test_unavailable_api_module_raises(self):
        with pytest.raises(ArrayBackendError, match="not importable"):
            get_namespace("array_api:this_module_does_not_exist")


# --------------------------------------------------------------------------- #
# fakedevice strictness: no implicit host coercion survives
# --------------------------------------------------------------------------- #
class TestFakeDeviceStrictness:
    def test_asarray_wraps_and_to_host_unwraps(self):
        a = FD.asarray(np.arange(3.0))
        assert isinstance(a, FakeDeviceArray)
        back = FD.to_host(a)
        assert type(back) is np.ndarray
        np.testing.assert_array_equal(back, np.arange(3.0))

    def test_implicit_coercion_refused(self):
        a = FD.asarray(np.arange(3.0))
        with pytest.raises(ArrayBackendError):
            np.asarray(a)
        with pytest.raises(ArrayBackendError):
            bool(a)
        with pytest.raises(ArrayBackendError):
            float(a)
        with pytest.raises(ArrayBackendError):
            list(a)

    def test_mixing_host_arrays_refused(self):
        a = FD.asarray(np.arange(3.0))
        host = np.arange(3.0)
        with pytest.raises(ArrayBackendError):
            a + host
        with pytest.raises(ArrayBackendError):
            host + a  # reflected: __array_ufunc__ = None defers to __radd__
        with pytest.raises(ArrayBackendError):
            a[:2] = host[:2]

    def test_device_arithmetic_matches_host(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 2))
        y = rng.standard_normal((5, 2))
        fx, fy = FD.asarray(x), FD.asarray(y)
        out = FD.to_host(fx * 2.0 + fy / 3.0 - fx**2)
        np.testing.assert_array_equal(out, x * 2.0 + y / 3.0 - x**2)

    def test_metadata_stays_host(self):
        a = FD.asarray(np.zeros((4, 3)))
        assert a.shape == (4, 3)
        assert a.ndim == 2
        assert a.dtype == np.float64
        assert a.nbytes == 4 * 3 * 8
        assert len(a) == 4


# --------------------------------------------------------------------------- #
# corpus-wide agreement with the numpy backend
# --------------------------------------------------------------------------- #
class TestCorpusAgreement:
    @pytest.mark.parametrize("method", ["pcg", "chebyshev", "jacobi"])
    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_fakedevice_matches_numpy(self, case, method):
        b = _rhs(case.graph)
        host = factorize(case.graph, solver=SolverConfig(method=method), seed=0)
        dev = factorize(
            case.graph,
            solver=SolverConfig(method=method, array_backend="fakedevice"),
            seed=0,
        )
        r_host = host.solve(b, tol=1e-9)
        r_dev = dev.solve(b, tol=1e-9)
        assert type(r_dev.x) is np.ndarray  # egress: reports are host-side
        assert r_dev.x.dtype == np.float64
        assert np.max(np.abs(r_host.x - r_dev.x)) <= 1e-12
        assert r_dev.iterations == r_host.iterations
        assert r_dev.converged == r_host.converged


# --------------------------------------------------------------------------- #
# residency: O(1) array-sized host syncs per solve
# --------------------------------------------------------------------------- #
class TestTransferBudget:
    def _solve_deltas(self, op, b, tol):
        before = FD.counter.snapshot()["counts"]
        report = op.solve(b, tol=tol)
        after = FD.counter.snapshot()["counts"]
        return report, {
            reason: after.get(reason, 0) - before.get(reason, 0)
            for reason in set(before) | set(after)
        }

    @pytest.mark.parametrize("method", ["pcg", "chebyshev", "jacobi"])
    def test_one_ingress_one_egress_per_solve(self, method):
        g = generators.weighted_grid_2d(10, 10, seed=3, spread=30.0)
        op = factorize(
            g, solver=SolverConfig(method=method, array_backend="fakedevice"), seed=0
        )
        b = _rhs(g, k=3)
        op.solve(b, tol=1e-2)  # warm-up: flush one-time lazy setup transfers
        # Solves of very different iteration counts (loose vs tight tol)
        # must move the same number of array-sized transfers: exactly one
        # RHS ingress and one solution egress.
        loose_report, loose = self._solve_deltas(op, b, tol=1e-2)
        tight_report, tight = self._solve_deltas(op, b, tol=1e-10)
        assert tight_report.iterations > loose_report.iterations
        for delta in (loose, tight):
            assert delta.get("ingress", 0) == 1
            assert delta.get("egress", 0) == 1
            assert delta.get("upload", 0) == 0  # uploads happen at factorize
            assert delta.get("setup", 0) == 0

    def test_control_pulls_stay_small(self):
        g = generators.grid_2d(10, 10)
        op = factorize(g, solver=SolverConfig(array_backend="fakedevice"), seed=0)
        b = _rhs(g, k=4)
        FD.counter.reset()
        op.solve(b, tol=1e-9)
        snap = FD.counter.snapshot()
        # Convergence control reads back O(k) scalars per iteration, never
        # an O(n) iterate.
        assert snap["max_elements"]["control"] <= b.shape[1]
        assert snap["max_elements"]["ingress"] == b.size
        assert snap["max_elements"]["egress"] == b.size

    def test_uploads_happen_once_at_factorize(self):
        g = generators.grid_2d(8, 8)
        FD.counter.reset()
        op = factorize(g, solver=SolverConfig(array_backend="fakedevice"), seed=0)
        uploads = FD.counter.snapshot()["counts"].get("upload", 0)
        assert uploads > 0
        op.solve(_rhs(g), tol=1e-8)
        op.solve(_rhs(g, seed=5), tol=1e-8)
        assert FD.counter.snapshot()["counts"].get("upload", 0) == uploads


# --------------------------------------------------------------------------- #
# batched == looped, backend round trips, operator surface
# --------------------------------------------------------------------------- #
class TestOperatorSurface:
    def test_batched_equals_looped_on_fakedevice(self):
        g = generators.weighted_grid_2d(9, 9, seed=5, spread=40.0)
        op = factorize(g, solver=SolverConfig(array_backend="fakedevice"), seed=0)
        b = _rhs(g, k=4)
        batch = op.solve(b, tol=1e-9)
        for j in range(b.shape[1]):
            solo = op.solve(b[:, j], tol=1e-9)
            np.testing.assert_array_equal(batch.x[:, j], solo.x)

    def test_to_backend_round_trip_bit_identical(self):
        g = generators.grid_2d(10, 10)
        b = _rhs(g, k=2)
        op = factorize(g, seed=0)
        baseline = op.solve(b, tol=1e-9)
        dev = op.to_backend("fakedevice")
        assert dev is not op
        assert dev.solver_config.array_backend == "fakedevice"
        back = dev.to_backend("numpy")
        np.testing.assert_array_equal(back.solve(b, tol=1e-9).x, baseline.x)

    def test_to_backend_same_backend_is_identity(self):
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0)
        assert op.to_backend("numpy") is op

    def test_to_backend_validates_name(self):
        op = factorize(generators.grid_2d(5, 5), seed=0)
        with pytest.raises(ValueError, match="unknown array_backend"):
            op.to_backend("bogus")

    def test_to_backend_carries_chebyshev_bounds(self):
        g = generators.grid_2d(10, 10)
        op = factorize(g, solver=SolverConfig(method="chebyshev"), seed=0)
        dev = op.to_backend("fakedevice")
        assert dev._chebyshev_ready
        assert dev._chebyshev_bounds == op._chebyshev_bounds
        b = _rhs(g)
        host = op.solve(b, tol=1e-9)
        np.testing.assert_array_equal(dev.solve(b, tol=1e-9).x, host.x)

    def test_env_override_resolved_into_operator(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "fakedevice")
        op = factorize(generators.grid_2d(6, 6), seed=0)
        assert op.solver_config.array_backend == "fakedevice"
        assert op.array_ns.name == "fakedevice"

    def test_cache_keys_distinguish_backends(self):
        g = generators.grid_2d(6, 6)
        k_host = chain_cache.make_key(g, ChainConfig(), SolverConfig(), 0)
        k_dev = chain_cache.make_key(
            g, ChainConfig(), SolverConfig(array_backend="fakedevice"), 0
        )
        assert k_host != k_dev

    def test_estimate_operator_bytes_counts_device_state(self):
        g = generators.grid_2d(8, 8)
        host_bytes = chain_cache.estimate_operator_bytes(factorize(g, seed=0))
        dev_bytes = chain_cache.estimate_operator_bytes(
            factorize(g, solver=SolverConfig(array_backend="fakedevice"), seed=0)
        )
        assert host_bytes > 0
        # The device operator holds host chain state *plus* uploaded twins.
        assert dev_bytes > host_bytes


# --------------------------------------------------------------------------- #
# kernel-backend combination rules
# --------------------------------------------------------------------------- #
class TestKernelCombination:
    def test_numba_with_device_backend_raises_at_factorize(self):
        g = generators.grid_2d(5, 5)
        with pytest.raises(
            KernelBackendError,
            match=r"kernel backend 'numba' supports only array_backend='numpy'",
        ):
            factorize(
                g,
                solver=SolverConfig(
                    kernel_backend="numba", array_backend="fakedevice"
                ),
                seed=0,
            )

    def test_get_kernels_device_dispatch(self):
        kset = get_kernels("auto", array_ns=FD)
        assert kset.array_ns is FD
        assert not kset.array_ns.is_host
        with pytest.raises(KernelBackendError, match="supports only array_backend"):
            get_kernels("numba", array_ns=FD)


# --------------------------------------------------------------------------- #
# generic Array-API lane (numpy's own array-API-compatible namespace)
# --------------------------------------------------------------------------- #
class TestArrayApiLane:
    def test_array_api_numpy_end_to_end(self):
        # numpy >= 2.0's main namespace is Array-API compatible, so it
        # exercises the generic `array_api:<module>` adapter without any
        # extra dependency; CI additionally runs the suite under
        # array_api_strict.
        g = generators.weighted_grid_2d(8, 8, seed=2, spread=20.0)
        b = _rhs(g)
        host = factorize(g, seed=0).solve(b, tol=1e-9)
        api = factorize(
            g, solver=SolverConfig(array_backend="array_api:numpy"), seed=0
        ).solve(b, tol=1e-9)
        np.testing.assert_array_equal(api.x, host.x)


# --------------------------------------------------------------------------- #
# source hygiene: the ported sweep module must stay namespace-pure
# --------------------------------------------------------------------------- #
def test_reference_kernels_have_no_bare_numpy_calls():
    import ast

    src = (
        pathlib.Path(__file__).resolve().parents[1]
        / "src"
        / "repro"
        / "kernels"
        / "reference.py"
    )
    tree = ast.parse(src.read_text())
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            offenders += [a.name for a in node.names if a.name.split(".")[0] == "numpy"]
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "numpy":
                offenders.append(node.module)
        elif isinstance(node, ast.Name) and node.id in ("np", "numpy"):
            offenders.append(f"{node.id} at line {node.lineno}")
    assert not offenders, (
        "reference kernels must route every array op through the namespace, "
        f"found direct numpy uses: {offenders}"
    )
