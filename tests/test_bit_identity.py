"""Pinned solve digests: the dtype-lean build must not move a single bit.

The four digests below were recorded at pre-dtype-refactor HEAD (int64
indices everywhere) with the exact recipe reproduced here.  The refactor
threads int32 indices and buffer reuse through the whole chain build; index
dtypes and allocation strategy must never change float arithmetic, so the
solutions have to match bit for bit — any drift in these hashes means a
semantic change snuck into the pipeline, not a "numerical difference".

The RNG state flows sequentially through the workloads, so the recipe is
order-sensitive by construction (that is part of what is pinned).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph import generators

#: (name, sha256-of-solution, outer iterations), recorded at pre-PR HEAD.
PINNED = {
    "pcg_grid24": (
        "6ed727dc0d3371c42dfec527870ee7a4925faa5bce22ee91a3eeef5b564157c1",
        52,
    ),
    "pcg_grid24_batch3": (
        "d62f60e42300153090452e82eb2747e93321f5bd6b7f497833ef45c893d4e28a",
        53,
    ),
    "cheb_wgrid20": (
        "942dc046dd36070041ae49e70be57a5cdbe76dbd84f6b87bcac338c3df67e4c8",
        30,
    ),
    "pcg_grid24_k16": (
        "64852083ea0107ca33957441c3937bd62d51dd31846f95147cb2c7cb01ccab98",
        34,
    ),
}


def _digest(x: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(x, dtype=np.float64).tobytes()
    ).hexdigest()


def _run_recipe():
    """The exact pre-PR measurement recipe (sequential RNG stream)."""
    out = {}
    g = generators.grid_2d(24, 24)
    op = factorize(g, seed=0)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    r = op.solve(b)
    out["pcg_grid24"] = (_digest(r.x), r.iterations)

    B = rng.standard_normal((g.n, 3))
    B -= B.mean(axis=0, keepdims=True)
    rb = op.solve(B)
    out["pcg_grid24_batch3"] = (_digest(rb.x), rb.iterations)

    wg = generators.weighted_grid_2d(20, 20, seed=3)
    op2 = factorize(wg, solver=SolverConfig(method="chebyshev"), seed=11)
    b2 = rng.standard_normal(wg.n)
    b2 -= b2.mean()
    r2 = op2.solve(b2)
    out["cheb_wgrid20"] = (_digest(r2.x), r2.iterations)

    op3 = factorize(g, chain=ChainConfig(kappa=16.0, max_levels=3), seed=5)
    r3 = op3.solve(b)
    out["pcg_grid24_k16"] = (_digest(r3.x), r3.iterations)
    return out


def test_default_config_solves_match_pre_refactor_digests():
    results = _run_recipe()
    for name, (digest, iters) in results.items():
        want_digest, want_iters = PINNED[name]
        assert digest == want_digest, (
            f"{name}: solution drifted from the pinned pre-refactor digest "
            f"({digest} != {want_digest})"
        )
        assert iters == want_iters, f"{name}: iteration count changed"


def test_int64_index_config_matches_default_bit_for_bit():
    g = generators.weighted_grid_2d(16, 16, seed=9)
    rng = np.random.default_rng(5)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    x32 = factorize(g, chain=ChainConfig(index_dtype="int32"), seed=4).solve(b).x
    x64 = factorize(g, chain=ChainConfig(index_dtype="int64"), seed=4).solve(b).x
    xauto = factorize(g, chain=ChainConfig(index_dtype="auto"), seed=4).solve(b).x
    assert _digest(x32) == _digest(x64) == _digest(xauto)
