"""Tests for the vectorized forest rooting / bulk union-find pipeline.

The vectorized implementations (Euler-tour rooting, bulk hooking union-find,
Borůvka spanning forests, bulk-BFS decomposition radii) are pinned against
small sequential reference implementations — the per-vertex DFS, per-edge
Kruskal scan, and per-component dict-relabeling loops they replaced — on
fixed seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import decomposition_radii, split_graph
from repro.core.stretch import _is_forest, tree_stretches
from repro.graph import generators
from repro.graph.forest import forest_components, is_forest_edges, root_forest
from repro.graph.graph import Graph
from repro.graph.mst import (
    is_spanning_forest,
    maximum_spanning_tree_edges,
    minimum_spanning_tree_edges,
)
from repro.graph.shortest_paths import bfs_distances
from repro.graph.union_find import UnionFind, connected_components_arrays
from repro.pram.model import CostModel


# --------------------------------------------------------------------------- #
# sequential reference implementations (the code paths this PR replaced)
# --------------------------------------------------------------------------- #
def reference_root_forest(n, u, v, w):
    """Per-vertex DFS rooting, as stretch._tree_structure used to do it."""
    g = Graph(n, u, v, w)
    indptr, neighbors, local_eids = g.adjacency
    parent = np.full(n, -1, dtype=np.int64)
    parent_w = np.zeros(n)
    hop = np.zeros(n, dtype=np.int64)
    wd = np.zeros(n)
    comp = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    c = 0
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        comp[root] = c
        stack = [root]
        while stack:
            x = stack.pop()
            for pos in range(indptr[x], indptr[x + 1]):
                y = int(neighbors[pos])
                if visited[y]:
                    continue
                visited[y] = True
                comp[y] = c
                parent[y] = x
                parent_w[y] = g.w[local_eids[pos]]
                hop[y] = hop[x] + 1
                wd[y] = wd[x] + parent_w[y]
                stack.append(y)
        c += 1
    return parent, parent_w, hop, wd, comp


def reference_kruskal(graph, order):
    """Per-edge union-find scan, as graph.mst used to do it."""
    uf = UnionFind(graph.n)
    chosen = []
    for e in order:
        if uf.union(int(graph.u[e]), int(graph.v[e])):
            chosen.append(e)
    return np.asarray(chosen, dtype=np.int64)


def reference_is_forest(graph, edge_indices):
    """Per-edge union loop, as core.stretch._is_forest used to do it."""
    if edge_indices.shape[0] >= graph.n:
        return False
    uf = UnionFind(graph.n)
    for e in edge_indices:
        if not uf.union(int(graph.u[e]), int(graph.v[e])):
            return False
    return True


def reference_radii(graph, decomposition):
    """Per-component dict-relabeled BFS, as decomposition_radii used to do it."""
    radii = np.zeros(decomposition.num_components, dtype=np.int64)
    for idx in range(decomposition.num_components):
        verts = decomposition.component_vertices(idx)
        center = decomposition.centers[idx]
        sub, _ = graph.induced_subgraph(verts)
        local = {int(v): i for i, v in enumerate(verts)}
        dist = bfs_distances(sub, local[int(center)])
        assert not np.any(dist < 0)
        radii[idx] = int(dist.max(initial=0))
    return radii


def assert_matches_reference(n, u, v, w):
    rooted = root_forest(n, u, v, w)
    parent, parent_w, hop, wd, comp = reference_root_forest(n, u, v, w)
    assert np.array_equal(rooted.parent, parent)
    assert np.allclose(rooted.parent_weight, parent_w)
    assert np.array_equal(rooted.hop_depth, hop)
    assert np.allclose(rooted.weighted_depth, wd)
    assert np.array_equal(rooted.component, comp)


# --------------------------------------------------------------------------- #
# root_forest
# --------------------------------------------------------------------------- #
class TestRootForest:
    def test_path_extreme(self):
        g = generators.path_graph(257)
        assert_matches_reference(g.n, g.u, g.v, g.w)
        rooted = root_forest(g.n, g.u, g.v, g.w)
        assert rooted.hop_depth.max() == 256
        assert rooted.num_trees == 1

    def test_star_extreme(self):
        g = generators.star_graph(100)
        assert_matches_reference(g.n, g.u, g.v, g.w)
        rooted = root_forest(g.n, g.u, g.v, g.w)
        assert rooted.hop_depth.max() == 1
        assert np.all(rooted.parent[1:] == 0)

    def test_caterpillar_extreme(self):
        # Spine 0-1-...-19 with three legs hanging off every spine vertex.
        spine = 20
        legs = 3
        su = np.arange(spine - 1)
        sv = su + 1
        lu = np.repeat(np.arange(spine), legs)
        lv = spine + np.arange(spine * legs)
        n = spine + spine * legs
        u = np.concatenate([su, lu])
        v = np.concatenate([sv, lv])
        w = np.linspace(0.5, 2.0, u.size)
        assert_matches_reference(n, u, v, w)
        rooted = root_forest(n, u, v, w)
        assert rooted.hop_depth.max() == spine  # deepest leg off the far end

    def test_disconnected_forest(self):
        # Three trees (path, star, single edge) plus isolated vertices.
        u = np.array([0, 1, 5, 5, 5, 10, 2])
        v = np.array([1, 2, 6, 7, 8, 11, 3])
        n = 14
        assert_matches_reference(n, u, v, np.ones(u.size))
        rooted = root_forest(n, u, v)
        assert rooted.num_trees == n - u.size
        # Components numbered by increasing root vertex; isolated vertices
        # are their own roots.
        assert rooted.roots.tolist() == sorted(rooted.roots.tolist())
        for iso in (4, 9, 12, 13):
            assert rooted.parent[iso] == -1
            assert rooted.hop_depth[iso] == 0

    def test_parallel_edge_host_graph(self):
        # A multigraph with a parallel pair: selecting one copy is a valid
        # forest and roots fine.
        g = Graph(3, [0, 0, 1], [1, 1, 2], [1.0, 3.0, 2.0])
        rooted = root_forest(g.n, g.u[[1, 2]], g.v[[1, 2]], g.w[[1, 2]])
        assert rooted.parent[1] == 0
        assert rooted.parent_weight[1] == pytest.approx(3.0)
        # tree_stretches over that forest sees the *other* parallel copy as
        # a query edge with stretch d_T(0,1)/w = 3.0 / 1.0.
        stretches = tree_stretches(g, np.array([1, 2]), query_edges=np.array([0]))
        assert stretches[0] == pytest.approx(3.0)

    def test_parallel_edges_rejected(self):
        # Both copies of a parallel pair form a 2-cycle: not a forest.
        with pytest.raises(ValueError):
            root_forest(2, [0, 0], [1, 1])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            root_forest(3, [0, 1, 2], [1, 2, 0])

    def test_empty_and_singleton(self):
        rooted = root_forest(0, [], [])
        assert rooted.num_trees == 0
        rooted = root_forest(1, [], [])
        assert rooted.num_trees == 1
        assert rooted.parent[0] == -1

    def test_random_forests_match_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(2, 60))
            g = generators.erdos_renyi_gnm(
                n,
                min(n * (n - 1) // 2, int(rng.integers(0, 3 * n))),
                seed=int(rng.integers(10**6)),
                connected=False,
            )
            if g.num_edges == 0:
                continue
            gw = g.reweighted(rng.random(g.num_edges) + 0.1)
            t = minimum_spanning_tree_edges(gw)
            assert_matches_reference(n, gw.u[t], gw.v[t], gw.w[t])

    def test_cost_charged(self):
        g = generators.path_graph(64)
        cost = CostModel()
        root_forest(g.n, g.u, g.v, g.w, cost=cost)
        assert cost.work > 0
        assert cost.rounds > 0
        # Pointer jumping: rounds are logarithmic, not linear, in the depth.
        assert cost.rounds < 64


# --------------------------------------------------------------------------- #
# bulk union-find / components
# --------------------------------------------------------------------------- #
class TestBulkUnionFind:
    def test_union_arrays_matches_scalar(self):
        rng = np.random.default_rng(3)
        for _ in range(30):
            n = int(rng.integers(2, 50))
            m = int(rng.integers(0, 3 * n))
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            keep = u != v
            u, v = u[keep], v[keep]
            bulk = UnionFind(n)
            bulk.union_arrays(u, v)
            scalar = UnionFind(n)
            for a, b in zip(u, v):
                scalar.union(int(a), int(b))
            assert bulk.num_sets == scalar.num_sets
            assert np.array_equal(bulk.labels(), scalar.labels())

    def test_mixed_scalar_and_bulk(self):
        uf = UnionFind(8)
        uf.union_arrays([0, 2], [1, 3])
        assert uf.union(1, 2)
        assert uf.connected(0, 3)
        assert uf.num_sets == 5

    def test_component_labels_by_min_vertex(self):
        count, labels = connected_components_arrays(6, [4, 1], [5, 2])
        assert count == 4
        # labels numbered by each component's smallest vertex: {0},{1,2},{3},{4,5}
        assert labels.tolist() == [0, 1, 1, 2, 3, 3]


# --------------------------------------------------------------------------- #
# Borůvka spanning forests vs the Kruskal reference
# --------------------------------------------------------------------------- #
class TestBoruvkaEquivalence:
    def test_min_and_max_match_kruskal(self):
        rng = np.random.default_rng(7)
        for trial in range(40):
            n = int(rng.integers(2, 60))
            m = int(rng.integers(1, 4 * n))
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            keep = u != v
            if not np.any(keep):
                continue
            # duplicate weights on purpose, to exercise the index tie-break
            w = rng.integers(1, 5, size=int(keep.sum())).astype(float)
            g = Graph(n, u[keep], v[keep], w)
            order_min = np.argsort(g.w, kind="stable")
            assert np.array_equal(
                minimum_spanning_tree_edges(g), reference_kruskal(g, order_min)
            ), trial
            order_max = np.argsort(-g.w, kind="stable")
            assert np.array_equal(
                maximum_spanning_tree_edges(g), reference_kruskal(g, order_max)
            ), trial

    def test_is_spanning_forest_matches_reference(self):
        g = generators.grid_2d(6, 6)
        tree = minimum_spanning_tree_edges(g)
        assert is_spanning_forest(g, tree)
        assert not is_spanning_forest(g, tree[:-1])  # misses a vertex
        assert not is_spanning_forest(g, np.arange(g.num_edges))  # cycles


# --------------------------------------------------------------------------- #
# vectorized stretch / decomposition stages vs references, fixed seeds
# --------------------------------------------------------------------------- #
class TestVectorizedStagesEquivalence:
    def test_is_forest_matches_reference(self):
        rng = np.random.default_rng(11)
        g = generators.erdos_renyi_gnm(40, 90, seed=5)
        for _ in range(40):
            k = int(rng.integers(0, g.n + 5))
            subset = rng.choice(g.num_edges, size=min(k, g.num_edges), replace=False)
            assert _is_forest(g, subset) == reference_is_forest(g, subset)

    def test_is_forest_edges_counts_parallel_copies(self):
        assert not is_forest_edges(2, [0, 0], [1, 1])
        assert is_forest_edges(2, [0], [1])
        count, _ = forest_components(2, [0], [1])
        assert count == 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_decomposition_radii_matches_reference(self, seed):
        g = generators.grid_2d(12, 12)
        decomp = split_graph(g, rho=4, seed=seed)
        assert np.array_equal(decomposition_radii(g, decomp), reference_radii(g, decomp))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_decomposition_radii_weighted_random(self, seed):
        g = generators.erdos_renyi_gnm(150, 450, seed=seed)
        decomp = split_graph(g, rho=3, seed=seed)
        assert np.array_equal(decomposition_radii(g, decomp), reference_radii(g, decomp))

    def test_split_graph_leftover_singletons(self):
        # Force the leftover path: a single iteration with a tiny radius
        # cannot cover everything, so uncovered vertices become singletons.
        g = generators.path_graph(30)
        decomp = split_graph(g, rho=1, seed=0, num_iterations=1)
        assert np.all(decomp.labels >= 0)
        # every vertex appears in exactly one component; singleton centers
        # are their own component's center
        for idx in range(decomp.num_components):
            verts = decomp.component_vertices(idx)
            assert decomp.centers[idx] in verts
        assert decomposition_radii(g, decomp).max() <= 1

    def test_tree_stretches_single_vertex_components(self):
        # max_depth == 0: every vertex is its own tree; all stretches inf.
        g = generators.path_graph(4)
        stretches = tree_stretches(g, np.empty(0, dtype=np.int64))
        assert np.all(np.isinf(stretches))

    def test_tree_stretches_depth_at_power_of_two_boundary(self):
        # Depth exactly a power of two exercises the binary-lifting table
        # sizing that the integer bit_length computation guards.
        for n in (3, 5, 9, 17, 33):
            g = generators.path_graph(n)
            stretches = tree_stretches(g, np.arange(n - 1))
            assert np.allclose(stretches, 1.0)
            cyc = generators.cycle_graph(n)
            stretches = tree_stretches(cyc, np.arange(n - 1))
            assert stretches[-1] == pytest.approx(float(n - 1))
