"""Tests for the AKPW low-stretch spanning tree (Algorithm 5.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.akpw import AKPWParameters, akpw_spanning_tree
from repro.core.stretch import average_stretch, tree_stretches
from repro.graph import generators
from repro.graph.components import connected_components
from repro.graph.mst import is_spanning_forest, minimum_spanning_tree_edges
from repro.pram.model import CostModel


class TestParameters:
    def test_practical_parameters_reasonable(self):
        p = AKPWParameters.practical(1000)
        assert p.y >= 2
        assert p.z >= 8
        assert p.rho >= 2

    def test_paper_parameters_larger(self):
        prac = AKPWParameters.practical(1000)
        paper = AKPWParameters.paper(1000)
        assert paper.y > prac.y
        assert paper.z > prac.z

    def test_practical_custom_y(self):
        p = AKPWParameters.practical(1000, y=5.0)
        assert p.y == 5.0


class TestSpanningProperty:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: generators.grid_2d(15, 15),
            lambda: generators.weighted_grid_2d(15, 15, seed=1, spread=1e4),
            lambda: generators.erdos_renyi_gnm(300, 900, seed=2),
            lambda: generators.random_regular_graph(200, 4, seed=3),
            lambda: generators.preferential_attachment(200, 3, seed=4),
        ],
    )
    def test_output_is_spanning_tree(self, graph_factory):
        g = graph_factory()
        res = akpw_spanning_tree(g, seed=0)
        assert is_spanning_forest(g, res.tree_edges)
        assert len(res.tree_edges) == g.n - 1

    def test_disconnected_graph_gives_forest(self):
        from repro.graph.graph import Graph

        g = Graph(6, [0, 1, 3, 4], [1, 2, 4, 5], [1.0, 2.0, 3.0, 4.0])
        res = akpw_spanning_tree(g, seed=0)
        count, _ = connected_components(g)
        assert len(res.tree_edges) == g.n - count
        assert is_spanning_forest(g, res.tree_edges)

    def test_tree_edges_are_valid_indices(self, weighted_grid_graph):
        res = akpw_spanning_tree(weighted_grid_graph, seed=1)
        assert res.tree_edges.min() >= 0
        assert res.tree_edges.max() < weighted_grid_graph.num_edges
        assert len(np.unique(res.tree_edges)) == len(res.tree_edges)

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        g = Graph(3, [], [], [])
        res = akpw_spanning_tree(g, seed=0)
        assert res.tree_edges.size == 0

    def test_deterministic_given_seed(self, grid_graph):
        r1 = akpw_spanning_tree(grid_graph, seed=11)
        r2 = akpw_spanning_tree(grid_graph, seed=11)
        assert np.array_equal(r1.tree_edges, r2.tree_edges)

    def test_tree_method_returns_graph(self, grid_graph):
        res = akpw_spanning_tree(grid_graph, seed=0)
        t = res.tree(grid_graph)
        assert t.num_edges == grid_graph.n - 1

    def test_paper_parameters_also_produce_spanning_tree(self):
        g = generators.weighted_grid_2d(10, 10, seed=0, spread=100)
        res = akpw_spanning_tree(g, parameters=AKPWParameters.paper(g.n), seed=0)
        assert is_spanning_forest(g, res.tree_edges)
        assert len(res.tree_edges) == g.n - 1


class TestStretchQuality:
    def test_average_stretch_subpolynomial_on_grid(self):
        """Theorem 5.1's guarantee is sub-polynomial; check a generous
        polylog-style bound holds at practical sizes."""
        g = generators.grid_2d(24, 24)
        res = akpw_spanning_tree(g, seed=0)
        avg = average_stretch(g, res.tree_edges)
        bound = 8.0 * math.log2(g.n) ** 2
        assert avg <= bound

    def test_akpw_beats_or_matches_mst_on_unit_grid(self):
        g = generators.grid_2d(30, 30)
        akpw = akpw_spanning_tree(g, seed=0)
        mst = minimum_spanning_tree_edges(g)
        avg_akpw = average_stretch(g, akpw.tree_edges)
        avg_mst = average_stretch(g, mst)
        # On unweighted grids AKPW's decomposition avoids the long MST paths.
        assert avg_akpw <= avg_mst * 1.2

    def test_stretch_finite_everywhere(self, weighted_grid_graph):
        res = akpw_spanning_tree(weighted_grid_graph, seed=5)
        stretches = tree_stretches(weighted_grid_graph, res.tree_edges)
        assert np.all(np.isfinite(stretches))


class TestCost:
    def test_cost_charged(self, grid_graph):
        cost = CostModel()
        akpw_spanning_tree(grid_graph, seed=0, cost=cost)
        assert cost.work > 0
        assert cost.depth > 0
        assert cost.counters.get("akpw_iterations", 0) >= 1

    def test_work_roughly_linear(self):
        works = []
        for size in (16, 32):
            g = generators.grid_2d(size, size)
            cost = CostModel()
            akpw_spanning_tree(g, seed=0, cost=cost)
            works.append((g.num_edges, cost.work))
        (m1, w1), (m2, w2) = works
        assert (w2 / w1) <= (m2 / m1) * 8
