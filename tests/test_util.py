"""Tests for the utility modules (rng, validation, records)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.util.records import ExperimentRow, format_table
from repro.util.rng import as_rng, derive_seed, spawn_rngs
from repro.util.validation import (
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
    check_vector,
)


class TestRng:
    def test_as_rng_from_int_deterministic(self):
        assert as_rng(7).integers(0, 100) == as_rng(7).integers(0, 100)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_as_rng_from_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_deterministic(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        assert a == b
        assert len(set(a)) > 1

    def test_spawn_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(1), 3)
        assert len(gens) == 3

    def test_derive_seed_range(self):
        s = derive_seed(np.random.default_rng(0))
        assert 0 <= s < 2**63


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_square(self):
        check_square("m", np.zeros((3, 3)))
        with pytest.raises(ValueError):
            check_square("m", np.zeros((2, 3)))

    def test_check_vector(self):
        v = check_vector("b", [1, 2, 3], 3)
        assert v.dtype == float
        with pytest.raises(ValueError):
            check_vector("b", [1, 2], 3)

    def test_check_symmetric(self):
        check_symmetric("m", sp.csr_matrix(np.eye(3)))
        with pytest.raises(ValueError):
            check_symmetric("m", sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]])))


class TestRecords:
    def test_experiment_row_as_dict(self):
        row = ExperimentRow("E1", "grid", params={"rho": 4}, measured={"radius": 3})
        d = row.as_dict()
        assert d["experiment"] == "E1"
        assert d["params"]["rho"] == 4

    def test_format_table_contains_values(self):
        rows = [
            ExperimentRow("E1", "grid", params={"rho": 4}, measured={"cut": 0.25}),
            ExperimentRow("E1", "torus", params={"rho": 8}, measured={"cut": 0.125}),
        ]
        table = format_table(rows)
        assert "grid" in table and "torus" in table
        assert "rho" in table and "cut" in table
        assert "0.25" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_explicit_columns(self):
        rows = [ExperimentRow("E2", "g", params={"alpha": 1}, measured={"b": 2.0})]
        table = format_table(rows, columns=["b"])
        header = table.splitlines()[0]
        assert "b" in header
        assert "alpha" not in header
