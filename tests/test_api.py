"""Tests for the factorize-once / solve-many API.

Covers the config objects, the batched multi-RHS path (including the general
SDD / Gremban route), the method registry, the process-level chain cache,
the ``repro.solve`` facade, and the deprecation shims.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core.chain_cache import (
    chain_cache_stats,
    clear_chain_cache,
    set_chain_cache_capacity,
)
from repro.core.config import ChainConfig, SolverConfig
from repro.core.methods import available_methods, get_method, register_method
from repro.core.operator import LaplacianOperator, factorize
from repro.core.solver import SDDSolver, sdd_solve
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.direct import solve_laplacian_direct, solve_sdd_direct
from repro.pram.model import CostModel


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_chain_cache()
    yield
    clear_chain_cache()


def _laplacian_problem(graph, seed=0):
    lap = graph_to_laplacian(graph)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    b -= b.mean()
    return lap, b


def _batch(graph, k, seed=7):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((graph.n, k))
    return b - b.mean(axis=0)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        ChainConfig()
        SolverConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kappa": 1.0},
            {"kappa": -3.0},
            {"lam": 0},
            {"beta": 0.0},
            {"bottom_size": 0},
            {"max_levels": 0},
            {"oversample": 0.0},
        ],
    )
    def test_chain_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ChainConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "bogus"},
            {"inner_iterations": 0},
            {"tol": 0.0},
            {"tol": -1e-8},
            {"max_iterations": 0},
        ],
    )
    def test_solver_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SolverConfig(**kwargs)

    def test_configs_are_frozen_and_hashable(self):
        cfg = ChainConfig(kappa=36.0)
        with pytest.raises(Exception):
            cfg.kappa = 49.0
        assert hash(cfg.cache_key()) == hash(ChainConfig(kappa=36.0).cache_key())
        assert ChainConfig().cache_key() != cfg.cache_key()

    def test_inner_iteration_resolution(self):
        assert SolverConfig().resolve_inner_iterations(25.0) == 5
        assert SolverConfig(inner_iterations=3).resolve_inner_iterations(25.0) == 3


class TestBatchedSolve:
    def test_batched_matches_independent_solves(self):
        g = generators.grid_2d(14, 14)
        batch = _batch(g, 5)
        op = factorize(g, seed=0)
        batched = op.solve(batch, tol=1e-8)
        assert batched.x.shape == batch.shape
        assert batched.converged
        assert batched.column_iterations.shape == (5,)
        for j in range(batch.shape[1]):
            single = op.solve(batch[:, j], tol=1e-8)
            np.testing.assert_allclose(batched.x[:, j], single.x, atol=1e-10)
            assert batched.column_iterations[j] == single.iterations

    def test_batched_accuracy_against_direct(self):
        g = generators.erdos_renyi_gnm(200, 700, seed=3)
        lap = graph_to_laplacian(g)
        batch = _batch(g, 4)
        op = factorize(g, seed=0)
        report = op.solve(batch, tol=1e-9)
        for j in range(batch.shape[1]):
            x_exact = solve_laplacian_direct(lap, batch[:, j])
            x = report.x[:, j] - report.x[:, j].mean()
            assert np.linalg.norm(x - x_exact) <= 1e-5 * max(np.linalg.norm(x_exact), 1.0)

    def test_batched_depth_does_not_scale_with_width(self):
        """Lockstep columns share each iteration: PRAM depth ~ width-free."""
        g = generators.grid_2d(12, 12)
        op = factorize(g, seed=0)
        single = op.solve(_batch(g, 1), tol=1e-8)
        wide = op.solve(_batch(g, 6), tol=1e-8)
        assert wide.depth <= 2.0 * single.depth
        assert wide.work > single.work

    def test_factorize_once_charges_less_than_sequential_loop(self):
        """Acceptance criterion: batched multi-RHS beats k x sdd_solve."""
        g = generators.grid_2d(14, 14)
        batch = _batch(g, 6)

        cost_batched = CostModel()
        op = factorize(g, seed=0, cost=cost_batched)
        batched = op.solve(batch, tol=1e-8)
        assert batched.converged

        cost_looped = CostModel()
        for j in range(batch.shape[1]):
            with pytest.deprecated_call():
                report = sdd_solve(g, batch[:, j], tol=1e-8, seed=0, cost=cost_looped)
            # residuals match: same factorization seed, same per-column path
            assert abs(report.relative_residual - batched.column_residuals[j]) <= 1e-12
            np.testing.assert_allclose(report.x, batched.x[:, j], atol=1e-10)

        assert cost_batched.work < cost_looped.work
        assert cost_batched.depth < cost_looped.depth

    def test_gremban_path_under_batching(self):
        mat, b = generators.weighted_sdd_system(60, 150, seed=2)
        x_exact = solve_sdd_direct(mat, b)
        op = factorize(mat, seed=2)
        batch = np.stack([b, -0.5 * b, 3.0 * b], axis=1)
        report = op.solve(batch, tol=1e-9)
        assert report.converged
        expected = np.stack([x_exact, -0.5 * x_exact, 3.0 * x_exact], axis=1)
        assert np.linalg.norm(report.x - expected) <= 1e-4 * np.linalg.norm(expected)

    def test_rejects_bad_shapes(self):
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0)
        with pytest.raises(ValueError):
            op.solve(np.ones(5))
        with pytest.raises(ValueError):
            op.solve(np.ones((g.n, 2, 2)))

    def test_empty_batch_is_a_trivial_solve(self):
        """(n, 0) blocks succeed vacuously so RHS slicing needs no special case."""
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0)
        report = op.solve(np.zeros((g.n, 0)))
        assert report.x.shape == (g.n, 0)
        assert report.converged and report.iterations == 0
        assert report.work == 0.0 and report.depth == 0.0
        assert report.column_iterations.shape == (0,)
        assert report.column_converged.shape == (0,)
        # validation still runs before the empty early-out
        with pytest.raises(ValueError):
            op.solve(np.zeros((g.n, 0)), tol=0.0)
        with pytest.raises(ValueError):
            op.solve(np.zeros((g.n, 0)), method="nope")

    def test_nonpositive_tol_rejected_per_call(self):
        """Per-call tol overrides get the same validation as SolverConfig."""
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0)
        b = np.ones(g.n)
        b -= b.mean()
        with pytest.raises(ValueError, match="tol must be positive"):
            op.solve(b, tol=0.0)
        with pytest.raises(ValueError, match="tol must be positive"):
            op.solve(b, tol=-1e-8)
        with pytest.raises(ValueError, match="max_iterations"):
            op.solve(b, max_iterations=0)

    def test_zero_rhs_column(self):
        g = generators.grid_2d(8, 8)
        op = factorize(g, seed=0)
        batch = _batch(g, 2)
        batch[:, 1] = 0.0
        report = op.solve(batch, tol=1e-8)
        assert report.converged
        np.testing.assert_allclose(report.x[:, 1], 0.0, atol=1e-12)


class TestMethodRegistry:
    def test_builtin_methods_registered(self):
        assert set(available_methods()) >= {"pcg", "chebyshev", "jacobi", "direct"}

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            get_method("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method("pcg")(lambda *a: None)

    @pytest.mark.parametrize("method", ["pcg", "chebyshev", "jacobi", "direct"])
    def test_every_method_solves(self, method):
        g = generators.grid_2d(10, 10)
        lap, b = _laplacian_problem(g)
        op = factorize(g, solver=SolverConfig(method=method, max_iterations=2000), seed=0)
        report = op.solve(b, tol=1e-8)
        assert report.converged
        x_exact = solve_laplacian_direct(lap, b)
        x = report.x - report.x.mean()
        assert np.linalg.norm(x - x_exact) <= 1e-4 * np.linalg.norm(x_exact)

    def test_per_call_method_override(self):
        g = generators.grid_2d(10, 10)
        op = factorize(g, seed=0)
        report = op.solve(_batch(g, 2), method="direct")
        assert report.converged
        assert report.iterations == 1


class TestChainCache:
    def test_hit_returns_same_operator(self):
        g = generators.grid_2d(10, 10)
        first = factorize(g, seed=0, cache=True)
        second = factorize(g, seed=0, cache=True)
        assert first is second
        stats = chain_cache_stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1

    def test_miss_on_different_config_seed_or_graph(self):
        g = generators.grid_2d(10, 10)
        base = factorize(g, seed=0, cache=True)
        assert factorize(g, ChainConfig(kappa=36.0), seed=0, cache=True) is not base
        assert factorize(g, seed=1, cache=True) is not base
        other = generators.grid_2d(11, 10)
        assert factorize(other, seed=0, cache=True) is not base
        assert chain_cache_stats().hits == 0

    def test_per_call_defaults_share_one_factorization(self):
        """tol/max_iterations are per-call defaults, not factorization state."""
        g = generators.grid_2d(10, 10)
        base = factorize(g, seed=0, cache=True)
        loose = factorize(g, solver=SolverConfig(tol=1e-3), seed=0, cache=True)
        assert loose is base
        # but a different method or inner budget is real operator state
        assert factorize(g, solver=SolverConfig(inner_iterations=3), seed=0, cache=True) is not base

    def test_facade_honors_requested_tol_on_cache_hit(self):
        g = generators.grid_2d(10, 10)
        _, b = _laplacian_problem(g)
        tight = repro.solve(g, b, seed=0, solver=SolverConfig(tol=1e-10))
        loose = repro.solve(g, b, seed=0, solver=SolverConfig(tol=1e-2))
        assert chain_cache_stats().hits == 1  # one shared factorization
        assert loose.iterations < tight.iterations
        assert tight.relative_residual <= 1e-10

    def test_non_integer_seed_bypasses_cache(self):
        g = generators.grid_2d(8, 8)
        rng = np.random.default_rng(0)
        a = factorize(g, seed=rng, cache=True)
        b = factorize(g, seed=np.random.default_rng(0), cache=True)
        assert a is not b
        assert chain_cache_stats().size == 0

    def test_matrix_inputs_are_cacheable(self):
        g = generators.grid_2d(8, 8)
        lap = graph_to_laplacian(g)
        a = factorize(lap, seed=0, cache=True)
        b = factorize(lap.copy(), seed=0, cache=True)
        assert a is b

    def test_lru_eviction(self):
        set_chain_cache_capacity(2)
        try:
            g1 = generators.grid_2d(6, 6)
            g2 = generators.grid_2d(7, 6)
            g3 = generators.grid_2d(8, 6)
            a = factorize(g1, seed=0, cache=True)
            factorize(g2, seed=0, cache=True)
            factorize(g3, seed=0, cache=True)  # evicts g1
            assert chain_cache_stats().size == 2
            assert factorize(g1, seed=0, cache=True) is not a
        finally:
            set_chain_cache_capacity(32)

    def test_facade_uses_cache(self):
        g = generators.grid_2d(10, 10)
        _, b = _laplacian_problem(g)
        r1 = repro.solve(g, b, seed=0)
        r2 = repro.solve(g, b, seed=0)
        stats = chain_cache_stats()
        assert stats.hits == 1 and stats.misses == 1
        np.testing.assert_allclose(r1.x, r2.x)

    def test_cached_operator_not_bound_to_caller_cost_model(self):
        """A shared cached operator must account into its own private model."""
        g = generators.grid_2d(9, 9)
        cost_a = CostModel()
        op = factorize(g, seed=0, cost=cost_a)  # uncached: bound to cost_a
        assert op.cost is cost_a
        clear_chain_cache()
        cost_b = CostModel()
        shared = factorize(g, seed=0, cost=cost_b, cache=True)
        assert shared.cost is not cost_b
        # the setup work performed during this call is still mirrored
        assert cost_b.work == pytest.approx(shared.setup_work)
        work_before = cost_b.work
        _, b = _laplacian_problem(g)
        factorize(g, seed=0, cache=True).solve(b)  # hit; solves elsewhere
        assert cost_b.work == work_before  # caller A's accounting untouched

    def test_facade_charges_solve_cost_on_cache_hit(self):
        g = generators.grid_2d(10, 10)
        _, b = _laplacian_problem(g)
        repro.solve(g, b, seed=0)  # populate
        cost = CostModel()
        report = repro.solve(g, b, seed=0, cost=cost)
        assert cost.work == pytest.approx(report.work)
        assert cost.work > 0


class TestFacade:
    def test_solve_on_graph(self):
        g = generators.grid_2d(12, 12)
        lap, b = _laplacian_problem(g)
        report = repro.solve(g, b, tol=1e-8, seed=0)
        assert report.converged
        x_exact = solve_laplacian_direct(lap, b)
        x = report.x - report.x.mean()
        assert np.linalg.norm(x - x_exact) <= 1e-5 * np.linalg.norm(x_exact)

    def test_solve_batched_on_sdd_matrix(self):
        mat, b = generators.weighted_sdd_system(50, 120, seed=1)
        batch = np.stack([b, 2.0 * b], axis=1)
        report = repro.solve(mat, batch, tol=1e-9, seed=1)
        assert report.converged
        x_exact = solve_sdd_direct(mat, b)
        assert np.linalg.norm(report.x[:, 0] - x_exact) <= 1e-4 * np.linalg.norm(x_exact)

    def test_operator_exposed_types(self):
        g = generators.grid_2d(6, 6)
        op = repro.factorize(g, seed=0)
        assert isinstance(op, LaplacianOperator)
        assert op.n == g.n
        assert op.shape == (g.n, g.n)
        assert op.depth == op.chain.depth
        assert sp.issparse(op.original_matrix())


class TestDeprecationShims:
    def test_sddsolver_warns(self):
        g = generators.grid_2d(6, 6)
        with pytest.deprecated_call():
            SDDSolver(g, seed=0)

    def test_sdd_solve_warns(self):
        g = generators.grid_2d(6, 6)
        _, b = _laplacian_problem(g)
        with pytest.deprecated_call():
            sdd_solve(g, b, seed=0)

    def test_shim_reports_identical_to_new_api(self):
        """Fixed seed => the shim and the new API produce identical reports."""
        g = generators.weighted_grid_2d(10, 10, seed=3, spread=100.0)
        _, b = _laplacian_problem(g, seed=4)

        op = factorize(g, seed=11)
        new = op.solve(b, tol=1e-8)
        with pytest.deprecated_call():
            solver = SDDSolver(g, seed=11)
        old = solver.solve(b, tol=1e-8)

        np.testing.assert_array_equal(new.x, old.x)
        assert new.iterations == old.iterations
        assert new.relative_residual == old.relative_residual
        assert new.converged == old.converged
        assert new.work == old.work
        assert new.depth == old.depth
        assert new.stats == old.stats

    def test_sdd_solve_shim_matches_facade_path(self):
        g = generators.grid_2d(9, 9)
        _, b = _laplacian_problem(g, seed=2)
        with pytest.deprecated_call():
            old = sdd_solve(g, b, tol=1e-8, seed=5, kappa=36.0, method="pcg")
        new = repro.solve(
            g, b, tol=1e-8, seed=5, chain=ChainConfig(kappa=36.0), use_cache=False
        )
        np.testing.assert_array_equal(new.x, old.x)
        assert new.iterations == old.iterations

    def test_shim_exposes_legacy_attributes(self):
        g = generators.grid_2d(8, 8)
        cost = CostModel()
        with pytest.deprecated_call():
            solver = SDDSolver(g, seed=0, cost=cost, kappa=36.0)
        assert solver.cost is cost
        assert solver.chain.depth >= 1
        assert solver.kappa == 36.0
        assert solver.method == "pcg"
        assert solver.inner_iterations == 6
        assert solver.setup_work > 0
        assert isinstance(solver.operator, LaplacianOperator)

    def test_shim_flattens_legacy_column_rhs(self):
        """The v1 API raveled b; (n, 1) columns must keep returning (n,)."""
        g = generators.grid_2d(8, 8)
        _, b = _laplacian_problem(g)
        with pytest.deprecated_call():
            solver = SDDSolver(g, seed=0)
        report = solver.solve(b[:, None], tol=1e-8)
        assert report.x.shape == (g.n,)
        with pytest.deprecated_call():
            report2 = sdd_solve(g, b[:, None], tol=1e-8, seed=0)
        assert report2.x.shape == (g.n,)

    def test_shim_rejects_unknown_kwarg(self):
        g = generators.grid_2d(6, 6)
        _, b = _laplacian_problem(g)
        with pytest.raises(TypeError):
            with pytest.deprecated_call():
                sdd_solve(g, b, seed=0, bogus_knob=3)
