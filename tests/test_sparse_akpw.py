"""Tests for SparseAKPW / low-stretch subgraphs (Lemma 5.5, Theorem 5.9)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.sparse_akpw import (
    LowStretchSubgraph,
    SparseAKPWParameters,
    low_stretch_subgraph,
    sparse_akpw,
    well_spaced_split,
)
from repro.core.stretch import average_stretch, edge_stretches
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.mst import is_spanning_forest
from repro.pram.model import CostModel


class TestParameters:
    def test_practical_derivation(self):
        p = SparseAKPWParameters.practical(2000, lam=3, beta=4.0)
        assert p.lam == 3
        assert p.y == pytest.approx(4.0)
        assert p.z == pytest.approx(32.0)
        assert 0 < p.theta <= 0.25

    def test_paper_parameters(self):
        p = SparseAKPWParameters.paper(2000, lam=2)
        assert p.y >= 1.5
        assert p.validate_partition


class TestWellSpacedSplit:
    def test_few_classes_nothing_removed(self, grid_graph):
        removed, specials = well_spaced_split(grid_graph, z=8.0, tau=2, theta=0.2)
        # unweighted graph: single class, no group large enough
        assert not removed.any()
        assert specials == []

    def test_removed_fraction_bounded(self):
        g = generators.with_random_weights(generators.grid_2d(20, 20), seed=3, spread=1e9)
        theta = 0.2
        removed, specials = well_spaced_split(g, z=4.0, tau=2, theta=theta)
        # Per group at most a theta fraction is set aside; globally this is
        # also at most a theta fraction (plus rounding slack).
        assert removed.mean() <= theta + 0.05

    def test_special_classes_follow_removed_ranges(self):
        g = generators.with_random_weights(generators.grid_2d(16, 16), seed=5, spread=1e8)
        removed, specials = well_spaced_split(g, z=4.0, tau=2, theta=0.3)
        classes = g.weight_buckets(4.0)
        for s in specials:
            # the tau classes right below a special class are emptied
            assert not np.any(~removed & np.isin(classes, [s - 1, s - 2]))

    def test_validation(self, grid_graph):
        with pytest.raises(ValueError):
            well_spaced_split(grid_graph, z=8.0, tau=0, theta=0.2)
        with pytest.raises(ValueError):
            well_spaced_split(grid_graph, z=8.0, tau=2, theta=0.0)

    def test_empty_graph(self):
        g = Graph(4, [], [], [])
        removed, specials = well_spaced_split(g, z=4.0, tau=1, theta=0.5)
        assert removed.size == 0 and specials == []


class TestSparseAKPW:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: generators.grid_2d(15, 15),
            lambda: generators.weighted_grid_2d(15, 15, seed=1, spread=1e5),
            lambda: generators.erdos_renyi_gnm(300, 1200, seed=2),
        ],
    )
    def test_contains_spanning_forest(self, graph_factory):
        g = graph_factory()
        res = sparse_akpw(g, seed=0)
        assert is_spanning_forest(g, res.tree_edges)
        assert len(res.tree_edges) == g.n - 1
        # tree and extra edges are disjoint, union is edge_indices
        assert np.intersect1d(res.tree_edges, res.extra_edges).size == 0
        assert np.array_equal(np.union1d(res.tree_edges, res.extra_edges), res.edge_indices)

    def test_edge_count_bound(self):
        """|E(G_hat)| <= n - 1 + (something much smaller than m)."""
        g = generators.weighted_grid_2d(20, 20, seed=3, spread=1e6)
        res = low_stretch_subgraph(g, lam=2, beta=6.0, seed=0)
        assert res.num_edges <= g.n - 1 + g.num_edges // 2

    def test_larger_beta_means_fewer_extra_edges(self):
        g = generators.weighted_grid_2d(20, 20, seed=4, spread=1e6)
        small = low_stretch_subgraph(g, lam=2, beta=3.0, seed=1)
        large = low_stretch_subgraph(g, lam=2, beta=12.0, seed=1)
        assert large.num_edges <= small.num_edges + g.n // 10

    def test_average_stretch_polylog(self):
        """Theorem 5.9's average stretch is polylog; check a generous bound."""
        g = generators.grid_2d(24, 24)
        res = low_stretch_subgraph(g, lam=2, beta=6.0, seed=0)
        avg = average_stretch(g, res.edge_indices)
        assert avg <= 8.0 * math.log2(g.n) ** 2

    def test_stretch_finite_and_positive(self, weighted_grid_graph):
        res = low_stretch_subgraph(weighted_grid_graph, seed=2)
        stretches = edge_stretches(weighted_grid_graph, res.edge_indices)
        assert np.all(np.isfinite(stretches))
        assert np.all(stretches > 0)

    def test_subgraph_method(self, grid_graph):
        res = low_stretch_subgraph(grid_graph, seed=0)
        sub = res.subgraph(grid_graph)
        assert sub.n == grid_graph.n
        assert sub.num_edges == res.num_edges

    def test_set_aside_edges_are_in_output(self):
        g = generators.with_random_weights(generators.grid_2d(16, 16), seed=6, spread=1e9)
        params = SparseAKPWParameters.practical(g.n, lam=1, beta=3.0)
        removed, _ = well_spaced_split(g, params.z, tau=2, theta=params.theta)
        res = low_stretch_subgraph(g, parameters=params, seed=0)
        if removed.any():
            assert np.all(np.isin(np.flatnonzero(removed), res.edge_indices))

    def test_deterministic(self, weighted_grid_graph):
        r1 = low_stretch_subgraph(weighted_grid_graph, seed=9)
        r2 = low_stretch_subgraph(weighted_grid_graph, seed=9)
        assert np.array_equal(r1.edge_indices, r2.edge_indices)

    def test_empty_graph(self):
        g = Graph(5, [], [], [])
        res = low_stretch_subgraph(g, seed=0)
        assert res.num_edges == 0

    def test_cost_and_stats(self, weighted_grid_graph):
        cost = CostModel()
        res = low_stretch_subgraph(weighted_grid_graph, seed=0, cost=cost)
        assert cost.work > 0
        assert res.stats["iterations"] >= 1
        assert "depth_max_segment" in res.stats
        assert res.stats["depth_max_segment"] <= res.stats["depth_sequential"] + 1e-9
