"""Index/value dtype policy: resolvers, overflow guards, and corpus parity."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.config import ChainConfig
from repro.core.operator import factorize
from repro.graph.graph import Graph
from repro.testing import fuzz_corpus
from repro.util.dtypes import (
    IndexOverflowError,
    as_index_array,
    index_capacity_ok,
    min_index_dtype,
    resolve_index_dtype,
    resolve_value_dtype,
)

INT32_MAX = np.iinfo(np.int32).max


# --------------------------------------------------------------------------- #
# resolver boundaries
# --------------------------------------------------------------------------- #
def test_min_index_dtype_boundaries():
    # Capacity rule: int32 iff max(n, 2m + 2) <= 2**31 - 1 (arc ids reach
    # 2m + sentinel in the Euler-tour rooting, CSR offsets reach 2m).
    assert min_index_dtype(10, 10) == np.dtype(np.int32)
    assert min_index_dtype(INT32_MAX, 0) == np.dtype(np.int32)
    assert min_index_dtype(INT32_MAX + 1, 0) == np.dtype(np.int64)
    m_edge = (INT32_MAX - 2) // 2
    assert min_index_dtype(10, m_edge) == np.dtype(np.int32)
    assert min_index_dtype(10, m_edge + 1) == np.dtype(np.int64)


def test_index_capacity_ok_matches_min_dtype():
    for n, m in [(0, 0), (5, 3), (INT32_MAX, 0), (INT32_MAX + 1, 0), (7, 2**31)]:
        ok32 = index_capacity_ok(np.dtype(np.int32), n, m)
        assert ok32 == (min_index_dtype(n, m) == np.dtype(np.int32))
        assert index_capacity_ok(np.dtype(np.int64), n, m)


def test_resolve_index_dtype_auto_and_explicit():
    assert resolve_index_dtype("auto", 100, 100) == np.dtype(np.int32)
    assert resolve_index_dtype("auto", INT32_MAX + 1, 0) == np.dtype(np.int64)
    assert resolve_index_dtype("int64", 10, 10) == np.dtype(np.int64)
    assert resolve_index_dtype("int32", 10, 10) == np.dtype(np.int32)


def test_resolve_index_dtype_int32_overflow_raises():
    with pytest.raises(IndexOverflowError):
        resolve_index_dtype("int32", INT32_MAX + 1, 0)
    with pytest.raises(IndexOverflowError):
        resolve_index_dtype("int32", 10, 2**31)


def test_resolve_value_dtype():
    assert resolve_value_dtype("float64") == np.dtype(np.float64)
    assert resolve_value_dtype("float32") == np.dtype(np.float32)
    with pytest.raises(ValueError):
        resolve_value_dtype("float16")


def test_as_index_array_preserves_lean_dtypes():
    a32 = np.arange(5, dtype=np.int32)
    out32 = as_index_array(a32)
    assert out32.dtype == np.dtype(np.int32)
    assert np.shares_memory(out32, a32)  # pass-through view, no copy
    a64 = np.arange(5, dtype=np.int64)
    out64 = as_index_array(a64)
    assert out64.dtype == np.dtype(np.int64)
    assert np.shares_memory(out64, a64)
    assert as_index_array([1, 2, 3]).dtype == np.dtype(np.int64)


# --------------------------------------------------------------------------- #
# Graph-level guards
# --------------------------------------------------------------------------- #
def test_graph_explicit_int32_rejects_oversized_vertex_count():
    # The guard fires on declared capacity alone — no O(n) allocation needed.
    with pytest.raises(IndexOverflowError):
        Graph(INT32_MAX + 10, [0], [1], [1.0], index_dtype="int32")


def test_graph_default_picks_lean_dtype_and_preserves_given():
    # Python lists become int64 under np.asarray and are preserved as given;
    # an explicit "auto" request resolves to the minimal covering dtype.
    g = Graph(10, [0, 1], [1, 2], [1.0, 2.0])
    assert g.u.dtype == np.dtype(np.int64)
    assert Graph(10, [0, 1], [1, 2], [1.0, 2.0], index_dtype="auto").u.dtype == np.dtype(
        np.int32
    )
    u64 = np.array([0, 1], dtype=np.int64)
    v64 = np.array([1, 2], dtype=np.int64)
    g64 = Graph(10, u64, v64, [1.0, 2.0])
    assert g64.u.dtype == np.dtype(np.int64)  # preserve-or-minimal: preserved
    g32 = Graph(10, u64, v64, [1.0, 2.0], index_dtype="int32")
    assert g32.u.dtype == np.dtype(np.int32)


def test_graph_validation_checks_precast_values():
    # An out-of-range int64 endpoint must not wrap into valid int32 range.
    bad = np.array([INT32_MAX + 7], dtype=np.int64)
    with pytest.raises(ValueError):
        Graph(10, bad, np.array([1], dtype=np.int64), [1.0], index_dtype="int64")


def test_graph_float32_weights_preserved():
    w = np.array([1.0, 2.0], dtype=np.float32)
    g = Graph(3, [0, 1], [1, 2], w)
    assert g.w.dtype == np.dtype(np.float32)
    assert g.reweighted(1.0 / g.w).w.dtype == np.dtype(np.float32)


# --------------------------------------------------------------------------- #
# ChainConfig validation
# --------------------------------------------------------------------------- #
def test_chain_config_validates_dtype_names():
    ChainConfig(index_dtype="auto", value_dtype="float32")  # accepted
    with pytest.raises(ValueError):
        ChainConfig(index_dtype="int16")
    with pytest.raises(ValueError):
        ChainConfig(value_dtype="float16")


def test_chain_config_cache_key_includes_dtypes():
    a = ChainConfig().cache_key()
    b = ChainConfig(index_dtype="int64").cache_key()
    c = ChainConfig(value_dtype="float32").cache_key()
    assert a != b and a != c and b != c


# --------------------------------------------------------------------------- #
# corpus parity: index dtype never changes a solve; float32 mode runs
# --------------------------------------------------------------------------- #
def _digest(x):
    return hashlib.sha256(np.ascontiguousarray(x, dtype=np.float64).tobytes()).hexdigest()


@pytest.mark.parametrize(
    "case", [c for c in fuzz_corpus(seed=0) if c.graph.num_edges > 0], ids=lambda c: c.name
)
def test_corpus_int32_and_int64_solves_agree_exactly(case):
    g = case.graph
    rng = np.random.default_rng(11)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    cfg32 = ChainConfig(index_dtype="int32")
    cfg64 = ChainConfig(index_dtype="int64")
    r32 = factorize(g, chain=cfg32, seed=2).solve(b)
    r64 = factorize(g, chain=cfg64, seed=2).solve(b)
    assert _digest(r32.x) == _digest(r64.x)
    assert r32.iterations == r64.iterations


def test_float32_value_mode_runs_and_stays_close():
    from repro.graph import generators

    g = generators.weighted_grid_2d(14, 14, seed=6, spread=30.0)
    rng = np.random.default_rng(3)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    op32 = factorize(g, chain=ChainConfig(value_dtype="float32"), seed=8)
    assert op32.chain.stats["value_dtype"] == "float32"
    r32 = op32.solve(b, tol=1e-8)
    r64 = factorize(g, seed=8).solve(b, tol=1e-8)
    assert r32.converged and r64.converged
    # The chain weights were rounded to float32, so the preconditioner (not
    # the answer) is perturbed: both converge to the same solution.
    denom = np.linalg.norm(r64.x)
    assert np.linalg.norm(r32.x - r64.x) <= 1e-6 * max(denom, 1.0)
