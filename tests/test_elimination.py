"""Tests for parallel greedy elimination (Lemma 6.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.elimination import greedy_elimination
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.direct import solve_laplacian_direct
from repro.pram.model import CostModel


def _check_elimination_solve(graph: Graph, seed: int = 0) -> None:
    """Eliminate, solve the reduced system exactly, extend back, compare."""
    lap = graph_to_laplacian(graph)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    b -= b.mean()
    elim = greedy_elimination(graph, seed=seed)
    reduced_lap = graph_to_laplacian(elim.reduced_graph)
    b_reduced = elim.forward_rhs(b)
    x_reduced = np.linalg.pinv(reduced_lap.toarray(), hermitian=True) @ b_reduced
    x = elim.backward_solution(b, x_reduced)
    x_exact = solve_laplacian_direct(lap, b)
    assert np.allclose(x - x.mean(), x_exact, atol=1e-8)


class TestCorrectness:
    def test_path_graph_eliminates_to_tiny(self):
        g = generators.path_graph(50)
        elim = greedy_elimination(g, seed=0)
        assert elim.reduced_graph.n <= 3
        _check_elimination_solve(g)

    def test_tree_eliminates_almost_everything(self):
        g = generators.star_graph(30)
        elim = greedy_elimination(g, seed=0)
        assert elim.reduced_graph.n <= 2
        _check_elimination_solve(g)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_solve_transfer_on_weighted_grid(self, seed):
        g = generators.weighted_grid_2d(8, 8, seed=seed, spread=100)
        _check_elimination_solve(g, seed=seed)

    def test_solve_transfer_on_sparse_random_graph(self):
        # tree plus a few extra edges: lots of degree-1/2 structure
        g = generators.erdos_renyi_gnm(120, 130, seed=5)
        _check_elimination_solve(g, seed=5)

    def test_solve_transfer_sequential_mode(self):
        g = generators.erdos_renyi_gnm(80, 90, seed=7)
        lap = graph_to_laplacian(g)
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        elim = greedy_elimination(g, seed=0, parallel_degree2=False)
        reduced_lap = graph_to_laplacian(elim.reduced_graph)
        x_red = np.linalg.pinv(reduced_lap.toarray(), hermitian=True) @ elim.forward_rhs(b)
        x = elim.backward_solution(b, x_red)
        assert np.allclose(x - x.mean(), solve_laplacian_direct(lap, b), atol=1e-8)

    def test_cycle_reduces_to_small_multigraph(self):
        g = generators.cycle_graph(40)
        elim = greedy_elimination(g, seed=1)
        assert elim.reduced_graph.n <= 4
        _check_elimination_solve(g, seed=1)

    def test_parallel_edges_handled(self):
        # degree-2 vertex whose both edges go to the same neighbor
        g = Graph(3, [0, 1, 1], [1, 2, 2], [1.0, 2.0, 3.0])
        elim = greedy_elimination(g, seed=0)
        assert elim.reduced_graph.n >= 1
        _check_elimination_solve(g)


class TestReductionGuarantee:
    def test_lemma_6_5_vertex_bound(self):
        """The reduced graph has at most ~2*(extra edges) vertices."""
        rng = np.random.default_rng(0)
        for trial in range(5):
            n = 200
            extra = 20
            # random spanning tree plus `extra` random edges
            perm = rng.permutation(n)
            tree_u = [int(perm[rng.integers(0, i)]) for i in range(1, n)]
            tree_v = [int(perm[i]) for i in range(1, n)]
            eu, ev = [], []
            while len(eu) < extra:
                a, b = rng.integers(0, n, 2)
                if a != b:
                    eu.append(int(a))
                    ev.append(int(b))
            g = Graph(n, tree_u + eu, tree_v + ev)
            elim = greedy_elimination(g, seed=trial)
            assert elim.reduced_graph.n <= max(2 * extra, 4)

    def test_rounds_logarithmic(self):
        g = generators.path_graph(512)
        elim = greedy_elimination(g, seed=0)
        assert elim.rounds <= 60  # O(log n) with constant ~ coin-flip waits

    def test_grid_keeps_interior(self):
        # interior grid vertices have degree >= 3, only the boundary shrinks
        g = generators.grid_2d(10, 10)
        elim = greedy_elimination(g, seed=0)
        assert elim.reduced_graph.n >= 36  # 8x8 interior minimum

    def test_min_vertices_respected(self):
        g = generators.path_graph(30)
        elim = greedy_elimination(g, seed=0, min_vertices=5)
        assert elim.reduced_graph.n >= 5

    def test_reduced_graph_is_laplacian_compatible(self):
        g = generators.erdos_renyi_gnm(60, 80, seed=1)
        elim = greedy_elimination(g, seed=1)
        lap = graph_to_laplacian(elim.reduced_graph)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)
        assert np.all(elim.reduced_graph.w > 0)


class TestSchedule:
    """Array-form schedule invariants (the compiled-transfer contract)."""

    def test_subrounds_partition_steps(self, random_graph):
        sched = greedy_elimination(random_graph, seed=0).schedule
        offs = sched.offsets
        assert offs[0] == 0 and offs[-1] == sched.num_steps
        assert np.all(np.diff(offs) > 0)  # no empty sub-rounds

    def test_subrounds_uniform_kind_and_independent(self, random_graph):
        sched = greedy_elimination(random_graph, seed=0).schedule
        for i in range(sched.num_subrounds):
            sl = sched.subround(i)
            is_d1 = sched.nbr2[sl] < 0
            assert is_d1.all() or not is_d1.any()
            eliminated = set(sched.vertices[sl].tolist())
            refs = set(sched.nbr1[sl].tolist())
            refs |= set(sched.nbr2[sl][sched.nbr2[sl] >= 0].tolist())
            assert not (eliminated & refs)

    def test_degree1_steps_have_sentinel_second_neighbor(self):
        g = generators.star_graph(20)
        sched = greedy_elimination(g, seed=0).schedule
        d1 = sched.nbr2 < 0
        assert np.all(sched.w2[d1] == 0.0)
        assert np.all(sched.w1 > 0)

    def test_path_rounds_logarithmic(self):
        """Satellite: no O(n)-rescan behaviour — rounds stay ~ log n and the
        per-round scans shrink with the surviving frontier."""
        for n in (256, 1024, 4096):
            elim = greedy_elimination(generators.path_graph(n), seed=0)
            log_n = np.log2(n)
            assert elim.rounds <= 5 * log_n
            # Total edges scanned across all rounds is linear in n (the
            # frontier decays geometrically), not n * rounds.
            assert elim.stats["edge_scans"] <= 12 * n

    def test_stats_report_schedule_shape(self, random_graph):
        elim = greedy_elimination(random_graph, seed=0)
        assert elim.stats["eliminated"] == elim.num_eliminated
        assert elim.stats["subrounds"] == elim.schedule.num_subrounds
        assert elim.stats["rounds"] == elim.rounds


class TestBookkeeping:
    def test_kept_plus_eliminated_is_n(self, random_graph):
        elim = greedy_elimination(random_graph, seed=0)
        assert len(elim.kept_vertices) + elim.num_eliminated == random_graph.n

    def test_operations_reference_distinct_vertices(self, random_graph):
        elim = greedy_elimination(random_graph, seed=0)
        eliminated = [op[1] for op in elim.operations]
        assert len(set(eliminated)) == len(eliminated)
        assert not set(eliminated) & set(elim.kept_vertices.tolist())

    def test_cost_charged(self, random_graph):
        cost = CostModel()
        greedy_elimination(random_graph, seed=0, cost=cost)
        assert cost.work > 0

    def test_deterministic(self, random_graph):
        e1 = greedy_elimination(random_graph, seed=3)
        e2 = greedy_elimination(random_graph, seed=3)
        assert e1.operations == e2.operations
