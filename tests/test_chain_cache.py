"""Chain-cache policy tests: byte budget, TTL, eviction counters, evict().

The hit/miss accounting of the basic LRU behaviour is pinned in
``test_property_random.py``/``test_api.py``; this module covers the serving
upgrade — targeted eviction, the byte-size budget, idle-TTL expiry (driven
by a fake clock, no sleeping), and the per-key/eviction/latency counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import chain_cache
from repro.core.chain_cache import (
    DEFAULT_CAPACITY,
    chain_cache_stats,
    clear_chain_cache,
    estimate_operator_bytes,
    evict,
    fingerprint_matrix,
    make_key,
    set_chain_cache_budget,
    set_chain_cache_capacity,
    set_chain_cache_ttl,
    sweep_expired,
)
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph import generators


@pytest.fixture(autouse=True)
def fresh_cache():
    """Pristine cache with default policy before and after every test."""

    def reset():
        clear_chain_cache()
        set_chain_cache_capacity(DEFAULT_CAPACITY)
        set_chain_cache_budget(None)
        set_chain_cache_ttl(None)

    reset()
    yield
    reset()


@pytest.fixture()
def fake_clock(monkeypatch):
    """Replace the cache's monotonic clock with a settable one."""
    current = [0.0]
    monkeypatch.setattr(chain_cache, "_now", lambda: current[0])

    def advance(seconds: float) -> None:
        current[0] += seconds

    return advance


def _grid_key(seed: int = 0):
    g = generators.grid_2d(5, 5)
    return g, make_key(g, ChainConfig(), SolverConfig(), seed)


class TestTargetedEviction:
    def test_evict_removes_entry_and_counts(self):
        g, key = _grid_key()
        factorize(g, seed=0, cache=True)
        assert chain_cache_stats().size == 1
        assert evict(key) is True
        stats = chain_cache_stats()
        assert stats.size == 0
        assert stats.evictions_explicit == 1
        assert stats.evictions == 1
        # A second evict of the same key is a no-op.
        assert evict(key) is False
        assert chain_cache_stats().evictions_explicit == 1

    def test_evicted_key_misses_then_refactorizes(self):
        g, key = _grid_key()
        op1 = factorize(g, seed=0, cache=True)
        evict(key)
        op2 = factorize(g, seed=0, cache=True)
        assert op2 is not op1
        assert factorize(g, seed=0, cache=True) is op2


class TestCapacityAndBudget:
    def test_capacity_evictions_counted(self):
        set_chain_cache_capacity(1)
        g = generators.grid_2d(5, 5)
        factorize(g, seed=0, cache=True)
        factorize(g, seed=1, cache=True)
        stats = chain_cache_stats()
        assert stats.size == 1
        assert stats.evictions_capacity == 1

    def test_byte_budget_evicts_lru_first(self):
        chain_cache.store(("k1",), object(), nbytes=100)
        chain_cache.store(("k2",), object(), nbytes=100)
        assert chain_cache_stats().stored_bytes == 200
        set_chain_cache_budget(150)
        stats = chain_cache_stats()
        assert stats.stored_bytes == 100
        assert stats.evictions_bytes == 1
        assert [k for k, _ in stats.per_key] == [("k2",)]

    def test_single_over_budget_entry_is_retained(self):
        set_chain_cache_budget(150)
        chain_cache.store(("small",), object(), nbytes=100)
        chain_cache.store(("huge",), object(), nbytes=1000)
        stats = chain_cache_stats()
        # The newest entry survives even though it alone exceeds the budget;
        # everything older is evicted.
        assert stats.size == 1
        assert stats.stored_bytes == 1000
        assert [k for k, _ in stats.per_key] == [("huge",)]

    def test_cumulative_stored_bytes_is_monotone(self):
        chain_cache.store(("a",), object(), nbytes=70)
        chain_cache.store(("b",), object(), nbytes=30)
        evict(("a",))
        stats = chain_cache_stats()
        assert stats.stored_bytes == 30
        assert stats.cumulative_stored_bytes == 100

    def test_restore_same_key_replaces_bytes(self):
        chain_cache.store(("a",), object(), nbytes=100)
        chain_cache.store(("a",), object(), nbytes=250)
        stats = chain_cache_stats()
        assert stats.size == 1
        assert stats.stored_bytes == 250
        assert stats.cumulative_stored_bytes == 350

    def test_estimated_bytes_cover_chain_arrays(self):
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0, cache=True)
        lower_bound = sum(
            level.laplacian.data.nbytes
            + level.laplacian.indices.nbytes
            + level.laplacian.indptr.nbytes
            for level in op.chain.levels
        )
        estimate = estimate_operator_bytes(op)
        assert estimate >= lower_bound > 0
        (_, key_stats), = chain_cache_stats().per_key
        assert key_stats.stored_bytes == estimate


class TestTTL:
    def test_idle_entries_expire_on_lookup(self, fake_clock):
        g, key = _grid_key()
        set_chain_cache_ttl(10.0)
        op = factorize(g, seed=0, cache=True)
        fake_clock(5.0)
        assert chain_cache.lookup(key) is op  # refreshes last_access
        fake_clock(9.0)
        assert chain_cache.lookup(key) is op  # idle 9 < 10
        fake_clock(11.0)
        assert chain_cache.lookup(key) is None
        stats = chain_cache_stats()
        assert stats.evictions_ttl == 1
        assert stats.size == 0

    def test_sweep_expired_reclaims_idle_entries(self, fake_clock):
        set_chain_cache_ttl(10.0)
        chain_cache.store(("a",), object(), nbytes=10)
        fake_clock(4.0)
        chain_cache.store(("b",), object(), nbytes=10)
        fake_clock(8.0)  # a idle 12, b idle 8
        assert sweep_expired() == 1
        stats = chain_cache_stats()
        assert [k for k, _ in stats.per_key] == [("b",)]
        assert stats.evictions_ttl == 1

    def test_disabling_ttl_stops_expiry(self, fake_clock):
        set_chain_cache_ttl(10.0)
        chain_cache.store(("a",), object(), nbytes=10)
        set_chain_cache_ttl(None)
        fake_clock(1000.0)
        assert sweep_expired() == 0
        assert chain_cache_stats().size == 1


class TestCounters:
    def test_per_key_hits(self):
        g, key = _grid_key()
        factorize(g, seed=0, cache=True)
        factorize(g, seed=0, cache=True)
        factorize(g, seed=0, cache=True)
        ((stats_key, key_stats),) = chain_cache_stats().per_key
        assert stats_key == key
        assert key_stats.hits == 2

    def test_lookup_latency_counters_accumulate(self):
        chain_cache.store(("a",), object(), nbytes=10)
        before = chain_cache_stats()
        chain_cache.lookup(("a",))
        chain_cache.lookup(("missing",))
        after = chain_cache_stats()
        assert after.lookup_count == before.lookup_count + 2
        assert after.lookup_seconds >= before.lookup_seconds

    def test_clear_resets_everything(self):
        g, key = _grid_key()
        factorize(g, seed=0, cache=True)
        factorize(g, seed=0, cache=True)
        evict(key)
        clear_chain_cache()
        stats = chain_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert stats.evictions == 0
        assert stats.stored_bytes == 0
        assert stats.cumulative_stored_bytes == 0
        assert stats.lookup_count == 0
        assert stats.per_key == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            set_chain_cache_budget(-1)
        with pytest.raises(ValueError):
            set_chain_cache_ttl(0.0)
        with pytest.raises(ValueError):
            set_chain_cache_capacity(0)


class TestUnfingerprintableInputs:
    def test_fingerprint_none_bypasses_key(self):
        assert fingerprint_matrix(object()) is None
        assert make_key(object(), ChainConfig(), SolverConfig(), 0) is None

    def test_graph_with_none_fingerprint_solves_uncached(self):
        import repro
        from repro.graph.graph import Graph

        class _NoFingerprint(Graph):
            def fingerprint(self):
                return None

        g = generators.grid_2d(5, 5)
        nofp = _NoFingerprint(g.n, g.u, g.v, g.w)
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        before = chain_cache_stats()
        report = repro.solve(nofp, b, seed=3)
        assert report.converged
        after = chain_cache_stats()
        # The facade degrades to an uncached solve: no entry, no counters.
        assert (after.hits, after.misses, after.size) == (
            before.hits,
            before.misses,
            before.size,
        )


class TestFingerprintInvalidation:
    def test_invalidate_evicts_every_config_variant(self):
        """One fingerprint, several (config, seed) keys: all must go."""
        g = generators.grid_2d(6, 6)
        factorize(g, seed=0, cache=True)
        factorize(g, seed=1, cache=True)
        factorize(g, ChainConfig(max_levels=2), seed=0, cache=True)
        other = generators.grid_2d(7, 7)
        factorize(other, seed=0, cache=True)
        assert chain_cache_stats().size == 4

        evicted = chain_cache.invalidate_fingerprint(fingerprint_matrix(g))
        assert evicted == 3
        stats = chain_cache_stats()
        assert stats.size == 1
        assert stats.evictions_explicit == 3
        # The unrelated fingerprint survived.
        other_key = make_key(other, ChainConfig(), SolverConfig(), 0)
        assert chain_cache.lookup(other_key) is not None

    def test_invalidate_unknown_fingerprint_is_noop(self):
        g = generators.grid_2d(5, 5)
        factorize(g, seed=0, cache=True)
        assert chain_cache.invalidate_fingerprint("deadbeef") == 0
        assert chain_cache_stats().size == 1
        assert chain_cache_stats().evictions_explicit == 0
