"""Serving-layer tests: coalescing bit-identity, cancellation, fallbacks.

Plain ``asyncio.run`` throughout — no async test plugin.  The load-bearing
property is that every coalesced answer is **bit-identical** to a solo
``operator.solve(b, tol=bucket, method=method)`` call (the PR-4
batched==looped guarantee lifted to the service boundary), across mixed
batch widths, methods, and tolerance buckets — and that cancelling or
timing out one request never perturbs the rest of its batch.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro.core import chain_cache
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.graph.graph import Graph
from repro.serving import ServiceConfig, SolverService, bucket_tol


@pytest.fixture(autouse=True)
def fresh_cache():
    repro.clear_chain_cache()
    yield
    repro.clear_chain_cache()


def _pool(g, k: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(k):
        b = rng.standard_normal(g.n)
        pool.append(b - b.mean())
    return pool


class _NoFingerprint(Graph):
    """A graph the cache cannot key — exercises the uncoalesced bypass."""

    def fingerprint(self):
        return None


class TestBucketTol:
    def test_decade_floor(self):
        assert bucket_tol(5e-7) == 1e-7
        assert bucket_tol(9.9e-8) == 1e-8
        assert bucket_tol(1e-8) == 1e-8
        assert bucket_tol(1.0) == 1.0

    def test_bucket_never_looser_than_request(self):
        for tol in (3e-5, 9e-7, 1.0000001e-8, 2.5e-11):
            assert bucket_tol(tol) <= tol

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_tol(0.0)
        with pytest.raises(ValueError):
            bucket_tol(-1e-8)


class TestCoalescingBitIdentity:
    def test_full_batch_matches_solo_solves(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 6)
        op = factorize(g, seed=0, cache=True)
        refs = [op.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=0.2, max_batch=6))
        fp = service.register(g, seed=0)

        async def run():
            async with service:
                return await asyncio.gather(
                    *[service.submit(fp, b, tol=1e-8) for b in pool]
                )

        reports = asyncio.run(run())
        for report, ref in zip(reports, refs):
            assert np.array_equal(report.x, ref.x)
            assert report.iterations == ref.iterations
            assert report.converged
            assert report.stats["serving_batch_width"] == 6.0
            assert report.stats["serving_coalesced"] == 1.0
        stats = service.stats()
        assert stats.batches == 1
        assert stats.batch_width_histogram == {6: 1}
        assert stats.served == 6

    def test_mixed_tol_buckets_and_methods_split_groups(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 4)
        op = factorize(g, seed=0, cache=True)
        # (tol, method) per request: the first two share the 1e-7 pcg bucket,
        # the third is a tighter pcg bucket, the fourth a different method.
        jobs = [
            (pool[0], 3e-7, None),
            (pool[1], 9.5e-7, None),
            (pool[2], 1e-8, None),
            (pool[3], 4e-7, "chebyshev"),
        ]
        refs = [
            op.solve(b, tol=bucket_tol(t), method=m) for b, t, m in jobs
        ]
        service = SolverService(ServiceConfig(window_seconds=0.1, max_batch=8))
        fp = service.register(g, seed=0)

        async def run():
            async with service:
                return await asyncio.gather(
                    *[service.submit(fp, b, tol=t, method=m) for b, t, m in jobs]
                )

        reports = asyncio.run(run())
        for report, ref in zip(reports, refs):
            assert np.array_equal(report.x, ref.x)
            assert report.iterations == ref.iterations
        widths = [r.stats["serving_batch_width"] for r in reports]
        assert widths == [2.0, 2.0, 1.0, 1.0]
        assert service.stats().batches == 3

    def test_multiple_graphs_group_separately(self):
        g1 = generators.grid_2d(7, 7)
        g2 = generators.erdos_renyi_gnm(60, 150, seed=5)
        pools = {1: _pool(g1, 2, seed=1), 2: _pool(g2, 2, seed=2)}
        refs = {
            1: [factorize(g1, seed=0, cache=True).solve(b, tol=1e-8) for b in pools[1]],
            2: [factorize(g2, seed=0, cache=True).solve(b, tol=1e-8) for b in pools[2]],
        }
        service = SolverService(ServiceConfig(window_seconds=0.1, max_batch=8))
        fp1 = service.register(g1, seed=0)
        fp2 = service.register(g2, seed=0)

        async def run():
            async with service:
                return await asyncio.gather(
                    service.submit(fp1, pools[1][0], tol=1e-8),
                    service.submit(fp2, pools[2][0], tol=1e-8),
                    service.submit(fp1, pools[1][1], tol=1e-8),
                    service.submit(fp2, pools[2][1], tol=1e-8),
                )

        r = asyncio.run(run())
        assert np.array_equal(r[0].x, refs[1][0].x)
        assert np.array_equal(r[1].x, refs[2][0].x)
        assert np.array_equal(r[2].x, refs[1][1].x)
        assert np.array_equal(r[3].x, refs[2][1].x)
        assert service.stats().batch_width_histogram == {2: 2}

    def test_auto_registration_from_matrix_submit(self):
        g = generators.grid_2d(6, 6)
        b = _pool(g, 1)[0]
        ref = factorize(g, seed=0, cache=True).solve(b, tol=1e-8)
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=4))

        async def run():
            async with service:
                return await service.submit(g, b, tol=1e-8)

        report = asyncio.run(run())
        assert np.array_equal(report.x, ref.x)
        assert g.fingerprint() in service.registered()


class TestCancellation:
    def test_pending_cancellation_leaves_batch_unaffected(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 4)
        op = factorize(g, seed=0, cache=True)
        refs = [op.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=5.0, max_batch=4))
        fp = service.register(g, seed=0)

        async def run():
            async with service:
                tasks = [
                    asyncio.ensure_future(service.submit(fp, b, tol=1e-8))
                    for b in pool[:2]
                ]
                await asyncio.sleep(0.02)  # both enqueued, window still open
                tasks[0].cancel()
                tasks += [
                    asyncio.ensure_future(service.submit(fp, b, tol=1e-8))
                    for b in pool[2:]
                ]  # fourth add fills max_batch -> immediate flush
                return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(run())
        assert isinstance(results[0], asyncio.CancelledError)
        for i in (1, 2, 3):
            assert np.array_equal(results[i].x, refs[i].x)
            assert results[i].stats["serving_batch_width"] == 3.0
        stats = service.stats()
        assert stats.cancelled == 1
        assert stats.served == 3
        assert stats.batch_width_histogram == {3: 1}

    def test_inflight_cancellation_leaves_batch_unaffected(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 3)
        op = factorize(g, seed=0, cache=True)
        refs = [op.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=5.0, max_batch=3))
        fp = service.register(g, seed=0)

        release = threading.Event()
        original = service._solve_batch

        def gated(key, live):
            release.wait(10.0)
            return original(key, live)

        service._solve_batch = gated

        async def run():
            async with service:
                tasks = [
                    asyncio.ensure_future(service.submit(fp, b, tol=1e-8))
                    for b in pool
                ]  # third submit fills the batch -> dispatched, gated in executor
                await asyncio.sleep(0.02)
                tasks[1].cancel()
                release.set()
                return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(run())
        assert np.array_equal(results[0].x, refs[0].x)
        assert isinstance(results[1], asyncio.CancelledError)
        assert np.array_equal(results[2].x, refs[2].x)
        stats = service.stats()
        assert stats.cancelled == 1
        assert stats.served == 2
        # The cancelled column was still solved in the batch of 3.
        assert stats.batch_width_histogram == {3: 1}

    def test_wait_for_timeout_is_a_cancellation(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 2)
        op = factorize(g, seed=0, cache=True)
        refs = [op.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=5.0, max_batch=2))
        fp = service.register(g, seed=0)

        release = threading.Event()
        original = service._solve_batch

        def gated(key, live):
            release.wait(10.0)
            return original(key, live)

        service._solve_batch = gated

        async def run():
            async with service:
                slow = asyncio.ensure_future(
                    asyncio.wait_for(service.submit(fp, pool[0], tol=1e-8), 0.05)
                )
                ok = asyncio.ensure_future(service.submit(fp, pool[1], tol=1e-8))
                await asyncio.sleep(0.15)  # let the timeout fire mid-flight
                release.set()
                return await asyncio.gather(slow, ok, return_exceptions=True)

        slow_result, ok_result = asyncio.run(run())
        assert isinstance(slow_result, asyncio.TimeoutError)
        assert np.array_equal(ok_result.x, refs[1].x)
        assert service.stats().cancelled == 1


class TestSyncWrapper:
    def test_threaded_sync_callers_coalesce_and_match(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 4)
        op = factorize(g, seed=0, cache=True)
        refs = [op.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=0.2, max_batch=4))
        fp = service.register(g, seed=0)
        results = [None] * len(pool)

        def worker(i):
            results[i] = service.solve_sync(fp, pool[i], tol=1e-8, timeout=30)

        with service:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(len(pool))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        for report, ref in zip(results, refs):
            assert np.array_equal(report.x, ref.x)
        stats = service.stats()
        assert stats.served == len(pool)
        assert stats.requests == len(pool)

    def test_solve_sync_requires_loop_thread(self):
        service = SolverService()
        with pytest.raises(RuntimeError):
            service.solve_sync("anything", np.zeros(4))


class TestFallbacksAndValidation:
    def test_unfingerprintable_matrix_solves_uncoalesced(self):
        g = generators.grid_2d(6, 6)
        nofp = _NoFingerprint(g.n, g.u, g.v, g.w)
        b = _pool(g, 1)[0]
        ref = factorize(nofp, seed=0).solve(b, tol=1e-8)
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=4))

        async def run():
            async with service:
                return await service.submit(nofp, b, tol=1e-8)

        report = asyncio.run(run())
        assert np.array_equal(report.x, ref.x)
        assert report.stats["serving_coalesced"] == 0.0
        stats = service.stats()
        assert stats.uncoalesced == 1
        assert stats.served == 1
        assert service.registered() == ()
        # The cache never saw the unfingerprintable matrix.
        assert chain_cache.chain_cache_stats().size == 0

    def test_register_rejects_unfingerprintable(self):
        g = generators.grid_2d(5, 5)
        nofp = _NoFingerprint(g.n, g.u, g.v, g.w)
        service = SolverService()
        with pytest.raises(ValueError, match="fingerprint"):
            service.register(nofp)

    def test_unknown_fingerprint_raises(self):
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=2))

        async def run():
            async with service:
                await service.submit("g:deadbeef", np.zeros(4))

        with pytest.raises(KeyError, match="register"):
            asyncio.run(run())

    def test_submit_validation_errors(self):
        g = generators.grid_2d(5, 5)
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=2))
        fp = service.register(g, seed=0)

        async def expect(exc_type, **kwargs):
            with pytest.raises(exc_type):
                await service.submit(fp, kwargs.pop("b", np.zeros(g.n)), **kwargs)

        async def run():
            async with service:
                await expect(ValueError, b=np.zeros(g.n + 1))
                await expect(ValueError, b=np.zeros((g.n, 2)))
                await expect(ValueError, method="no-such-method")
                await expect(ValueError, tol=0.0)

        asyncio.run(run())

    def test_submit_before_start_raises(self):
        g = generators.grid_2d(5, 5)
        service = SolverService()
        fp = service.register(g, seed=0)

        async def run():
            await service.submit(fp, np.zeros(g.n))

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(run())

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(window_seconds=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(executor_workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_sweep_seconds=0.0)


class TestCacheIntegration:
    def test_refactorizes_after_targeted_eviction(self):
        g = generators.grid_2d(7, 7)
        b = _pool(g, 1)[0]
        ref = factorize(g, seed=0, cache=True).solve(b, tol=1e-8)
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=4))
        fp = service.register(g, seed=0)
        key = chain_cache.make_key(g, ChainConfig(), SolverConfig(), 0)
        assert chain_cache.evict(key)

        async def run():
            async with service:
                return await service.submit(fp, b, tol=1e-8)

        report = asyncio.run(run())
        assert np.array_equal(report.x, ref.x)
        stats = service.stats()
        assert stats.cache_misses == 1
        # The re-factorization repopulated the cache.
        assert chain_cache.lookup(key) is not None

    def test_unregister_evicts_cache_entry(self):
        g = generators.grid_2d(6, 6)
        service = SolverService()
        fp = service.register(g, seed=0)
        assert chain_cache.chain_cache_stats().size == 1
        assert service.unregister(fp) is True
        assert chain_cache.chain_cache_stats().size == 0
        assert chain_cache.chain_cache_stats().evictions_explicit == 1
        assert service.unregister(fp) is False

    def test_ttl_sweep_task_reclaims_idle_chains(self):
        g = generators.grid_2d(6, 6)
        b = _pool(g, 1)[0]
        service = SolverService(
            ServiceConfig(window_seconds=0.01, max_batch=4, cache_sweep_seconds=0.02)
        )
        fp = service.register(g, seed=0)
        chain_cache.set_chain_cache_ttl(0.03)
        try:

            async def run():
                async with service:
                    await asyncio.sleep(0.12)  # several sweep periods, no traffic
                    assert chain_cache.chain_cache_stats().size == 0
                    # Eviction is survivable: the next request re-factorizes.
                    return await service.submit(fp, b, tol=1e-8)

            report = asyncio.run(run())
        finally:
            chain_cache.set_chain_cache_ttl(None)
        assert report.converged
        assert chain_cache.chain_cache_stats().evictions_ttl >= 1
        assert service.stats().cache_misses >= 1


class TestSplitReports:
    def test_split_matches_columns_and_conserves_work(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 3)
        op = factorize(g, seed=0)
        block = np.stack(pool, axis=1)
        batched = op.solve(block, tol=1e-8)
        solos = [op.solve(b, tol=1e-8) for b in pool]
        parts = batched.split()
        assert len(parts) == 3
        for part, solo in zip(parts, solos):
            assert np.array_equal(part.x, solo.x)
            assert part.iterations == solo.iterations
            assert part.converged == solo.converged
            assert part.depth == batched.depth
            assert part.stats["batch_width"] == 3.0
        assert sum(p.work for p in parts) == pytest.approx(batched.work)

    def test_split_vector_and_empty_reports(self):
        g = generators.grid_2d(6, 6)
        op = factorize(g, seed=0)
        b = _pool(g, 1)[0]
        vector_report = op.solve(b, tol=1e-8)
        assert vector_report.split() == [vector_report]
        empty_report = op.solve(np.zeros((g.n, 0)))
        assert empty_report.split() == []


# --------------------------------------------------------------------------- #
# metrics weighting (regression: per-batch vs per-request hit rate)
# --------------------------------------------------------------------------- #
class TestMetricsWeighting:
    def test_cache_hit_rate_is_request_weighted(self):
        from repro.serving.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.record_batch(8, cache_hit=True, solve_seconds=0.0)
        metrics.record_batch(1, cache_hit=False, solve_seconds=0.0)
        stats = metrics.snapshot()
        # Regression: the old rate averaged per *batch* (would say 0.5) even
        # though 8 of 9 requests were served off a hit.
        assert stats.cache_hit_rate == pytest.approx(8 / 9)
        assert stats.batch_cache_hit_rate == pytest.approx(0.5)
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_requests == 8 and stats.cache_miss_requests == 1

    def test_update_counters(self):
        from repro.serving.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.record_update(rebuilt=False)
        metrics.record_update(rebuilt=True)
        stats = metrics.snapshot()
        assert stats.updates == 2
        assert stats.updates_rebuilt == 1


# --------------------------------------------------------------------------- #
# live graph updates through the service
# --------------------------------------------------------------------------- #
class TestServiceUpdate:
    def test_update_reregisters_under_new_fingerprint(self):
        g = generators.grid_2d(8, 8)
        b = _pool(g, 1)[0]
        edits = repro.EdgeEdits.reweights([0, 3], [4.0, 0.5])
        mutated = g.apply_edits(edits)
        ref = factorize(mutated, seed=0).solve(b, tol=1e-8)
        service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=4))
        fp = service.register(g, seed=0)

        async def run():
            async with service:
                await service.submit(fp, b, tol=1e-8)  # warm the old operator
                new_fp, report = service.update(fp, edits)
                assert new_fp != fp
                assert report.strategy in ("patched", "rebuilt")
                assert service.registered() == (new_fp,)
                with pytest.raises(KeyError):
                    await service.submit(fp, b, tol=1e-8)
                return await service.submit(new_fp, b, tol=1e-8)

        report = asyncio.run(run())
        assert report.converged
        assert np.max(np.abs(report.x - ref.x)) <= 1e-8
        stats = service.stats()
        assert stats.updates == 1
        # The stale fingerprint's chain-cache entries were evicted.
        assert chain_cache.chain_cache_stats().evictions_explicit >= 1

    def test_update_does_not_drop_in_flight_requests(self):
        g = generators.grid_2d(8, 8)
        pool = _pool(g, 6)
        op_ref = factorize(g, seed=0)
        refs = [op_ref.solve(b, tol=1e-8) for b in pool]
        service = SolverService(ServiceConfig(window_seconds=0.05, max_batch=3))
        fp = service.register(g, seed=0)
        edits = repro.EdgeEdits.reweights([1], [9.0])

        async def run():
            async with service:
                futures = [
                    asyncio.ensure_future(service.submit(fp, b, tol=1e-8))
                    for b in pool
                ]
                await asyncio.sleep(0)  # let submissions enqueue
                # Swap the registration while those requests are pending.
                new_fp, _ = service.update(fp, edits)
                results = await asyncio.gather(*futures)
                return new_fp, results

        new_fp, results = asyncio.run(run())
        # Every pre-update request solved against the graph it was submitted
        # for, bit-identical to a solo solve on the old operator.
        for report, ref in zip(results, refs):
            assert np.array_equal(report.x, ref.x)
        assert service.registered() == (new_fp,)

    def test_noop_update_keeps_fingerprint(self):
        g = generators.grid_2d(6, 6)
        service = SolverService()
        fp = service.register(g, seed=0)
        new_fp, report = service.update(fp, repro.EdgeEdits.empty())
        assert new_fp == fp
        assert report.strategy == "noop"
        assert service.registered() == (fp,)

    def test_update_unknown_fingerprint_raises(self):
        service = SolverService()
        with pytest.raises(KeyError):
            service.update("no-such-fp", repro.EdgeEdits.empty())
