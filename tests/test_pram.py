"""Tests for the PRAM work-depth cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.model import CostModel, ParallelSection, log2ceil, null_cost
from repro.pram.primitives import (
    charge_bfs_round,
    charge_filter,
    charge_map,
    charge_reduce,
    charge_scan,
    charge_sort,
)


class TestCostModel:
    def test_charge_accumulates(self):
        c = CostModel()
        c.charge(work=10, depth=2)
        c.charge(work=5, depth=1)
        assert c.work == 15
        assert c.depth == 3

    def test_charge_round_counts_rounds(self):
        c = CostModel()
        c.charge_round(work=100)
        c.charge_round(work=50, depth=3)
        assert c.rounds == 2
        assert c.depth == 4

    def test_bump_counters(self):
        c = CostModel()
        c.bump("retries")
        c.bump("retries", 2)
        assert c.counters["retries"] == 3

    def test_sequential_merge(self):
        a = CostModel()
        a.charge(work=5, depth=2)
        b = CostModel()
        b.charge(work=7, depth=3)
        b.bump("x")
        a.sequential(b)
        assert a.work == 12
        assert a.depth == 5
        assert a.counters["x"] == 1

    def test_parallel_merge_takes_max_depth(self):
        parent = CostModel()
        with parent.parallel(3) as children:
            for i, child in enumerate(children):
                child.charge(work=10, depth=i + 1)
        assert parent.work == 30
        assert parent.depth == 3

    def test_parallel_empty(self):
        parent = CostModel()
        parent.parallel_merge([])
        assert parent.work == 0

    def test_null_cost_ignores_charges(self):
        c = null_cost()
        before = c.work
        c.charge(work=100, depth=100)
        c.bump("anything")
        assert c.work == before

    def test_snapshot_and_reset(self):
        c = CostModel()
        c.charge(work=3, depth=1)
        c.bump("k", 2)
        snap = c.snapshot()
        assert snap["work"] == 3 and snap["k"] == 2
        c.reset()
        assert c.work == 0 and c.counters == {}

    def test_parallel_section_records_phase(self):
        c = CostModel()
        with ParallelSection(c, "phase1") as sec:
            sec.charge(work=8, depth=2)
        assert c.work == 8
        assert c.counters["phase1_work"] == 8
        assert c.counters["phase1_depth"] == 2


class TestPrimitives:
    def test_map_linear_work_constant_depth(self):
        c = CostModel()
        charge_map(c, 100)
        assert c.work == 100
        assert c.depth == 1

    def test_map_zero_items(self):
        c = CostModel()
        charge_map(c, 0)
        assert c.work == 0

    def test_reduce_log_depth(self):
        c = CostModel()
        charge_reduce(c, 1024)
        assert c.work == 1024
        assert c.depth == 10

    def test_scan_work_and_depth(self):
        c = CostModel()
        charge_scan(c, 256)
        assert c.work == 512
        assert c.depth == 16

    def test_filter_includes_scan(self):
        c = CostModel()
        charge_filter(c, 64)
        assert c.work == 192

    def test_sort_nlogn(self):
        c = CostModel()
        charge_sort(c, 1024)
        assert c.work == 1024 * 10

    def test_sort_single_item_free(self):
        c = CostModel()
        charge_sort(c, 1)
        assert c.work == 0

    def test_bfs_round(self):
        c = CostModel()
        charge_bfs_round(c, frontier_edges=50, n=1024)
        assert c.rounds == 1
        assert c.work == 50
        assert c.depth == 10

    def test_log2ceil(self):
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1
        assert log2ceil(1024) == 10


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0, 1e3)), min_size=1, max_size=20))
def test_parallel_composition_bounds(charges):
    """Parallel depth is bounded by sequential depth; work is identical."""
    seq = CostModel()
    par = CostModel()
    for w, d in charges:
        seq.charge(work=w, depth=d)
    with par.parallel(len(charges)) as children:
        for child, (w, d) in zip(children, charges):
            child.charge(work=w, depth=d)
    assert par.work == pytest.approx(seq.work)
    assert par.depth <= seq.depth + 1e-9
    assert par.depth == pytest.approx(max(d for _, d in charges))
