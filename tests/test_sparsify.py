"""Tests for incremental sparsification (Lemma 6.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparse_akpw import low_stretch_subgraph
from repro.core.sparsify import incremental_sparsify, resistive_stretches
from repro.graph import generators
from repro.graph.graph import Graph
from repro.testing import generalized_eigen_extremes
from repro.graph.mst import minimum_spanning_tree_edges


@pytest.fixture(scope="module")
def grid_and_subgraph():
    g = generators.grid_2d(14, 14)
    sub = low_stretch_subgraph(g.reweighted(1.0 / g.w), lam=2, beta=6.0, seed=0)
    return g, sub.edge_indices


class TestResistiveStretch:
    def test_subgraph_edges_have_stretch_one(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        stretches = resistive_stretches(g, sub, sub)
        assert np.allclose(stretches, 1.0)

    def test_unit_weights_match_hop_stretch(self):
        g = generators.grid_2d(8, 8)
        tree = minimum_spanning_tree_edges(g)
        from repro.core.stretch import tree_stretches

        assert np.allclose(resistive_stretches(g, tree), tree_stretches(g, tree))

    def test_weighted_resistive_stretch(self):
        # triangle: edge 2 has high conductance (low resistance)
        g = Graph(3, [0, 1, 0], [1, 2, 2], [1.0, 1.0, 10.0])
        sub = np.array([0, 1])  # the two unit-conductance edges
        st = resistive_stretches(g, sub, np.array([2]))
        # resistance of the path = 1 + 1 = 2, conductance of edge = 10
        assert st[0] == pytest.approx(20.0)


class TestIncrementalSparsify:
    def test_subgraph_edges_always_kept(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        res = incremental_sparsify(g, sub, kappa=10.0, seed=0)
        assert np.array_equal(res.subgraph_edges, np.sort(sub))
        assert res.num_edges >= len(sub)

    def test_larger_kappa_fewer_edges(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        small = incremental_sparsify(g, sub, kappa=4.0, seed=1, use_log_factor=False)
        large = incremental_sparsify(g, sub, kappa=64.0, seed=1, use_log_factor=False)
        assert large.num_edges <= small.num_edges

    def test_spectral_sandwich_subgraph_variant(self, grid_and_subgraph):
        """H ⪯ G and G ⪯ O(kappa) H for the plain-subgraph variant."""
        g, sub = grid_and_subgraph
        kappa = 12.0
        res = incremental_sparsify(g, sub, kappa=kappa, seed=2, use_log_factor=False)
        lo, hi = generalized_eigen_extremes(g, res.graph)
        assert lo >= 1.0 - 1e-6  # H ⪯ G exactly
        assert hi <= 6.0 * kappa  # G ⪯ O(kappa) H

    def test_reweighted_variant_unbiased(self, grid_and_subgraph):
        """The unbiased variant has generalized eigenvalues straddling 1."""
        g, sub = grid_and_subgraph
        res = incremental_sparsify(g, sub, kappa=8.0, seed=3, use_log_factor=True, reweight=True)
        lo, hi = generalized_eigen_extremes(g, res.graph)
        assert lo <= 1.0 + 1e-6 <= hi + 1.0  # lower end at or below 1

    def test_all_edges_in_subgraph_shortcut(self):
        g = generators.path_graph(20)
        res = incremental_sparsify(g, np.arange(g.num_edges), kappa=5.0, seed=0)
        assert res.num_edges == g.num_edges
        assert res.sampled_edges.size == 0

    def test_kappa_validation(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        with pytest.raises(ValueError):
            incremental_sparsify(g, sub, kappa=1.0)

    def test_stats_recorded(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        res = incremental_sparsify(g, sub, kappa=10.0, seed=4)
        assert res.stats["total_stretch"] > 0
        assert res.stats["off_subgraph_edges"] == g.num_edges - len(sub)

    def test_deterministic(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        r1 = incremental_sparsify(g, sub, kappa=10.0, seed=7)
        r2 = incremental_sparsify(g, sub, kappa=10.0, seed=7)
        assert np.array_equal(r1.sampled_edges, r2.sampled_edges)

    def test_boolean_mask_input(self, grid_and_subgraph):
        g, sub = grid_and_subgraph
        mask = np.zeros(g.num_edges, dtype=bool)
        mask[sub] = True
        res = incremental_sparsify(g, mask, kappa=10.0, seed=0)
        assert res.num_edges >= len(sub)
