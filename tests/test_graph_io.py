"""Streaming edge ingestion must be bit-identical to the in-memory Graph.

Every corpus case — including multigraphs and disconnected unions — is
round-tripped through all ingestion sources (in-memory blocks, ``.npy``
memmaps, packed binary records) at several block sizes, and the resulting
graph's ``u``/``v``/``w`` arrays, dtypes, and fingerprint must match the
direct constructor exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.io import (
    BINARY_EDGE_DTYPE,
    graph_from_edge_blocks,
    graph_from_edge_list,
    iter_edge_blocks,
    save_edge_list_binary,
    save_edge_list_npy,
)
from repro.testing import fuzz_corpus
from repro.util.dtypes import IndexOverflowError

CASES = fuzz_corpus(seed=0)
BLOCK_SIZES = [1, 3, 1 << 10]


def _assert_graphs_identical(got: Graph, want: Graph) -> None:
    # Streaming builders default to index_dtype="auto" (minimal storage);
    # corpus graphs built from Python lists carry int64.  Normalize the
    # expectation to the same auto policy for dtype checks — values and the
    # (dtype-canonical) fingerprint must match the original exactly.
    norm = Graph(want.n, want.u, want.v, want.w, index_dtype="auto", validate=False)
    assert got.n == want.n
    assert got.num_edges == want.num_edges
    assert got.u.dtype == norm.u.dtype
    assert got.v.dtype == norm.v.dtype
    assert got.w.dtype == want.w.dtype
    np.testing.assert_array_equal(got.u, want.u)
    np.testing.assert_array_equal(got.v, want.v)
    np.testing.assert_array_equal(got.w, want.w)
    assert got.fingerprint() == want.fingerprint()


@pytest.mark.parametrize("block_edges", BLOCK_SIZES)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_array_blocks_match_direct_constructor(case, block_edges):
    g = case.graph
    built = graph_from_edge_blocks(
        g.n,
        iter_edge_blocks((g.u, g.v, g.w), block_edges=block_edges),
        num_edges=g.num_edges,
    )
    _assert_graphs_identical(built, g)


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_unknown_edge_count_grows_buffers(case):
    # Without num_edges the builder grows by doubling; result is identical.
    g = case.graph
    built = graph_from_edge_list(g.n, (g.u, g.v, g.w), block_edges=2)
    _assert_graphs_identical(built, g)


@pytest.mark.parametrize("block_edges", [3, 1 << 10])
@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_npy_memmap_roundtrip(case, block_edges, tmp_path):
    g = case.graph
    path = save_edge_list_npy(g, tmp_path / "edges.npy")
    built = graph_from_edge_list(g.n, path, block_edges=block_edges)
    _assert_graphs_identical(built, g)


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_binary_roundtrip(case, tmp_path):
    g = case.graph
    path = save_edge_list_binary(g, tmp_path / "edges.bin")
    built = graph_from_edge_list(g.n, path, block_edges=7)
    _assert_graphs_identical(built, g)


def test_plain_2d_npy_without_weights(tmp_path):
    g = fuzz_corpus(seed=0)[5].graph  # path_12, unweighted
    arr = np.stack([g.u, g.v], axis=1).astype(np.int64)
    path = tmp_path / "pairs.npy"
    np.save(path, arr)
    built = graph_from_edge_list(g.n, str(path), block_edges=4)
    _assert_graphs_identical(built, g)


def test_iter_edge_blocks_from_graph_and_passthrough():
    g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    blocks = list(iter_edge_blocks(g, block_edges=2))
    assert [b[0].shape[0] for b in blocks] == [2, 1]
    rebuilt = graph_from_edge_blocks(4, iter(blocks))
    _assert_graphs_identical(rebuilt, g)


def test_streaming_validation_rejects_bad_blocks():
    with pytest.raises(ValueError):
        graph_from_edge_blocks(3, [(np.array([0]), np.array([5]), np.array([1.0]))])
    with pytest.raises(ValueError):
        graph_from_edge_blocks(3, [(np.array([1]), np.array([1]), np.array([1.0]))])
    with pytest.raises(ValueError):
        graph_from_edge_blocks(3, [(np.array([0]), np.array([1]), np.array([-1.0]))])


def test_streaming_explicit_int32_overflow_raises():
    # Declared vertex count beyond int32 capacity fails fast under an
    # explicit "int32" request instead of wrapping.
    big_n = np.iinfo(np.int32).max + 10
    with pytest.raises(IndexOverflowError):
        graph_from_edge_blocks(
            big_n,
            [(np.array([0]), np.array([1]), np.array([1.0]))],
            index_dtype="int32",
        )


def test_streaming_float32_value_mode():
    g = graph_from_edge_blocks(
        3,
        [(np.array([0, 1]), np.array([1, 2]), np.array([1.5, 2.5]))],
        value_dtype="float32",
    )
    assert g.w.dtype == np.dtype(np.float32)
    np.testing.assert_allclose(g.w, [1.5, 2.5])
