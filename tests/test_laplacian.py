"""Tests for Laplacian construction and the Gremban SDD reduction."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.laplacian import (
    GrembanReduction,
    graph_to_laplacian,
    is_laplacian,
    is_sdd,
    laplacian_to_graph,
    project_out_nullspace,
    sdd_to_laplacian,
)


class TestGraphLaplacian:
    def test_laplacian_row_sums_zero(self, random_graph):
        lap = graph_to_laplacian(random_graph)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_laplacian_diagonal_is_weighted_degree(self, weighted_grid_graph):
        lap = graph_to_laplacian(weighted_grid_graph)
        assert np.allclose(lap.diagonal(), weighted_grid_graph.degrees(weighted=True))

    def test_laplacian_psd_small(self):
        g = generators.weighted_grid_2d(5, 5, seed=0)
        lap = graph_to_laplacian(g).toarray()
        eigs = np.linalg.eigvalsh(lap)
        assert eigs.min() > -1e-9

    def test_roundtrip_graph_laplacian_graph(self, weighted_grid_graph):
        lap = graph_to_laplacian(weighted_grid_graph)
        g2 = laplacian_to_graph(lap)
        simple, _ = weighted_grid_graph.coalesce()
        assert g2.num_edges == simple.num_edges
        assert g2.total_weight == pytest.approx(simple.total_weight)

    def test_laplacian_to_graph_rejects_positive_offdiag(self):
        mat = sp.csr_matrix(np.array([[1.0, 0.5], [0.5, 1.0]]))
        with pytest.raises(ValueError):
            laplacian_to_graph(mat)

    def test_empty_graph_laplacian(self):
        g = Graph(3, [], [], [])
        lap = graph_to_laplacian(g)
        assert lap.shape == (3, 3)
        assert lap.nnz == 0

    def test_parallel_edges_summed(self):
        g = Graph(2, [0, 0], [1, 1], [1.0, 2.0])
        lap = graph_to_laplacian(g)
        assert lap[0, 1] == pytest.approx(-3.0)


class TestSDDChecks:
    def test_laplacian_is_sdd_and_laplacian(self, grid_graph):
        lap = graph_to_laplacian(grid_graph)
        assert is_sdd(lap)
        assert is_laplacian(lap)

    def test_sdd_with_excess_is_not_laplacian(self, grid_graph):
        lap = graph_to_laplacian(grid_graph).tolil()
        lap[0, 0] += 1.0
        assert is_sdd(lap)
        assert not is_laplacian(lap)

    def test_non_symmetric_not_sdd(self):
        mat = sp.csr_matrix(np.array([[2.0, -1.0], [0.0, 2.0]]))
        assert not is_sdd(mat)

    def test_not_diagonally_dominant(self):
        mat = sp.csr_matrix(np.array([[1.0, -2.0], [-2.0, 1.0]]))
        assert not is_sdd(mat)

    def test_positive_offdiag_sdd(self):
        mat = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        assert is_sdd(mat)
        assert not is_laplacian(mat)


class TestGrembanReduction:
    def test_trivial_for_laplacian(self, grid_graph):
        lap = graph_to_laplacian(grid_graph)
        red = sdd_to_laplacian(lap)
        assert red.trivial
        b = np.arange(grid_graph.n, dtype=float)
        assert np.allclose(red.expand_rhs(b), b)
        assert np.allclose(red.restrict_solution(b), b)

    def test_reduction_output_is_laplacian(self):
        mat, _ = generators.weighted_sdd_system(40, 100, seed=0)
        red = sdd_to_laplacian(mat)
        assert not red.trivial
        assert is_laplacian(red.laplacian)
        assert red.laplacian.shape == (2 * 40 + 1, 2 * 40 + 1)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reduction_solves_sdd_system(self, seed):
        mat, b = generators.weighted_sdd_system(30, 70, seed=seed)
        red = sdd_to_laplacian(mat)
        x_exact = spla.spsolve(sp.csc_matrix(mat), b)
        y = np.linalg.pinv(red.laplacian.toarray()) @ red.expand_rhs(b)
        x = red.restrict_solution(y)
        assert np.allclose(x, x_exact, rtol=1e-8, atol=1e-8)

    def test_rejects_non_sdd(self):
        mat = sp.csr_matrix(np.array([[1.0, -2.0], [-2.0, 1.0]]))
        with pytest.raises(ValueError):
            sdd_to_laplacian(mat)

    def test_diagonal_excess_only(self):
        # Laplacian plus diagonal: common case (e.g. discretized PDE with
        # Dirichlet boundary).
        g = generators.grid_2d(5, 5)
        lap = graph_to_laplacian(g).tolil()
        lap[0, 0] += 2.0
        lap[12, 12] += 1.0
        mat = sp.csr_matrix(lap)
        red = sdd_to_laplacian(mat)
        assert not red.trivial
        b = np.random.default_rng(0).standard_normal(25)
        x_exact = spla.spsolve(sp.csc_matrix(mat), b)
        y = np.linalg.pinv(red.laplacian.toarray()) @ red.expand_rhs(b)
        assert np.allclose(red.restrict_solution(y), x_exact, atol=1e-8)


def test_project_out_nullspace():
    x = np.array([1.0, 2.0, 3.0])
    assert project_out_nullspace(x).sum() == pytest.approx(0.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=1000))
def test_laplacian_quadratic_form_nonnegative(n, seed):
    rng = np.random.default_rng(seed)
    m = max(1, n)
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    keep = u != v
    if not np.any(keep):
        return
    g = Graph(n, u[keep], v[keep], rng.random(int(keep.sum())) + 0.1)
    lap = graph_to_laplacian(g)
    x = rng.standard_normal(n)
    assert float(x @ (lap @ x)) >= -1e-9
