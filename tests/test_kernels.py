"""Bit-for-bit equality of kernel backends (repro.kernels).

The solver's reproducibility story rests on one contract: every kernel of
every backend returns results *bitwise* equal to the pure-NumPy reference.
These tests pin that contract over the fuzz corpus without requiring numba:
``repro.kernels.numba_backend`` decorates its kernels conditionally, so when
numba is missing the identical source runs as plain Python — the arithmetic
and loop order under test are exactly what ``@njit`` compiles (numba's whole
pitch is that it preserves Python/NumPy semantics; what it changes is who
holds the GIL).  CI additionally runs the full suite with numba installed
and ``REPRO_KERNEL_BACKEND=numba``, exercising the compiled path end to end.

Also covered: backend selection (env override, "auto" fallback, the
actionable error for an explicit "numba" without numba) and end-to-end
factorize/solve equality across backends.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro.core.operator as operator_mod
from repro.core.chebyshev import chebyshev_apply
from repro.core.config import SolverConfig
from repro.core.elimination import greedy_elimination
from repro.core.operator import factorize
from repro.core.transfer import compile_transfers
from repro.graph.laplacian import graph_to_laplacian
from repro.kernels import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    CsrOperand,
    KernelBackendError,
    available_backends,
    get_kernels,
    numba_available,
    numba_version,
    resolve_backend,
)
from repro.kernels import numba_backend, reference
from repro.linalg.cg import batched_conjugate_gradient
from repro.linalg.jacobi import jacobi_preconditioner

REF = reference.KERNELS
ALT = numba_backend.build_kernels()


def bits(*arrays: np.ndarray) -> str:
    """Digest of the exact bytes of arrays (C-normalized) — bitwise identity."""
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def assert_bit_equal(a: np.ndarray, b: np.ndarray) -> None:
    assert a.shape == b.shape and a.dtype == b.dtype
    assert np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()


# --------------------------------------------------------------------------- #
# elimination transfers over the fuzz corpus (includes multigraphs, i.e.
# duplicate-target scatter-adds, and disconnected graphs)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("width", [None, 3])
def test_transfers_bit_identical_across_backends(corpus_case, width):
    elim = greedy_elimination(corpus_case.graph, seed=13)
    transfers = compile_transfers(elim)
    rng = np.random.default_rng(99)
    n = corpus_case.graph.n
    b = rng.standard_normal(n) if width is None else rng.standard_normal((n, width))

    reduced_ref, carry_ref = transfers.forward(b, kernels=REF)
    reduced_alt, carry_alt = transfers.forward(b, kernels=ALT)
    assert_bit_equal(carry_ref, carry_alt)
    assert_bit_equal(reduced_ref, reduced_alt)

    x_reduced = rng.standard_normal(reduced_ref.shape)
    x_ref = transfers.backward(carry_ref, x_reduced, kernels=REF)
    x_alt = transfers.backward(carry_alt, x_reduced, kernels=ALT)
    assert_bit_equal(x_ref, x_alt)


def test_transfers_default_kernels_match_explicit_reference(corpus_case):
    elim = greedy_elimination(corpus_case.graph, seed=5)
    transfers = compile_transfers(elim)
    rng = np.random.default_rng(7)
    b = rng.standard_normal((corpus_case.graph.n, 2))
    reduced_default, carry_default = transfers.forward(b)
    reduced_ref, carry_ref = transfers.forward(b, kernels=REF)
    assert_bit_equal(carry_default, carry_ref)
    assert_bit_equal(reduced_default, reduced_ref)


# --------------------------------------------------------------------------- #
# column reductions: NumPy's pairwise summation tree, exactly
# --------------------------------------------------------------------------- #
# Boundary lengths of the pairwise recursion: the <8 sequential tail, the
# 8-accumulator block at <=128, and the recursive split beyond it.
PAIRWISE_LENGTHS = [1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129, 200, 255, 256, 257, 1000]


@pytest.mark.parametrize("order", ["C", "F"])
def test_column_reductions_match_numpy_pairwise(order):
    rng = np.random.default_rng(3)
    for n in PAIRWISE_LENGTHS:
        a = np.asarray(rng.standard_normal((n, 4)) * 10.0 ** rng.integers(-6, 6, (n, 4)), order=order)
        b = np.asarray(rng.standard_normal((n, 4)), order=order)
        assert_bit_equal(REF.column_dot(a, b), ALT.column_dot(a, b))
        assert_bit_equal(REF.column_norms(a), ALT.column_norms(a))
        assert_bit_equal(REF.column_means(a), ALT.column_means(a))
        assert_bit_equal(REF.subtract_column_means(a), ALT.subtract_column_means(a))


def test_subtract_gathered_matches_reference():
    rng = np.random.default_rng(21)
    n, k, comps = 97, 3, 5
    labels = rng.integers(0, comps, n)
    scaled = rng.standard_normal((comps, k))
    v = rng.standard_normal((n, k))
    assert_bit_equal(REF.subtract_gathered(v, scaled, labels), ALT.subtract_gathered(v, scaled, labels))
    v1 = rng.standard_normal(n)
    s1 = rng.standard_normal(comps)
    assert_bit_equal(REF.subtract_gathered(v1, s1, labels), ALT.subtract_gathered(v1, s1, labels))


# --------------------------------------------------------------------------- #
# CSR matvec: SciPy's stored-entry accumulation order
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("width", [None, 1, 5])
def test_csr_matvec_bit_identical(edged_corpus_case, width):
    lap = graph_to_laplacian(edged_corpus_case.graph)
    operand = CsrOperand(lap)
    rng = np.random.default_rng(17)
    n = lap.shape[0]
    x = rng.standard_normal(n) if width is None else rng.standard_normal((n, width))
    assert_bit_equal(REF.csr_matvec(operand, x), ALT.csr_matvec(operand, x))
    if width is not None:
        xf = np.asfortranarray(x)
        assert_bit_equal(REF.csr_matvec(operand, xf), ALT.csr_matvec(operand, xf))


# --------------------------------------------------------------------------- #
# iterative recurrences: batched CG, Chebyshev, Jacobi
# --------------------------------------------------------------------------- #
def _spd_system(seed: int = 2):
    """A well-conditioned SPD system (Laplacian + I) plus random rhs block."""
    import scipy.sparse as sp

    from repro.testing import fuzz_corpus

    g = next(c for c in fuzz_corpus(seed=0) if c.name == "wgrid_5x6").graph
    lap = graph_to_laplacian(g)
    mat = (lap + sp.identity(lap.shape[0], format="csr")).tocsr()
    rng = np.random.default_rng(seed)
    return mat, rng


@pytest.mark.parametrize("k", [1, 3, 8])
def test_batched_cg_bit_identical(k):
    mat, rng = _spd_system()
    b = rng.standard_normal((mat.shape[0], k))
    operand = CsrOperand(mat)

    runs = {}
    for name, kset in (("ref", REF), ("alt", ALT)):
        res = batched_conjugate_gradient(
            lambda v: kset.csr_matvec(operand, v),
            b,
            tol=1e-10,
            max_iterations=300,
            kernels=kset,
        )
        runs[name] = bits(res.x, res.iterations, res.residuals, res.converged)
        assert res.converged.all()
    assert runs["ref"] == runs["alt"]


def test_batched_cg_fixed_iterations_bit_identical():
    mat, rng = _spd_system(seed=9)
    b = rng.standard_normal((mat.shape[0], 4))
    operand = CsrOperand(mat)
    out = []
    for kset in (REF, ALT):
        res = batched_conjugate_gradient(
            lambda v: kset.csr_matvec(operand, v), b, fixed_iterations=11, kernels=kset
        )
        out.append(bits(res.x, res.residuals))
    assert out[0] == out[1]


def test_chebyshev_apply_bit_identical():
    mat, rng = _spd_system(seed=4)
    b = rng.standard_normal((mat.shape[0], 3))
    operand = CsrOperand(mat)
    jac = {kset: jacobi_preconditioner(mat, kernels=kset) for kset in (REF, ALT)}
    out = []
    for kset in (REF, ALT):
        x = chebyshev_apply(
            lambda v: kset.csr_matvec(operand, v),
            jac[kset],
            b,
            lambda_min=0.05,
            lambda_max=2.5,
            iterations=13,
            kernels=kset,
        )
        out.append(bits(x))
    assert out[0] == out[1]
    x_vec = chebyshev_apply(
        lambda v: ALT.csr_matvec(operand, v),
        jac[ALT],
        b[:, 0],
        lambda_min=0.05,
        lambda_max=2.5,
        iterations=13,
        kernels=ALT,
    )
    x_ref = chebyshev_apply(
        lambda v: REF.csr_matvec(operand, v),
        jac[REF],
        b[:, 0],
        lambda_min=0.05,
        lambda_max=2.5,
        iterations=13,
        kernels=REF,
    )
    assert_bit_equal(x_ref, x_vec)


def test_jacobi_diag_scale_bit_identical():
    mat, rng = _spd_system(seed=6)
    r = rng.standard_normal((mat.shape[0], 4))
    assert_bit_equal(jacobi_preconditioner(mat, kernels=REF)(r), jacobi_preconditioner(mat, kernels=ALT)(r))
    assert_bit_equal(
        jacobi_preconditioner(mat, kernels=REF)(r[:, 0]),
        jacobi_preconditioner(mat, kernels=ALT)(r[:, 0]),
    )


# --------------------------------------------------------------------------- #
# end to end: factorize + solve on the alternate backend
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("method", ["pcg", "chebyshev"])
def test_solve_bit_identical_across_backends(monkeypatch, method):
    from repro.testing import fuzz_corpus

    case = next(c for c in fuzz_corpus(seed=0) if c.name == "disconnected_grids")
    rng = np.random.default_rng(31)
    b = rng.standard_normal((case.graph.n, 3))
    b -= b.mean(axis=0)

    def run():
        op = factorize(case.graph, solver=SolverConfig(method=method), seed=8)
        rep = op.solve(b, tol=1e-8)
        return bits(rep.x, np.asarray(rep.column_iterations), np.asarray(rep.column_residuals)), rep

    ref_digest, ref_rep = run()
    monkeypatch.setattr(operator_mod, "get_kernels", lambda backend=None: ALT)
    alt_digest, alt_rep = run()
    assert ref_digest == alt_digest
    assert ref_rep.iterations == alt_rep.iterations
    # PRAM accounting is backend-invariant: charging happens at call sites.
    assert ref_rep.work == alt_rep.work and ref_rep.depth == alt_rep.depth


# --------------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------------- #
def test_backend_names_and_availability(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert BACKEND_NAMES == ("auto", "numpy", "numba")
    concrete = available_backends()
    assert "numpy" in concrete and "auto" not in concrete
    assert ("numba" in concrete) == numba_available()
    assert (numba_version() is not None) == numba_available()


def test_resolve_backend_auto_and_explicit(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend("numpy") == "numpy"
    expected_auto = "numba" if numba_available() else "numpy"
    assert resolve_backend("auto") == expected_auto
    assert resolve_backend(None) == expected_auto
    if numba_available():
        assert resolve_backend("numba") == "numba"
    else:
        with pytest.raises(KernelBackendError, match="numba is not installed"):
            resolve_backend("numba")


def test_env_var_overrides_configured_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert resolve_backend("auto") == "numpy"
    if numba_available():
        # Even an explicit numba request defers to the env override.
        assert resolve_backend("numba") == "numpy"
    assert get_kernels("auto") is REF


def test_unknown_backend_names_error(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    with pytest.raises(KernelBackendError, match="unknown kernel backend"):
        resolve_backend("fortran")
    monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
    with pytest.raises(KernelBackendError, match=BACKEND_ENV_VAR):
        resolve_backend("numpy")
    with pytest.raises(ValueError, match="kernel_backend"):
        SolverConfig(kernel_backend="fortran")


def _forced_nonhost_array_backend() -> bool:
    """Whether REPRO_ARRAY_BACKEND forces a non-host namespace on this run."""
    from repro.kernels.array_ns import get_namespace, resolve_backend_name

    return not get_namespace(resolve_backend_name(None)).is_host


def test_factorize_surfaces_missing_numba(monkeypatch, grid_graph):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    if numba_available():
        pytest.skip("numba installed; the missing-backend error is unreachable")
    if _forced_nonhost_array_backend():
        # Non-host array lane: the combination rule fires first (it does not
        # depend on whether numba is installed).
        with pytest.raises(
            KernelBackendError, match="supports only array_backend='numpy'"
        ):
            factorize(grid_graph, solver=SolverConfig(kernel_backend="numba"), seed=0)
        return
    with pytest.raises(KernelBackendError, match="repro-sdd-solver\\[kernels\\]"):
        factorize(grid_graph, solver=SolverConfig(kernel_backend="numba"), seed=0)


def test_factorize_auto_falls_back_silently(monkeypatch, grid_graph):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    op = factorize(grid_graph, solver=SolverConfig(kernel_backend="auto"), seed=0)
    assert op.kernels.name in ("numpy", "numba")
    if not numba_available() and not _forced_nonhost_array_backend():
        assert op.kernels is REF


def test_alt_backend_reports_jit_status():
    assert ALT.name == "numba"
    assert ALT.jit == numba_available()
    if not numba_available():
        with pytest.raises(KernelBackendError):
            numba_backend.load()
