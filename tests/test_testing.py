"""Tests of the test infrastructure itself (corpus determinism + oracles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_to_laplacian
from repro.testing import (
    corpus_names,
    dense_effective_resistances,
    dense_fiedler_value,
    dense_harmonic_interpolation,
    dense_solve_laplacian,
    dense_spectral_embedding,
    disjoint_union,
    fuzz_corpus,
    generalized_eigen_extremes,
    random_tree,
    with_parallel_edges,
)


class TestCorpus:
    def test_deterministic_for_fixed_seed(self):
        a = fuzz_corpus(seed=5)
        b = fuzz_corpus(seed=5)
        assert [c.name for c in a] == [c.name for c in b]
        for ca, cb in zip(a, b):
            assert ca.graph == cb.graph

    def test_seeds_change_randomized_cases(self):
        a = {c.name: c.graph for c in fuzz_corpus(seed=0)}
        b = {c.name: c.graph for c in fuzz_corpus(seed=1)}
        assert a["tree_20"] != b["tree_20"]
        assert a["path_12"] == b["path_12"]  # structured cases are fixed

    def test_covers_required_shapes(self):
        cases = fuzz_corpus(seed=0)
        tags = set().union(*(c.tags for c in cases))
        assert {"tree", "disconnected", "multigraph", "weighted", "edgeless"} <= tags
        sizes = {c.graph.n for c in cases}
        assert 1 in sizes  # single vertex
        assert any(c.graph.num_edges == 1 and c.graph.n == 2 for c in cases)  # single edge

    def test_names_are_unique_and_stable(self):
        names = corpus_names(seed=0)
        assert len(names) == len(set(names))
        assert corpus_names(seed=3) == names

    def test_random_tree_is_tree(self):
        g = random_tree(40, seed=2, weighted=True)
        count, _ = connected_components(g)
        assert count == 1 and g.num_edges == g.n - 1

    def test_with_parallel_edges_adds_duplicates(self):
        g = with_parallel_edges(generators.path_graph(6), seed=0, fraction=0.5)
        coalesced, _ = g.coalesce()
        assert g.num_edges > coalesced.num_edges

    def test_disjoint_union_offsets_vertices(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(2)])
        assert g.n == 5 and g.num_edges == 3
        count, _ = connected_components(g)
        assert count == 2


class TestDenseResistanceOracle:
    def test_path_edges_have_unit_resistance(self):
        assert np.allclose(dense_effective_resistances(generators.path_graph(5)), 1.0)

    def test_series_pair(self):
        g = generators.path_graph(4)
        r = dense_effective_resistances(g, pairs=np.array([[0, 3]]))
        assert r[0] == pytest.approx(3.0)

    def test_parallel_edges_combine_conductance(self):
        g = Graph(2, [0, 0], [1, 1], [1.0, 3.0])
        r = dense_effective_resistances(g)
        assert np.allclose(r, 0.25)

    def test_cross_component_is_inf_same_vertex_is_zero(self):
        g = disjoint_union([generators.path_graph(2), generators.path_graph(2)])
        r = dense_effective_resistances(g, pairs=np.array([[0, 2], [1, 1], [0, 1]]))
        assert np.isinf(r[0]) and r[1] == 0.0 and np.isfinite(r[2])


class TestDenseHarmonicOracle:
    def test_linear_interpolation_on_path(self):
        g = generators.path_graph(5)
        x = dense_harmonic_interpolation(g, np.array([0, 4]), np.array([0.0, 1.0]))
        assert np.allclose(x, np.linspace(0.0, 1.0, 5))

    def test_respects_laplacian_equation_on_interior(self):
        g = generators.weighted_grid_2d(4, 5, seed=1, spread=10.0)
        boundary = np.array([0, 7, 19])
        x = dense_harmonic_interpolation(g, boundary, np.array([1.0, -2.0, 0.5]))
        residual = graph_to_laplacian(g) @ x
        interior = np.setdiff1d(np.arange(g.n), boundary)
        assert np.allclose(residual[interior], 0.0, atol=1e-10)

    def test_unreachable_component_pinned_to_zero(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(3)])
        x = dense_harmonic_interpolation(g, np.array([0]), np.array([7.0]))
        assert np.allclose(x[:3], 7.0)  # constant extension in the boundary's component
        assert np.allclose(x[3:], 0.0)  # no information: pinned to zero


class TestDenseSpectralOracle:
    def test_path_fiedler_value(self):
        # lambda_2 of a path = 4 sin^2(pi / (2n))
        n = 6
        expected = 4.0 * np.sin(np.pi / (2 * n)) ** 2
        assert dense_fiedler_value(generators.path_graph(n)) == pytest.approx(expected)

    def test_skips_all_zero_modes_of_disconnected_graph(self):
        g = disjoint_union([generators.path_graph(3), generators.path_graph(3)])
        evals, vecs = dense_spectral_embedding(g, 2)
        assert np.all(evals > 1e-8)
        assert vecs.shape == (6, 2)

    def test_k_out_of_range_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            dense_spectral_embedding(g, 4)

    def test_eigenpairs_satisfy_equation(self):
        g = generators.erdos_renyi_gnm(20, 40, seed=0)
        evals, vecs = dense_spectral_embedding(g, 3)
        lap = graph_to_laplacian(g)
        assert np.allclose(lap @ vecs, vecs * evals, atol=1e-9)


class TestDenseSolveAndPencil:
    def test_dense_solve_matches_laplacian_equation(self):
        g = generators.weighted_grid_2d(4, 4, seed=0, spread=5.0)
        b = np.random.default_rng(0).standard_normal(g.n)
        x = dense_solve_laplacian(g, b)
        assert np.allclose(graph_to_laplacian(g) @ x, b - b.mean(), atol=1e-9)

    def test_generalized_extremes_identity_pair(self):
        g = generators.grid_2d(4, 4)
        lo, hi = generalized_eigen_extremes(g, g)
        assert lo == pytest.approx(1.0, abs=1e-8)
        assert hi == pytest.approx(1.0, abs=1e-8)

    def test_generalized_extremes_scaled_pair(self):
        g = generators.grid_2d(4, 4)
        lo, hi = generalized_eigen_extremes(g, g.reweighted(2.0 * g.w))
        # Range directions give 1/2; the all-ones direction (carried by the
        # rank-one shift on both sides) contributes exactly 1.
        assert lo == pytest.approx(0.5, abs=1e-8)
        assert hi == pytest.approx(1.0, abs=1e-8)
