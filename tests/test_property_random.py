"""Property-style randomized tests over the seeded fuzz corpus.

Two classes of properties the ISSUE pins down:

* **Batched == looped, bit-for-bit.**  A batched ``(n, k)`` solve must be
  byte-identical to ``k`` independent ``(n,)`` solves — including on
  disconnected graphs, where the per-component projectors are exercised.
  This holds because every reduction on the solve path is batch-width
  invariant (see :mod:`repro.linalg.norms`).
* **Chain-cache accounting.**  ``chain_cache_stats()`` hit/miss counters
  must track repeated ``repro.solve`` calls exactly.

Both are parameterized over corpus seeds so the suite re-fuzzes itself;
the large-corpus sweeps are marked ``slow`` (run with ``-m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.operator import factorize
from repro.graph.components import connected_components
from repro.testing import dense_solve_laplacian, fuzz_corpus

CORPUS_SEEDS = [0, 1, 2]


def _cases(seed, *, include_large=False, predicate=None):
    cases = fuzz_corpus(seed, include_large=include_large)
    if predicate is not None:
        cases = [c for c in cases if predicate(c)]
    return cases


@pytest.mark.parametrize("corpus_seed", CORPUS_SEEDS)
class TestBatchedEqualsLooped:
    def test_bit_for_bit_on_disconnected_graphs(self, corpus_seed):
        for case in _cases(corpus_seed, predicate=lambda c: c.has("disconnected")):
            g = case.graph
            op = factorize(g, seed=corpus_seed)
            rhs = np.random.default_rng(corpus_seed + 100).standard_normal((g.n, 4))
            batched = op.solve(rhs, tol=1e-8)
            for j in range(rhs.shape[1]):
                single = op.solve(rhs[:, j], tol=1e-8)
                assert np.array_equal(single.x, batched.x[:, j]), (case.name, j)
                assert single.iterations == batched.column_iterations[j]
                assert single.converged == batched.column_converged[j]

    def test_bit_for_bit_across_corpus(self, corpus_seed):
        for case in _cases(corpus_seed, predicate=lambda c: c.graph.n >= 2):
            g = case.graph
            op = factorize(g, seed=7)
            rhs = np.random.default_rng(corpus_seed).standard_normal((g.n, 3))
            batched = op.solve(rhs, tol=1e-8)
            for j in range(rhs.shape[1]):
                assert np.array_equal(op.solve(rhs[:, j], tol=1e-8).x, batched.x[:, j]), case.name


@pytest.mark.parametrize("corpus_seed", CORPUS_SEEDS)
def test_solve_matches_dense_oracle(corpus_seed):
    """Every corpus graph's solve agrees with the dense pinv oracle."""
    for case in _cases(corpus_seed):
        g = case.graph
        rhs = np.random.default_rng(corpus_seed + 1).standard_normal(g.n)
        report = repro.solve(g, rhs, tol=1e-12, seed=0, use_cache=False)
        ref = dense_solve_laplacian(g, rhs)
        # Compare modulo the null space: project both onto the range.
        diff = report.x - ref
        _, labels = connected_components(g)
        for comp in np.unique(labels):
            mask = labels == comp
            diff[mask] -= diff[mask].mean()
        scale = max(float(np.abs(ref).max()), 1e-12)
        assert np.abs(diff).max() <= 1e-8 * scale, case.name


class TestChainCacheStats:
    def setup_method(self):
        repro.clear_chain_cache()

    def test_hit_miss_counts_across_repeated_solves(self):
        from repro.graph import generators

        g = generators.grid_2d(6, 6)
        b = np.random.default_rng(0).standard_normal(g.n)
        stats = repro.chain_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)

        repro.solve(g, b, seed=3)
        stats = repro.chain_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 1, 1)

        for repeat in range(1, 4):
            repro.solve(g, 2.0 * b, seed=3)
            stats = repro.chain_cache_stats()
            assert (stats.hits, stats.misses) == (repeat, 1)

        # Different seed → different factorization → a second miss.
        repro.solve(g, b, seed=4)
        stats = repro.chain_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (3, 2, 2)

        # Bypassing the cache must leave the counters untouched.
        repro.solve(g, b, seed=3, use_cache=False)
        assert repro.chain_cache_stats() == stats

        # Non-integer seeds are uncacheable and never counted.
        repro.solve(g, b, seed=np.random.default_rng(0))
        assert repro.chain_cache_stats() == stats

    def test_distinct_graphs_miss_separately(self):
        from repro.graph import generators

        g1 = generators.grid_2d(5, 5)
        g2 = generators.grid_2d(5, 6)
        b1 = np.ones(g1.n)
        b2 = np.ones(g2.n)
        repro.solve(g1, b1, seed=0)
        repro.solve(g2, b2, seed=0)
        repro.solve(g1, b1, seed=0)
        stats = repro.chain_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 2, 2)


@pytest.mark.slow
@pytest.mark.parametrize("corpus_seed", CORPUS_SEEDS)
def test_large_corpus_solve_and_batching(corpus_seed):
    """Large fuzz sweep: oracle agreement + bit-for-bit batching at scale."""
    for case in _cases(corpus_seed, include_large=True, predicate=lambda c: c.has("large")):
        g = case.graph
        op = factorize(g, seed=corpus_seed)
        rhs = np.random.default_rng(corpus_seed).standard_normal((g.n, 4))
        batched = op.solve(rhs, tol=1e-10)
        assert batched.converged
        j = corpus_seed % rhs.shape[1]
        single = op.solve(rhs[:, j], tol=1e-10)
        assert np.array_equal(single.x, batched.x[:, j]), case.name
