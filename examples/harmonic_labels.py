#!/usr/bin/env python
"""Semi-supervised label propagation via batched harmonic interpolation.

A handful of labeled vertices become Dirichlet boundary conditions; the
harmonic extension (one batched multi-label solve on the interior
Laplacian, Zhu–Ghahramani–Lafferty style) scores every unlabeled vertex,
and the arg-max over score columns predicts its class.  The demo builds two
weighted grid "regions" bridged by a few weak edges, labels three vertices
per region, and reports the propagation accuracy against the ground-truth
region split.

Run with::

    PYTHONPATH=src python examples/harmonic_labels.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.graph import generators
from repro.testing import disjoint_union


def main() -> None:
    rng = np.random.default_rng(0)
    side = 10
    region_a = generators.weighted_grid_2d(side, side, seed=1, spread=10.0)
    region_b = generators.weighted_grid_2d(side, side, seed=2, spread=10.0)
    g = disjoint_union([region_a, region_b])
    # A few weak bridges: the clusters stay spectrally distinct.
    bridges = rng.choice(side * side, size=3, replace=False)
    g = g.add_edges(bridges, bridges + side * side, np.full(3, 1e-3))
    truth = np.repeat([0, 1], side * side)

    labeled = np.concatenate(
        [rng.choice(side * side, size=3, replace=False),
         side * side + rng.choice(side * side, size=3, replace=False)]
    )
    result = repro.harmonic_labels(g, labeled, truth[labeled], seed=0)

    accuracy = float(np.mean(result.predictions == truth))
    print(f"graph: n={g.n}, m={g.num_edges}, labeled vertices: {labeled.size}")
    print(f"harmonic solve: {result.interpolation.iterations} outer iterations, "
          f"converged={result.interpolation.converged}")
    print(f"label-propagation accuracy vs ground truth: {accuracy:.1%}")
    margins = np.abs(result.scores[:, 0] - result.scores[:, 1])
    print(f"median decision margin: {np.median(margins):.3f} "
          f"(labeled rows are exact one-hot)")


if __name__ == "__main__":
    main()
