#!/usr/bin/env python
"""Solve a 2-D Poisson problem (heat distribution with sources and sinks).

The Laplacian of a grid graph is the standard 5-point finite-difference
discretization of the Poisson equation.  This example places a heat source
and a heat sink on a weighted grid (spatially varying conductivity), solves
the system with the paper's solver, and compares against a direct solve and
against Jacobi-preconditioned CG.

Run with::

    python examples/poisson_grid.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import factorize
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.cg import conjugate_gradient
from repro.linalg.direct import solve_laplacian_direct
from repro.linalg.jacobi import jacobi_preconditioner
from repro.linalg.norms import relative_a_norm_error


def main() -> None:
    rows = cols = 48
    # Spatially varying conductivity: a weighted grid with a 100x spread.
    grid = generators.weighted_grid_2d(rows, cols, seed=3, spread=100.0)
    lap = graph_to_laplacian(grid)
    n = grid.n

    # Source in one corner region, sink in the opposite corner region.
    b = np.zeros(n)
    b[: cols // 2] = 1.0
    b[-(cols // 2):] = -1.0
    b -= b.mean()

    # Ground truth.
    t0 = time.time()
    x_exact = solve_laplacian_direct(lap, b)
    t_direct = time.time() - t0

    # Paper's solver: the expensive factorization is explicit and reusable.
    t0 = time.time()
    operator = factorize(grid, seed=0)
    t_setup = time.time() - t0
    t0 = time.time()
    report = operator.solve(b, tol=1e-8)
    t_solve = time.time() - t0
    err = relative_a_norm_error(lap, report.x - report.x.mean(), x_exact)

    # Baseline: Jacobi-PCG.
    t0 = time.time()
    jacobi = conjugate_gradient(
        lap, b, tol=1e-8, max_iterations=20000,
        preconditioner=jacobi_preconditioner(lap), project_nullspace=True,
    )
    t_jacobi = time.time() - t0

    print(f"Poisson grid {rows}x{cols}: n={n}, m={grid.num_edges}")
    print(f"  direct solve            : {t_direct:.2f}s")
    print(
        f"  SDD solver (this paper)  : setup {t_setup:.2f}s + solve {t_solve:.2f}s, "
        f"{report.iterations} iterations, A-norm error {err:.2e}"
    )
    print(f"  Jacobi-PCG baseline      : {t_jacobi:.2f}s, {jacobi.iterations} iterations")
    print(f"  temperature range        : [{report.x.min():.3f}, {report.x.max():.3f}]")


if __name__ == "__main__":
    main()
