#!/usr/bin/env python
"""Quickstart: build a graph, decompose it, extract a low-stretch subgraph,
and solve Laplacian systems with the factorize-once / solve-many API.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ChainConfig, CostModel, factorize
from repro.core.decomposition import cut_edge_mask, decomposition_radii, split_graph
from repro.core.sparse_akpw import low_stretch_subgraph
from repro.core.stretch import average_stretch
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.norms import residual_norm


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A workload graph: a 2-D grid (discretized Poisson problem).
    # ------------------------------------------------------------------ #
    g = generators.grid_2d(40, 40)
    print(f"graph: n={g.n} vertices, m={g.num_edges} edges")

    # ------------------------------------------------------------------ #
    # 2. Parallel low-diameter decomposition (Theorem 4.1).
    # ------------------------------------------------------------------ #
    cost = CostModel()
    decomp = split_graph(g, rho=8, seed=0, cost=cost, jitter_range=4, sample_coefficient=1.0)
    radii = decomposition_radii(g, decomp)
    cut_fraction = cut_edge_mask(g, decomp.labels).mean()
    print(
        f"decomposition: {decomp.num_components} components, "
        f"max strong radius {radii.max()} (bound rho=8), "
        f"cut fraction {cut_fraction:.3f}, "
        f"work {cost.work:.3g}, depth {cost.depth:.3g}"
    )

    # ------------------------------------------------------------------ #
    # 3. Low-stretch subgraph (Theorem 5.9).
    # ------------------------------------------------------------------ #
    sub = low_stretch_subgraph(g, lam=2, beta=6.0, seed=0)
    print(
        f"low-stretch subgraph: {sub.num_edges} edges "
        f"(tree {len(sub.tree_edges)} + extra {len(sub.extra_edges)}), "
        f"average stretch {average_stretch(g, sub.edge_indices):.2f}"
    )

    # ------------------------------------------------------------------ #
    # 4. Solve Laplacian systems (Theorem 1.1): factorize once, solve many.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(0)
    b = rng.standard_normal(g.n)
    b -= b.mean()  # right-hand side must be in the range of the Laplacian
    op = factorize(g, ChainConfig(kappa=25.0), seed=0)
    report = op.solve(b, tol=1e-8)
    lap = graph_to_laplacian(g)
    print(
        f"solver: chain of {op.chain.depth} levels "
        f"{[lvl.num_vertices for lvl in op.chain.levels]}, "
        f"{report.iterations} outer iterations, "
        f"relative residual {residual_norm(lap, report.x, b):.2e}"
    )

    # The factorization is reusable — a batched (n, k) right-hand-side block
    # runs all k solves in lockstep through one chain traversal per iteration.
    batch = rng.standard_normal((g.n, 4))
    batch -= batch.mean(axis=0)
    batched = op.solve(batch, tol=1e-8)
    print(
        f"batched solve: k={batch.shape[1]} right-hand sides, "
        f"max {batched.iterations} outer iterations, "
        f"per-column iterations {batched.column_iterations.tolist()}, "
        f"worst residual {batched.relative_residual:.2e}"
    )


if __name__ == "__main__":
    main()
