#!/usr/bin/env python
"""Micro-batching solver service, end to end.

Registers two graphs with :class:`repro.SolverService`, then drives it two
ways: a burst of concurrent asyncio clients with mixed tolerances (watch
them coalesce into a handful of batched solves), and plain synchronous
threads through ``solve_sync`` (they coalesce with each other the same
way).  One served answer is checked bit-for-bit against a solo
``operator.solve`` call — coalescing changes throughput, never the bits —
and the service/chain-cache metrics are printed at the end.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np

import repro
from repro.graph import generators
from repro.serving import ServiceConfig, SolverService


def rhs_pool(graph, count, seed):
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(count):
        b = rng.standard_normal(graph.n)
        pool.append(b - b.mean())
    return pool


async def async_burst(service, fp_grid, fp_er, grid_pool, er_pool):
    """16 concurrent clients, two graphs, two tolerance buckets."""
    jobs = []
    for i in range(16):
        if i % 4 == 3:
            jobs.append(service.submit(fp_er, er_pool[i % len(er_pool)], tol=1e-6))
        else:
            tol = 1e-8 if i % 2 else 3e-7  # 3e-7 buckets down to 1e-7
            jobs.append(service.submit(fp_grid, grid_pool[i % len(grid_pool)], tol=tol))
    return await asyncio.gather(*jobs)


def main() -> None:
    grid = generators.grid_2d(12, 12)
    er = generators.erdos_renyi_gnm(150, 400, seed=5)
    grid_pool = rhs_pool(grid, 4, seed=1)
    er_pool = rhs_pool(er, 4, seed=2)

    service = SolverService(ServiceConfig(window_seconds=0.01, max_batch=16))
    fp_grid = service.register(grid, seed=0)
    fp_er = service.register(er, seed=0)
    print(f"registered {fp_grid[:14]}... (grid) and {fp_er[:14]}... (erdos-renyi)")

    async def run_async():
        async with service:
            return await async_burst(service, fp_grid, fp_er, grid_pool, er_pool)

    reports = asyncio.run(run_async())
    widths = sorted({int(r.stats["serving_batch_width"]) for r in reports})
    print(f"async burst: {len(reports)} requests served in batches of widths {widths}")

    # Bit-identity spot check: the served answer equals a solo solve at the
    # same tolerance bucket on the same cached operator.
    op = repro.factorize(grid, seed=0, cache=True)
    solo = op.solve(grid_pool[0], tol=1e-7)  # the bucket of the 3e-7 request
    assert np.array_equal(reports[0].x, solo.x)
    print("bit-identity vs solo solve: ok")

    # Synchronous threads coalesce too (the service runs its own loop).
    results = [None] * 8
    with service:
        def worker(i):
            results[i] = service.solve_sync(fp_grid, grid_pool[i % 4], tol=1e-8)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    print(f"sync threads: {sum(r.converged for r in results)}/8 converged")

    stats = service.stats()
    print(
        f"service: {stats.requests} requests -> {stats.batches} batched solves, "
        f"mean width {stats.mean_batch_width:.1f}, "
        f"p50 latency {stats.latency_p50 * 1e3:.1f}ms, "
        f"p99 {stats.latency_p99 * 1e3:.1f}ms"
    )
    cache = repro.chain_cache_stats()
    print(
        f"chain cache: {cache.hits} hits / {cache.misses} misses, "
        f"{cache.size} entries, ~{cache.stored_bytes / 1024:.0f} KiB resident"
    )


if __name__ == "__main__":
    main()
