#!/usr/bin/env python
"""Spectral sparsification of a dense graph using the SDD solver.

The Spielman–Srivastava construction needs effective resistances, which are
obtained from O(log n) Laplacian solves — this is the first application the
paper lists for its parallel solver.  The demo sparsifies a dense random
graph and reports the quadratic-form distortion and the edge-count reduction.

Run with::

    python examples/spectral_sparsify_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.sparsification import (
    quadratic_form_distortion,
    spectral_sparsify,
)
from repro.graph import generators


def main() -> None:
    g = generators.erdos_renyi_gnm(250, 6000, seed=2)
    print(f"input graph: n={g.n}, m={g.num_edges}")

    for eps in (0.75, 0.5):
        result = spectral_sparsify(g, epsilon=eps, seed=0, solver_tol=1e-6)
        distortion = quadratic_form_distortion(g, result.graph, num_probes=30, seed=1)
        print(
            f"eps={eps}: sparsifier has {result.graph.num_edges} edges "
            f"({result.graph.num_edges / g.num_edges:.1%} of input), "
            f"max quadratic-form distortion on probes: {distortion:.3f}"
        )


if __name__ == "__main__":
    main()
