#!/usr/bin/env python
"""Approximate maximum flow on a capacitated network via electrical flows.

Reproduces the paper's flagship application (Section 1): plugging the SDD
solver into the Christiano et al. electrical-flow framework gives approximate
maximum flow / minimum cut.  The example routes flow across a random
geometric network and compares against the exact augmenting-path baseline.

Run with::

    python examples/maxflow_network.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.maxflow import approx_max_flow, exact_max_flow
from repro.graph import generators


def main() -> None:
    # A random geometric network with random capacities.
    g = generators.random_geometric_graph(120, 0.18, seed=5)
    g = generators.with_random_weights(g, seed=6, spread=8.0, distribution="uniform")
    source, sink = 0, g.n - 1
    print(f"network: n={g.n}, m={g.num_edges}, source={source}, sink={sink}")

    exact = exact_max_flow(g, source, sink)
    print(f"exact max flow (Edmonds-Karp): {exact.value:.3f}")

    for eps in (0.5, 0.2):
        approx = approx_max_flow(g, source, sink, epsilon=eps, seed=0)
        ratio = approx.value / exact.value if exact.value else float("nan")
        print(
            f"electrical-flow approx (eps={eps}): value={approx.value:.3f} "
            f"({ratio:.2f} of exact), max congestion={approx.congestion:.3f}, "
            f"{approx.iterations} Laplacian solves"
        )


if __name__ == "__main__":
    main()
