"""Load test of the micro-batching solver service (coalesced vs solo).

Drives many concurrent closed-loop asyncio clients through
:class:`repro.serving.SolverService` — mixed graphs, tolerances, and
methods — and measures what coalescing buys: solves/sec, p50/p99 end-to-end
latency, achieved batch widths, and chain-cache hit rates, against a
*no-coalescing baseline* (the same service with ``max_batch=1``,
``window_seconds=0``, i.e. every request solved solo through the same
executor).  Every served result is asserted **bit-identical** to a solo
``operator.solve`` of the same right-hand side at the same tolerance
bucket and method — coalescing is free accuracy-wise, so the throughput
gain is the whole story.

Two scenarios:

* ``uniform`` — every client hits one chain-cached graph at one
  (tol, method): the best case for coalescing (full-width batches), and
  the acceptance scenario for the >= 3x throughput target at 16 clients.
* ``mixed`` — clients scatter across two graphs x two tolerance decades x
  two methods, so groups fragment and batches are narrow: the honest
  picture of coalescing under heterogeneous traffic.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py --json
    PYTHONPATH=src python benchmarks/bench_serving.py --json --out path.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import chain_cache
from repro.core.operator import factorize
from repro.graph import generators
from repro.kernels import BACKEND_ENV_VAR, numba_version, resolve_backend
from repro.serving import ServiceConfig, SolverService, bucket_tol


def _rhs_pool(graph, num_rhs: int, seed: int) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(num_rhs):
        b = rng.standard_normal(graph.n)
        pool.append(b - b.mean())
    return pool


def _percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=float)
    return {
        "p50_seconds": float(np.percentile(arr, 50)),
        "p99_seconds": float(np.percentile(arr, 99)),
        "mean_seconds": float(arr.mean()),
        "max_seconds": float(arr.max()),
    }


async def _drive(
    service: SolverService,
    jobs_by_client: List[List[Tuple[int, int]]],
    combos: List[Dict],
    pools: Dict[int, List[np.ndarray]],
    references: Dict[Tuple[int, int], np.ndarray],
) -> Tuple[float, List[float]]:
    """Run every client's job list concurrently; returns (wall, latencies).

    Raises ``AssertionError`` if any served solution differs bit-for-bit
    from its precomputed solo reference.
    """
    latencies: List[float] = []

    async def client(jobs: List[Tuple[int, int]]) -> None:
        for combo_index, rhs_index in jobs:
            combo = combos[combo_index]
            b = pools[combo["graph"]][rhs_index]
            t0 = time.perf_counter()
            report = await service.submit(
                combo["fingerprint"], b, tol=combo["tol"], method=combo["method"]
            )
            latencies.append(time.perf_counter() - t0)
            if not np.array_equal(report.x, references[(combo_index, rhs_index)]):
                raise AssertionError(
                    f"served result diverged from solo solve (combo {combo_index}, "
                    f"rhs {rhs_index})"
                )

    async with service:
        t0 = time.perf_counter()
        await asyncio.gather(*(client(jobs) for jobs in jobs_by_client))
        wall = time.perf_counter() - t0
    return wall, latencies


def _run_side(
    *,
    coalesce: bool,
    window_seconds: float,
    max_batch: int,
    graphs: Dict[int, object],
    combos: List[Dict],
    pools: Dict[int, List[np.ndarray]],
    references: Dict[Tuple[int, int], np.ndarray],
    jobs_by_client: List[List[Tuple[int, int]]],
    seed: int,
) -> Dict:
    """One measured pass (coalesced or baseline) over the same job stream."""
    config = ServiceConfig(
        window_seconds=window_seconds if coalesce else 0.0,
        max_batch=max_batch if coalesce else 1,
    )
    service = SolverService(config, seed=seed)
    fingerprints = {}
    for graph_id, graph in graphs.items():
        fingerprints[graph_id] = service.register(graph, seed=seed)
    for combo in combos:
        combo["fingerprint"] = fingerprints[combo["graph"]]

    cache_before = chain_cache.chain_cache_stats()
    wall, latencies = asyncio.run(
        _drive(service, jobs_by_client, combos, pools, references)
    )
    cache_after = chain_cache.chain_cache_stats()
    stats = service.stats()
    total = sum(len(jobs) for jobs in jobs_by_client)
    assert stats.served == total and stats.failed == 0
    return {
        "coalescing": coalesce,
        "window_seconds": config.window_seconds,
        "max_batch": config.max_batch,
        "wall_seconds": wall,
        "solves_per_second": total / wall if wall > 0 else float("inf"),
        "latency": _percentiles(latencies),
        "batches": stats.batches,
        "mean_batch_width": stats.mean_batch_width,
        "max_batch_width": stats.max_batch_width,
        "batch_width_histogram": {str(k): v for k, v in stats.batch_width_histogram.items()},
        "operator_cache_hit_rate": stats.cache_hit_rate,
        "chain_cache_hits_delta": cache_after.hits - cache_before.hits,
        "chain_cache_misses_delta": cache_after.misses - cache_before.misses,
        "bit_identical_to_solo": True,  # _drive raised otherwise
    }


def _scenario(
    name: str,
    *,
    graphs: Dict[int, object],
    combo_specs: List[Tuple[int, float, str]],
    clients: int,
    requests_per_client: int,
    pool_size: int,
    window_seconds: float,
    max_batch: int,
    seed: int,
) -> Dict:
    """Measure one scenario coalesced and baseline over an identical stream."""
    combos = [
        {"graph": g, "tol": tol, "method": method}
        for g, tol, method in combo_specs
    ]
    pools = {g: _rhs_pool(graph, pool_size, seed=100 + g) for g, graph in graphs.items()}

    # Solo references (and lazy-initializer warmup) on the cached operators —
    # the service resolves the same chain-cache entries, so "bit-identical to
    # a solo solve" is exactly `op.solve(b, tol=bucket, method=m)` on these.
    references: Dict[Tuple[int, int], np.ndarray] = {}
    for combo_index, combo in enumerate(combos):
        op = factorize(graphs[combo["graph"]], seed=seed, cache=True)
        for rhs_index, b in enumerate(pools[combo["graph"]]):
            report = op.solve(
                b, tol=bucket_tol(combo["tol"]), method=combo["method"]
            )
            references[(combo_index, rhs_index)] = report.x

    rng = np.random.default_rng(seed)
    jobs_by_client = [
        [
            (int(rng.integers(len(combos))), int(rng.integers(pool_size)))
            for _ in range(requests_per_client)
        ]
        for _ in range(clients)
    ]

    common = dict(
        graphs=graphs,
        combos=combos,
        pools=pools,
        references=references,
        jobs_by_client=jobs_by_client,
        seed=seed,
        window_seconds=window_seconds,
        max_batch=max_batch,
    )
    coalesced = _run_side(coalesce=True, **common)
    baseline = _run_side(coalesce=False, **common)
    gain = (
        coalesced["solves_per_second"] / baseline["solves_per_second"]
        if baseline["solves_per_second"] > 0
        else float("inf")
    )
    return {
        "name": name,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": clients * requests_per_client,
        "graphs": {
            str(g): {"n": graph.n, "m": graph.num_edges}
            for g, graph in graphs.items()
        },
        "combos": [
            {"graph": c["graph"], "tol": c["tol"], "method": c["method"]}
            for c in combos
        ],
        "coalesced": coalesced,
        "baseline": baseline,
        "throughput_gain": gain,
        "latency_p99_ratio": (
            baseline["latency"]["p99_seconds"] / coalesced["latency"]["p99_seconds"]
            if coalesced["latency"]["p99_seconds"] > 0
            else float("inf")
        ),
    }


def collect_payload(
    side: int = 16,
    clients: int = 16,
    requests_per_client: int = 4,
    pool_size: int = 4,
    window_seconds: float = 0.004,
    max_batch: int = 16,
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    backend: str = "auto",
) -> Dict:
    """Uniform + mixed serving scenarios, coalesced vs no-coalescing."""
    # The service factorizes internally with the default SolverConfig, so a
    # non-default backend is selected the supported way: the env override
    # every factorize() consults.
    if backend != "auto":
        os.environ[BACKEND_ENV_VAR] = backend
    resolved_backend = resolve_backend(backend)
    chain_cache.clear_chain_cache()
    grid = generators.grid_2d(side, side)
    sparse = generators.erdos_renyi_gnm(side * side, 2 * side * side, seed=5)
    wanted = set(scenarios) if scenarios else {"uniform", "mixed"}
    results = []
    if "uniform" in wanted:
        results.append(
            _scenario(
                "uniform",
                graphs={0: grid},
                combo_specs=[(0, 1e-6, "pcg")],
                clients=clients,
                requests_per_client=requests_per_client,
                pool_size=pool_size,
                window_seconds=window_seconds,
                max_batch=max_batch,
                seed=seed,
            )
        )
    if "mixed" in wanted:
        results.append(
            _scenario(
                "mixed",
                graphs={0: grid, 1: sparse},
                combo_specs=[
                    (0, 1e-6, "pcg"),
                    (0, 1e-8, "pcg"),
                    (0, 1e-6, "chebyshev"),
                    (1, 1e-6, "pcg"),
                    (1, 1e-8, "pcg"),
                    (1, 1e-6, "chebyshev"),
                ],
                clients=clients,
                requests_per_client=requests_per_client,
                pool_size=pool_size,
                window_seconds=window_seconds,
                max_batch=max_batch,
                seed=seed,
            )
        )
    return {
        "experiment": "serving",
        "schema_version": 2,
        "side": side,
        "clients": clients,
        "window_seconds": window_seconds,
        "max_batch": max_batch,
        "kernel_backend": resolved_backend,
        "cpu_count": os.cpu_count(),
        "numba_version": numba_version(),
        "scenarios": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--json", action="store_true", help="write the JSON payload")
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="output path for --json"
    )
    parser.add_argument("--side", type=int, default=16, help="grid side length")
    parser.add_argument("--clients", type=int, default=16, help="concurrent clients")
    parser.add_argument(
        "--requests", type=int, default=4, help="requests per client (closed loop)"
    )
    parser.add_argument("--pool", type=int, default=4, help="distinct RHS per graph")
    parser.add_argument(
        "--window", type=float, default=0.004, help="coalescing window (seconds)"
    )
    parser.add_argument("--max-batch", type=int, default=16, help="max coalesced width")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=["uniform", "mixed"],
        default=None,
        help="subset of scenarios to run (default: both)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        help="kernel backend (auto/numpy/numba; REPRO_KERNEL_BACKEND overrides)",
    )
    args = parser.parse_args(argv)

    payload = collect_payload(
        side=args.side,
        clients=args.clients,
        requests_per_client=args.requests,
        pool_size=args.pool,
        window_seconds=args.window,
        max_batch=args.max_batch,
        scenarios=args.scenarios,
        backend=args.backend,
    )
    for scenario in payload["scenarios"]:
        co, base = scenario["coalesced"], scenario["baseline"]
        print(
            f"{scenario['name']}: {scenario['clients']} clients x "
            f"{scenario['requests_per_client']} requests"
        )
        print(
            f"  coalesced : {co['solves_per_second']:8.1f} solves/s  "
            f"p50 {co['latency']['p50_seconds'] * 1e3:7.1f}ms  "
            f"p99 {co['latency']['p99_seconds'] * 1e3:7.1f}ms  "
            f"mean width {co['mean_batch_width']:.1f}  "
            f"cache hit {co['operator_cache_hit_rate']:.0%}"
        )
        print(
            f"  baseline  : {base['solves_per_second']:8.1f} solves/s  "
            f"p50 {base['latency']['p50_seconds'] * 1e3:7.1f}ms  "
            f"p99 {base['latency']['p99_seconds'] * 1e3:7.1f}ms"
        )
        print(
            f"  gain      : x{scenario['throughput_gain']:.2f} throughput, "
            f"x{scenario['latency_p99_ratio']:.2f} p99 latency, bit-identical"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
