"""Experiment E12: the vectorized chain-construction (``factorize``) pipeline.

PR 2 compiled the solve-side hot path; this benchmark tracks the *setup*
side — AKPW clustering, ball growing, low-diameter decomposition, forest
rooting / stretch measurement, incremental sparsification, elimination, and
the bottom-level factorization — after the chain-construction pipeline was
rewritten as bulk array passes (Euler-tour forest rooting, bulk union-find,
Borůvka spanning forests, frontier ball growing, forest-basis stretch
sampling, grounded sparse-LU bottom factor).

Per workload it records the end-to-end ``factorize()`` wall time, the
per-stage breakdown (``chain.stats['seconds_*']``), and the charged PRAM
setup work/depth, on graphs up to ~100k vertices — far beyond the n=576
ceiling the per-vertex Python build path topped out at.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_chain_build.json``::

    PYTHONPATH=src python benchmarks/bench_chain_build.py --json
    PYTHONPATH=src python benchmarks/bench_chain_build.py --json --sizes 71 141

The payload also carries the pre-refactor reference measurement on the
20k-vertex grid (chunked-Dijkstra stretch sampling + dense bottom ``pinv``)
and the resulting speedup, giving future PRs a setup-perf trajectory to
diff against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.core.chain_cache import clear_chain_cache
from repro.core.operator import factorize
from repro.graph import generators
from repro.pram.model import CostModel

#: Pre-refactor end-to-end ``factorize()`` wall time on the 20k-vertex
#: benchmark grid (grid_2d(141, 141), seed 0) measured on the development
#: container at the PR-3 baseline commit (2ac5fb4): chunked multi-source
#: Dijkstra stretch sampling dominated (46.4 s) plus the dense bottom
#: pseudo-inverse (8.0 s).
PRE_PR_BASELINE_20K_SECONDS = 56.4
BASELINE_20K_SIDE = 141

STAGE_KEYS = (
    "seconds_subgraph",
    "seconds_sparsify",
    "seconds_elimination",
    "seconds_transfer",
    "seconds_bottom",
)


def measure_workload(name: str, graph, seed: int = 0) -> Dict:
    """Factorize ``graph`` once and report wall/stage/work/depth metrics."""
    cost = CostModel()
    t0 = time.perf_counter()
    op = factorize(graph, seed=seed, cost=cost)
    wall = time.perf_counter() - t0
    stats = op.chain.stats
    stages = {k: float(stats.get(k, 0.0)) for k in STAGE_KEYS}
    return {
        "workload": name,
        "n": graph.n,
        "m": graph.num_edges,
        "chain_levels": op.chain.depth,
        "bottom_size": int(stats.get("bottom_size", 0)),
        "bottom_factor_nnz": int(op.chain.bottom_solver.factor_nnz),
        "setup_seconds": wall,
        "stage_seconds": stages,
        "stage_seconds_accounted": float(sum(stages.values())),
        "setup_work": cost.work,
        "setup_depth": cost.depth,
    }


def collect_payload(sizes=(71, 141, 224, 317), weighted_side: int = 141) -> Dict:
    """Sweep grid workloads (plus one weighted grid) through ``factorize``."""
    clear_chain_cache()
    workloads: List[Dict] = []
    for side in sizes:
        g = generators.grid_2d(side, side)
        workloads.append(measure_workload(f"grid{side}", g))
    if weighted_side:
        g = generators.weighted_grid_2d(weighted_side, weighted_side, seed=7, spread=1e4)
        workloads.append(measure_workload(f"wgrid{weighted_side}", g))

    baseline = {
        "workload": f"grid{BASELINE_20K_SIDE}",
        "pre_pr_seconds": PRE_PR_BASELINE_20K_SECONDS,
        "note": (
            "end-to-end factorize() wall time before the vectorized chain "
            "construction (per-vertex DFS rooting, Python union-find, "
            "Dijkstra stretch sampling, dense bottom pinv)"
        ),
    }
    current_20k = next(
        (w for w in workloads if w["workload"] == f"grid{BASELINE_20K_SIDE}"), None
    )
    if current_20k is not None:
        baseline["post_pr_seconds"] = current_20k["setup_seconds"]
        baseline["speedup"] = PRE_PR_BASELINE_20K_SECONDS / max(
            current_20k["setup_seconds"], 1e-9
        )
    return {
        "experiment": "E12",
        "schema_version": 1,
        "workloads": workloads,
        "baseline_20k": baseline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable benchmark payload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_chain_build.json",
        help="output path for --json (default: BENCH_chain_build.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[71, 141, 224, 317],
        help="grid side lengths to sweep (317 -> ~100k vertices)",
    )
    parser.add_argument(
        "--weighted-side",
        type=int,
        default=141,
        help="side of the additional weighted-grid workload (0 disables)",
    )
    args = parser.parse_args(argv)

    payload = collect_payload(sizes=tuple(args.sizes), weighted_side=args.weighted_side)
    for w in payload["workloads"]:
        stages = ", ".join(f"{k.split('_', 1)[1]} {v:.3f}s" for k, v in w["stage_seconds"].items())
        print(
            f"{w['workload']}: n={w['n']} m={w['m']} setup {w['setup_seconds']:.3f}s "
            f"(levels={w['chain_levels']}, bottom={w['bottom_size']}) [{stages}]"
        )
    base = payload["baseline_20k"]
    if "speedup" in base:
        print(
            f"20k-vertex baseline: {base['pre_pr_seconds']:.1f}s pre-PR -> "
            f"{base['post_pr_seconds']:.3f}s ({base['speedup']:.1f}x)"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
