"""Experiment E12: the vectorized chain-construction (``factorize``) pipeline.

PR 2 compiled the solve-side hot path; this benchmark tracks the *setup*
side — AKPW clustering, ball growing, low-diameter decomposition, forest
rooting / stretch measurement, incremental sparsification, elimination, and
the bottom-level factorization — after the chain-construction pipeline was
rewritten as bulk array passes (Euler-tour forest rooting, bulk union-find,
Borůvka spanning forests, frontier ball growing, forest-basis stretch
sampling, grounded sparse-LU bottom factor).

Schema v2 adds a **memory audit** per workload: the peak resident set of
the ``factorize()`` call (``VmHWM`` with a high-water reset, so it is a
true per-call peak), the always-on per-stage RSS deltas from
``chain.stats``, and — with ``--memory-profile`` (the default) — a second
instrumented build that records per-stage tracemalloc and RSS-high-water
peaks.  Timings always come from the *unprofiled* run; tracemalloc slows
allocation-heavy code 2-4x, so the profiled pass is reported separately,
and workloads above ``--profile-max-edges`` (default 2M edges) skip it —
the multi-million-edge profiled passes run tens of minutes on the dev
container while adding no information the 1M-vertex profile lacks.  Per
workload, ``memory.profiled`` records whether the instrumented pass ran.

``--large`` extends the sweep to million-vertex workloads (1M and 4M-vertex
grids plus a 1M-vertex R-MAT multigraph built through the streaming
ingestion path and factorized with a deeper ``max_levels=16`` chain —
power-law cores need more sparsify/eliminate rounds than the default four
before the bottom LU is tractable); ``--large-1m`` adds only the 1M grid
(the CI smoke lane).
``--assert-max-bytes-per-edge`` turns the payload into a regression gate on
peak factorize memory per edge.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_chain_build.json``::

    PYTHONPATH=src python benchmarks/bench_chain_build.py --json
    PYTHONPATH=src python benchmarks/bench_chain_build.py --json --large
    PYTHONPATH=src python benchmarks/bench_chain_build.py --json --large-1m \\
        --solve-workloads grid1000 --assert-max-bytes-per-edge 520

The payload carries two pinned reference points: the pre-vectorization
setup time on the 20k-vertex grid (PR 3) and the pre-dtype-lean memory
profile of the 1M-vertex grid (this PR's baseline), giving future PRs both
a time and a bytes-per-edge trajectory to diff against.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.chain_cache import clear_chain_cache
from repro.core.config import ChainConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.pram.model import CostModel
from repro.util.memprof import read_rss_bytes, read_peak_rss_bytes, reset_peak_rss

#: Pre-refactor end-to-end ``factorize()`` wall time on the 20k-vertex
#: benchmark grid (grid_2d(141, 141), seed 0) measured on the development
#: container at the PR-3 baseline commit (2ac5fb4): chunked multi-source
#: Dijkstra stretch sampling dominated (46.4 s) plus the dense bottom
#: pseudo-inverse (8.0 s).
PRE_PR_BASELINE_20K_SECONDS = 56.4
BASELINE_20K_SIDE = 141

#: Pre-dtype-lean memory/time profile of ``factorize(grid_2d(1000, 1000))``
#: (n=1e6, m=1,998,000), measured on the 1-CPU development container at the
#: PR-6 HEAD (3f1d69c): int64 index arrays throughout, per-round scratch
#: reallocation, and the operator rebuilding the top-level Laplacian the
#: chain already held.  627.3 bytes of peak RSS per edge.
PRE_PR_1M_BASELINE = {
    "workload": "grid1000",
    "n": 1_000_000,
    "m": 1_998_000,
    "pre_pr_peak_rss_bytes": 1_253_345_400,
    "pre_pr_bytes_per_edge": 627.3,
    "pre_pr_setup_seconds": 28.26,
    "note": (
        "factorize() peak resident set before the dtype-lean pipeline "
        "(int64 indices everywhere, no buffer reuse, duplicate top-level "
        "Laplacian), measured on the 1-CPU dev container"
    ),
}

STAGE_KEYS = (
    "seconds_subgraph",
    "seconds_sparsify",
    "seconds_elimination",
    "seconds_transfer",
    "seconds_bottom",
)


def _stage_map(stats: Dict, prefix: str) -> Dict[str, float]:
    cut = len(prefix)
    return {k[cut:]: float(v) for k, v in stats.items() if k.startswith(prefix)}


def measure_workload(
    name: str,
    make_graph: Callable[[], object],
    seed: int = 0,
    chain_config: Optional[ChainConfig] = None,
    memory_profile: bool = False,
    profile_max_edges: Optional[int] = None,
    solve_tol: Optional[float] = None,
) -> Dict:
    """Factorize one workload and report wall/stage/work/depth/memory metrics.

    The graph is built inside this call (streaming generators never hold a
    second copy) and released before the next workload runs, so sequential
    sweeps do not inherit each other's resident pages.
    """
    graph = make_graph()
    clear_chain_cache()
    gc.collect()
    cost = CostModel()
    rss_before = read_rss_bytes()
    peak_reset = reset_peak_rss()
    t0 = time.perf_counter()
    op = factorize(graph, chain_config, seed=seed, cost=cost)
    wall = time.perf_counter() - t0
    peak_rss = read_peak_rss_bytes()
    stats = op.chain.stats
    stages = {k: float(stats.get(k, 0.0)) for k in STAGE_KEYS}
    m = graph.num_edges
    memory = {
        "peak_rss_bytes": int(peak_rss),
        "bytes_per_edge": peak_rss / max(m, 1),
        "rss_before_bytes": int(rss_before),
        "peak_is_per_call": bool(peak_reset),
        "stage_rss_delta_bytes": _stage_map(stats, "mem_rss_delta_"),
        "profiled": False,
    }
    result = {
        "workload": name,
        "n": graph.n,
        "m": m,
        "chain_levels": op.chain.depth,
        "bottom_size": int(stats.get("bottom_size", 0)),
        "bottom_factor_nnz": int(op.chain.bottom_solver.factor_nnz),
        "setup_seconds": wall,
        "stage_seconds": stages,
        "stage_seconds_accounted": float(sum(stages.values())),
        "setup_work": cost.work,
        "setup_depth": cost.depth,
        "index_dtype": str(stats.get("index_dtype", "")),
        "value_dtype": str(stats.get("value_dtype", "")),
        "max_levels": (chain_config or ChainConfig()).max_levels,
        "memory": memory,
    }

    if solve_tol is not None:
        rng = np.random.default_rng(7)
        b = rng.standard_normal(graph.n)
        b -= b.mean()
        t0 = time.perf_counter()
        report = op.solve(b, tol=solve_tol)
        result["solve"] = {
            "tol": solve_tol,
            "seconds": time.perf_counter() - t0,
            "iterations": report.iterations,
            "converged": bool(report.converged),
            "relative_residual": float(report.relative_residual),
        }

    if memory_profile and (profile_max_edges is None or m <= profile_max_edges):
        # Second, instrumented build: per-stage tracemalloc and RSS
        # high-water peaks.  Timings from this pass are reported under
        # their own key — tracemalloc overhead makes them incomparable.
        del op
        clear_chain_cache()
        gc.collect()
        t0 = time.perf_counter()
        op = factorize(graph, chain_config, seed=seed, memory_profile=True)
        profiled_wall = time.perf_counter() - t0
        pstats = op.chain.stats
        memory["profiled"] = True
        memory["profiled_seconds"] = profiled_wall
        memory["stage_rss_peak_bytes"] = _stage_map(pstats, "mem_rss_peak_")
        memory["stage_traced_peak_bytes"] = _stage_map(pstats, "mem_traced_peak_")
        del op

    return result


#: Workload entry: ``(name, make_graph, chain_config-or-None)``.
Workload = Tuple[str, Callable[[], object], Optional[ChainConfig]]

#: Power-law graphs shed whole components as the chain descends: the live
#: edges concentrate in a dense cyclic core that four levels cannot thin
#: enough for the bottom sparse LU (fill-in explodes).  Extra level slots
#: cost nothing on workloads that bottom out early — the build breaks as
#: soon as the surviving graph is a forest over its occupied vertices.
RMAT_CHAIN_CONFIG = ChainConfig(max_levels=16)


def default_workloads(sizes: Tuple[int, ...], weighted_side: int) -> List[Workload]:
    out: List[Workload] = []
    for side in sizes:
        out.append((f"grid{side}", lambda s=side: generators.grid_2d(s, s), None))
    if weighted_side:
        out.append(
            (
                f"wgrid{weighted_side}",
                lambda s=weighted_side: generators.weighted_grid_2d(
                    s, s, seed=7, spread=1e4
                ),
                None,
            )
        )
    return out


def large_workloads(only_1m: bool = False) -> List[Workload]:
    out: List[Workload] = [
        ("grid1000", lambda: generators.grid_2d(1000, 1000), None),
    ]
    if not only_1m:
        out.append(("grid2000", lambda: generators.grid_2d(2000, 2000), None))
        # 1M-vertex R-MAT multigraph (~4.2M edge draws), built through the
        # streaming ingestion path so generation never doubles the edges.
        out.append(
            ("rmat20", lambda: generators.rmat_graph(20, 4, seed=1), RMAT_CHAIN_CONFIG)
        )
    return out


def collect_payload(
    workloads: List[Workload],
    memory_profile: bool = True,
    profile_max_edges: Optional[int] = None,
    solve_workloads: Tuple[str, ...] = (),
    solve_tol: float = 1e-5,
) -> Dict:
    """Sweep ``workloads`` through ``factorize`` and assemble the v2 payload."""
    measured: List[Dict] = []
    for name, make_graph, chain_config in workloads:
        tol = solve_tol if name in solve_workloads else None
        measured.append(
            measure_workload(
                name,
                make_graph,
                chain_config=chain_config,
                memory_profile=memory_profile,
                profile_max_edges=profile_max_edges,
                solve_tol=tol,
            )
        )

    baseline = {
        "workload": f"grid{BASELINE_20K_SIDE}",
        "pre_pr_seconds": PRE_PR_BASELINE_20K_SECONDS,
        "note": (
            "end-to-end factorize() wall time before the vectorized chain "
            "construction (per-vertex DFS rooting, Python union-find, "
            "Dijkstra stretch sampling, dense bottom pinv)"
        ),
    }
    current_20k = next(
        (w for w in measured if w["workload"] == f"grid{BASELINE_20K_SIDE}"), None
    )
    if current_20k is not None:
        baseline["post_pr_seconds"] = current_20k["setup_seconds"]
        baseline["speedup"] = PRE_PR_BASELINE_20K_SECONDS / max(
            current_20k["setup_seconds"], 1e-9
        )

    memory_baseline = dict(PRE_PR_1M_BASELINE)
    current_1m = next(
        (w for w in measured if w["workload"] == PRE_PR_1M_BASELINE["workload"]), None
    )
    if current_1m is not None:
        memory_baseline["post_pr_peak_rss_bytes"] = current_1m["memory"]["peak_rss_bytes"]
        memory_baseline["post_pr_bytes_per_edge"] = current_1m["memory"]["bytes_per_edge"]
        memory_baseline["post_pr_setup_seconds"] = current_1m["setup_seconds"]
        memory_baseline["peak_memory_reduction"] = PRE_PR_1M_BASELINE[
            "pre_pr_bytes_per_edge"
        ] / max(current_1m["memory"]["bytes_per_edge"], 1e-9)

    return {
        "experiment": "E12",
        "schema_version": 2,
        "workloads": measured,
        "baseline_20k": baseline,
        "memory_baseline_1m": memory_baseline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable benchmark payload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_chain_build.json",
        help="output path for --json (default: BENCH_chain_build.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[71, 141, 224, 317],
        help="grid side lengths to sweep (317 -> ~100k vertices)",
    )
    parser.add_argument(
        "--weighted-side",
        type=int,
        default=141,
        help="side of the additional weighted-grid workload (0 disables)",
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help="add million-vertex workloads: 1M/4M-vertex grids + 1M-vertex R-MAT",
    )
    parser.add_argument(
        "--large-1m",
        action="store_true",
        help="add only the 1M-vertex grid workload (CI smoke lane)",
    )
    parser.add_argument(
        "--memory-profile",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run a second instrumented build per workload for per-stage "
        "tracemalloc/RSS peaks (timings always come from the unprofiled run)",
    )
    parser.add_argument(
        "--profile-max-edges",
        type=int,
        default=2_000_000,
        help="skip the instrumented second build for workloads above this "
        "edge count (tracemalloc makes multi-million-edge passes run tens "
        "of minutes); 0 disables the cap",
    )
    parser.add_argument(
        "--solve-workloads",
        nargs="*",
        default=[],
        help="workload names that also run one PCG solve (recorded per workload)",
    )
    parser.add_argument(
        "--solve-tol",
        type=float,
        default=1e-5,
        help="relative-residual tolerance for --solve-workloads solves",
    )
    parser.add_argument(
        "--assert-max-bytes-per-edge",
        type=float,
        default=None,
        help="fail (exit 1) if the gate workload's peak factorize RSS per "
        "edge exceeds this bound",
    )
    parser.add_argument(
        "--assert-workload",
        default="grid1000",
        help="workload name the bytes-per-edge gate applies to",
    )
    args = parser.parse_args(argv)

    workloads = default_workloads(tuple(args.sizes), args.weighted_side)
    if args.large:
        workloads += large_workloads()
    elif args.large_1m:
        workloads += large_workloads(only_1m=True)

    payload = collect_payload(
        workloads,
        memory_profile=args.memory_profile,
        profile_max_edges=args.profile_max_edges or None,
        solve_workloads=tuple(args.solve_workloads),
        solve_tol=args.solve_tol,
    )
    for w in payload["workloads"]:
        stages = ", ".join(
            f"{k.split('_', 1)[1]} {v:.3f}s" for k, v in w["stage_seconds"].items()
        )
        mem = w["memory"]
        print(
            f"{w['workload']}: n={w['n']} m={w['m']} setup {w['setup_seconds']:.3f}s "
            f"peak {mem['peak_rss_bytes'] / 2**20:.1f}MiB "
            f"({mem['bytes_per_edge']:.1f} B/edge, {w['index_dtype']}) "
            f"(levels={w['chain_levels']}, bottom={w['bottom_size']}) [{stages}]"
        )
        if "solve" in w:
            s = w["solve"]
            print(
                f"  solve tol={s['tol']:g}: {s['seconds']:.3f}s, "
                f"{s['iterations']} iters, converged={s['converged']}"
            )
    base = payload["baseline_20k"]
    if "speedup" in base:
        print(
            f"20k-vertex baseline: {base['pre_pr_seconds']:.1f}s pre-PR -> "
            f"{base['post_pr_seconds']:.3f}s ({base['speedup']:.1f}x)"
        )
    mbase = payload["memory_baseline_1m"]
    if "peak_memory_reduction" in mbase:
        print(
            f"1M-vertex memory baseline: {mbase['pre_pr_bytes_per_edge']:.1f} -> "
            f"{mbase['post_pr_bytes_per_edge']:.1f} bytes/edge "
            f"({mbase['peak_memory_reduction']:.2f}x reduction)"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")

    if args.assert_max_bytes_per_edge is not None:
        gate = next(
            (w for w in payload["workloads"] if w["workload"] == args.assert_workload),
            None,
        )
        if gate is None:
            print(
                f"gate FAILED: workload {args.assert_workload!r} was not measured",
                file=sys.stderr,
            )
            return 1
        got = gate["memory"]["bytes_per_edge"]
        if got > args.assert_max_bytes_per_edge:
            print(
                f"gate FAILED: {args.assert_workload} peak memory "
                f"{got:.1f} B/edge > bound {args.assert_max_bytes_per_edge:.1f}",
                file=sys.stderr,
            )
            return 1
        print(
            f"gate ok: {args.assert_workload} peak memory {got:.1f} B/edge "
            f"<= bound {args.assert_max_bytes_per_edge:.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
