"""Experiment E4: AKPW low-stretch spanning trees (Theorem 5.1).

Measures the average stretch of the AKPW tree across workloads and sizes and
compares it against the MST and a BFS tree — the paper's guarantee is a
sub-polynomial (2^O(sqrt(log n log log n))) average stretch; at these sizes
the measured values should be comfortably polylogarithmic and should grow
slowly with n.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import print_table
from repro.core.akpw import akpw_spanning_tree
from repro.core.stretch import average_stretch
from repro.graph import generators
from repro.graph.mst import minimum_spanning_tree_edges
from repro.graph.shortest_paths import bfs_tree
from repro.util.records import ExperimentRow


class TestE4LowStretchTrees:
    def test_stretch_vs_baselines(self, benchmark, bench_grid, bench_weighted_grid, bench_random_graph):
        workloads = [
            ("grid48", bench_grid),
            ("wgrid40", bench_weighted_grid),
            ("er2000", bench_random_graph),
        ]

        def run():
            rows = []
            for name, g in workloads:
                akpw = akpw_spanning_tree(g, seed=0)
                mst = minimum_spanning_tree_edges(g)
                bfs = bfs_tree(g, 0)
                rows.append(
                    ExperimentRow(
                        "E4",
                        name,
                        params={"n": g.n, "m": g.num_edges},
                        measured={
                            "akpw_avg_stretch": average_stretch(g, akpw.tree_edges),
                            "mst_avg_stretch": average_stretch(g, mst),
                            "bfs_avg_stretch": average_stretch(g, bfs),
                            "polylog_ref": math.log2(g.n) ** 2,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E4: average stretch of AKPW trees vs baselines (Theorem 5.1)", rows)
        for r in rows:
            assert r.measured["akpw_avg_stretch"] <= 8.0 * r.measured["polylog_ref"]

    def test_stretch_growth_with_n(self, benchmark):
        sizes = [16, 32, 64]

        def run():
            rows = []
            for size in sizes:
                g = generators.grid_2d(size, size)
                akpw = akpw_spanning_tree(g, seed=1)
                rows.append(
                    ExperimentRow(
                        "E4",
                        f"grid{size}",
                        params={"n": g.n},
                        measured={
                            "avg_stretch": average_stretch(g, akpw.tree_edges),
                            "subpoly_bound": 2 ** math.sqrt(math.log2(g.n) * math.log2(math.log2(g.n))),
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E4: AKPW stretch growth with n", rows)
        stretches = [r.measured["avg_stretch"] for r in rows]
        ns = [r.params["n"] for r in rows]
        # growth clearly sub-linear in n: going 16x in edges grows stretch < 4x
        assert stretches[-1] <= stretches[0] * 4.0 + 10.0
        assert ns[-1] / ns[0] == 16
