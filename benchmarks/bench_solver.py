"""Experiment E8: the parallel SDD solver (Theorem 1.1).

Regenerates the paper's headline claims:

* accuracy — ``||x - A^+ b||_A <= eps ||A^+ b||_A`` for the requested eps;
* work — charged work grows far slower than the dense O(n^3) cost and the
  work exponent stays well below 2 across a size sweep;
* depth — charged depth is polynomially smaller than work (the m^(1/3+θ)
  claim: depth/work shrinks as the instance grows);
* comparison against CG and Jacobi-PCG baselines (iteration counts);
* amortization — setup (factorize) versus per-solve cost, and batched
  multi-RHS solves versus a loop of independent solves.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_solver.json``::

    PYTHONPATH=src python benchmarks/bench_solver.py --json
    PYTHONPATH=src python benchmarks/bench_solver.py --json --out path.json

The JSON payload records, per workload, the setup work/depth/wall-time, the
per-solve work/depth/wall-time, and the batched-vs-looped multi-RHS
comparison — giving future PRs a perf trajectory to diff against.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from benchmarks.conftest import print_table
except ImportError:  # executed as a script: benchmarks/ itself is on sys.path
    from conftest import print_table

from repro.core.chain_cache import clear_chain_cache
from repro.core.config import ChainConfig, SolverConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.cg import conjugate_gradient
from repro.linalg.direct import solve_laplacian_direct
from repro.linalg.jacobi import jacobi_preconditioner
from repro.linalg.norms import relative_a_norm_error
from repro.pram.model import CostModel
from repro.util.records import ExperimentRow


def _rhs(graph, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    return b - b.mean()


def _rhs_batch(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((graph.n, k))
    return b - b.mean(axis=0)


class TestE8Accuracy:
    def test_a_norm_accuracy(self, benchmark, bench_grid, bench_weighted_grid, bench_random_graph):
        workloads = [
            ("grid48", bench_grid),
            ("wgrid40", bench_weighted_grid),
            ("er2000", bench_random_graph),
        ]

        def run():
            rows = []
            for name, g in workloads:
                lap = graph_to_laplacian(g)
                b = _rhs(g)
                op = factorize(g, seed=0)
                report = op.solve(b, tol=1e-8)
                x_exact = solve_laplacian_direct(lap, b)
                err = relative_a_norm_error(lap, report.x - report.x.mean(), x_exact)
                rows.append(
                    ExperimentRow(
                        "E8",
                        name,
                        params={"n": g.n, "m": g.num_edges},
                        measured={
                            "levels": op.chain.depth,
                            "outer_iterations": report.iterations,
                            "a_norm_error": err,
                            "eps_target": 1e-8,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: solver accuracy (Theorem 1.1 error guarantee)", rows)
        for r in rows:
            assert r.measured["a_norm_error"] <= 1e-5


class TestE8Baselines:
    def test_iteration_counts_vs_cg(self, benchmark, bench_weighted_grid):
        g = bench_weighted_grid
        lap = graph_to_laplacian(g)
        b = _rhs(g)

        def run():
            op = factorize(g, seed=0)
            chain_report = op.solve(b, tol=1e-8)
            plain = conjugate_gradient(lap, b, tol=1e-8, max_iterations=8000, project_nullspace=True)
            jacobi = conjugate_gradient(
                lap, b, tol=1e-8, max_iterations=8000,
                preconditioner=jacobi_preconditioner(lap), project_nullspace=True,
            )
            return [
                ExperimentRow(
                    "E8", "wgrid40", params={"m": g.num_edges},
                    measured={
                        "chain_pcg_iters": chain_report.iterations,
                        "jacobi_pcg_iters": jacobi.iterations,
                        "plain_cg_iters": plain.iterations,
                    },
                )
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: outer iteration counts vs baselines", rows)
        r = rows[0].measured
        assert r["chain_pcg_iters"] < r["plain_cg_iters"]
        assert r["chain_pcg_iters"] < r["jacobi_pcg_iters"]


class TestE8WorkDepthScaling:
    def test_work_and_depth_scaling(self, benchmark):
        sizes = [16, 24, 32, 48]

        def run():
            rows = []
            for size in sizes:
                g = generators.grid_2d(size, size)
                cost = CostModel()
                # Faithful chain termination at ~m^(1/3) for the depth claim.
                config = ChainConfig(
                    bottom_size=max(40, int(round(g.num_edges ** (1 / 3)))),
                    kappa=49.0,
                )
                op = factorize(g, config, seed=0, cost=cost)
                report = op.solve(_rhs(g), tol=1e-6)
                rows.append(
                    ExperimentRow(
                        "E8",
                        f"grid{size}",
                        params={"m": g.num_edges},
                        measured={
                            "work": cost.work,
                            "depth": cost.depth,
                            "work_over_n3": cost.work / float(g.n) ** 3,
                            "depth_over_work": cost.depth / cost.work,
                            "m_1_3": round(g.num_edges ** (1 / 3), 1),
                            "outer": report.iterations,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: work/depth scaling (near-linear work, m^(1/3)-like depth)", rows)
        # work exponent well below the dense-solver regime
        w = [r.measured["work"] for r in rows]
        m = [r.params["m"] for r in rows]
        exponent = math.log(w[-1] / w[0]) / math.log(m[-1] / m[0])
        print(f"\nmeasured work exponent: {exponent:.2f} (dense solve would be ~3, CG ~1.5-2)")
        assert exponent < 2.4
        # work / n^3 strictly decreasing: the gap to dense solving widens
        ratios = [r.measured["work_over_n3"] for r in rows]
        assert all(ratios[i + 1] < ratios[i] for i in range(len(ratios) - 1))
        # depth is a vanishing fraction of work as the instance grows
        dw = [r.measured["depth_over_work"] for r in rows]
        assert dw[-1] < dw[0]


class TestE8MultiRHS:
    def test_batched_beats_looped(self, benchmark):
        g = generators.grid_2d(24, 24)
        batch = _rhs_batch(g, 8)

        def run():
            row, _op, _t = _multi_rhs_row("grid24", g, batch)
            return [row]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: batched multi-RHS vs factorize-per-solve loop", rows)
        r = rows[0].measured
        # Factorize-once + one batched call must charge strictly less work
        # than the historical loop that rebuilds the chain per solve.
        assert r["batched_total_work"] < r["looped_total_work"]
        assert r["batched_residual"] <= 1e-6


def _multi_rhs_row(name: str, g, batch: np.ndarray, solver: Optional[SolverConfig] = None):
    """Compare one batched multi-RHS solve against a factorize-per-solve loop.

    Returns ``(row, operator, setup_seconds)`` so callers can reuse the
    factorization instead of paying for it again.
    """
    k = batch.shape[1]

    cost_batched = CostModel()
    t0 = time.time()
    op = factorize(g, solver=solver, seed=0, cost=cost_batched)
    t_setup = time.time() - t0
    t0 = time.time()
    batched = op.solve(batch, tol=1e-8)
    t_batched = time.time() - t0

    cost_looped = CostModel()
    t0 = time.time()
    for j in range(k):
        loop_op = factorize(g, solver=solver, seed=0, cost=cost_looped)
        loop_op.solve(batch[:, j], tol=1e-8)
    t_looped = time.time() - t0

    row = ExperimentRow(
        "E8",
        name,
        params={"n": g.n, "m": g.num_edges, "k": k},
        measured={
            "setup_work": op.setup_work,
            "setup_depth": op.setup_depth,
            "setup_seconds": t_setup,
            "batched_solve_work": batched.work,
            "batched_solve_depth": batched.depth,
            "batched_seconds": t_batched,
            "batched_total_work": op.setup_work + batched.work,
            "looped_total_work": cost_looped.work,
            "looped_seconds": t_looped,
            "batched_residual": batched.relative_residual,
            "work_ratio": (op.setup_work + batched.work) / cost_looped.work,
            "wall_speedup": t_looped / max(t_batched + t_setup, 1e-9),
        },
    )
    return row, op, t_setup


# --------------------------------------------------------------------------- #
# library baselines: scipy.sparse CG and (optional) pyamg
# --------------------------------------------------------------------------- #
def scipy_cg_baseline(lap, b: np.ndarray, tol: float = 1e-8, maxiter: int = 8000):
    """Unpreconditioned ``scipy.sparse.linalg.cg`` on the same system.

    Returns the measurement dict, or ``None`` when scipy is unavailable
    (the JSON column records ``null`` so downstream diffs stay aligned).
    """
    try:
        from scipy.sparse.linalg import cg as scipy_cg
    except ImportError:  # pragma: no cover - scipy is a hard dep of repro
        return None
    iters = [0]

    def count(_xk):
        iters[0] += 1

    t0 = time.time()
    try:
        x, info = scipy_cg(lap, b, rtol=tol, atol=0.0, maxiter=maxiter, callback=count)
    except TypeError:  # scipy < 1.12 spelled the relative tolerance "tol"
        x, info = scipy_cg(lap, b, tol=tol, atol=0.0, maxiter=maxiter, callback=count)
    seconds = time.time() - t0
    resid = float(np.linalg.norm(lap @ x - b) / max(np.linalg.norm(b), 1e-300))
    return {
        "iterations": int(iters[0]),
        "seconds": seconds,
        "converged": bool(info == 0),
        "relative_residual": resid,
    }


def pyamg_baseline(lap, b: np.ndarray, tol: float = 1e-8, maxiter: int = 400):
    """Smoothed-aggregation AMG (pyamg) on the same system, when installed.

    Returns ``None`` when pyamg is absent — the benchmark container does not
    ship it, so the committed JSON records ``null`` for this column.
    """
    try:
        import pyamg
    except ImportError:
        return None
    t0 = time.time()
    ml = pyamg.smoothed_aggregation_solver(lap.tocsr())
    setup_seconds = time.time() - t0
    residuals: List[float] = []
    t0 = time.time()
    x = ml.solve(b, tol=tol, maxiter=maxiter, residuals=residuals)
    seconds = time.time() - t0
    resid = float(np.linalg.norm(lap @ x - b) / max(np.linalg.norm(b), 1e-300))
    return {
        "iterations": max(len(residuals) - 1, 0),
        "setup_seconds": setup_seconds,
        "seconds": seconds,
        "converged": bool(resid <= tol * 10),
        "relative_residual": resid,
    }


# --------------------------------------------------------------------------- #
# standalone --json harness
# --------------------------------------------------------------------------- #
#: sha256 of the pcg_grid24 solution at pre-array-namespace HEAD (the same
#: pin tests/test_bit_identity.py carries): grid_2d(24,24), seed=0 factorize,
#: default_rng(7) mean-centered RHS, default-config solve.
_PINNED_PCG_GRID24_DIGEST = (
    "6ed727dc0d3371c42dfec527870ee7a4925faa5bce22ee91a3eeef5b564157c1"
)


def assert_numpy_backend_bit_identity() -> None:
    """Fail fast if the default-backend solve drifted from the pinned digest.

    Runs the exact pinned recipe; raises ``AssertionError`` on any drift so a
    regenerated ``BENCH_solver.json`` can never silently ship numbers from a
    solver that stopped being bit-identical to the pre-refactor one.
    """
    g = generators.grid_2d(24, 24)
    op = factorize(g, seed=0)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    r = op.solve(b)
    digest = hashlib.sha256(
        np.ascontiguousarray(r.x, dtype=np.float64).tobytes()
    ).hexdigest()
    assert digest == _PINNED_PCG_GRID24_DIGEST, (
        "default-config numpy-backend solve drifted from the pinned "
        f"pre-refactor digest ({digest} != {_PINNED_PCG_GRID24_DIGEST})"
    )


def collect_payload(
    sizes=(16, 24, 32, 64, 100), batch_width: int = 8, array_backend: str = "numpy"
) -> Dict:
    """Measure setup vs per-solve cost and multi-RHS behaviour per workload."""
    clear_chain_cache()
    solver_cfg = SolverConfig(array_backend=array_backend)
    if array_backend == "numpy":
        # In-bench bit-identity gate: committed JSON always comes from a
        # solver whose default path matches the pinned digests.
        assert_numpy_backend_bit_identity()
    workloads: List[Dict] = []
    for size in sizes:
        g = generators.grid_2d(size, size)
        batch = _rhs_batch(g, batch_width)
        b = _rhs(g)

        row, op, setup_seconds = _multi_rhs_row(
            f"grid{size}", g, batch, solver=solver_cfg
        )
        lap = graph_to_laplacian(g)

        t0 = time.time()
        single = op.solve(b, tol=1e-8)
        single_seconds = time.time() - t0
        workloads.append(
            {
                "workload": f"grid{size}",
                "n": g.n,
                "m": g.num_edges,
                "chain_levels": op.chain.depth,
                "setup": {
                    "work": op.setup_work,
                    "depth": op.setup_depth,
                    "seconds": setup_seconds,
                },
                "per_solve": {
                    "work": single.work,
                    "depth": single.depth,
                    "seconds": single_seconds,
                    "iterations": single.iterations,
                    "relative_residual": single.relative_residual,
                },
                "multi_rhs": dict(row.measured, k=batch_width),
                # Library baselines on the identical (lap, b, tol) system;
                # null = library not installed in this environment.
                "baselines": {
                    "scipy_cg": scipy_cg_baseline(lap, b, tol=1e-8),
                    "pyamg": pyamg_baseline(lap, b, tol=1e-8),
                },
            }
        )
    try:
        import pyamg  # noqa: F401

        pyamg_available = True
    except ImportError:
        pyamg_available = False
    return {
        "experiment": "E8",
        "schema_version": 3,
        "batch_width": batch_width,
        "array_backend": array_backend,
        "baseline_availability": {"scipy_cg": True, "pyamg": pyamg_available},
        "workloads": workloads,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable benchmark payload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_solver.json",
        help="output path for --json (default: BENCH_solver.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[16, 24, 32, 64, 100],
        help="grid side lengths to sweep (the vectorized chain construction"
        " makes 10k-vertex setups routine)",
    )
    parser.add_argument("--batch", type=int, default=8, help="multi-RHS batch width")
    parser.add_argument(
        "--array-backend",
        default="numpy",
        help="array namespace the solves run in (numpy, cupy, fakedevice, "
        "array_api:<module>); recorded in the JSON payload",
    )
    args = parser.parse_args(argv)

    payload = collect_payload(
        sizes=tuple(args.sizes), batch_width=args.batch, array_backend=args.array_backend
    )
    for w in payload["workloads"]:
        ratio = w["multi_rhs"]["work_ratio"]
        cg = w["baselines"]["scipy_cg"]
        amg = w["baselines"]["pyamg"]
        cg_col = f"{cg['iterations']}" if cg else "n/a"
        amg_col = f"{amg['iterations']}" if amg else "n/a"
        print(
            f"{w['workload']}: setup work {w['setup']['work']:.3g}, "
            f"per-solve work {w['per_solve']['work']:.3g}, "
            f"batched/looped work ratio {ratio:.3f}, "
            f"iters chain {w['per_solve']['iterations']} / "
            f"scipy-cg {cg_col} / pyamg {amg_col}"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
