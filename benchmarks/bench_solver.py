"""Experiment E8: the parallel SDD solver (Theorem 1.1).

Regenerates the paper's headline claims:

* accuracy — ``||x - A^+ b||_A <= eps ||A^+ b||_A`` for the requested eps;
* work — charged work grows far slower than the dense O(n^3) cost and the
  work exponent stays well below 2 across a size sweep;
* depth — charged depth is polynomially smaller than work (the m^(1/3+θ)
  claim: depth/work shrinks as the instance grows);
* comparison against CG and Jacobi-PCG baselines (iteration counts).
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import print_table
from repro.core.chain import default_bottom_size
from repro.core.solver import SDDSolver
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.linalg.cg import conjugate_gradient
from repro.linalg.direct import solve_laplacian_direct
from repro.linalg.jacobi import jacobi_preconditioner
from repro.linalg.norms import relative_a_norm_error
from repro.pram.model import CostModel
from repro.util.records import ExperimentRow


def _rhs(graph, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    return b - b.mean()


class TestE8Accuracy:
    def test_a_norm_accuracy(self, benchmark, bench_grid, bench_weighted_grid, bench_random_graph):
        workloads = [
            ("grid48", bench_grid),
            ("wgrid40", bench_weighted_grid),
            ("er2000", bench_random_graph),
        ]

        def run():
            rows = []
            for name, g in workloads:
                lap = graph_to_laplacian(g)
                b = _rhs(g)
                solver = SDDSolver(g, seed=0)
                report = solver.solve(b, tol=1e-8)
                x_exact = solve_laplacian_direct(lap, b)
                err = relative_a_norm_error(lap, report.x - report.x.mean(), x_exact)
                rows.append(
                    ExperimentRow(
                        "E8",
                        name,
                        params={"n": g.n, "m": g.num_edges},
                        measured={
                            "levels": solver.chain.depth,
                            "outer_iterations": report.iterations,
                            "a_norm_error": err,
                            "eps_target": 1e-8,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: solver accuracy (Theorem 1.1 error guarantee)", rows)
        for r in rows:
            assert r.measured["a_norm_error"] <= 1e-5


class TestE8Baselines:
    def test_iteration_counts_vs_cg(self, benchmark, bench_weighted_grid):
        g = bench_weighted_grid
        lap = graph_to_laplacian(g)
        b = _rhs(g)

        def run():
            solver = SDDSolver(g, seed=0)
            chain_report = solver.solve(b, tol=1e-8)
            plain = conjugate_gradient(lap, b, tol=1e-8, max_iterations=8000, project_nullspace=True)
            jacobi = conjugate_gradient(
                lap, b, tol=1e-8, max_iterations=8000,
                preconditioner=jacobi_preconditioner(lap), project_nullspace=True,
            )
            return [
                ExperimentRow(
                    "E8", "wgrid40", params={"m": g.num_edges},
                    measured={
                        "chain_pcg_iters": chain_report.iterations,
                        "jacobi_pcg_iters": jacobi.iterations,
                        "plain_cg_iters": plain.iterations,
                    },
                )
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: outer iteration counts vs baselines", rows)
        r = rows[0].measured
        assert r["chain_pcg_iters"] < r["plain_cg_iters"]
        assert r["chain_pcg_iters"] < r["jacobi_pcg_iters"]


class TestE8WorkDepthScaling:
    def test_work_and_depth_scaling(self, benchmark):
        sizes = [16, 24, 32, 48]

        def run():
            rows = []
            for size in sizes:
                g = generators.grid_2d(size, size)
                cost = CostModel()
                # Faithful chain termination at ~m^(1/3) for the depth claim.
                solver = SDDSolver(
                    g, seed=0, cost=cost,
                    bottom_size=max(40, int(round(g.num_edges ** (1 / 3)))),
                    kappa=49.0,
                )
                report = solver.solve(_rhs(g), tol=1e-6)
                rows.append(
                    ExperimentRow(
                        "E8",
                        f"grid{size}",
                        params={"m": g.num_edges},
                        measured={
                            "work": cost.work,
                            "depth": cost.depth,
                            "work_over_n3": cost.work / float(g.n) ** 3,
                            "depth_over_work": cost.depth / cost.work,
                            "m_1_3": round(g.num_edges ** (1 / 3), 1),
                            "outer": report.iterations,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E8: work/depth scaling (near-linear work, m^(1/3)-like depth)", rows)
        # work exponent well below the dense-solver regime
        w = [r.measured["work"] for r in rows]
        m = [r.params["m"] for r in rows]
        exponent = math.log(w[-1] / w[0]) / math.log(m[-1] / m[0])
        print(f"\nmeasured work exponent: {exponent:.2f} (dense solve would be ~3, CG ~1.5-2)")
        assert exponent < 2.4
        # work / n^3 strictly decreasing: the gap to dense solving widens
        ratios = [r.measured["work_over_n3"] for r in rows]
        assert all(ratios[i + 1] < ratios[i] for i in range(len(ratios) - 1))
        # depth is a vanishing fraction of work as the instance grows
        dw = [r.measured["depth_over_work"] for r in rows]
        assert dw[-1] < dw[0]
