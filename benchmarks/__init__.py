"""Benchmark harness: one module per experiment family (see DESIGN.md)."""
