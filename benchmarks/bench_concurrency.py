"""Concurrent serving throughput of one shared factorized operator.

The factorize-once / solve-many lifecycle only pays off for a service if a
single :class:`~repro.core.operator.LaplacianOperator` can absorb solve
traffic from many threads at once.  This benchmark factorizes one grid
Laplacian, then drives a fixed pool of right-hand sides through the *same*
operator at 1/2/4/8 threads, measuring aggregate solves/second — and, at
every thread count, asserts that each :class:`SolveReport` is **bit
identical** (``x``, ``work``, ``depth``) to its serial reference, which is
the re-entrancy guarantee the solve-context refactor introduced.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_concurrency.json``::

    PYTHONPATH=src python benchmarks/bench_concurrency.py --json
    PYTHONPATH=src python benchmarks/bench_concurrency.py --json --out path.json

The JSON payload records, per thread count, the wall time, aggregate
throughput, and speedup over the single-thread run — plus the resolved
``kernel_backend``, the machine's ``cpu_count``, and the ``numba_version``
(``null`` when numba is absent), so a reader can tell GIL-bound numbers on
a big box from GIL-free numbers on a small one.  With the ``numpy``
backend, Python threads share the GIL and the speedup reflects only the
time inside GIL-releasing NumPy/SciPy calls; the ``numba`` backend runs the
hot sweeps as ``nogil`` compiled kernels, which is where multi-thread
speedup on one shared operator comes from.  An untimed warmup solve runs
before anything is measured (it also forces one-time JIT compilation on
the numba backend).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List

import numpy as np

from repro.core.chain_cache import clear_chain_cache
from repro.core.config import SolverConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.kernels import numba_version


def _rhs_pool(graph, num_rhs: int, seed: int = 3) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(num_rhs):
        b = rng.standard_normal(graph.n)
        pool.append(b - b.mean())
    return pool


def _assert_matches(report, reference, threads: int, index: int) -> None:
    if not (
        np.array_equal(report.x, reference.x)
        and report.work == reference.work
        and report.depth == reference.depth
    ):
        raise AssertionError(
            f"solve {index} at {threads} threads diverged from serial: "
            f"work {report.work} vs {reference.work}, "
            f"depth {report.depth} vs {reference.depth}"
        )


def _timed_run(op, pool, threads: int, references) -> float:
    """Solve every RHS in ``pool`` once, striped over ``threads`` threads."""
    barrier = threading.Barrier(threads + 1)
    errors: List[BaseException] = []

    def worker(offset: int) -> None:
        try:
            barrier.wait()
            for i in range(offset, len(pool), threads):
                report = op.solve(pool[i])
                _assert_matches(report, references[i], threads, i)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    barrier.wait()
    t0 = time.time()
    for w in workers:
        w.join()
    seconds = time.time() - t0
    if errors:
        raise errors[0]
    return seconds


def collect_payload(
    side: int = 32,
    thread_counts=(1, 2, 4, 8),
    num_rhs: int = 24,
    method: str = "pcg",
    repeats: int = 1,
    backend: str = "auto",
    array_backend: str = "numpy",
) -> Dict:
    """Throughput of one shared operator at each thread count (best of repeats)."""
    clear_chain_cache()
    g = generators.grid_2d(side, side)
    t0 = time.time()
    op = factorize(
        g,
        solver=SolverConfig(
            method=method, kernel_backend=backend, array_backend=array_backend
        ),
        seed=0,
    )
    setup_seconds = time.time() - t0
    pool = _rhs_pool(g, num_rhs)

    # Untimed warmup: steadies allocators/caches and, on the numba backend,
    # absorbs the one-time JIT compilation of every kernel the solve touches
    # so no timed run (nor the serial references) pays it.
    op.solve(pool[0])

    # Serial references: the bit-identity baseline for every thread count
    # (also warms the lazy initializers so the timed runs are steady-state).
    references = [op.solve(b) for b in pool]
    per_solve_work = references[0].work

    runs = []
    for threads in thread_counts:
        seconds = min(_timed_run(op, pool, threads, references) for _ in range(repeats))
        runs.append(
            {
                "threads": threads,
                "total_solves": num_rhs,
                "seconds": seconds,
                "solves_per_second": num_rhs / seconds if seconds > 0 else float("inf"),
                "bit_identical_to_serial": True,  # _timed_run raised otherwise
            }
        )
    base = runs[0]["seconds"]
    for run in runs:
        run["speedup_vs_baseline"] = base / run["seconds"] if run["seconds"] > 0 else float("inf")

    return {
        "experiment": "concurrency",
        "schema_version": 3,
        "workload": f"grid{side}",
        "n": g.n,
        "m": g.num_edges,
        "method": method,
        "array_backend": op.array_ns.name,
        "kernel_backend": op.kernels.name,
        "kernel_jit": op.kernels.jit,
        "cpu_count": os.cpu_count(),
        "numba_version": numba_version(),
        "chain_levels": op.chain.depth,
        "baseline_threads": thread_counts[0],
        "setup_seconds": setup_seconds,
        "per_solve_work": per_solve_work,
        "per_solve_depth": references[0].depth,
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable benchmark payload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_concurrency.json",
        help="output path for --json (default: BENCH_concurrency.json)",
    )
    parser.add_argument("--side", type=int, default=32, help="grid side length")
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="thread counts to sweep (the first is the reported speedup baseline)",
    )
    parser.add_argument("--solves", type=int, default=24, help="total solves per run")
    parser.add_argument("--method", default="pcg", help="solve method to drive")
    parser.add_argument("--repeats", type=int, default=1, help="timed repeats (best kept)")
    parser.add_argument(
        "--backend",
        default="auto",
        help="kernel backend (auto/numpy/numba; REPRO_KERNEL_BACKEND overrides)",
    )
    parser.add_argument(
        "--array-backend",
        default="numpy",
        help="array namespace the solves run in (numpy, cupy, fakedevice, "
        "array_api:<module>); recorded in the JSON payload",
    )
    args = parser.parse_args(argv)

    payload = collect_payload(
        side=args.side,
        thread_counts=tuple(args.threads),
        num_rhs=args.solves,
        method=args.method,
        repeats=args.repeats,
        backend=args.backend,
        array_backend=args.array_backend,
    )
    print(
        f"{payload['workload']} (n={payload['n']}, method={payload['method']}, "
        f"backend={payload['kernel_backend']}, cpus={payload['cpu_count']}): "
        f"per-solve work {payload['per_solve_work']:.4g}"
    )
    for run in payload["runs"]:
        print(
            f"  {run['threads']} thread(s): {run['solves_per_second']:.1f} solves/s "
            f"({run['seconds']:.3f}s for {run['total_solves']} solves, "
            f"speedup x{run['speedup_vs_baseline']:.2f} vs baseline, bit-identical)"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
